#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace vada::datalog {
namespace {

Program MustParse(const std::string& src) {
  Result<Program> p = Parser::Parse(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

class ProvenanceTest : public ::testing::Test {
 protected:
  void RunWithProvenance(const std::string& src) {
    Program p = MustParse(src);
    Evaluator eval(p);
    ASSERT_TRUE(eval.Prepare().ok());
    ASSERT_TRUE(eval.Run(&db_, nullptr, &provenance_).ok());
  }

  Database db_;
  Provenance provenance_;
};

TEST_F(ProvenanceTest, RecordsRuleAndPremises) {
  db_.Insert("edge", Tuple({Value::Int(1), Value::Int(2)}));
  RunWithProvenance("tc(X, Y) :- edge(X, Y).");
  Tuple fact({Value::Int(1), Value::Int(2)});
  ASSERT_TRUE(provenance_.Has("tc", fact));
  const Derivation* d = provenance_.Find("tc", fact);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rule, "tc(X, Y) :- edge(X, Y).");
  ASSERT_EQ(d->premises.size(), 1u);
  EXPECT_EQ(d->premises[0].first, "edge");
  EXPECT_EQ(d->premises[0].second, fact);
}

TEST_F(ProvenanceTest, EdbFactsHaveNoDerivation) {
  db_.Insert("edge", Tuple({Value::Int(1), Value::Int(2)}));
  RunWithProvenance("tc(X, Y) :- edge(X, Y).");
  EXPECT_FALSE(
      provenance_.Has("edge", Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_EQ(provenance_.Find("edge", Tuple({Value::Int(1), Value::Int(2)})),
            nullptr);
}

TEST_F(ProvenanceTest, RecursiveDerivationTree) {
  for (int i = 1; i <= 3; ++i) {
    db_.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  RunWithProvenance(
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).");
  Tuple fact({Value::Int(1), Value::Int(4)});
  ASSERT_TRUE(provenance_.Has("tc", fact));
  std::string explanation = provenance_.Explain("tc", fact);
  // The tree mentions the recursive rule and bottoms out at EDB edges.
  EXPECT_NE(explanation.find("tc(X, Y) :- edge(X, Z), tc(Z, Y)."),
            std::string::npos);
  EXPECT_NE(explanation.find("(edb)"), std::string::npos);
  EXPECT_NE(explanation.find("edge(1, 2)"), std::string::npos);
}

TEST_F(ProvenanceTest, ExplainDepthCap) {
  for (int i = 0; i < 30; ++i) {
    db_.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  RunWithProvenance(
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).");
  std::string explanation =
      provenance_.Explain("tc", Tuple({Value::Int(0), Value::Int(30)}),
                          /*max_depth=*/3);
  EXPECT_NE(explanation.find("(...)"), std::string::npos);
}

TEST_F(ProvenanceTest, NegationPremisesAreThePositiveAtoms) {
  db_.Insert("node", Tuple({Value::Int(1)}));
  db_.Insert("node", Tuple({Value::Int(2)}));
  db_.Insert("good", Tuple({Value::Int(1)}));
  RunWithProvenance("bad(X) :- node(X), not good(X).");
  const Derivation* d = provenance_.Find("bad", Tuple({Value::Int(2)}));
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->premises.size(), 1u);  // only the positive atom
  EXPECT_EQ(d->premises[0].first, "node");
}

TEST_F(ProvenanceTest, AggregateRecordsRuleOnly) {
  db_.Insert("m", Tuple({Value::String("a"), Value::Int(1)}));
  db_.Insert("m", Tuple({Value::String("a"), Value::Int(2)}));
  RunWithProvenance("cnt(G, count<V>) :- m(G, V).");
  const Derivation* d =
      provenance_.Find("cnt", Tuple({Value::String("a"), Value::Int(2)}));
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->premises.empty());
  EXPECT_NE(d->rule.find("count<V>"), std::string::npos);
}

TEST_F(ProvenanceTest, FirstDerivationWins) {
  // Two rules derive p(1); exactly one derivation is stored.
  db_.Insert("a", Tuple({Value::Int(1)}));
  db_.Insert("b", Tuple({Value::Int(1)}));
  RunWithProvenance("p(X) :- a(X). p(X) :- b(X).");
  const Derivation* d = provenance_.Find("p", Tuple({Value::Int(1)}));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(provenance_.size(), 1u);
}

TEST_F(ProvenanceTest, SemiNaiveAndNaiveBothExplainEverything) {
  for (bool semi_naive : {true, false}) {
    Database db;
    for (int i = 0; i < 6; ++i) {
      db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
    }
    Program p = MustParse(
        "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).");
    EvalOptions opts;
    opts.semi_naive = semi_naive;
    Evaluator eval(p, opts);
    ASSERT_TRUE(eval.Prepare().ok());
    Provenance prov;
    ASSERT_TRUE(eval.Run(&db, nullptr, &prov).ok());
    // Every derived tc fact has a derivation.
    for (const Tuple& t : db.facts("tc")) {
      EXPECT_TRUE(prov.Has("tc", t)) << "mode " << semi_naive;
    }
    EXPECT_EQ(prov.size(), db.FactCount("tc"));
  }
}

TEST_F(ProvenanceTest, NoProvenanceRequestedNoOverhead) {
  db_.Insert("edge", Tuple({Value::Int(1), Value::Int(2)}));
  Program p = MustParse("tc(X, Y) :- edge(X, Y).");
  Evaluator eval(p);
  ASSERT_TRUE(eval.Prepare().ok());
  ASSERT_TRUE(eval.Run(&db_).ok());  // no provenance arg: must not crash
  EXPECT_EQ(provenance_.size(), 0u);
}

}  // namespace
}  // namespace vada::datalog
