#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "extract/open_government.h"
#include "extract/real_estate.h"
#include "transducer/fault_injection.h"
#include "wrangler/session.h"

namespace vada {
namespace {

/// Soak test of the fault-tolerant orchestrator over the paper's
/// real-estate scenario: for many seeded fault schedules, a wrangle under
/// injection must converge to *exactly* the fault-free result. This holds
/// because every injected fault is transient (bounded failure budget),
/// rollback restores the KB byte-identically after each failed attempt,
/// and the pipeline itself is deterministic — so the sequence of
/// *successful* executions is the same as in the fault-free run.

Schema TargetSchema() {
  return Schema::Untyped("target", {"type", "description", "street",
                                    "postcode", "bedrooms", "price",
                                    "crimerank"});
}

class FaultSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyUniverseOptions uopts;
    uopts.num_properties = 50;
    uopts.num_postcodes = 10;
    uopts.seed = 5;
    truth_ = GeneratePropertyUniverse(uopts);
    ExtractionErrorOptions rm;
    rm.seed = 101;
    rightmove_ = ExtractRightmove(truth_, rm);
    ExtractionErrorOptions otm;
    otm.seed = 202;
    otm.coverage = 0.6;
    onthemarket_ = ExtractOnthemarket(truth_, otm);
    deprivation_ = GenerateDeprivation(truth_);
    address_ = GenerateAddressReference(truth_);
  }

  Status Bootstrap(WranglingSession* session) {
    VADA_RETURN_IF_ERROR(session->SetTargetSchema(TargetSchema()));
    VADA_RETURN_IF_ERROR(session->AddSource(rightmove_));
    VADA_RETURN_IF_ERROR(session->AddSource(onthemarket_));
    VADA_RETURN_IF_ERROR(session->AddSource(deprivation_));
    VADA_RETURN_IF_ERROR(session->AddDataContext(
        address_, RelationRole::kReference,
        {{"street", "street"}, {"postcode", "postcode"}}));
    return Status::OK();
  }

  /// Fault-tolerance policy with a no-op sleeper (keeps the soak fast)
  /// that still records every backoff request.
  FailurePolicy SoakPolicy(std::vector<double>* backoffs) {
    FailurePolicy fp;
    // Enough attempts to outlast any injected failure budget (<= 2), so
    // every step eventually succeeds and no transducer is quarantined —
    // the precondition for exact convergence.
    fp.max_attempts = 4;
    fp.sleep_ms = [backoffs](double ms) { backoffs->push_back(ms); };
    return fp;
  }

  GroundTruth truth_;
  Relation rightmove_{Schema()};
  Relation onthemarket_{Schema()};
  Relation deprivation_{Schema()};
  Relation address_{Schema()};
};

TEST_F(FaultSoakTest, SeededFaultSchedulesConvergeToFaultFreeResult) {
  // Fault-free baseline.
  WranglingSession baseline;
  ASSERT_TRUE(Bootstrap(&baseline).ok());
  OrchestrationStats baseline_stats;
  ASSERT_TRUE(baseline.Run(&baseline_stats).ok());
  ASSERT_NE(baseline.result(), nullptr);
  const std::vector<Tuple> expected_rows = baseline.result()->rows();
  ASSERT_FALSE(expected_rows.empty());

  size_t total_retries = 0;
  size_t total_rollbacks = 0;
  size_t schedules_with_faults = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    FaultInjector::Options fopt;
    fopt.seed = seed;
    fopt.fault_rate = 0.5;
    fopt.max_failures = 2;
    FaultInjector injector(fopt);

    std::vector<double> backoffs;
    WranglerConfig config;
    config.fault_tolerance = SoakPolicy(&backoffs);
    config.transducer_decorator = injector.Decorator();
    WranglingSession session(config);
    ASSERT_TRUE(Bootstrap(&session).ok());
    OrchestrationStats stats;
    Status s = session.Run(&stats);
    ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString() << "\n"
                        << session.trace().ToString();
    // Exact convergence: same rows, same order, despite the faults.
    ASSERT_NE(session.result(), nullptr) << "seed " << seed;
    EXPECT_EQ(session.result()->rows(), expected_rows) << "seed " << seed;
    // Nothing should end up permanently benched by transient faults.
    EXPECT_TRUE(session.orchestrator().QuarantinedTransducers().empty())
        << "seed " << seed;
    total_retries += stats.retries;
    total_rollbacks += stats.rollbacks;
    if (stats.retries > 0) ++schedules_with_faults;
    // Injected backoffs obey the policy's exponential schedule: each
    // sleep is either the initial value or a bounded multiple of it.
    for (double ms : backoffs) {
      EXPECT_GE(ms, 1.0);
      EXPECT_LE(ms, 50.0);
    }
  }
  // The harness must actually have exercised the failure paths: with
  // fault_rate 0.5 over 13 transducers and 25 seeds, a silent all-green
  // run means the injection wiring is broken.
  EXPECT_GT(schedules_with_faults, 10u);
  EXPECT_GT(total_retries, 25u);
  EXPECT_EQ(total_rollbacks, total_retries)
      << "every retried attempt must have been rolled back first";
}

TEST_F(FaultSoakTest, PermanentStandardTransducerFailureDegradesGracefully) {
  // Break one standard transducer off the critical path permanently:
  // cfd_learning feeds mapping_repair, but the main chain to
  // wrangled_result survives without it.
  WranglerConfig config;
  config.fault_tolerance.max_attempts = 2;
  config.fault_tolerance.quarantine_after = 1;
  config.fault_tolerance.quarantine_max_probes = 1;
  config.fault_tolerance.sleep_ms = [](double) {};
  config.transducer_decorator =
      [](std::unique_ptr<Transducer> t) -> std::unique_ptr<Transducer> {
    if (t->name() != "cfd_learning") return t;
    FaultSpec spec;
    spec.kind = FaultKind::kFailFirstN;
    spec.count = 1000000;  // effectively permanent
    return WrapWithFault(std::move(t), spec);
  };
  WranglingSession session(config);
  ASSERT_TRUE(Bootstrap(&session).ok());
  OrchestrationStats stats;
  Status s = session.Run(&stats);
  // Graceful degradation: the run completes…
  ASSERT_TRUE(s.ok()) << s.ToString() << "\n" << session.trace().ToString();
  // …the result is still produced…
  ASSERT_NE(session.result(), nullptr);
  EXPECT_GT(session.result()->size(), 0u);
  // …the broken transducer is quarantined, with failure facts in the KB.
  EXPECT_EQ(session.orchestrator().QuarantinedTransducers(),
            std::vector<std::string>{"cfd_learning"});
  EXPECT_GE(stats.failures, 1u);
  const Relation* failures =
      session.kb().FindRelation("sys_transducer_failure");
  ASSERT_NE(failures, nullptr);
  EXPECT_FALSE(failures->empty());
  const Relation* quarantined =
      session.kb().FindRelation("sys_transducer_quarantined");
  ASSERT_NE(quarantined, nullptr);
  EXPECT_FALSE(quarantined->empty());
}

}  // namespace
}  // namespace vada
