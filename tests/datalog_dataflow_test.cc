// Tests for the dataflow analysis layer (datalog/analysis/dataflow):
// the abstract lattices, type/constant/cardinality inference to
// fixpoint, the four lint verdicts, the ProgramOptimizer rewrites, and
// the property that optimizer output always re-validates and
// re-stratifies across 500 random programs.
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/analysis/analyzer.h"
#include "datalog/analysis/dataflow/dataflow.h"
#include "datalog/analysis/dataflow/lattice.h"
#include "datalog/analysis/dataflow/optimizer.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/stratify.h"
#include "datalog_random_program.h"

namespace vada::datalog::dataflow {
namespace {

// ---------------------------------------------------------------------
// Lattice units.
// ---------------------------------------------------------------------

TEST(LatticeTest, TypeSetOps) {
  TypeSet ints = TypeSet::Of(ValueType::kInt);
  TypeSet strings = TypeSet::Of(ValueType::kString);
  EXPECT_TRUE(ints.Intersect(strings).empty());
  EXPECT_TRUE(ints.Union(strings).Contains(ValueType::kInt));
  EXPECT_TRUE(ints.Union(strings).Contains(ValueType::kString));
  EXPECT_TRUE(ints.NumericOnly());
  EXPECT_FALSE(ints.Union(strings).NumericOnly());
  EXPECT_TRUE(TypeSet::Numeric().ContainsNumeric());
  EXPECT_TRUE(TypeSet::Top().is_top());
  EXPECT_TRUE(TypeSet::Bottom().empty());
}

TEST(LatticeTest, IntervalOps) {
  Interval a{0, 10};
  Interval b{5, 20};
  EXPECT_EQ(a.Intersect(b), (Interval{5, 10}));
  EXPECT_EQ(a.Union(b), (Interval{0, 20}));
  EXPECT_TRUE(a.Intersect(Interval{11, 12}).empty());
  // Widening: a moved bound jumps to infinity.
  Interval widened = Interval{0, 11}.WidenFrom(a);
  EXPECT_EQ(widened.lo, 0);
  EXPECT_TRUE(std::isinf(widened.hi));
}

TEST(LatticeTest, ConstSetExactVsCoerced) {
  ConstSet ints = ConstSet::Of(Value::Int(3));
  EXPECT_TRUE(ints.Contains(Value::Int(3)));
  // Exact membership distinguishes Int(3) from Double(3.0) — atom joins
  // match exactly.
  EXPECT_FALSE(ints.Contains(Value::Double(3.0)));
  // Coerced membership does not — comparisons coerce.
  EXPECT_TRUE(ints.ContainsCoerced(Value::Double(3.0)));

  ConstSet doubles = ConstSet::Of(Value::Double(3.0));
  EXPECT_TRUE(ints.Intersect(doubles).empty());
  ConstSet coerced = ints.IntersectCoerced(doubles);
  EXPECT_TRUE(coerced.Contains(Value::Int(3)));
  EXPECT_TRUE(coerced.Contains(Value::Double(3.0)));
}

TEST(LatticeTest, ConstSetOverflowsToTop) {
  ConstSet s;
  for (size_t i = 0; i <= ConstSet::kMaxConsts; ++i) {
    s.Insert(Value::Int(static_cast<int64_t>(i)));
  }
  EXPECT_TRUE(s.is_top());
}

TEST(LatticeTest, PosFactsEmptiness) {
  EXPECT_TRUE(PosFacts::Bottom().empty());
  EXPECT_FALSE(PosFacts::Top().empty());
  // Numeric-only position with an empty interval is empty.
  PosFacts numeric = PosFacts::FromValue(Value::Int(5));
  numeric.range = Interval::Empty();
  numeric.consts = ConstSet::Top();
  EXPECT_TRUE(numeric.empty());
  // Meet of disjoint constants is empty.
  PosFacts three = PosFacts::FromValue(Value::Int(3));
  PosFacts four = PosFacts::FromValue(Value::Int(4));
  EXPECT_TRUE(three.Meet(four).empty());
  EXPECT_FALSE(three.Join(four).empty());
}

TEST(LatticeTest, CardinalityArithmeticSaturates) {
  EXPECT_EQ(CardAdd(2, 3), 5u);
  EXPECT_EQ(CardMul(4, 5), 20u);
  EXPECT_EQ(CardAdd(kCardUnbounded, 1), kCardUnbounded);
  EXPECT_EQ(CardMul(kCardUnbounded, 0), 0u);
  EXPECT_EQ(CardMul(kCardUnbounded, 2), kCardUnbounded);
  EXPECT_EQ(CardMul(SIZE_MAX / 2, 4), kCardUnbounded);
}

// ---------------------------------------------------------------------
// Inference.
// ---------------------------------------------------------------------

Program Parse(const std::string& src) {
  Result<Program> p = Parser::Parse(src);
  EXPECT_TRUE(p.ok()) << p.status().message();
  return std::move(p).value();
}

EdbSeeds SeedsOf(const Database& db) { return SeedsFromDatabase(db); }

TEST(DataflowTest, InfersTypesAndConstantsFromSeeds) {
  Database db;
  db.Insert("e", Tuple({Value::Int(1), Value::String("a")}));
  db.Insert("e", Tuple({Value::Int(2), Value::String("b")}));
  Program program = Parse("p(X, Y) :- e(X, Y).");

  DataflowResult df = AnalyzeDataflow(program, SeedsOf(db));
  const PredicateFacts& p = df.predicates.at("p");
  ASSERT_EQ(p.positions.size(), 2u);
  EXPECT_TRUE(p.positions[0].types.NumericOnly());
  EXPECT_TRUE(p.positions[1].types.Contains(ValueType::kString));
  EXPECT_FALSE(p.positions[1].types.ContainsNumeric());
  EXPECT_TRUE(p.positions[0].consts.Contains(Value::Int(1)));
  EXPECT_TRUE(p.positions[0].consts.Contains(Value::Int(2)));
  EXPECT_FALSE(p.positions[0].consts.Contains(Value::Int(3)));
  EXPECT_EQ(p.cardinality, 2u);
  EXPECT_TRUE(p.possibly_nonempty);
}

TEST(DataflowTest, RecursionReachesFixpointWithDomainBound) {
  Database db;
  for (int i = 0; i < 4; ++i) {
    db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  Program program = Parse(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).");
  DataflowResult df = AnalyzeDataflow(program, SeedsOf(db));
  const PredicateFacts& tc = df.predicates.at("tc");
  // Recursive predicate over a finite constant domain: cardinality is
  // bounded by the position-domain product, not unbounded.
  EXPECT_NE(tc.cardinality, kCardUnbounded);
  EXPECT_GE(tc.cardinality, 4u);   // at least the seed rule's bound
  EXPECT_LE(tc.cardinality, 5u * 5u);
  EXPECT_TRUE(tc.positions[0].types.NumericOnly());
}

TEST(DataflowTest, RecursiveArithmeticWidensToUnbounded) {
  Database db;
  db.Insert("start", Tuple({Value::Int(0)}));
  Program program = Parse(
      "count_up(X) :- start(X).\n"
      "count_up(Y) :- count_up(X), Y = X + 1.");
  DataflowResult df = AnalyzeDataflow(program, SeedsOf(db));
  const PredicateFacts& c = df.predicates.at("count_up");
  // Widening must terminate the fixpoint; the interval becomes [0, inf).
  EXPECT_TRUE(c.positions[0].range.Contains(1e18));
  EXPECT_FALSE(c.positions[0].range.Contains(-1));
  EXPECT_EQ(c.cardinality, kCardUnbounded);
}

TEST(DataflowTest, ComparisonRefinementNarrowsIntervals) {
  Database db;
  for (int i = 0; i < 10; ++i) db.Insert("n", Tuple({Value::Int(i)}));
  Program program = Parse("small(X) :- n(X), X < 3.");
  DataflowResult df = AnalyzeDataflow(program, SeedsOf(db));
  const PredicateFacts& s = df.predicates.at("small");
  // Closed-bound refinement: [0, 3] over-approximates {0, 1, 2}.
  EXPECT_TRUE(s.positions[0].range.Contains(0));
  EXPECT_FALSE(s.positions[0].range.Contains(4));
}

TEST(DataflowTest, UnknownPredicatesAreTopOpenWorldEmptyClosedWorld) {
  Program program = Parse("p(X) :- mystery(X).");
  DataflowOptions open;  // default: assume_unknown_nonempty = true
  DataflowResult df_open = AnalyzeDataflow(program, EdbSeeds{}, open);
  EXPECT_TRUE(df_open.predicates.at("p").possibly_nonempty);
  EXPECT_TRUE(df_open.RuleIsClean(0));

  DataflowOptions closed;
  closed.assume_unknown_nonempty = false;
  DataflowResult df_closed = AnalyzeDataflow(program, EdbSeeds{}, closed);
  EXPECT_FALSE(df_closed.predicates.at("p").possibly_nonempty);
  EXPECT_TRUE(df_closed.RuleProvablyEmpty(0));
}

TEST(DataflowTest, CardinalityPriorsSkipUnboundedAndEmpty) {
  Database db;
  db.Insert("e", Tuple({Value::Int(1)}));
  Program program = Parse(
      "p(X) :- e(X).\n"
      "q(X) :- mystery(X).");
  DataflowResult df = AnalyzeDataflow(program, SeedsOf(db));
  std::map<std::string, size_t> priors = df.CardinalityPriors();
  EXPECT_EQ(priors.count("p"), 1u);
  EXPECT_EQ(priors.at("p"), 1u);
  EXPECT_EQ(priors.count("q"), 0u);  // unbounded (open-world mystery)
}

// ---------------------------------------------------------------------
// Findings (the vada_lint verdicts).
// ---------------------------------------------------------------------

std::vector<FindingKind> KindsOf(const DataflowResult& df, size_t ri) {
  std::vector<FindingKind> kinds;
  if (ri < df.rule_findings.size()) {
    for (const RuleFinding& f : df.rule_findings[ri]) kinds.push_back(f.kind);
  }
  return kinds;
}

TEST(DataflowFindingsTest, TypeClashOnDisjointJoin) {
  Database db;
  db.Insert("num", Tuple({Value::Int(1)}));
  db.Insert("str", Tuple({Value::String("a")}));
  Program program = Parse("p(X) :- num(X), str(X).");
  DataflowResult df = AnalyzeDataflow(program, SeedsOf(db));
  ASSERT_EQ(KindsOf(df, 0).size(), 1u);
  EXPECT_EQ(KindsOf(df, 0)[0], FindingKind::kTypeClash);
  EXPECT_TRUE(df.RuleProvablyEmpty(0));
  EXPECT_FALSE(df.predicates.at("p").possibly_nonempty);
}

TEST(DataflowFindingsTest, EmptyRuleOnDisjointConstants) {
  Database db;
  db.Insert("a", Tuple({Value::Int(1)}));
  db.Insert("b", Tuple({Value::Int(2)}));
  Program program = Parse("p(X) :- a(X), b(X).");
  DataflowResult df = AnalyzeDataflow(program, SeedsOf(db));
  ASSERT_EQ(KindsOf(df, 0).size(), 1u);
  EXPECT_EQ(KindsOf(df, 0)[0], FindingKind::kEmptyRule);
}

TEST(DataflowFindingsTest, ContradictoryComparisons) {
  Database db;
  for (int i = 0; i < 10; ++i) db.Insert("n", Tuple({Value::Int(i)}));
  Program program = Parse("p(X) :- n(X), X = 5, X = 7.");
  DataflowResult df = AnalyzeDataflow(program, SeedsOf(db));
  std::vector<FindingKind> kinds = KindsOf(df, 0);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], FindingKind::kContradictoryComparisons);
}

TEST(DataflowFindingsTest, UnsatisfiableConstantGuard) {
  Database db;
  db.Insert("n", Tuple({Value::Int(1)}));
  Program program = Parse("p(X) :- n(X), 3 > 5.");
  DataflowResult df = AnalyzeDataflow(program, SeedsOf(db));
  std::vector<FindingKind> kinds = KindsOf(df, 0);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], FindingKind::kUnsatisfiableGuard);
}

TEST(DataflowFindingsTest, NeverComparableTypesAreUnsatisfiable) {
  Database db;
  db.Insert("num", Tuple({Value::Int(1)}));
  db.Insert("str", Tuple({Value::String("a")}));
  // X < Y over int vs string can never succeed (CompareValues nullopt)…
  Program lt = Parse("p(X, Y) :- num(X), str(Y), X < Y.");
  DataflowResult df_lt = AnalyzeDataflow(lt, SeedsOf(db));
  ASSERT_EQ(KindsOf(df_lt, 0).size(), 1u);
  EXPECT_EQ(KindsOf(df_lt, 0)[0], FindingKind::kUnsatisfiableGuard);
  // …but X != Y over incomparable types is TRUE in the engine, so no
  // finding may fire.
  Program ne = Parse("q(X, Y) :- num(X), str(Y), X != Y.");
  DataflowResult df_ne = AnalyzeDataflow(ne, SeedsOf(db));
  EXPECT_TRUE(df_ne.RuleIsClean(0));
  EXPECT_TRUE(df_ne.predicates.at("q").possibly_nonempty);
}

TEST(DataflowFindingsTest, CleanProgramHasNoFindings) {
  Database db;
  for (int i = 0; i < 5; ++i) {
    db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  Program program = Parse(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
      "far(X, Y) :- tc(X, Y), Y > 3.");
  DataflowResult df = AnalyzeDataflow(program, SeedsOf(db));
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    EXPECT_TRUE(df.RuleIsClean(ri)) << "rule " << ri;
  }
}

/// Soundness harness: any rule the analysis proves empty must derive
/// nothing when actually evaluated (closed world over the same db).
TEST(DataflowFindingsTest, EmptinessProofsAreSoundOnRandomPrograms) {
  for (int seed = 0; seed < 100; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    Database edb = RandomEdb(&rng);
    Result<Program> program = Parser::Parse(RandomProgram(&rng));
    ASSERT_TRUE(program.ok());

    DataflowOptions closed;
    closed.assume_unknown_nonempty = false;
    DataflowResult df =
        AnalyzeDataflow(program.value(), SeedsFromDatabase(edb), closed);

    Database db = edb;
    Evaluator eval(program.value(), EvalOptions{});
    ASSERT_TRUE(eval.Prepare().ok());
    ASSERT_TRUE(eval.Run(&db).ok());

    for (const auto& [pred, facts] : df.predicates) {
      if (!facts.possibly_nonempty) {
        EXPECT_TRUE(db.facts(pred).empty())
            << pred << " proven empty but has facts";
      }
      if (facts.cardinality != kCardUnbounded) {
        EXPECT_LE(db.facts(pred).size(), facts.cardinality)
            << pred << " exceeds its static cardinality bound";
      }
    }
  }
}

// ---------------------------------------------------------------------
// Optimizer units.
// ---------------------------------------------------------------------

TEST(OptimizerTest, FoldsConstantAssignmentsAndGuards) {
  Database db;
  db.Insert("e", Tuple({Value::Int(1), Value::Int(2)}));
  Program program = Parse("p(X, Z) :- e(X, Y), Z = 2 + 3, 1 < 2.");
  OptimizeResult r = OptimizeProgram(program, "p", SeedsOf(db));
  EXPECT_EQ(r.report.folded_assignments, 1u);
  EXPECT_EQ(r.report.folded_comparisons, 1u);
  // The rule now heads a constant: p(X, 5) :- e(X, Y).
  bool found = false;
  for (const Rule& rule : r.program.rules) {
    if (rule.head.predicate != "p") continue;
    found = true;
    ASSERT_EQ(rule.head.terms.size(), 2u);
    ASSERT_TRUE(rule.head.terms[1].is_constant());
    EXPECT_EQ(rule.head.terms[1].value(), Value::Int(5));
    for (const Literal& lit : rule.body) {
      EXPECT_NE(lit.kind, Literal::Kind::kAssignment);
      EXPECT_NE(lit.kind, Literal::Kind::kComparison);
    }
  }
  EXPECT_TRUE(found);
}

TEST(OptimizerTest, AtomBoundAssignmentsAreNotFolded) {
  // Z also appears in a positive atom, so the fold conservatively
  // leaves the assignment in place. (The engine hoists the ready
  // constant assignment before the atom, binding Z = Int(2); the atom
  // then matches exactly, so only the Int(2) fact survives — and the
  // optimized program must agree with the oracle on that either way.)
  Database db;
  db.Insert("e", Tuple({Value::Double(2.0)}));
  db.Insert("e", Tuple({Value::Int(2)}));
  Program program = Parse("p(Z) :- e(Z), Z = 2.");
  OptimizeResult r = OptimizeProgram(program, "p", SeedsOf(db),
                                     OptimizerOptions{.magic_sets = false});
  EXPECT_EQ(r.report.folded_assignments, 0u);

  Database oracle_db = db;
  Result<std::vector<Tuple>> expected =
      Query(program, &oracle_db, "p", EvalOptions{});
  Database run = db;
  Result<std::vector<Tuple>> actual =
      Query(r.program, &run, "p", EvalOptions{});
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual.value(), expected.value());
  ASSERT_EQ(expected.value().size(), 1u);
  EXPECT_EQ(expected.value()[0].at(0), Value::Int(2));
}

TEST(OptimizerTest, EliminatesDeadAndUnreachableRules) {
  Database db;
  db.Insert("e", Tuple({Value::Int(1), Value::Int(2)}));
  Program program = Parse(
      "p(X, Y) :- e(X, Y).\n"
      "p(X, Y) :- nothing(X, Y).\n"       // dead: nothing is empty
      "other(X) :- e(X, Y).\n");          // unreachable from goal p
  OptimizeResult r = OptimizeProgram(program, "p", SeedsOf(db));
  EXPECT_EQ(r.report.dead_rules, 1u);
  EXPECT_EQ(r.report.unreachable_rules, 1u);
  for (const Rule& rule : r.program.rules) {
    EXPECT_NE(rule.head.predicate, "other");
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kAtom) {
        EXPECT_NE(lit.atom.predicate, "nothing");
      }
    }
  }
}

TEST(OptimizerTest, MagicSetsSpecializeBoundRecursion) {
  Database db;
  for (int i = 0; i < 50; ++i) {
    db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  Program program = Parse(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
      "q(Y) :- tc(1, Y).");
  OptimizeResult r = OptimizeProgram(program, "q", SeedsOf(db));
  EXPECT_TRUE(r.report.magic_applied) << r.report.magic_fallback;
  EXPECT_GT(r.report.magic_rules, 0u);
  EXPECT_GT(r.report.specialized_rules, 0u);

  // The rewritten program is valid, stratifiable, and derives exactly
  // the oracle's goal facts.
  EXPECT_TRUE(r.program.Validate().ok());
  EXPECT_TRUE(Stratify(r.program).ok());
  Database oracle_db = db;
  Result<std::vector<Tuple>> expected =
      Query(program, &oracle_db, "q", EvalOptions{});
  Database opt_db = db;
  Result<std::vector<Tuple>> actual =
      Query(r.program, &opt_db, "q", EvalOptions{});
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual.value(), expected.value());
  EXPECT_EQ(expected.value().size(), 49u);  // 2..50 reachable from 1

  // And it does measurably less join work: full tc is O(n^2) pairs,
  // the demanded slice is the single chain from 1.
  EvalStats full_stats, magic_stats;
  Database full_db = db;
  Evaluator full(program, EvalOptions{});
  ASSERT_TRUE(full.Prepare().ok());
  ASSERT_TRUE(full.Run(&full_db, &full_stats).ok());
  Database magic_db = db;
  Evaluator magic(r.program, EvalOptions{});
  ASSERT_TRUE(magic.Prepare().ok());
  ASSERT_TRUE(magic.Run(&magic_db, &magic_stats).ok());
  EXPECT_LT(magic_stats.facts_derived, full_stats.facts_derived);
}

TEST(OptimizerTest, MagicSetsBridgeMixedEdbIdbPredicates) {
  // tc holds stored facts AND is derived by rules; the specialized copy
  // must still see the stored slice.
  Database db;
  db.Insert("edge", Tuple({Value::Int(1), Value::Int(2)}));
  db.Insert("tc", Tuple({Value::Int(1), Value::Int(9)}));  // stored extra
  Program program = Parse(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
      "q(Y) :- tc(1, Y).");
  Database oracle_db = db;
  Result<std::vector<Tuple>> expected =
      Query(program, &oracle_db, "q", EvalOptions{});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(expected.value().size(), 2u);  // 2 (edge) and 9 (stored)

  EvalOptions optimized;
  optimized.planner.optimize = true;
  Database opt_db = db;
  Result<std::vector<Tuple>> actual =
      Query(program, &opt_db, "q", optimized);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual.value(), expected.value());
}

TEST(OptimizerTest, NegatedCalleesKeepFullExtension) {
  Database db;
  for (int i = 0; i < 5; ++i) db.Insert("node", Tuple({Value::Int(i)}));
  db.Insert("edge", Tuple({Value::Int(0), Value::Int(1)}));
  db.Insert("src", Tuple({Value::Int(0)}));
  Program program = Parse(
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), not reach(X).");
  Database oracle_db = db;
  Result<std::vector<Tuple>> expected =
      Query(program, &oracle_db, "unreach", EvalOptions{});
  EvalOptions optimized;
  optimized.planner.optimize = true;
  Database opt_db = db;
  Result<std::vector<Tuple>> actual =
      Query(program, &opt_db, "unreach", optimized);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual.value(), expected.value());
  EXPECT_EQ(actual.value().size(), 3u);  // nodes 2, 3, 4
}

TEST(OptimizerTest, ReportSummaryMentionsEachRewrite) {
  Database db;
  db.Insert("e", Tuple({Value::Int(1), Value::Int(2)}));
  Program program = Parse(
      "p(X, Z) :- e(X, Y), Z = 1 + 1.\n"
      "dead(X, Y) :- nothing(X, Y).\n");
  OptimizeResult r = OptimizeProgram(program, "p", SeedsOf(db));
  std::string summary = r.report.Summary();
  EXPECT_NE(summary.find("assignment"), std::string::npos);
  EXPECT_NE(summary.find("dead"), std::string::npos);
}

// ---------------------------------------------------------------------
// Planner priors.
// ---------------------------------------------------------------------

TEST(PlannerPriorTest, PriorsOrderEmptyRelations) {
  // Both IDB relations are empty at plan time; with priors the planner
  // must place the small one first and record the prior it used.
  Program program = Parse("j(X, Z) :- big(X, Y), small(Y, Z).");
  Database db;  // both empty
  auto priors = std::make_shared<const std::map<std::string, size_t>>(
      std::map<std::string, size_t>{{"big", 10000}, {"small", 4}});
  PlannerOptions options;
  options.priors = priors;
  std::vector<LiteralPlan> plan;
  std::vector<size_t> order =
      PlanBodyOrder(program.rules[0], &db, options, &plan);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // small first
  EXPECT_EQ(plan[0].static_prior, 4u);
  EXPECT_GT(plan[0].estimated_cost, 0u);

  // Without priors both cost 0 and declared order wins.
  PlannerOptions no_priors;
  std::vector<size_t> legacy =
      PlanBodyOrder(program.rules[0], &db, no_priors, nullptr);
  EXPECT_EQ(legacy[0], 0u);
}

// ---------------------------------------------------------------------
// Property test (satellite): optimizer output always re-validates and
// re-stratifies, under both open- and closed-world assumptions, across
// 500 random programs x all goals.
// ---------------------------------------------------------------------

class OptimizerValidityProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Shards, OptimizerValidityProperty,
                         ::testing::Range(0, 25));

TEST_P(OptimizerValidityProperty, OutputRevalidatesAcrossRandomPrograms) {
  constexpr int kSeedsPerShard = 20;
  analysis::ProgramAnalyzer analyzer;
  for (int s = 0; s < kSeedsPerShard; ++s) {
    int seed = GetParam() * kSeedsPerShard + s;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    Database edb = RandomEdb(&rng);
    Result<Program> program = Parser::Parse(RandomProgram(&rng));
    ASSERT_TRUE(program.ok());
    EdbSeeds seeds = SeedsFromDatabase(edb);

    for (const std::string& goal : RandomProgramGoals()) {
      SCOPED_TRACE("goal=" + goal);
      OptimizeResult r = OptimizeProgram(program.value(), goal, seeds);
      // Never emits an unsafe or unstratifiable program.
      EXPECT_TRUE(r.program.Validate().ok());
      EXPECT_TRUE(Stratify(r.program).ok());
      // The full analyzer agrees: no safety/stratification errors.
      analysis::AnalysisReport report = analyzer.Analyze(r.program);
      for (const auto& d : report.diagnostics) {
        if (d.severity != analysis::Severity::kError) continue;
        EXPECT_TRUE(d.check_id.rfind("safety/", 0) != 0 &&
                    d.check_id.rfind("stratification/", 0) != 0)
            << d.check_id << ": " << d.message;
      }
    }
  }
}

}  // namespace
}  // namespace vada::datalog::dataflow
