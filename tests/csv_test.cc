#include <gtest/gtest.h>

#include "kb/csv.h"

namespace vada {
namespace {

TEST(CsvTest, ParsesHeaderAndTypes) {
  Result<Relation> r = ParseCsv("a,b,c\n1,2.5,hello\n", "t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Relation& rel = r.value();
  EXPECT_EQ(rel.schema().AttributeNames(),
            (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.rows()[0].at(0), Value::Int(1));
  EXPECT_EQ(rel.rows()[0].at(1), Value::Double(2.5));
  EXPECT_EQ(rel.rows()[0].at(2), Value::String("hello"));
}

TEST(CsvTest, EmptyCellsBecomeNulls) {
  Result<Relation> r = ParseCsv("a,b\n1,\n,2\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows()[0].at(1), Value::Null());
  EXPECT_EQ(r.value().rows()[1].at(0), Value::Null());
}

TEST(CsvTest, QuotedFieldsWithSeparatorsAndQuotes) {
  Result<Relation> r =
      ParseCsv("a,b\n\"x, y\",\"he said \"\"hi\"\"\"\n", "t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows()[0].at(0), Value::String("x, y"));
  EXPECT_EQ(r.value().rows()[0].at(1), Value::String("he said \"hi\""));
}

TEST(CsvTest, QuotedNewlineInsideField) {
  Result<Relation> r = ParseCsv("a\n\"line1\nline2\"\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows()[0].at(0), Value::String("line1\nline2"));
}

TEST(CsvTest, CrLfLineEndings) {
  Result<Relation> r = ParseCsv("a,b\r\n1,2\r\n", "t");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value().rows()[0].at(1), Value::Int(2));
}

TEST(CsvTest, NoHeaderGeneratesColumnNames) {
  CsvOptions opts;
  opts.has_header = false;
  Result<Relation> r = ParseCsv("1,2\n", "t", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().schema().AttributeNames(),
            (std::vector<std::string>{"c0", "c1"}));
}

TEST(CsvTest, NoTypeInference) {
  CsvOptions opts;
  opts.infer_types = false;
  Result<Relation> r = ParseCsv("a\n42\n", "t", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows()[0].at(0), Value::String("42"));
}

TEST(CsvTest, RaggedRowFails) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n", "t").ok());
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n", "t").ok());
}

TEST(CsvTest, EmptyTextFails) { EXPECT_FALSE(ParseCsv("", "t").ok()); }

TEST(CsvTest, RoundTrip) {
  Relation rel(Schema::Untyped("t", {"name", "price"}));
  ASSERT_TRUE(
      rel.Insert(Tuple({Value::String("a, b"), Value::Int(10)})).ok());
  ASSERT_TRUE(rel.Insert(Tuple({Value::Null(), Value::Double(1.5)})).ok());
  std::string csv = ToCsv(rel);
  Result<Relation> back = ParseCsv(csv, "t");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value().rows()[0].at(0), Value::String("a, b"));
  EXPECT_EQ(back.value().rows()[0].at(1), Value::Int(10));
  EXPECT_EQ(back.value().rows()[1].at(0), Value::Null());
}

TEST(CsvTest, FileRoundTrip) {
  Relation rel(Schema::Untyped("t", {"x"}));
  ASSERT_TRUE(rel.Insert(Tuple({Value::Int(7)})).ok());
  std::string path = testing::TempDir() + "/vada_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(rel, path).ok());
  Result<Relation> back = ReadCsvFile(path, "t");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().rows()[0].at(0), Value::Int(7));
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/nope.csv", "t").ok());
}

}  // namespace
}  // namespace vada
