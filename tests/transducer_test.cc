#include <gtest/gtest.h>

#include <memory>

#include "transducer/network.h"
#include "transducer/transducer.h"

namespace vada {
namespace {

/// A transducer that copies facts from `from` to `to` (idempotent).
std::unique_ptr<Transducer> CopyTransducer(const std::string& name,
                                           const std::string& activity,
                                           const std::string& from,
                                           const std::string& to) {
  std::string dep = "ready() :- sys_relation_nonempty(\"" + from + "\").";
  return std::make_unique<FunctionTransducer>(
      name, activity, dep, [from, to](KnowledgeBase* kb) -> Status {
        const Relation* src = kb->FindRelation(from);
        if (src == nullptr) return Status::OK();
        Relation out(Schema(to, src->schema().attributes()));
        for (const Tuple& row : src->rows()) {
          VADA_RETURN_IF_ERROR(out.InsertUnchecked(row));
        }
        return kb->ReplaceRelationIfChanged(out);
      });
}

KnowledgeBase SeedKb() {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("a", {"x"})).ok());
  EXPECT_TRUE(kb.Assert("a", {Value::Int(1)}).ok());
  EXPECT_TRUE(kb.Assert("a", {Value::Int(2)}).ok());
  return kb;
}

TEST(RegistryTest, RejectsDuplicatesAndNull) {
  TransducerRegistry registry;
  ASSERT_TRUE(registry.Add(CopyTransducer("t1", "act", "a", "b")).ok());
  EXPECT_EQ(registry.Add(CopyTransducer("t1", "act", "a", "c")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(registry.Add(nullptr).ok());
  EXPECT_NE(registry.Find("t1"), nullptr);
  EXPECT_EQ(registry.Find("nope"), nullptr);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"t1"}));
}

TEST(ControlFactsTest, DescribeRelations) {
  KnowledgeBase kb = SeedKb();
  kb.catalog().SetRole("a", RelationRole::kSource);
  ASSERT_TRUE(NetworkTransducer::SyncControlFacts(&kb).ok());
  const Relation* roles = kb.FindRelation("sys_relation_role");
  ASSERT_NE(roles, nullptr);
  EXPECT_TRUE(roles->Contains(
      Tuple({Value::String("a"), Value::String("source")})));
  const Relation* nonempty = kb.FindRelation("sys_relation_nonempty");
  ASSERT_NE(nonempty, nullptr);
  EXPECT_TRUE(nonempty->Contains(Tuple({Value::String("a")})));
  const Relation* attrs = kb.FindRelation("sys_relation_attribute");
  ASSERT_NE(attrs, nullptr);
  EXPECT_TRUE(
      attrs->Contains(Tuple({Value::String("a"), Value::String("x")})));
}

TEST(ControlFactsTest, SyncIsIdempotent) {
  KnowledgeBase kb = SeedKb();
  ASSERT_TRUE(NetworkTransducer::SyncControlFacts(&kb).ok());
  uint64_t version = kb.global_version();
  ASSERT_TRUE(NetworkTransducer::SyncControlFacts(&kb).ok());
  EXPECT_EQ(kb.global_version(), version);
}

TEST(ControlFactsTest, SysRelationsAreNotDescribed) {
  KnowledgeBase kb = SeedKb();
  // Control relations must never describe themselves (or any other sys_*
  // relation, e.g. sys_transducer_failure): that would make every sync
  // change the KB and the orchestration would never reach fixpoint.
  ASSERT_TRUE(
      kb.CreateRelation(Schema::Untyped("sys_custom", {"k"})).ok());
  ASSERT_TRUE(kb.Insert("sys_custom", {Value::String("v")}).ok());
  ASSERT_TRUE(NetworkTransducer::SyncControlFacts(&kb).ok());
  uint64_t version = kb.global_version();
  ASSERT_TRUE(NetworkTransducer::SyncControlFacts(&kb).ok());
  EXPECT_EQ(kb.global_version(), version);
  const Relation* nonempty = kb.FindRelation("sys_relation_nonempty");
  ASSERT_NE(nonempty, nullptr);
  for (const Tuple& row : nonempty->rows()) {
    EXPECT_EQ(row.at(0).string_value().rfind("sys_", 0), std::string::npos)
        << "sys_ relation leaked into control facts: "
        << row.at(0).string_value();
  }
  const Relation* attrs = kb.FindRelation("sys_relation_attribute");
  ASSERT_NE(attrs, nullptr);
  for (const Tuple& row : attrs->rows()) {
    EXPECT_EQ(row.at(0).string_value().rfind("sys_", 0), std::string::npos);
  }
}

TEST(ControlFactsTest, SyncTracksKbChangesWithOneBump) {
  KnowledgeBase kb = SeedKb();
  ASSERT_TRUE(NetworkTransducer::SyncControlFacts(&kb).ok());
  const Relation* nonempty = kb.FindRelation("sys_relation_nonempty");
  ASSERT_NE(nonempty, nullptr);
  EXPECT_FALSE(nonempty->Contains(Tuple({Value::String("fresh")})));

  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("fresh", {"y"})).ok());
  ASSERT_TRUE(kb.Insert("fresh", {Value::Int(1)}).ok());
  uint64_t version = kb.global_version();
  ASSERT_TRUE(NetworkTransducer::SyncControlFacts(&kb).ok());
  // Replace-if-changed: changed control relations are updated…
  nonempty = kb.FindRelation("sys_relation_nonempty");
  EXPECT_TRUE(nonempty->Contains(Tuple({Value::String("fresh")})));
  EXPECT_GT(kb.global_version(), version);
  // …and a second sync with nothing new is a no-op again.
  version = kb.global_version();
  ASSERT_TRUE(NetworkTransducer::SyncControlFacts(&kb).ok());
  EXPECT_EQ(kb.global_version(), version);
}

TEST(NetworkTest, ChainsTransducersToFixpoint) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  ASSERT_TRUE(registry.Add(CopyTransducer("ab", "phase1", "a", "b")).ok());
  ASSERT_TRUE(registry.Add(CopyTransducer("bc", "phase2", "b", "c")).ok());
  NetworkTransducer orchestrator(
      &registry, std::make_unique<ActivityPriorityPolicy>(
                     std::vector<std::string>{"phase1", "phase2"}));
  OrchestrationStats stats;
  ASSERT_TRUE(orchestrator.Run(&kb, &stats).ok());
  const Relation* c = kb.FindRelation("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->size(), 2u);
  EXPECT_GE(stats.steps, 2u);
  EXPECT_GE(stats.effective_steps, 2u);
}

TEST(NetworkTest, DependencyGatesExecution) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("a", {"x"})).ok());  // empty!
  TransducerRegistry registry;
  ASSERT_TRUE(registry.Add(CopyTransducer("ab", "act", "a", "b")).ok());
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>());
  OrchestrationStats stats;
  ASSERT_TRUE(orchestrator.Run(&kb, &stats).ok());
  EXPECT_EQ(stats.steps, 0u);
  EXPECT_EQ(kb.FindRelation("b"), nullptr);
}

TEST(NetworkTest, IsSatisfiedExposed) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  ASSERT_TRUE(registry.Add(CopyTransducer("ab", "act", "a", "b")).ok());
  ASSERT_TRUE(registry.Add(CopyTransducer("cd", "act", "c", "d")).ok());
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>());
  Result<bool> ready_ab =
      orchestrator.IsSatisfied(*registry.Find("ab"), &kb);
  ASSERT_TRUE(ready_ab.ok());
  EXPECT_TRUE(ready_ab.value());
  Result<bool> ready_cd =
      orchestrator.IsSatisfied(*registry.Find("cd"), &kb);
  ASSERT_TRUE(ready_cd.ok());
  EXPECT_FALSE(ready_cd.value());
}

TEST(NetworkTest, NewFactsReenableTransducers) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  ASSERT_TRUE(registry.Add(CopyTransducer("ab", "act", "a", "b")).ok());
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>());
  ASSERT_TRUE(orchestrator.Run(&kb).ok());
  EXPECT_EQ(kb.FindRelation("b")->size(), 2u);
  // New source fact arrives (the pay-as-you-go pattern).
  ASSERT_TRUE(kb.Assert("a", {Value::Int(3)}).ok());
  ASSERT_TRUE(orchestrator.Run(&kb).ok());
  EXPECT_EQ(kb.FindRelation("b")->size(), 3u);
}

TEST(NetworkTest, ActivityPriorityOrdersExecution) {
  KnowledgeBase kb = SeedKb();
  // Both depend on "a"; priority must run "first_act" before "second_act".
  TransducerRegistry registry;
  ASSERT_TRUE(registry.Add(CopyTransducer("t2", "second_act", "a", "c")).ok());
  ASSERT_TRUE(registry.Add(CopyTransducer("t1", "first_act", "a", "b")).ok());
  NetworkTransducer orchestrator(
      &registry, std::make_unique<ActivityPriorityPolicy>(
                     std::vector<std::string>{"first_act", "second_act"}));
  ASSERT_TRUE(orchestrator.Run(&kb).ok());
  const ExecutionTrace& trace = orchestrator.trace();
  ASSERT_GE(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].transducer, "t1");
}

TEST(NetworkTest, NonIdempotentTransducerHitsStepCap) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  // Pathological: appends a new fact every run.
  int counter = 0;
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "grower", "act",
                      "ready() :- sys_relation_nonempty(\"a\").",
                      [&counter](KnowledgeBase* kb) {
                        return kb->Assert("a", {Value::Int(1000 + counter++)});
                      }))
                  .ok());
  OrchestratorOptions opts;
  opts.max_steps = 10;
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 opts);
  Status s = orchestrator.Run(&kb);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("max_steps"), std::string::npos);
}

TEST(NetworkTest, TransducerErrorSurfacesWithName) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "broken", "act",
                      "ready() :- sys_relation_nonempty(\"a\").",
                      [](KnowledgeBase*) {
                        return Status::Internal("boom");
                      }))
                  .ok());
  // Default fault tolerance degrades gracefully; opt into fail-fast to
  // check that errors still surface with the transducer's name.
  OrchestratorOptions options;
  options.failure_policy.max_attempts = 1;
  options.failure_policy.on_failure_exhausted = FailureAction::kAbort;
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  Status s = orchestrator.Run(&kb);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);  // code preserved, not wrapped
  EXPECT_NE(s.message().find("broken"), std::string::npos);
}

TEST(NetworkTest, BadDependencySyntaxSurfaces) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "bad_dep", "act", "ready( :- nope",
                      [](KnowledgeBase*) { return Status::OK(); }))
                  .ok());
  OrchestratorOptions options;
  options.failure_policy.on_failure_exhausted = FailureAction::kAbort;
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  Status s = orchestrator.Run(&kb);
  EXPECT_FALSE(s.ok());
  // The parse error's code must survive (no InvalidArgument laundering).
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("bad_dep"), std::string::npos);
}

TEST(VadalogTransducerTest, DerivesAndAssertsFacts) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("edge", {"f", "t"})).ok());
  ASSERT_TRUE(kb.Assert("edge", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(kb.Assert("edge", {Value::Int(2), Value::Int(3)}).ok());
  VadalogTransducer t(
      "closure", "reasoning", "ready() :- sys_relation_nonempty(\"edge\").",
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).",
      {"tc"});
  ASSERT_TRUE(t.Execute(&kb).ok());
  const Relation* tc = kb.FindRelation("tc");
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tc->size(), 3u);
  // Idempotent: re-running adds nothing.
  uint64_t version = kb.global_version();
  ASSERT_TRUE(t.Execute(&kb).ok());
  EXPECT_EQ(kb.global_version(), version);
}

TEST(VadalogTransducerTest, BadProgramReportsError) {
  KnowledgeBase kb;
  VadalogTransducer t("bad", "act", "ready() :- x(Y).", "p(X :- nope",
                      {"p"});
  EXPECT_FALSE(t.Execute(&kb).ok());
}

TEST(TraceTest, CountsAndRendering) {
  ExecutionTrace trace;
  TraceEvent e1;
  e1.step = 0;
  e1.transducer = "alpha";
  e1.activity = "act";
  e1.changed_kb = true;
  TraceEvent e2;
  e2.step = 1;
  e2.transducer = "alpha";
  e2.activity = "act";
  e2.changed_kb = false;
  trace.Add(e1);
  trace.Add(e2);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.EffectiveSteps(), 1u);
  EXPECT_EQ(trace.ExecutionCounts().at("alpha"), 2u);
  EXPECT_NE(trace.ToString().find("alpha"), std::string::npos);
}

TEST(TraceTest, RenderingIncludesPolicyAndFactDeltas) {
  ExecutionTrace trace;
  TraceEvent e;
  e.step = 0;
  e.transducer = "alpha";
  e.activity = "act";
  e.policy = "activity_priority";
  e.changed_kb = true;
  e.facts_added = 12;
  e.facts_removed = 3;
  trace.Add(e);

  std::string text = trace.ToString();
  EXPECT_NE(text.find("+12/-3"), std::string::npos) << text;
  EXPECT_NE(text.find("policy: activity_priority"), std::string::npos) << text;

  std::string md = trace.ToMarkdown();
  EXPECT_NE(md.find("| policy |"), std::string::npos);
  EXPECT_NE(md.find("| +facts | -facts |"), std::string::npos);
  EXPECT_NE(md.find("| activity_priority |"), std::string::npos);
  EXPECT_NE(md.find("| 12 | 3 |"), std::string::npos) << md;
}

}  // namespace
}  // namespace vada
