#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/log_sinks.h"

namespace vada {
namespace {

/// Restores the default sink configuration and level when a test ends,
/// so sink-swapping tests cannot leak state into later ones.
class SinkGuard {
 public:
  SinkGuard() : level_(Logger::level()) {}
  ~SinkGuard() {
    Logger::ResetSinks();
    Logger::SetLevel(level_);
  }

 private:
  LogLevel level_;
};

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = Logger::level();
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  Logger::SetLevel(before);
  EXPECT_EQ(Logger::level(), before);
}

TEST(LoggingTest, MacroBuildsMessageWithoutCrashing) {
  LogLevel before = Logger::level();
  // Below threshold: the message is built but suppressed.
  Logger::SetLevel(LogLevel::kError);
  VADA_LOG(kInfo, "test") << "suppressed " << 42;
  // At threshold: emitted to stderr (not captured; just must not crash).
  VADA_LOG(kError, "test") << "emitted " << 1.5;
  Logger::SetLevel(before);
}

TEST(LoggingTest, RingBufferSinkCapturesRecords) {
  SinkGuard guard;
  auto ring = std::make_shared<obs::RingBufferLogSink>();
  Logger::ClearSinks();
  Logger::AddSink(ring);
  Logger::SetLevel(LogLevel::kInfo);

  VADA_LOG(kInfo, "orchestrator") << "step " << 3;
  VADA_LOG(kDebug, "orchestrator") << "suppressed";
  VADA_LOG(kError, "datalog") << "boom";

  std::vector<LogRecord> records = ring->records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, LogLevel::kInfo);
  EXPECT_EQ(records[0].component, "orchestrator");
  EXPECT_EQ(records[0].message, "step 3");
  EXPECT_GT(records[0].unix_nanos, 0);
  EXPECT_EQ(records[1].level, LogLevel::kError);
  EXPECT_EQ(records[1].component, "datalog");
}

TEST(LoggingTest, RingBufferSinkEvictsOldest) {
  SinkGuard guard;
  auto ring = std::make_shared<obs::RingBufferLogSink>(3);
  Logger::ClearSinks();
  Logger::AddSink(ring);
  Logger::SetLevel(LogLevel::kInfo);

  for (int i = 0; i < 5; ++i) {
    VADA_LOG(kInfo, "test") << "msg " << i;
  }
  std::vector<LogRecord> records = ring->records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().message, "msg 2");
  EXPECT_EQ(records.back().message, "msg 4");
}

TEST(LoggingTest, JsonlSinkEmitsOneValidObjectPerLine) {
  SinkGuard guard;
  std::ostringstream out;
  Logger::ClearSinks();
  Logger::AddSink(std::make_shared<obs::JsonlLogSink>(&out));
  Logger::SetLevel(LogLevel::kInfo);

  VADA_LOG(kWarning, "kb") << "version \"bump\"\nwith newline";
  VADA_LOG(kInfo, "session") << "run done";

  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    std::string error;
    EXPECT_TRUE(obs::JsonLint(line, &error)) << line << ": " << error;
  }
  EXPECT_EQ(count, 2);
  EXPECT_NE(out.str().find("\"level\":\"WARN\""), std::string::npos);
  EXPECT_NE(out.str().find("\"component\":\"kb\""), std::string::npos);
  // The raw newline in the message must have been escaped, not emitted.
  EXPECT_NE(out.str().find("\\nwith newline"), std::string::npos);
}

TEST(LoggingTest, ConcurrentLoggingKeepsRecordsWhole) {
  SinkGuard guard;
  auto ring = std::make_shared<obs::RingBufferLogSink>(4096);
  Logger::ClearSinks();
  Logger::AddSink(ring);
  Logger::SetLevel(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        VADA_LOG(kInfo, "worker") << "thread " << t << " message " << i;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::vector<LogRecord> records = ring->records();
  ASSERT_EQ(records.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (const LogRecord& r : records) {
    // Whole lines: every record begins with the full prefix and was not
    // interleaved with another thread's write.
    EXPECT_EQ(r.component, "worker");
    EXPECT_EQ(r.message.rfind("thread ", 0), 0u) << r.message;
    EXPECT_NE(r.thread_id, 0u);
  }
}

TEST(LoggingTest, ClearSinksDropsMessages) {
  SinkGuard guard;
  auto ring = std::make_shared<obs::RingBufferLogSink>();
  Logger::ClearSinks();
  Logger::SetLevel(LogLevel::kInfo);
  VADA_LOG(kInfo, "test") << "discarded";
  Logger::AddSink(ring);
  VADA_LOG(kInfo, "test") << "captured";
  std::vector<LogRecord> records = ring->records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].message, "captured");
}

}  // namespace
}  // namespace vada
