#include <gtest/gtest.h>

#include "common/logging.h"

namespace vada {
namespace {

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = Logger::level();
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  Logger::SetLevel(before);
  EXPECT_EQ(Logger::level(), before);
}

TEST(LoggingTest, MacroBuildsMessageWithoutCrashing) {
  LogLevel before = Logger::level();
  // Below threshold: the message is built but suppressed.
  Logger::SetLevel(LogLevel::kError);
  VADA_LOG(kInfo, "test") << "suppressed " << 42;
  // At threshold: emitted to stderr (not captured; just must not crash).
  VADA_LOG(kError, "test") << "emitted " << 1.5;
  Logger::SetLevel(before);
}

}  // namespace
}  // namespace vada
