// EXPLAIN / EXPLAIN ANALYZE (DESIGN.md §5g): plan shape, the
// reconciliation invariant between per-literal actuals and the
// evaluator's join-work counters, parallel bit-identity of the
// attribution, and the WranglingSession::ExplainProgram facade.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/explain.h"
#include "datalog/parser.h"
#include "kb/relation.h"
#include "kb/schema.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "wrangler/session.h"

namespace vada::datalog {
namespace {

Relation MakeEdges(const std::string& name, int n) {
  Relation edges(Schema::Untyped(name, {"src", "dst"}));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(
        edges.Insert(Tuple{Value::Int(i), Value::Int((i + 1) % n)}).ok());
  }
  return edges;
}

Evaluator MakeEvaluator(const std::string& source,
                        EvalOptions options = EvalOptions()) {
  Result<Program> program = Parser::Parse(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return Evaluator(std::move(program).value(), std::move(options));
}

const std::string kTransitiveClosure =
    "tc(X,Y) :- edge(X,Y).\n"
    "tc(X,Z) :- edge(X,Y), tc(Y,Z).\n";

TEST(ExplainTest, PlainExplainShowsPlanWithoutEvaluating) {
  Database db;
  db.LoadRelation(MakeEdges("edge", 64));
  Evaluator eval = MakeEvaluator(kTransitiveClosure);
  ASSERT_TRUE(eval.Prepare().ok());

  PlanExplain plan;
  ASSERT_TRUE(eval.Explain(&db, &plan).ok());

  EXPECT_FALSE(plan.analyzed);
  ASSERT_EQ(plan.strata.size(), 1u);
  EXPECT_EQ(plan.strata[0].predicates, std::vector<std::string>{"tc"});
  ASSERT_EQ(plan.strata[0].rules.size(), 2u);

  // The recursive rule: the planner starts from tc (estimated empty
  // before the run) and joins into edge with its first column bound.
  const RuleExplain& recursive = plan.strata[0].rules[1];
  ASSERT_EQ(recursive.literals.size(), 2u);
  EXPECT_EQ(recursive.literals[0].body_index, 1u);
  EXPECT_EQ(recursive.literals[0].kind, "atom");
  EXPECT_EQ(recursive.literals[0].access, "scan");
  const LiteralExplain& probe = recursive.literals[1];
  EXPECT_EQ(probe.body_index, 0u);
  EXPECT_EQ(probe.bound_positions, std::vector<size_t>{1});  // Y is col 1
  EXPECT_EQ(probe.access, "index");  // 64 facts >= min_index_size
  // The bound estimate must beat a full scan of the 64 edges.
  EXPECT_GT(probe.estimated_cost, 0u);
  EXPECT_LT(probe.estimated_cost, 64u);

  // Nothing ran: no facts were derived, no actuals were recorded.
  EXPECT_EQ(db.FactCount("tc"), 0u);
  LiteralRuntime totals = plan.Totals();
  EXPECT_EQ(totals.scan_probes, 0u);
  EXPECT_EQ(totals.index_probes + totals.index_candidates, 0u);

  EXPECT_NE(plan.ToText().find("plan\n"), std::string::npos);
  EXPECT_NE(plan.ToText().find("access=index"), std::string::npos);
  std::string error;
  EXPECT_TRUE(obs::JsonLint(plan.ToJson(), &error)) << error;
}

// The reconciliation invariant: EXPLAIN ANALYZE's per-literal actuals,
// summed over the plan, equal the run's EvalStats join counters AND the
// vada_datalog_* counters a metrics registry records — same sites, same
// chunk-dedup rule, no double counting.
TEST(ExplainTest, AnalyzeTotalsReconcileWithEvalStatsAndMetrics) {
  obs::MetricsRegistry registry;
  EvalOptions options;
  options.metrics = &registry;

  Database db;
  db.LoadRelation(MakeEdges("edge", 64));
  Evaluator eval = MakeEvaluator(kTransitiveClosure, options);
  ASSERT_TRUE(eval.Prepare().ok());

  PlanExplain plan;
  EvalStats stats;
  ASSERT_TRUE(eval.Explain(&db, &plan, /*analyze=*/true, &stats).ok());

  EXPECT_TRUE(plan.analyzed);
  EXPECT_GT(stats.facts_derived, 0u);
  EXPECT_EQ(db.FactCount("tc"), 64u * 64u);

  const LiteralRuntime totals = plan.Totals();
  EXPECT_GT(totals.scan_probes + totals.index_probes, 0u);
  EXPECT_EQ(totals.scan_probes, stats.join_probes);
  EXPECT_EQ(totals.index_probes, stats.index_probes);
  EXPECT_EQ(totals.index_candidates, stats.index_candidates);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.Value("vada_datalog_join_probes"),
                   static_cast<double>(totals.scan_probes));
  EXPECT_DOUBLE_EQ(snapshot.Value("vada_datalog_index_probes_total"),
                   static_cast<double>(totals.index_probes));
  EXPECT_DOUBLE_EQ(snapshot.Value("vada_datalog_index_candidates_total"),
                   static_cast<double>(totals.index_candidates));

  // Rule-level attribution: applications and derived facts add up too.
  uint64_t applications = 0;
  uint64_t derived = 0;
  for (const StratumExplain& stratum : plan.strata) {
    for (const RuleExplain& rule : stratum.rules) {
      applications += rule.applications;
      derived += rule.facts_derived;
    }
  }
  EXPECT_EQ(applications, stats.rule_applications);
  EXPECT_EQ(derived, stats.facts_derived);
}

// Parallel chunked evaluation attributes the same per-literal work as
// the sequential run (merge-order determinism extends to ANALYZE).
TEST(ExplainTest, AnalyzeAttributionIsIdenticalUnderPool) {
  auto run = [](ThreadPool* pool) {
    EvalOptions options;
    options.pool = pool;
    options.parallel_chunk_threshold = 4;  // force chunk splits
    Database db;
    db.LoadRelation(MakeEdges("edge", 48));
    Evaluator eval = MakeEvaluator(kTransitiveClosure, options);
    EXPECT_TRUE(eval.Prepare().ok());
    PlanExplain plan;
    EXPECT_TRUE(eval.Explain(&db, &plan, /*analyze=*/true).ok());
    return plan;
  };

  PlanExplain sequential = run(nullptr);
  ThreadPool pool(4);
  PlanExplain parallel = run(&pool);

  ASSERT_EQ(sequential.strata.size(), parallel.strata.size());
  for (size_t sx = 0; sx < sequential.strata.size(); ++sx) {
    const auto& seq_rules = sequential.strata[sx].rules;
    const auto& par_rules = parallel.strata[sx].rules;
    ASSERT_EQ(seq_rules.size(), par_rules.size());
    for (size_t ri = 0; ri < seq_rules.size(); ++ri) {
      EXPECT_EQ(seq_rules[ri].facts_derived, par_rules[ri].facts_derived);
      ASSERT_EQ(seq_rules[ri].literals.size(), par_rules[ri].literals.size());
      for (size_t li = 0; li < seq_rules[ri].literals.size(); ++li) {
        const LiteralRuntime& a = seq_rules[ri].literals[li].actual;
        const LiteralRuntime& b = par_rules[ri].literals[li].actual;
        EXPECT_EQ(a.scan_probes, b.scan_probes) << ri << "/" << li;
        EXPECT_EQ(a.index_probes, b.index_probes) << ri << "/" << li;
        EXPECT_EQ(a.index_candidates, b.index_candidates) << ri << "/" << li;
      }
    }
  }
}

TEST(ExplainTest, NegationAndComparisonLiteralsAreAttributed) {
  Database db;
  db.LoadRelation(MakeEdges("edge", 8));
  Relation blocked(Schema::Untyped("blocked", {"src"}));
  ASSERT_TRUE(blocked.Insert(Tuple{Value::Int(3)}).ok());
  db.LoadRelation(blocked);

  Evaluator eval = MakeEvaluator(
      "ok(X,Y) :- edge(X,Y), not blocked(X), X < 6.\n");
  ASSERT_TRUE(eval.Prepare().ok());
  PlanExplain plan;
  ASSERT_TRUE(eval.Explain(&db, &plan, /*analyze=*/true).ok());

  ASSERT_EQ(plan.strata.size(), 1u);
  ASSERT_EQ(plan.strata[0].rules.size(), 1u);
  const RuleExplain& rule = plan.strata[0].rules[0];
  ASSERT_EQ(rule.literals.size(), 3u);
  bool saw_check = false;
  bool saw_filter = false;
  for (const LiteralExplain& lit : rule.literals) {
    if (lit.kind == "negation") {
      EXPECT_EQ(lit.access, "check");
      saw_check = true;
    }
    if (lit.kind == "comparison") {
      EXPECT_EQ(lit.access, "filter");
      saw_filter = true;
    }
  }
  EXPECT_TRUE(saw_check);
  EXPECT_TRUE(saw_filter);
  // not blocked(3) and 6,7 < 6 failing: 8 edges minus 3 survivors... the
  // exact row count is the evaluator's business; the plan must agree.
  EXPECT_EQ(rule.facts_derived, db.FactCount("ok"));
}

// ------------------------------------------------------- session facade

TEST(SessionExplainProgramTest, ExplainsAgainstKbWithoutMutatingIt) {
  WranglingSession session;
  ASSERT_TRUE(session.AddSource(MakeEdges("edge", 64)).ok());
  const uint64_t version_before = session.kb().global_version();

  Result<PlanExplain> plan = session.ExplainProgram(kTransitiveClosure);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan.value().analyzed);
  ASSERT_EQ(plan.value().strata.size(), 1u);

  Result<PlanExplain> analyzed =
      session.ExplainProgram(kTransitiveClosure, /*analyze=*/true);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_TRUE(analyzed.value().analyzed);
  LiteralRuntime totals = analyzed.value().Totals();
  EXPECT_GT(totals.scan_probes + totals.index_probes, 0u);

  // The program ran against a scratch database: the KB saw no writes and
  // holds no tc relation.
  EXPECT_EQ(session.kb().global_version(), version_before);
  EXPECT_FALSE(session.kb().GetRelation("tc").ok());
}

TEST(SessionExplainProgramTest, ParseErrorsPropagate) {
  WranglingSession session;
  Result<PlanExplain> plan = session.ExplainProgram("tc(X :- broken");
  EXPECT_FALSE(plan.ok());
}

}  // namespace
}  // namespace vada::datalog
