#include <gtest/gtest.h>

#include "datalog/lexer.h"

namespace vada::datalog {
namespace {

std::vector<TokenKind> Kinds(const std::string& src) {
  Result<std::vector<Token>> toks = Tokenize(src);
  EXPECT_TRUE(toks.ok()) << toks.status().ToString();
  std::vector<TokenKind> out;
  for (const Token& t : toks.value()) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, SimpleRuleTokens) {
  auto kinds = Kinds("p(X) :- q(X).");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kLParen,
                       TokenKind::kVariable, TokenKind::kRParen,
                       TokenKind::kImplies, TokenKind::kIdent,
                       TokenKind::kLParen, TokenKind::kVariable,
                       TokenKind::kRParen, TokenKind::kDot, TokenKind::kEnd}));
}

TEST(LexerTest, VariablesStartUppercaseOrUnderscore) {
  Result<std::vector<Token>> toks = Tokenize("X _y abc Zz");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kVariable);
  EXPECT_EQ(toks.value()[1].kind, TokenKind::kVariable);
  EXPECT_EQ(toks.value()[2].kind, TokenKind::kIdent);
  EXPECT_EQ(toks.value()[3].kind, TokenKind::kVariable);
}

TEST(LexerTest, NumbersIntAndDouble) {
  Result<std::vector<Token>> toks = Tokenize("42 2.5 1e3");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kInt);
  EXPECT_EQ(toks.value()[0].int_value, 42);
  EXPECT_EQ(toks.value()[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(toks.value()[1].double_value, 2.5);
  EXPECT_EQ(toks.value()[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(toks.value()[2].double_value, 1000.0);
}

TEST(LexerTest, NegativeLiteralInsideAtom) {
  // After '(' a minus starts a negative literal (there is no operand to
  // subtract from).
  Result<std::vector<Token>> toks = Tokenize("p(-7)");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks.value().size(), 5u);  // IDENT ( INT ) END
  EXPECT_EQ(toks.value()[2].kind, TokenKind::kInt);
  EXPECT_EQ(toks.value()[2].int_value, -7);
}

TEST(LexerTest, MinusAfterOperandIsSubtraction) {
  // "X - 3": minus must be an operator, not part of "-3".
  Result<std::vector<Token>> toks = Tokenize("X - 3");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks.value().size(), 4u);  // VAR, MINUS, INT, END
  EXPECT_EQ(toks.value()[1].kind, TokenKind::kMinus);
  EXPECT_EQ(toks.value()[2].int_value, 3);
}

TEST(LexerTest, StringsWithEscapes) {
  Result<std::vector<Token>> toks = Tokenize("\"a \\\"b\\\" c\"");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kString);
  EXPECT_EQ(toks.value()[0].text, "a \"b\" c");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"abc").ok());
}

TEST(LexerTest, CommentsIgnored) {
  auto kinds = Kinds("p(X). % trailing\n// whole line\nq(Y).");
  int idents = 0;
  for (TokenKind k : kinds) {
    if (k == TokenKind::kIdent) ++idents;
  }
  EXPECT_EQ(idents, 2);
}

TEST(LexerTest, ComparisonOperators) {
  auto kinds = Kinds("< <= > >= = != <>");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kLt, TokenKind::kLe, TokenKind::kGt,
                       TokenKind::kGe, TokenKind::kEq, TokenKind::kNe,
                       TokenKind::kNe, TokenKind::kEnd}));
}

TEST(LexerTest, NotKeyword) {
  auto kinds = Kinds("not p(X)");
  EXPECT_EQ(kinds[0], TokenKind::kNot);
}

TEST(LexerTest, LineNumbersInErrors) {
  Result<std::vector<Token>> toks = Tokenize("p(X).\n#");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, TokensCarryLineAndColumn) {
  Result<std::vector<Token>> toks = Tokenize("p(X) :- q(X).\n  r(Y).");
  ASSERT_TRUE(toks.ok());
  const std::vector<Token>& t = toks.value();
  EXPECT_EQ(t[0].line, 1);  // p
  EXPECT_EQ(t[0].col, 1);
  EXPECT_EQ(t[2].col, 3);  // X
  EXPECT_EQ(t[4].col, 6);  // :-
  EXPECT_EQ(t[5].col, 9);  // q
  // Second line: indentation counts toward the column.
  EXPECT_EQ(t[10].line, 2);  // r
  EXPECT_EQ(t[10].col, 3);
  EXPECT_EQ(t[12].col, 5);  // Y
}

TEST(LexerTest, ColumnResetsAfterCommentLines) {
  Result<std::vector<Token>> toks = Tokenize("% comment\n  p(X).");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].line, 2);
  EXPECT_EQ(toks.value()[0].col, 3);
}

TEST(LexerTest, StringTokenAnchorsAtOpeningQuote) {
  Result<std::vector<Token>> toks = Tokenize("p(\"ab\", X)");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[2].kind, TokenKind::kString);
  EXPECT_EQ(toks.value()[2].col, 3);
  EXPECT_EQ(toks.value()[4].col, 9);  // X, after the 4-char string token
}

TEST(LexerTest, NumberTokenColumn) {
  Result<std::vector<Token>> toks = Tokenize("  42 3.5");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].col, 3);
  EXPECT_EQ(toks.value()[1].col, 6);
}

TEST(LexerTest, DotAfterNumberEndsClause) {
  // "p(1)." must not lex 1. as a double.
  auto kinds = Kinds("p(1).");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kLParen, TokenKind::kInt,
                       TokenKind::kRParen, TokenKind::kDot, TokenKind::kEnd}));
}

}  // namespace
}  // namespace vada::datalog
