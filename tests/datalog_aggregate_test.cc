#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace vada::datalog {
namespace {

Program MustParse(const std::string& src) {
  Result<Program> p = Parser::Parse(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

std::vector<Tuple> MustQuery(const std::string& src, Database* db,
                             const std::string& goal) {
  Result<std::vector<Tuple>> r = Query(MustParse(src), db, goal);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

Database SalesDb() {
  Database db;
  auto add = [&db](const char* shop, int amount) {
    db.Insert("sale", Tuple({Value::String(shop), Value::Int(amount)}));
  };
  add("a", 10);
  add("a", 20);
  add("a", 30);
  add("b", 5);
  return db;
}

TEST(AggregateTest, CountPerGroup) {
  Database db = SalesDb();
  auto result = MustQuery("cnt(S, count<A>) :- sale(S, A).", &db, "cnt");
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], Tuple({Value::String("a"), Value::Int(3)}));
  EXPECT_EQ(result[1], Tuple({Value::String("b"), Value::Int(1)}));
}

TEST(AggregateTest, SumMinMaxAvg) {
  Database db = SalesDb();
  auto sum = MustQuery("s(S, sum<A>) :- sale(S, A).", &db, "s");
  EXPECT_EQ(sum[0], Tuple({Value::String("a"), Value::Int(60)}));
  Database db2 = SalesDb();
  auto mn = MustQuery("m(S, min<A>) :- sale(S, A).", &db2, "m");
  EXPECT_EQ(mn[0], Tuple({Value::String("a"), Value::Int(10)}));
  Database db3 = SalesDb();
  auto mx = MustQuery("m(S, max<A>) :- sale(S, A).", &db3, "m");
  EXPECT_EQ(mx[0], Tuple({Value::String("a"), Value::Int(30)}));
  Database db4 = SalesDb();
  auto avg = MustQuery("m(S, avg<A>) :- sale(S, A).", &db4, "m");
  EXPECT_EQ(avg[0], Tuple({Value::String("a"), Value::Double(20.0)}));
}

TEST(AggregateTest, CountsDistinctValues) {
  // Set semantics: duplicate (shop, amount) pairs collapse.
  Database db;
  db.Insert("sale", Tuple({Value::String("a"), Value::Int(10)}));
  db.Insert("sale", Tuple({Value::String("a"), Value::Int(10)}));
  auto result = MustQuery("cnt(S, count<A>) :- sale(S, A).", &db, "cnt");
  EXPECT_EQ(result[0].at(1), Value::Int(1));
}

TEST(AggregateTest, GlobalAggregateNoGroupKeys) {
  Database db = SalesDb();
  auto result = MustQuery("total(count<S>) :- sale(S, A).", &db, "total");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].at(0), Value::Int(2));  // two distinct shops
}

TEST(AggregateTest, MultipleAggregatesInOneHead) {
  Database db = SalesDb();
  auto result =
      MustQuery("stats(S, count<A>, sum<A>) :- sale(S, A).", &db, "stats");
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], Tuple({Value::String("a"), Value::Int(3),
                              Value::Int(60)}));
}

TEST(AggregateTest, AggregateOverDerivedPredicate) {
  Database db;
  db.Insert("edge", Tuple({Value::Int(1), Value::Int(2)}));
  db.Insert("edge", Tuple({Value::Int(2), Value::Int(3)}));
  db.Insert("edge", Tuple({Value::Int(1), Value::Int(3)}));
  auto result = MustQuery(
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
      "reachable_count(X, count<Y>) :- tc(X, Y).\n",
      &db, "reachable_count");
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], Tuple({Value::Int(1), Value::Int(2)}));  // 1 -> {2,3}
  EXPECT_EQ(result[1], Tuple({Value::Int(2), Value::Int(1)}));  // 2 -> {3}
}

TEST(AggregateTest, DownstreamRulesSeeAggregates) {
  Database db = SalesDb();
  auto result = MustQuery(
      "cnt(S, count<A>) :- sale(S, A).\n"
      "busy(S) :- cnt(S, N), N >= 2.\n",
      &db, "busy");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].at(0), Value::String("a"));
}

TEST(AggregateTest, SumOfDoublesStaysDouble) {
  Database db;
  db.Insert("m", Tuple({Value::String("x"), Value::Double(1.5)}));
  db.Insert("m", Tuple({Value::String("x"), Value::Double(2.0)}));
  auto result = MustQuery("s(G, sum<V>) :- m(G, V).", &db, "s");
  EXPECT_EQ(result[0].at(1), Value::Double(3.5));
}

TEST(AggregateTest, EmptyBodyYieldsNoGroups) {
  Database db;
  auto result = MustQuery("cnt(S, count<A>) :- sale(S, A).", &db, "cnt");
  EXPECT_TRUE(result.empty());
}

TEST(AggregateTest, AggregateWithComparisonInBody) {
  Database db = SalesDb();
  auto result = MustQuery(
      "cnt(S, count<A>) :- sale(S, A), A >= 20.", &db, "cnt");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], Tuple({Value::String("a"), Value::Int(2)}));
}

}  // namespace
}  // namespace vada::datalog
