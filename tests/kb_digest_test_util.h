#ifndef VADA_TESTS_KB_DIGEST_TEST_UTIL_H_
#define VADA_TESTS_KB_DIGEST_TEST_UTIL_H_

#include <string>

#include "kb/knowledge_base.h"

namespace vada {

/// Canonical rendering of a knowledge base's full logical state —
/// relation schemas, sorted rows, and catalog roles — so durability
/// tests can assert byte-identical recovery: two KBs are equivalent iff
/// their digests are equal.
inline std::string KbDigest(const KnowledgeBase& kb) {
  std::string out;
  for (const std::string& name : kb.RelationNames()) {
    const Relation* relation = kb.FindRelation(name);
    out += relation->schema().ToString();
    out += "\n";
    for (const Tuple& row : relation->SortedRows()) {
      out += "  ";
      out += row.ToString();
      out += "\n";
    }
    std::optional<RelationRole> role = kb.catalog().GetRole(name);
    out += "  role=";
    out += role.has_value() ? RelationRoleName(*role) : "(none)";
    out += "\n";
  }
  return out;
}

}  // namespace vada

#endif  // VADA_TESTS_KB_DIGEST_TEST_UTIL_H_
