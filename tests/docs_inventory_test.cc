// Doc-drift guard for the README (the operator-facing entry point):
// every CLI under tools/ and every top-level WranglerConfig knob must be
// mentioned there. The knob list is parsed out of wrangler/config.h and
// the tool list out of the tools/ directory, so adding a knob or a tool
// without documenting it fails this test — the README cannot silently
// fall behind the code the way seed-era docs did.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace vada {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Whether `word` appears in `text` delimited by non-identifier chars
/// (so "planner" does not match inside "replanner").
bool MentionsWord(const std::string& text, const std::string& word) {
  size_t pos = 0;
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while ((pos = text.find(word, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    size_t end = pos + word.size();
    bool right_ok = end == text.size() || !is_ident(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// Field names of `struct WranglerConfig { ... }` parsed from config.h:
/// for every statement line, the identifier directly before the `=` or
/// the `;`. Comments and nested braces (there are none today) excluded.
std::vector<std::string> ConfigKnobs() {
  const std::string text = ReadFile(VADA_WRANGLER_CONFIG_H);
  size_t begin = text.find("struct WranglerConfig {");
  EXPECT_NE(begin, std::string::npos)
      << "wrangler/config.h lost struct WranglerConfig";
  size_t end = text.find("\n};", begin);
  EXPECT_NE(end, std::string::npos);

  std::vector<std::string> knobs;
  std::istringstream lines(text.substr(begin, end - begin));
  std::string line;
  while (std::getline(lines, line)) {
    size_t comment = line.find("//");
    if (comment != std::string::npos) line = line.substr(0, comment);
    size_t semi = line.rfind(';');
    if (semi == std::string::npos) continue;
    size_t stop = line.find('=');
    if (stop == std::string::npos || stop > semi) stop = semi;
    // Walk left over the identifier that precedes `stop`.
    size_t id_end = stop;
    while (id_end > 0 &&
           std::isspace(static_cast<unsigned char>(line[id_end - 1]))) {
      --id_end;
    }
    size_t id_begin = id_end;
    while (id_begin > 0 &&
           (std::isalnum(static_cast<unsigned char>(line[id_begin - 1])) ||
            line[id_begin - 1] == '_')) {
      --id_begin;
    }
    if (id_begin == id_end) continue;
    // Require a type before the name (skips `struct WranglerConfig {`).
    std::string before = line.substr(0, id_begin);
    if (before.find_first_not_of(" \t") == std::string::npos) continue;
    knobs.push_back(line.substr(id_begin, id_end - id_begin));
  }
  EXPECT_GE(knobs.size(), 15u) << "config.h parse lost knobs";
  return knobs;
}

/// Stems of the .cc files under tools/ (each is one CLI binary).
std::vector<std::string> ToolNames() {
  std::vector<std::string> names;
  for (const auto& entry :
       std::filesystem::directory_iterator(VADA_TOOLS_DIR)) {
    if (entry.path().extension() == ".cc") {
      names.push_back(entry.path().stem().string());
    }
  }
  EXPECT_GE(names.size(), 3u) << "tools/ lost its CLIs";
  return names;
}

TEST(DocsInventoryTest, ReadmeMentionsEveryConfigKnob) {
  const std::string readme = ReadFile(VADA_README_MD);
  std::set<std::string> missing;
  for (const std::string& knob : ConfigKnobs()) {
    if (!MentionsWord(readme, knob)) missing.insert(knob);
  }
  std::string joined;
  for (const std::string& k : missing) joined += "\n  " + k;
  EXPECT_TRUE(missing.empty())
      << "WranglerConfig knobs absent from README.md (document them in "
         "the Performance & tuning / configuration tables):"
      << joined;
}

TEST(DocsInventoryTest, ReadmeMentionsEveryTool) {
  const std::string readme = ReadFile(VADA_README_MD);
  std::set<std::string> missing;
  for (const std::string& tool : ToolNames()) {
    if (!MentionsWord(readme, tool)) missing.insert(tool);
  }
  std::string joined;
  for (const std::string& t : missing) joined += "\n  " + t;
  EXPECT_TRUE(missing.empty())
      << "tools/ CLIs absent from README.md (document them in the Tools "
         "section):"
      << joined;
}

}  // namespace
}  // namespace vada
