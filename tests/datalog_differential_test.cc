// Differential fuzz harness for the join planner (DESIGN.md §5f).
//
// Each case generates a random program + database from a seed and
// evaluates it under every planner configuration. The oracle is the
// full-scan, legacy-order path ({indexes = false, reorder = false});
// the indexed and reordered paths must derive the same fact sets, and
// `indexes` alone must reproduce the oracle's row order exactly (index
// buckets keep insertion order). Each configuration's pool-backed run
// must be bit-identical to its sequential run, stats included.
#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace vada::datalog {
namespace {

struct EvalOutput {
  std::map<std::string, std::vector<Tuple>> facts;
  EvalStats stats;

  std::map<std::string, std::vector<Tuple>> SortedFacts() const {
    std::map<std::string, std::vector<Tuple>> out = facts;
    for (auto& [pred, rows] : out) std::sort(rows.begin(), rows.end());
    return out;
  }

  /// Bit-identity: same rows in the same order, same stats.
  bool operator==(const EvalOutput& o) const {
    return facts == o.facts && stats.iterations == o.stats.iterations &&
           stats.facts_derived == o.stats.facts_derived &&
           stats.rule_applications == o.stats.rule_applications &&
           stats.join_probes == o.stats.join_probes &&
           stats.index_probes == o.stats.index_probes &&
           stats.index_candidates == o.stats.index_candidates &&
           stats.index_builds == o.stats.index_builds;
  }
};

EvalOutput Evaluate(const Program& program, const Database& edb,
                    const EvalOptions& options) {
  Database db = edb;
  Evaluator eval(program, options);
  EXPECT_TRUE(eval.Prepare().ok());
  EvalOutput out;
  EXPECT_TRUE(eval.Run(&db, &out.stats).ok());
  for (const std::string& pred : db.Predicates()) {
    out.facts[pred] = db.facts(pred);
  }
  return out;
}

/// Random EDB over three binary edge relations (one possibly left empty
/// while rules still reference it), a string-labelled relation, a
/// weighted relation, and unary node/src relations.
Database RandomEdb(Rng* rng) {
  Database db;
  int nodes = static_cast<int>(rng->UniformInt(3, 12));
  int edges = static_cast<int>(rng->UniformInt(4, 60));
  bool e2_empty = rng->Bernoulli(0.2);
  for (int e = 0; e < 3; ++e) {
    if (e == 2 && e2_empty) continue;
    std::string pred = "e" + std::to_string(e);
    for (int i = 0; i < edges; ++i) {
      db.Insert(pred, Tuple({Value::Int(rng->UniformInt(0, nodes - 1)),
                             Value::Int(rng->UniformInt(0, nodes - 1))}));
    }
  }
  for (int i = 0; i < edges / 2; ++i) {
    db.Insert("lab",
              Tuple({Value::Int(rng->UniformInt(0, nodes - 1)),
                     Value::String("s" + std::to_string(rng->UniformInt(0, 3)))}));
    db.Insert("w", Tuple({Value::Int(rng->UniformInt(0, nodes - 1)),
                          Value::Int(rng->UniformInt(0, nodes - 1)),
                          Value::Int(rng->UniformInt(0, 9))}));
  }
  for (int i = 0; i < nodes; ++i) {
    if (rng->Bernoulli(0.3)) db.Insert("src", Tuple({Value::Int(i)}));
    db.Insert("node", Tuple({Value::Int(i)}));
  }
  return db;
}

/// Random program exercising every feature the planner touches: multi-way
/// joins (cross products included), constants in atoms, comparisons,
/// arithmetic assignments, stratified negation and aggregates.
std::string RandomProgram(Rng* rng) {
  std::ostringstream p;
  p << "p0(X, Y) :- e0(X, Y).\n";
  int rules = static_cast<int>(rng->UniformInt(4, 9));
  for (int r = 0; r < rules; ++r) {
    int head = static_cast<int>(rng->UniformInt(0, 3));
    switch (rng->UniformInt(0, 6)) {
      case 0:  // copy, sometimes from the (possibly empty) e2
        p << "p" << head << "(X, Y) :- e" << rng->UniformInt(0, 2)
          << "(X, Y).\n";
        break;
      case 1:  // linear recursion
        p << "p" << head << "(X, Y) :- e" << rng->UniformInt(0, 2)
          << "(X, Z), p" << rng->UniformInt(0, 3) << "(Z, Y).\n";
        break;
      case 2:  // nonlinear recursion
        p << "p" << head << "(X, Y) :- p" << rng->UniformInt(0, 3)
          << "(X, Z), p" << rng->UniformInt(0, 3) << "(Z, Y).\n";
        break;
      case 3:  // constant in an atom position
        p << "p" << head << "(X, Y) :- e" << rng->UniformInt(0, 1) << "(X, Y), "
          << "e" << rng->UniformInt(0, 1) << "(" << rng->UniformInt(0, 5)
          << ", X).\n";
        break;
      case 4:  // comparison filter over a two-atom join
        p << "p" << head << "(X, Y) :- e" << rng->UniformInt(0, 1)
          << "(X, Z), e" << rng->UniformInt(0, 1) << "(Z, Y), X "
          << (rng->Bernoulli(0.5) ? "<" : "!=") << " Y.\n";
        break;
      case 5:  // arithmetic assignment
        p << "p" << head << "(X, S) :- w(X, Y, C), S = C + "
          << rng->UniformInt(1, 3) << ".\n";
        break;
      default:  // cross product joined back through a label
        p << "p" << head << "(X, Y) :- node(X), node(Y), lab(X, \"s"
          << rng->UniformInt(0, 3) << "\").\n";
        break;
    }
  }
  // Fixed stratified tail: negation over reachability and aggregates.
  p << "reach(X) :- src(X).\n"
       "reach(Y) :- reach(X), e0(X, Y).\n"
       "unreach(X) :- node(X), not reach(X).\n"
       "fanout(X, count<Y>) :- p0(X, Y).\n"
       "wsum(X, sum<C>) :- w(X, Y, C).\n"
       "span(min<X>, max<Y>) :- p1(X, Y).\n";
  return p.str();
}

/// 25 shards x 20 seeds = 500 differential cases.
class JoinPlannerDifferential : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Shards, JoinPlannerDifferential,
                         ::testing::Range(0, 25));

constexpr int kSeedsPerShard = 20;

TEST_P(JoinPlannerDifferential, AllPlannerConfigsAgreeOnRandomPrograms) {
  ThreadPool pool(3);
  for (int s = 0; s < kSeedsPerShard; ++s) {
    int seed = GetParam() * kSeedsPerShard + s;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    Database edb = RandomEdb(&rng);
    Result<Program> program = Parser::Parse(RandomProgram(&rng));
    ASSERT_TRUE(program.ok()) << program.status().message();

    // Oracle: full scans, legacy literal order.
    EvalOptions oracle;
    oracle.planner = PlannerOptions{.indexes = false, .reorder = false};
    EvalOutput expected = Evaluate(program.value(), edb, oracle);
    auto expected_sorted = expected.SortedFacts();

    struct Config {
      const char* name;
      PlannerOptions planner;
      bool same_row_order;  // must match the oracle row-for-row
    };
    // min_index_size 1 forces composite indexes onto even the tiny
    // relations this generator makes; the default-32 config covers the
    // single-column fallback path instead.
    const Config configs[] = {
        {"indexes", {.indexes = true, .reorder = false, .min_index_size = 1},
         true},
        {"indexes-default-gate",
         {.indexes = true, .reorder = false, .min_index_size = 32}, true},
        {"reorder", {.indexes = false, .reorder = true}, false},
        {"indexes+reorder",
         {.indexes = true, .reorder = true, .min_index_size = 1}, false},
    };
    for (const Config& config : configs) {
      SCOPED_TRACE(config.name);
      EvalOptions opts;
      opts.planner = config.planner;
      EvalOutput sequential = Evaluate(program.value(), edb, opts);
      // Same derived fact set as the oracle, always.
      EXPECT_EQ(sequential.SortedFacts(), expected_sorted);
      EXPECT_EQ(sequential.stats.facts_derived, expected.stats.facts_derived);
      if (config.same_row_order) {
        // `indexes` alone never permutes rows: buckets keep insertion
        // order, so probing enumerates exactly what a scan would.
        EXPECT_EQ(sequential.facts, expected.facts);
      }
      // The pool-backed run of the same config is bit-identical,
      // stats included (chunk threshold 1 forces chunking everywhere).
      EvalOptions par = opts;
      par.pool = &pool;
      par.parallel_chunk_threshold = 1;
      EvalOutput parallel = Evaluate(program.value(), edb, par);
      EXPECT_TRUE(parallel == sequential);
    }

    // The naive-fixpoint oracle agrees on the fact set too.
    EvalOptions naive = oracle;
    naive.semi_naive = false;
    EXPECT_EQ(Evaluate(program.value(), edb, naive).SortedFacts(),
              expected_sorted);
  }
}

/// Indexed evaluation must replace scan work, not duplicate it: on a
/// join wide enough to clear the index gate, total candidate work drops
/// and the counters attribute it to the right strategy.
TEST(JoinPlannerDifferential, IndexedRunDoesLessJoinWork) {
  Rng rng(7);
  Database edb;
  for (int i = 0; i < 400; ++i) {
    edb.Insert("big", Tuple({Value::Int(rng.UniformInt(0, 40)),
                             Value::Int(rng.UniformInt(0, 40))}));
  }
  Result<Program> program =
      Parser::Parse("j(X, Z) :- big(X, Y), big(Y, Z).");
  ASSERT_TRUE(program.ok());

  EvalOptions oracle;
  oracle.planner = PlannerOptions{.indexes = false, .reorder = false};
  EvalOutput scan = Evaluate(program.value(), edb, oracle);
  EXPECT_EQ(scan.stats.index_probes, 0u);
  EXPECT_EQ(scan.stats.index_builds, 0u);
  EXPECT_GT(scan.stats.join_probes, 0u);

  EvalOutput indexed = Evaluate(program.value(), edb, EvalOptions());
  EXPECT_EQ(indexed.SortedFacts(), scan.SortedFacts());
  EXPECT_GT(indexed.stats.index_probes, 0u);
  EXPECT_GT(indexed.stats.index_builds, 0u);
  size_t indexed_work = indexed.stats.join_probes +
                        indexed.stats.index_probes +
                        indexed.stats.index_candidates;
  EXPECT_LT(indexed_work, scan.stats.join_probes);
}

}  // namespace
}  // namespace vada::datalog
