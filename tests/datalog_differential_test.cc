// Differential fuzz harness for the join planner (DESIGN.md §5f).
//
// Each case generates a random program + database from a seed and
// evaluates it under every planner configuration. The oracle is the
// full-scan, legacy-order path ({indexes = false, reorder = false});
// the indexed and reordered paths must derive the same fact sets, and
// `indexes` alone must reproduce the oracle's row order exactly (index
// buckets keep insertion order). Each configuration's pool-backed run
// must be bit-identical to its sequential run, stats included.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog_random_program.h"

namespace vada::datalog {
namespace {

/// 25 shards x 20 seeds = 500 differential cases.
class JoinPlannerDifferential : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Shards, JoinPlannerDifferential,
                         ::testing::Range(0, 25));

constexpr int kSeedsPerShard = 20;

TEST_P(JoinPlannerDifferential, AllPlannerConfigsAgreeOnRandomPrograms) {
  ThreadPool pool(3);
  for (int s = 0; s < kSeedsPerShard; ++s) {
    int seed = GetParam() * kSeedsPerShard + s;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    Database edb = RandomEdb(&rng);
    Result<Program> program = Parser::Parse(RandomProgram(&rng));
    ASSERT_TRUE(program.ok()) << program.status().message();

    // Oracle: full scans, legacy literal order.
    EvalOptions oracle;
    oracle.planner = PlannerOptions{.indexes = false, .reorder = false};
    EvalOutput expected = Evaluate(program.value(), edb, oracle);
    auto expected_sorted = expected.SortedFacts();

    struct Config {
      const char* name;
      PlannerOptions planner;
      bool same_row_order;  // must match the oracle row-for-row
    };
    // min_index_size 1 forces composite indexes onto even the tiny
    // relations this generator makes; the default-32 config covers the
    // single-column fallback path instead.
    const Config configs[] = {
        {"indexes", {.indexes = true, .reorder = false, .min_index_size = 1},
         true},
        {"indexes-default-gate",
         {.indexes = true, .reorder = false, .min_index_size = 32}, true},
        {"reorder", {.indexes = false, .reorder = true}, false},
        {"indexes+reorder",
         {.indexes = true, .reorder = true, .min_index_size = 1}, false},
    };
    for (const Config& config : configs) {
      SCOPED_TRACE(config.name);
      EvalOptions opts;
      opts.planner = config.planner;
      EvalOutput sequential = Evaluate(program.value(), edb, opts);
      // Same derived fact set as the oracle, always.
      EXPECT_EQ(sequential.SortedFacts(), expected_sorted);
      EXPECT_EQ(sequential.stats.facts_derived, expected.stats.facts_derived);
      if (config.same_row_order) {
        // `indexes` alone never permutes rows: buckets keep insertion
        // order, so probing enumerates exactly what a scan would.
        EXPECT_EQ(sequential.facts, expected.facts);
      }
      // The pool-backed run of the same config is bit-identical,
      // stats included (chunk threshold 1 forces chunking everywhere).
      EvalOptions par = opts;
      par.pool = &pool;
      par.parallel_chunk_threshold = 1;
      EvalOutput parallel = Evaluate(program.value(), edb, par);
      EXPECT_TRUE(parallel == sequential);
    }

    // The naive-fixpoint oracle agrees on the fact set too.
    EvalOptions naive = oracle;
    naive.semi_naive = false;
    EXPECT_EQ(Evaluate(program.value(), edb, naive).SortedFacts(),
              expected_sorted);
  }
}

/// Optimizer differential: with PlannerOptions::optimize on, Query()
/// rewrites the program (constant folding, dead/unreachable-rule
/// elimination, magic sets toward the goal) — but the goal-visible
/// output must stay bit-identical to the unoptimized oracle, for every
/// derived predicate of every random program, sequential and pool-
/// backed. 25 shards x 20 seeds = 500 programs x 9 goals.
class OptimizerDifferential : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Shards, OptimizerDifferential,
                         ::testing::Range(0, 25));

TEST_P(OptimizerDifferential, GoalVisibleOutputIsBitIdentical) {
  ThreadPool pool(3);
  for (int s = 0; s < kSeedsPerShard; ++s) {
    int seed = GetParam() * kSeedsPerShard + s;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    Database edb = RandomEdb(&rng);
    Result<Program> program = Parser::Parse(RandomProgram(&rng));
    ASSERT_TRUE(program.ok()) << program.status().message();

    for (const std::string& goal : RandomProgramGoals()) {
      SCOPED_TRACE("goal=" + goal);
      Database oracle_db = edb;
      Result<std::vector<Tuple>> expected =
          Query(program.value(), &oracle_db, goal, EvalOptions());
      ASSERT_TRUE(expected.ok()) << expected.status().message();

      EvalOptions optimized;
      optimized.planner.optimize = true;
      Database opt_db = edb;
      Result<std::vector<Tuple>> actual =
          Query(program.value(), &opt_db, goal, optimized);
      ASSERT_TRUE(actual.ok()) << actual.status().message();
      EXPECT_EQ(actual.value(), expected.value());

      EvalOptions par = optimized;
      par.pool = &pool;
      par.parallel_chunk_threshold = 1;
      Database par_db = edb;
      Result<std::vector<Tuple>> parallel =
          Query(program.value(), &par_db, goal, par);
      ASSERT_TRUE(parallel.ok()) << parallel.status().message();
      EXPECT_EQ(parallel.value(), expected.value());
    }
  }
}

/// Incremental-vs-full equivalence fuzz (DESIGN.md §5k): each seed
/// generates a random program plus a randomized insert/retract delta
/// stream. A DifferentialEvaluator maintains the fixpoint batch by
/// batch; after every batch its database must match (order-normalized)
/// a from-scratch re-evaluation of the mutated base — through the
/// counting, monotone, recompute and threshold-fallback paths, with
/// negation and aggregates always present via the fixed program tail.
/// The pool-backed maintainer must stay bit-identical to the
/// sequential one, and a default-threshold maintainer (which crosses
/// into full rebuild on the stream's oversized batch) must agree too.
/// 25 shards x 20 seeds = 500 programs.
class IncrementalDifferential : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Shards, IncrementalDifferential,
                         ::testing::Range(0, 25));

std::map<std::string, std::vector<Tuple>> FactsOf(const Database& db) {
  std::map<std::string, std::vector<Tuple>> out;
  for (const std::string& pred : db.Predicates()) {
    out[pred] = db.facts(pred);
  }
  return out;
}

std::map<std::string, std::vector<Tuple>> SortedFactsOf(const Database& db) {
  auto out = FactsOf(db);
  for (auto& [pred, rows] : out) std::sort(rows.begin(), rows.end());
  return out;
}

TEST_P(IncrementalDifferential, MaintainedFixpointMatchesFromScratch) {
  ThreadPool pool(3);
  for (int s = 0; s < kSeedsPerShard; ++s) {
    int seed = GetParam() * kSeedsPerShard + s;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    Database edb = RandomEdb(&rng);
    Result<Program> program = Parser::Parse(RandomProgram(&rng));
    ASSERT_TRUE(program.ok()) << program.status().message();
    std::vector<RelationDelta> stream = RandomDeltaStream(&rng, edb);

    // Pure-incremental maintainer: the threshold never trips, so every
    // batch exercises the per-stratum delta machinery.
    DifferentialOptions inc_opts;
    inc_opts.max_delta_fraction = 1e9;
    DifferentialEvaluator diff(program.value(), inc_opts);
    ASSERT_TRUE(diff.Prepare().ok());
    ASSERT_TRUE(diff.Initialize(edb).ok());

    // Same options + worker pool: must be bit-identical, row order
    // included (the full evaluations inside are pool-deterministic and
    // the delta paths are sequential by construction).
    DifferentialOptions par_opts = inc_opts;
    par_opts.eval.pool = &pool;
    par_opts.eval.parallel_chunk_threshold = 1;
    DifferentialEvaluator pdiff(program.value(), par_opts);
    ASSERT_TRUE(pdiff.Prepare().ok());
    ASSERT_TRUE(pdiff.Initialize(edb).ok());

    // Default threshold: the oversized batch in every stream crosses
    // max_delta_fraction and takes the full-rebuild fallback.
    DifferentialEvaluator fdiff(program.value(), DifferentialOptions());
    ASSERT_TRUE(fdiff.Prepare().ok());
    ASSERT_TRUE(fdiff.Initialize(edb).ok());

    EvalOptions oracle;
    oracle.planner = PlannerOptions{.indexes = false, .reorder = false};
    std::map<std::string, std::set<Tuple>> base = BaseRows(edb);
    for (size_t b = 0; b < stream.size(); ++b) {
      SCOPED_TRACE("batch=" + std::to_string(b));
      ApplyDeltaToBase(stream[b], &base);
      ASSERT_TRUE(diff.ApplyDelta(stream[b]).ok());
      ASSERT_TRUE(pdiff.ApplyDelta(stream[b]).ok());
      ASSERT_TRUE(fdiff.ApplyDelta(stream[b]).ok());

      EvalOutput expected =
          Evaluate(program.value(), BaseToDatabase(base), oracle);
      auto expected_sorted = expected.SortedFacts();
      EXPECT_EQ(SortedFactsOf(diff.database()), expected_sorted);
      EXPECT_EQ(SortedFactsOf(fdiff.database()), expected_sorted);
      EXPECT_EQ(FactsOf(pdiff.database()), FactsOf(diff.database()));
    }

    // Stats sanity: every batch was applied, the pure-incremental
    // maintainer never fell back, and its EXPLAIN surface reported a
    // delta plan for the last (non-empty) batch.
    const DeltaStats& st = diff.lifetime_stats();
    EXPECT_EQ(st.applies, stream.size());
    EXPECT_EQ(st.full_fallbacks, 0u);
    EXPECT_GT(st.strata_skipped + st.strata_counting + st.strata_monotone +
                  st.strata_recomputed,
              0u);
    EXPECT_EQ(pdiff.lifetime_stats().full_fallbacks, 0u);
    EXPECT_GT(fdiff.lifetime_stats().full_fallbacks, 0u);
    EXPECT_NE(diff.last_plan().find("plan"), std::string::npos);
  }
}

/// Indexed evaluation must replace scan work, not duplicate it: on a
/// join wide enough to clear the index gate, total candidate work drops
/// and the counters attribute it to the right strategy.
TEST(JoinPlannerDifferential, IndexedRunDoesLessJoinWork) {
  Rng rng(7);
  Database edb;
  for (int i = 0; i < 400; ++i) {
    edb.Insert("big", Tuple({Value::Int(rng.UniformInt(0, 40)),
                             Value::Int(rng.UniformInt(0, 40))}));
  }
  Result<Program> program =
      Parser::Parse("j(X, Z) :- big(X, Y), big(Y, Z).");
  ASSERT_TRUE(program.ok());

  EvalOptions oracle;
  oracle.planner = PlannerOptions{.indexes = false, .reorder = false};
  EvalOutput scan = Evaluate(program.value(), edb, oracle);
  EXPECT_EQ(scan.stats.index_probes, 0u);
  EXPECT_EQ(scan.stats.index_builds, 0u);
  EXPECT_GT(scan.stats.join_probes, 0u);

  EvalOutput indexed = Evaluate(program.value(), edb, EvalOptions());
  EXPECT_EQ(indexed.SortedFacts(), scan.SortedFacts());
  EXPECT_GT(indexed.stats.index_probes, 0u);
  EXPECT_GT(indexed.stats.index_builds, 0u);
  size_t indexed_work = indexed.stats.join_probes +
                        indexed.stats.index_probes +
                        indexed.stats.index_candidates;
  EXPECT_LT(indexed_work, scan.stats.join_probes);
}

}  // namespace
}  // namespace vada::datalog
