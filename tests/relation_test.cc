#include <gtest/gtest.h>

#include "kb/relation.h"
#include "kb/schema.h"

namespace vada {
namespace {

Schema PropertySchema() {
  return Schema("property", {{"street", AttributeType::kString},
                             {"price", AttributeType::kInt},
                             {"score", AttributeType::kDouble}});
}

TEST(SchemaTest, UntypedFactory) {
  Schema s = Schema::Untyped("r", {"a", "b"});
  EXPECT_EQ(s.relation_name(), "r");
  ASSERT_EQ(s.arity(), 2u);
  EXPECT_EQ(s.attributes()[0].type, AttributeType::kAny);
}

TEST(SchemaTest, AttributeIndex) {
  Schema s = PropertySchema();
  EXPECT_EQ(*s.AttributeIndex("price"), 1u);
  EXPECT_FALSE(s.AttributeIndex("missing").has_value());
}

TEST(SchemaTest, ValidateRejectsDuplicates) {
  Schema s = Schema::Untyped("r", {"a", "a"});
  EXPECT_FALSE(s.Validate().ok());
  EXPECT_FALSE(Schema::Untyped("", {"a"}).Validate().ok());
  EXPECT_TRUE(PropertySchema().Validate().ok());
}

TEST(SchemaTest, TypeCompatibility) {
  EXPECT_TRUE(IsCompatible(AttributeType::kInt, ValueType::kInt));
  EXPECT_TRUE(IsCompatible(AttributeType::kInt, ValueType::kNull));
  EXPECT_FALSE(IsCompatible(AttributeType::kInt, ValueType::kString));
  EXPECT_TRUE(IsCompatible(AttributeType::kDouble, ValueType::kInt));
  EXPECT_TRUE(IsCompatible(AttributeType::kAny, ValueType::kString));
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(PropertySchema());
  Tuple t({Value::String("High St"), Value::Int(100000), Value::Double(0.5)});
  bool added = false;
  ASSERT_TRUE(r.Insert(t, &added).ok());
  EXPECT_TRUE(added);
  ASSERT_TRUE(r.Insert(t, &added).ok());
  EXPECT_FALSE(added);
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, InsertChecksArityAndTypes) {
  Relation r(PropertySchema());
  EXPECT_FALSE(r.Insert(Tuple({Value::Int(1)})).ok());
  EXPECT_FALSE(r.Insert(Tuple({Value::Int(1), Value::Int(2), Value::Double(3)}))
                   .ok());  // street must be string
  // Nulls always allowed.
  EXPECT_TRUE(
      r.Insert(Tuple({Value::Null(), Value::Null(), Value::Null()})).ok());
}

TEST(RelationTest, EraseAndContains) {
  Relation r(Schema::Untyped("r", {"a"}));
  Tuple t({Value::Int(1)});
  ASSERT_TRUE(r.Insert(t).ok());
  EXPECT_TRUE(r.Contains(t));
  EXPECT_TRUE(r.Erase(t));
  EXPECT_FALSE(r.Contains(t));
  EXPECT_FALSE(r.Erase(t));
  EXPECT_EQ(r.size(), 0u);
}

TEST(RelationTest, ProjectReordersColumns) {
  Relation r(Schema::Untyped("r", {"a", "b"}));
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  Result<Relation> p = r.Project({"b", "a"}, "p");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().schema().AttributeNames(),
            (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(p.value().rows()[0], Tuple({Value::Int(2), Value::Int(1)}));
}

TEST(RelationTest, ProjectDeduplicates) {
  Relation r(Schema::Untyped("r", {"a", "b"}));
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(3)})).ok());
  Result<Relation> p = r.Project({"a"}, "p");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().size(), 1u);
}

TEST(RelationTest, ProjectUnknownAttributeFails) {
  Relation r(Schema::Untyped("r", {"a"}));
  EXPECT_FALSE(r.Project({"zz"}, "p").ok());
}

TEST(RelationTest, SelectEquals) {
  Relation r(Schema::Untyped("r", {"a", "b"}));
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::String("x")})).ok());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(2), Value::String("y")})).ok());
  Result<Relation> sel = r.SelectEquals("b", Value::String("y"));
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel.value().size(), 1u);
  EXPECT_EQ(sel.value().rows()[0].at(0), Value::Int(2));
}

TEST(RelationTest, NonNullFraction) {
  Relation r(Schema::Untyped("r", {"a"}));
  EXPECT_DOUBLE_EQ(r.NonNullFraction("a").value(), 1.0);  // vacuous
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1)})).ok());
  ASSERT_TRUE(r.Insert(Tuple({Value::Null()})).ok());
  EXPECT_DOUBLE_EQ(r.NonNullFraction("a").value(), 0.5);
  EXPECT_FALSE(r.NonNullFraction("zz").ok());
}

TEST(RelationTest, SortedRowsDeterministic) {
  Relation r(Schema::Untyped("r", {"a"}));
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(3)})).ok());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1)})).ok());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(2)})).ok());
  std::vector<Tuple> sorted = r.SortedRows();
  EXPECT_EQ(sorted[0].at(0), Value::Int(1));
  EXPECT_EQ(sorted[2].at(0), Value::Int(3));
}

}  // namespace
}  // namespace vada
