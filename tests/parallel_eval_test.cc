#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/snapshot_cache.h"
#include "extract/real_estate.h"
#include "kb/knowledge_base.h"
#include "obs/chrome_trace.h"
#include "transducer/network.h"
#include "transducer/transducer.h"
#include "wrangler/session.h"

namespace vada::datalog {
namespace {

/// Everything one evaluation produced, in exact stored order — the
/// bit-identity oracle (not sorted on purpose: parallel evaluation must
/// reproduce sequential row order, not just the set).
struct EvalOutput {
  std::map<std::string, std::vector<Tuple>> facts;
  EvalStats stats;

  bool operator==(const EvalOutput& o) const {
    return facts == o.facts && stats.iterations == o.stats.iterations &&
           stats.facts_derived == o.stats.facts_derived &&
           stats.rule_applications == o.stats.rule_applications &&
           stats.join_probes == o.stats.join_probes &&
           stats.index_probes == o.stats.index_probes &&
           stats.index_candidates == o.stats.index_candidates &&
           stats.index_builds == o.stats.index_builds;
  }
};

EvalOutput Evaluate(const Program& program, const Database& edb,
               const EvalOptions& options) {
  Database db = edb;
  Evaluator eval(program, options);
  EXPECT_TRUE(eval.Prepare().ok());
  EvalOutput out;
  EXPECT_TRUE(eval.Run(&db, &out.stats).ok());
  for (const std::string& pred : db.Predicates()) {
    out.facts[pred] = db.facts(pred);
  }
  return out;
}

Database RandomEdb(Rng* rng, int nodes, int edges) {
  Database db;
  for (int e = 0; e < 3; ++e) {
    std::string pred = "e" + std::to_string(e);
    for (int i = 0; i < edges; ++i) {
      db.Insert(pred, Tuple({Value::Int(rng->UniformInt(0, nodes - 1)),
                             Value::Int(rng->UniformInt(0, nodes - 1))}));
    }
  }
  for (int i = 0; i < nodes; ++i) {
    if (rng->Bernoulli(0.3)) db.Insert("src", Tuple({Value::Int(i)}));
    db.Insert("node", Tuple({Value::Int(i)}));
  }
  return db;
}

/// Random positive recursive program over e0..e2 / p0..p3 plus fixed
/// negation and aggregation rules — exercises every evaluation feature
/// under the parallel path.
std::string RandomProgram(Rng* rng) {
  std::ostringstream p;
  p << "p0(X, Y) :- e0(X, Y).\n";
  int rules = static_cast<int>(rng->UniformInt(4, 8));
  for (int r = 0; r < rules; ++r) {
    int head = static_cast<int>(rng->UniformInt(0, 3));
    switch (rng->UniformInt(0, 2)) {
      case 0:
        p << "p" << head << "(X, Y) :- e" << rng->UniformInt(0, 2)
          << "(X, Y).\n";
        break;
      case 1:
        p << "p" << head << "(X, Y) :- e" << rng->UniformInt(0, 2)
          << "(X, Z), p" << rng->UniformInt(0, 3) << "(Z, Y).\n";
        break;
      default:
        p << "p" << head << "(X, Y) :- p" << rng->UniformInt(0, 3)
          << "(X, Z), p" << rng->UniformInt(0, 3) << "(Z, Y).\n";
        break;
    }
  }
  p << "reach(X) :- src(X).\n"
       "reach(Y) :- reach(X), e0(X, Y).\n"
       "unreach(X) :- node(X), not reach(X).\n"
       "fanout(X, count<Y>) :- p0(X, Y).\n";
  return p.str();
}

/// Property: a pool-backed evaluation is bit-identical to the sequential
/// one — same facts, same per-predicate row order, same EvalStats — on
/// randomly generated programs. chunk threshold 1 forces chunked rule
/// evaluation even on tiny relations, maximising coverage of the merge
/// path.
class ParallelSequentialEquivalence : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSequentialEquivalence,
                         ::testing::Range(0, 12));

TEST_P(ParallelSequentialEquivalence, BitIdenticalOnRandomPrograms) {
  Rng rng(GetParam());
  Database edb = RandomEdb(&rng, static_cast<int>(rng.UniformInt(4, 14)),
                           static_cast<int>(rng.UniformInt(5, 45)));
  Result<Program> program = Parser::Parse(RandomProgram(&rng));
  ASSERT_TRUE(program.ok());

  EvalOptions sequential;
  EvalOutput expected = Evaluate(program.value(), edb, sequential);

  ThreadPool pool(3);
  EvalOptions parallel;
  parallel.pool = &pool;
  parallel.parallel_chunk_threshold = 1;
  EvalOutput actual = Evaluate(program.value(), edb, parallel);

  EXPECT_TRUE(expected == actual) << "seed " << GetParam();
}

TEST(ParallelEvalTest, LargeRelationWithDefaultThresholdMatchesSequential) {
  // `big` exceeds the default 1024-candidate threshold, so real chunking
  // kicks in with production settings; the chain adds recursion depth.
  Database edb;
  for (int i = 0; i < 2000; ++i) {
    edb.Insert("big", Tuple({Value::Int(i), Value::Int(i % 40)}));
  }
  for (int i = 0; i < 40; ++i) {
    edb.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  Result<Program> p = Parser::Parse(
      "joined(X, Y) :- big(X, Z), edge(Z, Y).\n"
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
      "deep(X, Y) :- big(X, Z), tc(Z, Y).\n");
  ASSERT_TRUE(p.ok());

  EvalOutput expected = Evaluate(p.value(), edb, EvalOptions());
  ThreadPool pool(3);
  EvalOptions parallel;
  parallel.pool = &pool;
  EvalOutput actual = Evaluate(p.value(), edb, parallel);
  EXPECT_TRUE(expected == actual);
}

TEST(ParallelEvalTest, NaiveModeAlsoBitIdentical) {
  Rng rng(77);
  Database edb = RandomEdb(&rng, 10, 30);
  Result<Program> program = Parser::Parse(RandomProgram(&rng));
  ASSERT_TRUE(program.ok());

  EvalOptions sequential;
  sequential.semi_naive = false;
  EvalOutput expected = Evaluate(program.value(), edb, sequential);

  ThreadPool pool(3);
  EvalOptions parallel;
  parallel.semi_naive = false;
  parallel.pool = &pool;
  parallel.parallel_chunk_threshold = 1;
  EvalOutput actual = Evaluate(program.value(), edb, parallel);
  EXPECT_TRUE(expected == actual);
}

/// Builds the same three-transducer chain twice and compares the
/// orchestration byte for byte: the pool parallelises dependency-query
/// evaluation but must not change scheduling, trace, stats or results.
struct ChainRun {
  std::vector<std::string> executed;
  std::vector<std::vector<std::string>> eligible;
  size_t dependency_checks = 0;
  std::vector<Tuple> c_rows;
};

ChainRun RunChain(ThreadPool* pool, SnapshotCache* cache) {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("a", {"x"})).ok());
  EXPECT_TRUE(kb.Insert("a", {Value::Int(1)}).ok());

  TransducerRegistry registry;
  auto copy_step = [](const std::string& from, const std::string& to) {
    return [from, to](KnowledgeBase* kb) -> Status {
      Relation out(Schema::Untyped(to, {"x"}));
      for (const Tuple& t : kb->GetRelation(from).value()->rows()) {
        VADA_RETURN_IF_ERROR(out.Insert(t));
      }
      return kb->ReplaceRelationIfChanged(out);
    };
  };
  EXPECT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "a_to_b", "map",
                      "ready() :- sys_relation_nonempty(\"a\").",
                      copy_step("a", "b")))
                  .ok());
  EXPECT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "b_to_c", "map",
                      "ready() :- sys_relation_nonempty(\"b\").",
                      copy_step("b", "c")))
                  .ok());
  EXPECT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "noop", "map",
                      "ready() :- sys_relation_nonempty(\"missing\").",
                      copy_step("a", "unused")))
                  .ok());

  OrchestratorOptions options;
  options.pool = pool;
  options.snapshot_cache = cache;
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  OrchestrationStats stats;
  EXPECT_TRUE(orchestrator.Run(&kb, &stats).ok());

  ChainRun run;
  run.dependency_checks = stats.dependency_checks;
  for (const TraceEvent& e : orchestrator.trace().events()) {
    run.executed.push_back(e.transducer);
    run.eligible.push_back(e.eligible);
  }
  if (kb.HasRelation("c")) run.c_rows = kb.GetRelation("c").value()->rows();
  return run;
}

TEST(ParallelEvalTest, OrchestratorScanIdenticalWithPoolAndCache) {
  ChainRun sequential = RunChain(nullptr, nullptr);

  ThreadPool pool(3);
  SnapshotCache cache;
  ChainRun parallel = RunChain(&pool, &cache);

  EXPECT_EQ(sequential.executed, parallel.executed);
  EXPECT_EQ(sequential.eligible, parallel.eligible);
  EXPECT_EQ(sequential.dependency_checks, parallel.dependency_checks);
  EXPECT_EQ(sequential.c_rows, parallel.c_rows);
  // The cache did real work: repeated scans of sys_* control relations
  // and the chain's inputs hit after the first miss.
  EXPECT_GT(cache.stats().hits, 0u);
}

/// End-to-end: a full wrangling session configured with 4 threads and
/// the snapshot cache produces the same result relation, in the same row
/// order, as the default sequential session.
TEST(ParallelEvalTest, SessionResultIdenticalUnderParallelConfig) {
  PropertyUniverseOptions uopts;
  uopts.num_properties = 60;
  uopts.num_postcodes = 12;
  uopts.seed = 9;
  GroundTruth truth = GeneratePropertyUniverse(uopts);
  ExtractionErrorOptions err;
  err.seed = 11;
  Relation rightmove = ExtractRightmove(truth, err);
  Schema target = Schema::Untyped(
      "target",
      {"type", "description", "street", "postcode", "bedrooms", "price",
       "crimerank"});

  auto run_session = [&](const WranglerConfig& config) {
    auto session = std::make_unique<WranglingSession>(config);
    EXPECT_TRUE(session->SetTargetSchema(target).ok());
    EXPECT_TRUE(session->AddSource(rightmove).ok());
    EXPECT_TRUE(session->Run().ok());
    std::vector<Tuple> rows;
    if (session->result() != nullptr) rows = session->result()->rows();
    std::vector<std::string> executed;
    for (const TraceEvent& e : session->trace().events()) {
      executed.push_back(e.transducer);
    }
    return std::make_pair(rows, executed);
  };

  WranglerConfig sequential;
  auto expected = run_session(sequential);
  EXPECT_FALSE(expected.first.empty());

  WranglerConfig parallel;
  parallel.parallelism.threads = 4;
  parallel.parallelism.snapshot_cache = true;
  parallel.parallelism.parallel_chunk_threshold = 64;
  auto actual = run_session(parallel);

  EXPECT_EQ(expected.first, actual.first);
  EXPECT_EQ(expected.second, actual.second);
}

/// Chrome-trace export of a parallel run: spans recorded concurrently on
/// pool workers land on distinct lanes (distinct trace tids), and the
/// spans of each lane nest properly — concurrent dep checks never
/// interleave on one trace row, which is what makes the Perfetto view
/// readable.
TEST(ParallelEvalTest, ChromeTraceSeparatesPoolWorkerSpans) {
  PropertyUniverseOptions uopts;
  uopts.num_properties = 60;
  uopts.num_postcodes = 12;
  uopts.seed = 9;
  GroundTruth truth = GeneratePropertyUniverse(uopts);
  ExtractionErrorOptions err;
  err.seed = 11;
  Relation rightmove = ExtractRightmove(truth, err);

  WranglerConfig config;
  config.parallelism.threads = 3;
  WranglingSession session(config);
  ASSERT_TRUE(session
                  .SetTargetSchema(Schema::Untyped(
                      "target", {"type", "description", "street", "postcode",
                                 "bedrooms", "price", "crimerank"}))
                  .ok());
  ASSERT_TRUE(session.AddSource(rightmove).ok());
  ASSERT_TRUE(session.Run().ok());

  const obs::SpanCollector* collector = session.obs().spans();
  ASSERT_NE(collector, nullptr);
  std::vector<obs::SpanRecord> spans = collector->spans();
  ASSERT_FALSE(spans.empty());

  // Dependency checks ran on pool workers, so more than one thread
  // recorded spans.
  size_t dep_checks = 0;
  std::set<uint64_t> dep_check_lanes;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "dep_check") {
      ++dep_checks;
      dep_check_lanes.insert(s.lane);
    }
  }
  EXPECT_GT(dep_checks, 0u);
  EXPECT_GE(collector->lanes(), 2u);

  // Within one lane spans obey stack discipline: any two either nest or
  // are disjoint. Interleaving would mean two threads shared a lane.
  std::map<uint64_t, std::vector<obs::SpanRecord>> by_lane;
  for (const obs::SpanRecord& s : spans) by_lane[s.lane].push_back(s);
  for (const auto& [lane, lane_spans] : by_lane) {
    for (size_t i = 0; i < lane_spans.size(); ++i) {
      for (size_t j = i + 1; j < lane_spans.size(); ++j) {
        const obs::SpanRecord& a = lane_spans[i];
        const obs::SpanRecord& b = lane_spans[j];
        bool disjoint = a.end_ns <= b.start_ns || b.end_ns <= a.start_ns;
        bool a_in_b = b.start_ns <= a.start_ns && a.end_ns <= b.end_ns;
        bool b_in_a = a.start_ns <= b.start_ns && b.end_ns <= a.end_ns;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "lane " << lane << ": spans " << a.name << " and " << b.name
            << " interleave";
      }
    }
  }

  // The export maps lanes to consecutive tids, so worker spans get their
  // own trace rows.
  obs::ChromeTraceBuilder builder;
  builder.AddSpans(*collector, /*tid=*/2);
  std::string json = builder.ToJson();
  std::set<std::string> tids;
  size_t pos = 0;
  while ((pos = json.find("\"tid\":", pos)) != std::string::npos) {
    pos += 6;
    size_t end = json.find_first_of(",}", pos);
    tids.insert(json.substr(pos, end - pos));
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(collector->lanes()));
  EXPECT_TRUE(tids.count("2") == 1);
  EXPECT_TRUE(tids.count("3") == 1);
}

}  // namespace
}  // namespace vada::datalog
