#include <gtest/gtest.h>

#include "feedback/feedback.h"
#include "feedback/propagation.h"

namespace vada {
namespace {

TEST(FeedbackStoreTest, AddAndQuery) {
  FeedbackStore store;
  EXPECT_TRUE(store.empty());
  store.Add(FeedbackItem{Tuple({Value::Int(1)}), "bedrooms",
                         FeedbackPolarity::kIncorrect});
  store.Add(FeedbackItem{Tuple({Value::Int(2)}), "",
                         FeedbackPolarity::kCorrect});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.ItemsForAttribute("bedrooms").size(), 1u);
  EXPECT_EQ(store.ItemsForAttribute("price").size(), 0u);
  store.Clear();
  EXPECT_TRUE(store.empty());
}

TEST(FeedbackStoreTest, ToRelation) {
  FeedbackStore store;
  store.Add(FeedbackItem{Tuple({Value::Int(1)}), "bedrooms",
                         FeedbackPolarity::kIncorrect});
  Relation rel = store.ToRelation();
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.rows()[0].at(1), Value::String("bedrooms"));
  EXPECT_EQ(rel.rows()[0].at(2), Value::String("incorrect"));
}

TEST(FeedbackItemTest, ToStringMentionsPolarityAndAttribute) {
  FeedbackItem item{Tuple({Value::Int(1)}), "bedrooms",
                    FeedbackPolarity::kIncorrect};
  std::string s = item.ToString();
  EXPECT_NE(s.find("bedrooms"), std::string::npos);
  EXPECT_NE(s.find("incorrect"), std::string::npos);
}

class PropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mapping_.id = "m0";
    mapping_.source_relations = {"rightmove"};
    mapping_.target_relation = "target";
    mapping_.covered_attributes = {"bedrooms", "price"};
    mapping_.result_predicate = "mapping_result_m0";

    Relation result(Schema::Untyped("mapping_result_m0",
                                    {"bedrooms", "price"}));
    tuple_ = Tuple({Value::Int(25), Value::Int(100000)});
    EXPECT_TRUE(result.InsertUnchecked(tuple_).ok());
    results_.emplace("m0", std::move(result));

    matches_ = {
        {"rightmove", "bedrooms", "target", "bedrooms", 0.9, "combined"},
        {"rightmove", "price", "target", "price", 0.9, "combined"},
        {"other", "bedrooms", "target", "bedrooms", 0.8, "combined"},
    };
  }

  Mapping mapping_;
  Tuple tuple_;
  std::map<std::string, Relation> results_;
  std::vector<MatchCandidate> matches_;
};

TEST_F(PropagationTest, AttributeFeedbackPenalizesFeedingMatch) {
  FeedbackPropagator propagator;
  std::vector<FeedbackItem> items = {
      {tuple_, "bedrooms", FeedbackPolarity::kIncorrect}};
  Result<PropagationResult> out =
      propagator.Propagate(items, {mapping_}, results_, matches_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().matches_penalized, 1u);
  // rightmove.bedrooms penalized; price and the unrelated source intact.
  EXPECT_LT(out.value().revised_matches[0].score, 0.9);
  EXPECT_DOUBLE_EQ(out.value().revised_matches[1].score, 0.9);
  EXPECT_DOUBLE_EQ(out.value().revised_matches[2].score, 0.8);
}

TEST_F(PropagationTest, CorrectFeedbackReinforces) {
  FeedbackPropagator propagator;
  std::vector<FeedbackItem> items = {
      {tuple_, "bedrooms", FeedbackPolarity::kCorrect}};
  Result<PropagationResult> out =
      propagator.Propagate(items, {mapping_}, results_, matches_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().matches_reinforced, 1u);
  EXPECT_GT(out.value().revised_matches[0].score, 0.9);
  EXPECT_LE(out.value().revised_matches[0].score, 1.0);
}

TEST_F(PropagationTest, RepeatedIncorrectCompounds) {
  FeedbackPropagator propagator;
  std::vector<FeedbackItem> one = {
      {tuple_, "bedrooms", FeedbackPolarity::kIncorrect}};
  std::vector<FeedbackItem> three = {
      {tuple_, "bedrooms", FeedbackPolarity::kIncorrect},
      {tuple_, "bedrooms", FeedbackPolarity::kIncorrect},
      {tuple_, "bedrooms", FeedbackPolarity::kIncorrect}};
  double after_one = propagator.Propagate(one, {mapping_}, results_, matches_)
                         .value()
                         .revised_matches[0]
                         .score;
  double after_three =
      propagator.Propagate(three, {mapping_}, results_, matches_)
          .value()
          .revised_matches[0]
          .score;
  EXPECT_LT(after_three, after_one);
}

TEST_F(PropagationTest, TupleLevelFeedbackSpreadsWeaker) {
  FeedbackPropagator propagator;
  std::vector<FeedbackItem> attribute_level = {
      {tuple_, "bedrooms", FeedbackPolarity::kIncorrect}};
  std::vector<FeedbackItem> tuple_level = {
      {tuple_, "", FeedbackPolarity::kIncorrect}};
  double attr_score =
      propagator.Propagate(attribute_level, {mapping_}, results_, matches_)
          .value()
          .revised_matches[0]
          .score;
  Result<PropagationResult> tup =
      propagator.Propagate(tuple_level, {mapping_}, results_, matches_);
  ASSERT_TRUE(tup.ok());
  double tup_score = tup.value().revised_matches[0].score;
  EXPECT_LT(attr_score, tup_score);  // attribute feedback hits harder
  EXPECT_LT(tup_score, 0.9);         // but tuple feedback still counts
  // Tuple-level feedback also hits the price match (spread).
  EXPECT_LT(tup.value().revised_matches[1].score, 0.9);
  // Source correctness tracked from tuple-level items.
  ASSERT_EQ(tup.value().source_correctness.count("rightmove"), 1u);
  EXPECT_DOUBLE_EQ(tup.value().source_correctness.at("rightmove"), 0.0);
}

TEST_F(PropagationTest, FeedbackOnUnknownTupleIsNoop) {
  FeedbackPropagator propagator;
  std::vector<FeedbackItem> items = {
      {Tuple({Value::Int(999), Value::Int(1)}), "bedrooms",
       FeedbackPolarity::kIncorrect}};
  Result<PropagationResult> out =
      propagator.Propagate(items, {mapping_}, results_, matches_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().matches_penalized, 0u);
  EXPECT_DOUBLE_EQ(out.value().revised_matches[0].score, 0.9);
}

TEST_F(PropagationTest, NoFeedbackNoChange) {
  FeedbackPropagator propagator;
  Result<PropagationResult> out =
      propagator.Propagate({}, {mapping_}, results_, matches_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().matches_penalized, 0u);
  EXPECT_EQ(out.value().matches_reinforced, 0u);
}

}  // namespace
}  // namespace vada
