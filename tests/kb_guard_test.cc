#include "kb/write_guard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "kb/delta_log.h"
#include "kb/knowledge_base.h"

namespace vada {
namespace {

KnowledgeBase MakeKb() {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("a", {"x", "y"})).ok());
  EXPECT_TRUE(kb.Insert("a", {Value::Int(1), Value::String("one")}).ok());
  EXPECT_TRUE(kb.Insert("a", {Value::Int(2), Value::String("two")}).ok());
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("b", {"z"})).ok());
  EXPECT_TRUE(kb.Insert("b", {Value::String("keep")}).ok());
  kb.catalog().SetRole("a", RelationRole::kSource);
  return kb;
}

/// Byte-level fingerprint of everything rollback promises to restore:
/// relation names, row contents *and order*, per-relation versions, the
/// global version, the lifetime facts counters, and catalog roles.
struct KbFingerprint {
  std::vector<std::string> relations;
  std::map<std::string, std::vector<Tuple>> rows;
  std::map<std::string, uint64_t> versions;
  uint64_t global_version = 0;
  uint64_t facts_added = 0;
  uint64_t facts_removed = 0;
  std::map<std::string, std::string> roles;
};

KbFingerprint Fingerprint(const KnowledgeBase& kb) {
  KbFingerprint fp;
  fp.relations = kb.RelationNames();
  for (const std::string& name : fp.relations) {
    const Relation* rel = kb.FindRelation(name);
    fp.rows[name] = rel->rows();
    fp.versions[name] = kb.relation_version(name);
    std::optional<RelationRole> role = kb.catalog().GetRole(name);
    if (role.has_value()) fp.roles[name] = RelationRoleName(*role);
  }
  fp.global_version = kb.global_version();
  fp.facts_added = kb.facts_added();
  fp.facts_removed = kb.facts_removed();
  return fp;
}

void ExpectIdentical(const KbFingerprint& before, const KbFingerprint& after) {
  EXPECT_EQ(before.relations, after.relations);
  EXPECT_EQ(before.rows, after.rows);
  EXPECT_EQ(before.versions, after.versions);
  EXPECT_EQ(before.global_version, after.global_version);
  EXPECT_EQ(before.facts_added, after.facts_added);
  EXPECT_EQ(before.facts_removed, after.facts_removed);
  EXPECT_EQ(before.roles, after.roles);
}

TEST(WriteGuardTest, RollbackRestoresKbExactly) {
  KnowledgeBase kb = MakeKb();
  KbFingerprint before = Fingerprint(kb);
  {
    WriteGuard guard(&kb);
    // Touch the KB every way a transducer can.
    ASSERT_TRUE(kb.Insert("a", {Value::Int(3), Value::String("three")}).ok());
    ASSERT_TRUE(kb.Retract("a", {Value::Int(1), Value::String("one")}).ok());
    ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("fresh", {"w"})).ok());
    ASSERT_TRUE(kb.Insert("fresh", {Value::Int(9)}).ok());
    ASSERT_TRUE(kb.ClearRelation("b").ok());
    kb.catalog().SetRole("fresh", RelationRole::kMetadata);
    ASSERT_NE(kb.global_version(), before.global_version);
    guard.Rollback();
  }
  ExpectIdentical(before, Fingerprint(kb));
  EXPECT_FALSE(kb.HasRelation("fresh"));
}

TEST(WriteGuardTest, DestructorRollsBackByDefault) {
  KnowledgeBase kb = MakeKb();
  KbFingerprint before = Fingerprint(kb);
  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.Insert("a", {Value::Int(3), Value::String("three")}).ok());
    // No Commit(): leaving scope must undo the insert.
  }
  ExpectIdentical(before, Fingerprint(kb));
}

TEST(WriteGuardTest, CommitKeepsWrites) {
  KnowledgeBase kb = MakeKb();
  uint64_t version_before = kb.global_version();
  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.Insert("a", {Value::Int(3), Value::String("three")}).ok());
    EXPECT_EQ(guard.touched_relations(), 1u);
    guard.Commit();
    EXPECT_FALSE(guard.active());
  }
  EXPECT_EQ(kb.FindRelation("a")->size(), 3u);
  EXPECT_GT(kb.global_version(), version_before);
}

TEST(WriteGuardTest, RollbackRestoresRowOrder) {
  KnowledgeBase kb = MakeKb();
  std::vector<Tuple> order_before = kb.FindRelation("a")->rows();
  {
    WriteGuard guard(&kb);
    Relation replacement(Schema::Untyped("a", {"x", "y"}));
    ASSERT_TRUE(
        replacement.InsertUnchecked({Value::Int(2), Value::String("two")})
            .ok());
    ASSERT_TRUE(
        replacement.InsertUnchecked({Value::Int(1), Value::String("one")})
            .ok());
    ASSERT_TRUE(kb.ReplaceRelation(replacement).ok());
  }
  EXPECT_EQ(kb.FindRelation("a")->rows(), order_before);
}

TEST(WriteGuardTest, DroppedRelationIsResurrected) {
  KnowledgeBase kb = MakeKb();
  KbFingerprint before = Fingerprint(kb);
  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.DropRelation("a").ok());
    ASSERT_FALSE(kb.HasRelation("a"));
  }
  ExpectIdentical(before, Fingerprint(kb));
}

TEST(WriteGuardTest, UntouchedRelationsAreNotSnapshotted) {
  KnowledgeBase kb = MakeKb();
  WriteGuard guard(&kb);
  EXPECT_EQ(guard.touched_relations(), 0u);
  ASSERT_TRUE(kb.Insert("a", {Value::Int(3), Value::String("x")}).ok());
  ASSERT_TRUE(kb.Insert("a", {Value::Int(4), Value::String("y")}).ok());
  EXPECT_EQ(guard.touched_relations(), 1u);  // copy-on-write: once per rel
  guard.Commit();
}

TEST(WriteGuardTest, RollbackIsIdempotentAndNoOpAfterCommit) {
  KnowledgeBase kb = MakeKb();
  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.Insert("a", {Value::Int(3), Value::String("x")}).ok());
    guard.Commit();
    guard.Rollback();  // must be a no-op now
    guard.Rollback();
  }
  EXPECT_EQ(kb.FindRelation("a")->size(), 3u);
  EXPECT_FALSE(kb.HasActiveGuard());
}

/// Rollback must rewind an attached DeltaLog too: without it, the
/// aborted transaction's records survive as phantom deltas, and —
/// because rollback rewinds the version counter — later committed
/// writes would reuse the same version numbers and alias onto them.
/// Incremental consumers reading Since(v) would then maintain state
/// the KB never held (DESIGN.md §5k).
TEST(WriteGuardTest, RollbackRewindsAttachedDeltaLog) {
  KnowledgeBase kb = MakeKb();
  DeltaLog log;
  kb.AttachDeltaLog(&log);
  const uint64_t v0 = kb.global_version();
  const uint64_t epoch0 = log.rewind_epoch();
  ASSERT_TRUE(kb.Insert("a", {Value::Int(7), Value::String("pre")}).ok());
  const uint64_t v1 = kb.global_version();
  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.Insert("a", {Value::Int(8), Value::String("tx")}).ok());
    ASSERT_TRUE(kb.Retract("a", {Value::Int(1), Value::String("one")}).ok());
    ASSERT_TRUE(kb.ClearRelation("b").ok());
    // No Commit(): everything above must vanish from the log.
  }
  std::optional<DeltaLog::RelationDelta> a = log.Since("a", v1);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->inserts.empty());
  EXPECT_TRUE(a->retracts.empty());
  std::optional<DeltaLog::RelationDelta> b = log.Since("b", v1);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->inserts.empty());
  EXPECT_TRUE(b->retracts.empty());
  // The pre-guard committed insert survives the rewind.
  std::optional<DeltaLog::RelationDelta> committed = log.Since("a", v0);
  ASSERT_TRUE(committed.has_value());
  ASSERT_EQ(committed->inserts.size(), 1u);
  EXPECT_EQ(committed->inserts[0],
            Tuple({Value::Int(7), Value::String("pre")}));
  // Rollback bumps the rewind epoch so stateful consumers (which cache
  // version watermarks) know to re-seed rather than trust Since().
  EXPECT_GT(log.rewind_epoch(), epoch0);
  // Committed writes after the rollback reuse the rewound version
  // numbers; the log must report exactly them, nothing phantom.
  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.Insert("a", {Value::Int(9), Value::String("post")}).ok());
    guard.Commit();
  }
  std::optional<DeltaLog::RelationDelta> after = log.Since("a", v1);
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->inserts.size(), 1u);
  EXPECT_EQ(after->inserts[0], Tuple({Value::Int(9), Value::String("post")}));
  EXPECT_TRUE(after->retracts.empty());
}

TEST(WriteGuardTest, SequentialGuardsOnOneKb) {
  KnowledgeBase kb = MakeKb();
  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.Insert("a", {Value::Int(3), Value::String("x")}).ok());
  }  // rolled back
  EXPECT_FALSE(kb.HasActiveGuard());
  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.Insert("a", {Value::Int(3), Value::String("x")}).ok());
    guard.Commit();
  }
  EXPECT_EQ(kb.FindRelation("a")->size(), 3u);
}

}  // namespace
}  // namespace vada
