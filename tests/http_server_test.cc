// Live introspection server (DESIGN.md §5g): the dependency-free HTTP
// exposition loop, its routes, and the ObsContext wiring. Every test
// binds port 0 (kernel-assigned ephemeral) so runs never collide.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/session_registry.h"

namespace vada::obs {
namespace {

// Blocking GET against 127.0.0.1:`port`; returns the raw response text
// (status line, headers, body), empty on socket failure.
std::string Get(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::string response;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
      ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      response.append(buf, static_cast<size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(HttpServerTest, ServesRegisteredRoutesAndResolvesEphemeralPort) {
  HttpServer server;
  server.Handle("/hello", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "hi " + request.method + " " + request.path;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  std::string response = Get(server.port(), "/hello");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_EQ(Body(response), "hi GET /hello");
  EXPECT_EQ(server.requests_served(), 1u);

  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  server.Stop();  // idempotent
}

TEST(HttpServerTest, UnknownPathIs404AndRootListsRoutes) {
  HttpServer server;
  server.Handle("/metrics", [](const HttpRequest&) { return HttpResponse(); });
  ASSERT_TRUE(server.Start(0).ok());

  std::string missing = Get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  std::string index = Get(server.port(), "/");
  EXPECT_NE(index.find("200"), std::string::npos) << index;
  EXPECT_NE(Body(index).find("/metrics"), std::string::npos) << index;
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(HttpServerTest, ConcurrentClientsAllGetAnswers) {
  HttpServer server;
  server.Handle("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &responses, i] {
      responses[i] = Get(server.port(), "/healthz");
    });
  }
  for (std::thread& t : clients) t.join();
  for (const std::string& response : responses) {
    EXPECT_EQ(Body(response), "ok\n");
  }
  EXPECT_EQ(server.requests_served(), static_cast<uint64_t>(kClients));
}

// The full ObsContext wiring: /metrics, /healthz, /sessions and /trace
// all answer, with the right content types and fresh data.
TEST(ObsHttpTest, ContextServesAllIntrospectionRoutes) {
  SessionRegistry sessions;
  ObsOptions options;
  options.http_port = 0;
  options.sessions = &sessions;
  ObsContext ctx(options);
  ASSERT_NE(ctx.http_server(), nullptr);
  const uint16_t port = ctx.http_port();
  ASSERT_NE(port, 0);

  std::string health = Get(port, "/healthz");
  EXPECT_EQ(Body(health), "ok\n");

  ctx.metrics()->GetCounter("vada_test_scrapes", "test")->Increment(3);
  auto handle = sessions.Register("test-session");
  SessionSnapshot snapshot;
  snapshot.name = "test-session";
  snapshot.fields = {{"relations", "2"}};
  handle.Update(std::move(snapshot));

  std::string metrics = Get(port, "/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos)
      << metrics;
  EXPECT_NE(Body(metrics).find("vada_test_scrapes 3"), std::string::npos);
  // Process gauges are refreshed per scrape (memory accounting tentpole).
  EXPECT_NE(Body(metrics).find("vada_process_peak_rss_bytes"),
            std::string::npos);
  // The server exports its own request counter; by this scrape it has
  // answered at least the /healthz request.
  EXPECT_NE(Body(metrics).find("vada_obs_http_requests"), std::string::npos);

  std::string sessions_response = Get(port, "/sessions");
  EXPECT_NE(sessions_response.find("application/json"), std::string::npos);
  std::string sessions_body = Body(sessions_response);
  std::string error;
  EXPECT_TRUE(JsonLint(sessions_body, &error)) << error;
  EXPECT_NE(sessions_body.find("\"name\":\"test-session\""),
            std::string::npos);
  EXPECT_NE(sessions_body.find("\"relations\":\"2\""), std::string::npos);

  {
    ScopedSpan span(ctx.spans(), nullptr, "probe", "test");
  }
  std::string trace_body = Body(Get(port, "/trace"));
  EXPECT_TRUE(JsonLint(trace_body, &error)) << error;
  EXPECT_NE(trace_body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace_body.find("\"name\":\"probe\""), std::string::npos);
}

TEST(ObsHttpTest, NoServerUnlessPortConfigured) {
  ObsContext defaults;  // http_port = -1
  EXPECT_EQ(defaults.http_server(), nullptr);
  EXPECT_EQ(defaults.http_port(), 0);

  ObsOptions disabled;
  disabled.enabled = false;
  disabled.http_port = 0;  // ignored: observability is off
  ObsContext off(disabled);
  EXPECT_EQ(off.http_server(), nullptr);
}

TEST(ObsHttpTest, BindFailureDisablesServerWithoutFailingContext) {
  ObsOptions first_options;
  first_options.http_port = 0;
  ObsContext first(first_options);
  ASSERT_NE(first.http_server(), nullptr);

  // Same fixed port again: the second context must come up working, just
  // without the server (a wrangle never fails because a port is taken).
  ObsOptions second_options;
  second_options.http_port = static_cast<int>(first.http_port());
  ObsContext second(second_options);
  EXPECT_EQ(second.http_server(), nullptr);
  EXPECT_NE(second.metrics(), nullptr);
}

}  // namespace
}  // namespace vada::obs
