#include "datalog/snapshot_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "kb/knowledge_base.h"
#include "kb/write_guard.h"
#include "obs/metrics.h"
#include "transducer/network.h"

namespace vada::datalog {
namespace {

KnowledgeBase MakeKb() {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
  EXPECT_TRUE(kb.Assert("r", {Value::Int(1)}).ok());
  EXPECT_TRUE(kb.Assert("r", {Value::Int(2)}).ok());
  return kb;
}

TEST(SnapshotCacheTest, SecondGetAtSameVersionIsAHit) {
  KnowledgeBase kb = MakeKb();
  SnapshotCache cache;

  std::shared_ptr<const Database> s1 = cache.Get(kb, "r");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->FactCount("r"), 2u);

  std::shared_ptr<const Database> s2 = cache.Get(kb, "r");
  EXPECT_EQ(s1.get(), s2.get());  // the very same snapshot object

  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SnapshotCacheTest, MutationMovesVersionAndRebuildsSnapshot) {
  KnowledgeBase kb = MakeKb();
  SnapshotCache cache;

  std::shared_ptr<const Database> before = cache.Get(kb, "r");
  ASSERT_TRUE(kb.Assert("r", {Value::Int(3)}).ok());

  std::shared_ptr<const Database> after = cache.Get(kb, "r");
  ASSERT_NE(after, nullptr);
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(before->FactCount("r"), 2u);  // old snapshot is immutable
  EXPECT_EQ(after->FactCount("r"), 3u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(SnapshotCacheTest, MissingRelationReturnsNullAndIsNotCached) {
  KnowledgeBase kb = MakeKb();
  SnapshotCache cache;
  EXPECT_EQ(cache.Get(kb, "absent"), nullptr);
  EXPECT_EQ(cache.Get(kb, "absent"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SnapshotCacheTest, RollbackRestoresVersionSoCachedEntryStaysValid) {
  KnowledgeBase kb = MakeKb();
  SnapshotCache cache;
  std::shared_ptr<const Database> before = cache.Get(kb, "r");
  const uint64_t v_before = kb.relation_version("r");

  std::vector<std::string> touched;
  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.Assert("r", {Value::Int(99)}).ok());
    touched = guard.TouchedRelationNames();
    guard.Rollback();
  }
  ASSERT_EQ(touched, std::vector<std::string>{"r"});
  // Rollback restores contents *and* version counters together, so the
  // cached entry is still keyed correctly ...
  EXPECT_EQ(kb.relation_version("r"), v_before);
  std::shared_ptr<const Database> after = cache.Get(kb, "r");
  EXPECT_EQ(before.get(), after.get());
  EXPECT_EQ(cache.stats().hits, 1u);

  // ... and the orchestrator's defensive invalidation only costs one
  // rebuild with identical contents.
  for (const std::string& name : touched) cache.Invalidate(name);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  std::shared_ptr<const Database> rebuilt = cache.Get(kb, "r");
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rebuilt->facts("r"), before->facts("r"));
}

TEST(SnapshotCacheTest, CommittedGuardKeepsNewVersionVisible) {
  KnowledgeBase kb = MakeKb();
  SnapshotCache cache;
  std::shared_ptr<const Database> before = cache.Get(kb, "r");
  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.Assert("r", {Value::Int(42)}).ok());
    guard.Commit();
  }
  std::shared_ptr<const Database> after = cache.Get(kb, "r");
  ASSERT_NE(after, nullptr);
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(after->FactCount("r"), 3u);
}

TEST(SnapshotCacheTest, DropAndRecreateNeverReusesAVersionKey) {
  KnowledgeBase kb = MakeKb();
  SnapshotCache cache;
  std::shared_ptr<const Database> old_snapshot = cache.Get(kb, "r");
  ASSERT_EQ(old_snapshot->FactCount("r"), 2u);

  ASSERT_TRUE(kb.DropRelation("r").ok());
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
  ASSERT_TRUE(kb.Assert("r", {Value::Int(7)}).ok());

  // Versions are allocated from the global counter, so the recreated
  // relation's version can never collide with the cached key — the next
  // Get must observe the new contents, not the stale snapshot.
  std::shared_ptr<const Database> fresh = cache.Get(kb, "r");
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh.get(), old_snapshot.get());
  EXPECT_EQ(fresh->FactCount("r"), 1u);
  EXPECT_TRUE(fresh->Contains("r", Tuple({Value::Int(7)})));
}

TEST(SnapshotCacheTest, CatalogRoleChangeReachesCacheViaControlFacts) {
  KnowledgeBase kb = MakeKb();
  kb.catalog().SetRole("r", RelationRole::kSource);
  ASSERT_TRUE(NetworkTransducer::SyncControlFacts(&kb).ok());

  SnapshotCache cache;
  std::shared_ptr<const Database> roles1 = cache.Get(kb, "sys_relation_role");
  ASSERT_NE(roles1, nullptr);
  ASSERT_TRUE(roles1->Contains(
      "sys_relation_role",
      Tuple({Value::String("r"), Value::String("source")})));

  // A role change alone touches only the catalog; SyncControlFacts is
  // what re-materialises sys_relation_role and bumps its version, which
  // is exactly when cached dependency-scan snapshots must refresh.
  kb.catalog().SetRole("r", RelationRole::kReference);
  ASSERT_TRUE(NetworkTransducer::SyncControlFacts(&kb).ok());

  std::shared_ptr<const Database> roles2 = cache.Get(kb, "sys_relation_role");
  ASSERT_NE(roles2, nullptr);
  EXPECT_NE(roles1.get(), roles2.get());
  EXPECT_TRUE(roles2->Contains(
      "sys_relation_role",
      Tuple({Value::String("r"), Value::String("reference")})));
}

TEST(SnapshotCacheTest, InvalidateAndClear) {
  KnowledgeBase kb = MakeKb();
  SnapshotCache cache;
  (void)cache.Get(kb, "r");
  EXPECT_EQ(cache.size(), 1u);
  cache.Invalidate("r");
  EXPECT_EQ(cache.size(), 0u);
  cache.Invalidate("r");  // idempotent; counts only real evictions
  EXPECT_EQ(cache.stats().invalidations, 1u);
  (void)cache.Get(kb, "r");
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SnapshotCacheTest, CountersReceiveHitsAndMisses) {
  KnowledgeBase kb = MakeKb();
  obs::MetricsRegistry registry;
  obs::Counter* hits = registry.GetCounter("hits", "");
  obs::Counter* misses = registry.GetCounter("misses", "");
  SnapshotCache cache;
  cache.SetCounters(hits, misses);
  (void)cache.Get(kb, "r");
  (void)cache.Get(kb, "r");
  EXPECT_EQ(misses->value(), 1u);
  EXPECT_EQ(hits->value(), 1u);
}

TEST(SnapshotCacheTest, ConcurrentGetsAreConsistent) {
  KnowledgeBase kb = MakeKb();
  SnapshotCache cache;
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  pool.ParallelFor(256, [&](size_t) {
    std::shared_ptr<const Database> s = cache.Get(kb, "r");
    if (s == nullptr || s->FactCount("r") != 2) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
  const SnapshotCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 256u);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace vada::datalog
