#include <gtest/gtest.h>

#include "extract/open_government.h"
#include "extract/real_estate.h"
#include "quality/metrics.h"
#include "wrangler/session.h"

namespace vada {
namespace {

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<Value>>& rows) {
  Relation rel(Schema::Untyped(name, attrs));
  for (const std::vector<Value>& row : rows) {
    EXPECT_TRUE(rel.InsertUnchecked(Tuple(row)).ok());
  }
  return rel;
}

TEST(RelevanceMetricTest, CountsJointMatchesAgainstMaster) {
  Relation data = MakeRelation(
      "r", {"street", "postcode"},
      {{Value::String("High St"), Value::String("LS1")},
       {Value::String("Park Rd"), Value::String("LS2")},
       {Value::String("Park Rd"), Value::String("WRONG")},  // joint mismatch
       {Value::Null(), Value::String("LS1")}});             // unidentifiable
  Relation master = MakeRelation(
      "wanted", {"str", "pc"},
      {{Value::String("High St"), Value::String("LS1")},
       {Value::String("Park Rd"), Value::String("LS2")}});
  QualityEstimator estimator;
  estimator.SetMaster(&master,
                      {{"street", "str"}, {"postcode", "pc"}});
  RelationQuality q = estimator.Estimate(data);
  ASSERT_TRUE(q.relevance.has_value());
  EXPECT_DOUBLE_EQ(*q.relevance, 0.5);  // 2 of 4 rows identified in master
}

TEST(RelevanceMetricTest, AbsentWithoutMaster) {
  Relation data = MakeRelation("r", {"a"}, {{Value::Int(1)}});
  QualityEstimator estimator;
  EXPECT_FALSE(estimator.Estimate(data).relevance.has_value());
}

TEST(RelevanceMetricTest, FactsIncludeRelevance) {
  Relation data = MakeRelation("r", {"street"}, {{Value::String("High St")}});
  Relation master = MakeRelation("wanted", {"str"},
                                 {{Value::String("High St")}});
  QualityEstimator estimator;
  estimator.SetMaster(&master, {{"street", "str"}});
  std::vector<QualityMetricFact> facts = estimator.EstimateFacts(data, "m0");
  bool found = false;
  for (const QualityMetricFact& f : facts) {
    if (f.metric == "relevance") {
      found = true;
      EXPECT_DOUBLE_EQ(f.value, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MasterDataSessionTest, MasterContextYieldsRelevanceMetrics) {
  PropertyUniverseOptions uopts;
  uopts.num_properties = 80;
  uopts.num_postcodes = 12;
  uopts.seed = 55;
  GroundTruth truth = GeneratePropertyUniverse(uopts);
  ExtractionErrorOptions eopts;
  eopts.seed = 2;
  Relation rightmove = ExtractRightmove(truth, eopts);

  // Master data: the user only cares about a handful of streets.
  Relation master(Schema::Untyped("portfolio", {"street_name"}));
  size_t added = 0;
  for (const Tuple& row : truth.properties.rows()) {
    if (added >= 5) break;
    bool is_new = false;
    ASSERT_TRUE(master.InsertUnchecked(Tuple({row.at(1)}), &is_new).ok());
    if (is_new) ++added;
  }

  WranglingSession session;
  ASSERT_TRUE(session
                  .SetTargetSchema(Schema::Untyped(
                      "target", {"type", "description", "street", "postcode",
                                 "bedrooms", "price", "crimerank"}))
                  .ok());
  ASSERT_TRUE(session.AddSource(rightmove).ok());
  ASSERT_TRUE(session
                  .AddDataContext(master, RelationRole::kMaster,
                                  {{"street", "street_name"}})
                  .ok());
  Status s = session.Run();
  ASSERT_TRUE(s.ok()) << s.ToString();

  const Relation* metrics = session.kb().FindRelation("quality_metric");
  ASSERT_NE(metrics, nullptr);
  bool found_relevance = false;
  for (const Tuple& row : metrics->rows()) {
    if (row.at(1) == Value::String("relevance")) {
      found_relevance = true;
      std::optional<double> v = row.at(3).AsDouble();
      ASSERT_TRUE(v.has_value());
      EXPECT_GT(*v, 0.0);
      EXPECT_LT(*v, 1.0);  // only part of the portfolio is listed
    }
  }
  EXPECT_TRUE(found_relevance);
}

TEST(MasterDataSessionTest, UserContextCanPrioritiseRelevance) {
  // The relevance criterion is addressable from the user context like any
  // other metric ("relevance of the property table").
  UserContext uc;
  ASSERT_TRUE(uc.AddStatement("relevance", "property", "strongly",
                              "completeness", "property.price")
                  .ok());
  Result<CriterionWeights> w = uc.DeriveWeights();
  ASSERT_TRUE(w.ok());
  EXPECT_GT(w.value().Get(Criterion{"relevance", "property"}),
            w.value().Get(Criterion{"completeness", "property.price"}));
}

}  // namespace
}  // namespace vada
