// Deterministic crash-injection soak for the durability subsystem
// (DESIGN.md §5i): a seeded workload of standalone mutations, guarded
// transactions, catalog changes and checkpoints runs against a
// durability-attached KnowledgeBase while a shadow in-memory oracle
// records the digest of every committed state. A CrashInjector kills
// the run at a seeded physical-IO operation (optionally leaving a torn
// write); recovery must then reconstruct a KB byte-identical to *some*
// committed prefix the oracle saw — never a torn or uncommitted state.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kb/checkpoint.h"
#include "kb/durability.h"
#include "kb/fs_util.h"
#include "kb/wal.h"
#include "kb/write_guard.h"
#include "kb_digest_test_util.h"

namespace vada {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/vada_soak_" + name;
  EXPECT_TRUE(RemoveRecursively(dir).ok());
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

struct Op {
  enum Kind {
    kCreate,
    kInsert,
    kRetract,
    kClear,
    kDrop,
    kSetRole,
    kRemoveRole,
    kGuardStart,
    kGuardEnd,
    kCheckpoint,
  };
  Kind kind;
  std::string relation;
  Tuple tuple;
  RelationRole role = RelationRole::kMetadata;
  bool commit = false;  // kGuardEnd: commit vs rollback
};

// Values from a small domain so retracts and duplicate inserts actually
// hit, covering the no-op-never-logged paths too.
Value RandomValue(Rng* rng) {
  switch (rng->UniformInt(0, 4)) {
    case 0:
      return Value::Int(rng->UniformInt(-3, 3));
    case 1:
      return Value::Double(static_cast<double>(rng->UniformInt(0, 3)) * 0.5);
    case 2: {
      static const std::vector<std::string> kStrings = {
          "", "plain", "with \"quotes\"", "tab\tand\nnewline", "h\xc3\xa9llo"};
      return Value::String(kStrings[rng->Index(kStrings.size())]);
    }
    case 3:
      return Value::Bool(rng->Bernoulli(0.5));
    default:
      return Value::Null();
  }
}

Tuple RandomTuple(Rng* rng) {
  return Tuple({RandomValue(rng), RandomValue(rng)});
}

RelationRole RandomRole(Rng* rng) {
  return static_cast<RelationRole>(rng->UniformInt(0, 6));
}

// A fully deterministic workload: creates, inserts, retracts, clears,
// drops, role changes, guarded transactions (committed and rolled back)
// and explicit checkpoints. Guards contain only mutations of existing
// relations so the generator can track the live set without replaying.
std::vector<Op> MakeScript(uint64_t seed, size_t steps) {
  Rng rng(seed);
  std::vector<Op> script;
  std::vector<std::string> live;
  int next_id = 0;
  auto create = [&] {
    std::string name = "rel" + std::to_string(next_id++);
    live.push_back(name);
    script.push_back({Op::kCreate, name});
  };
  create();
  for (size_t i = 0; i < steps; ++i) {
    double draw = rng.UniformDouble();
    if (draw < 0.08) {
      create();
    } else if (draw < 0.40) {
      script.push_back({Op::kInsert, rng.Choice(live), RandomTuple(&rng)});
    } else if (draw < 0.50) {
      script.push_back({Op::kRetract, rng.Choice(live), RandomTuple(&rng)});
    } else if (draw < 0.55) {
      script.push_back({Op::kClear, rng.Choice(live)});
    } else if (draw < 0.59) {
      if (live.size() > 1) {
        size_t victim = rng.Index(live.size());
        script.push_back({Op::kDrop, live[victim]});
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      }
    } else if (draw < 0.68) {
      Op op{Op::kSetRole, rng.Choice(live)};
      op.role = RandomRole(&rng);
      script.push_back(op);
    } else if (draw < 0.72) {
      script.push_back({Op::kRemoveRole, rng.Choice(live)});
    } else if (draw < 0.92) {
      script.push_back({Op::kGuardStart});
      size_t inner_ops = static_cast<size_t>(rng.UniformInt(1, 4));
      for (size_t k = 0; k < inner_ops; ++k) {
        double inner = rng.UniformDouble();
        if (inner < 0.7) {
          script.push_back({Op::kInsert, rng.Choice(live), RandomTuple(&rng)});
        } else if (inner < 0.85) {
          script.push_back({Op::kClear, rng.Choice(live)});
        } else {
          Op op{Op::kSetRole, rng.Choice(live)};
          op.role = RandomRole(&rng);
          script.push_back(op);
        }
      }
      Op end{Op::kGuardEnd};
      end.commit = rng.Bernoulli(0.7);
      script.push_back(end);
    } else {
      script.push_back({Op::kCheckpoint});
    }
  }
  return script;
}

Status ApplyOp(KnowledgeBase* kb, const Op& op) {
  switch (op.kind) {
    case Op::kCreate:
      return kb->CreateRelation(Schema::Untyped(op.relation, {"a", "b"}));
    case Op::kInsert:
      return kb->Insert(op.relation, op.tuple);
    case Op::kRetract:
      return kb->Retract(op.relation, op.tuple);
    case Op::kClear:
      return kb->ClearRelation(op.relation);
    case Op::kDrop:
      return kb->DropRelation(op.relation);
    case Op::kSetRole:
      kb->catalog().SetRole(op.relation, op.role);
      return Status::OK();
    case Op::kRemoveRole:
      kb->catalog().Remove(op.relation);
      return Status::OK();
    default:
      return Status::Internal("not a plain mutation op");
  }
}

struct SoakResult {
  /// Digest of every committed state, in order; [0] is the empty KB.
  std::vector<std::string> digests;
  bool crashed = false;
};

// Runs `script` against `kb`, mirroring every committed effect onto a
// shadow in-memory KB and recording its digest at each commit boundary.
// Stops as soon as the durability manager reports the (simulated) crash.
SoakResult Execute(const std::vector<Op>& script, KnowledgeBase* kb,
                   DurabilityManager* mgr) {
  KnowledgeBase shadow;
  SoakResult out;
  out.digests.push_back(KbDigest(shadow));
  std::unique_ptr<WriteGuard> guard;
  std::vector<const Op*> pending;
  for (const Op& op : script) {
    if (mgr != nullptr && !mgr->status().ok()) {
      out.crashed = true;
      break;
    }
    switch (op.kind) {
      case Op::kGuardStart:
        guard = std::make_unique<WriteGuard>(kb);
        pending.clear();
        break;
      case Op::kGuardEnd:
        if (op.commit) {
          guard->Commit();
          for (const Op* inner : pending) {
            Status applied = ApplyOp(&shadow, *inner);
            EXPECT_TRUE(applied.ok()) << applied.ToString();
          }
          out.digests.push_back(KbDigest(shadow));
        } else {
          guard->Rollback();
        }
        guard.reset();
        break;
      case Op::kCheckpoint:
        // May die mid-protocol under injection; the sticky status stops
        // the workload on the next iteration, like any other crash.
        if (mgr != nullptr) mgr->Checkpoint();
        break;
      default: {
        Status applied = ApplyOp(kb, op);
        EXPECT_TRUE(applied.ok()) << applied.ToString();
        if (guard != nullptr) {
          pending.push_back(&op);
        } else {
          // Each standalone record is its own commit boundary. A drop of
          // a role-carrying relation writes two (role tombstone, then
          // drop), so the state between them is a legal recovery point.
          if (op.kind == Op::kDrop &&
              shadow.catalog().GetRole(op.relation).has_value()) {
            shadow.catalog().Remove(op.relation);
            out.digests.push_back(KbDigest(shadow));
          }
          Status mirrored = ApplyOp(&shadow, op);
          EXPECT_TRUE(mirrored.ok()) << mirrored.ToString();
          out.digests.push_back(KbDigest(shadow));
        }
        break;
      }
    }
  }
  // Crash mid-guard: the destructor rolls the in-memory KB back; the
  // poisoned WAL records nothing further.
  guard.reset();
  return out;
}

DurabilityOptions SoakOptions(const std::string& dir, CrashInjector* crash) {
  DurabilityOptions options;
  options.enabled = true;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  options.segment_bytes = 2048;  // rotate often: exercise multi-segment replay
  options.crash = crash;
  return options;
}

void ExpectRecoversToCommittedPrefix(const std::string& dir,
                                     const SoakResult& run,
                                     uint64_t seed) {
  KnowledgeBase kb;
  Result<std::unique_ptr<DurabilityManager>> mgr =
      DurabilityManager::Open(SoakOptions(dir, nullptr), &kb);
  ASSERT_TRUE(mgr.ok()) << "seed " << seed << ": " << mgr.status().ToString();
  std::string digest = KbDigest(kb);
  EXPECT_NE(std::find(run.digests.begin(), run.digests.end(), digest),
            run.digests.end())
      << "seed " << seed
      << ": recovered state is not a committed prefix:\n" << digest
      << "\nrecovery: " << mgr.value()->recovery().ToString();

  // Life goes on after recovery: new mutations are durable in turn.
  ASSERT_TRUE(kb.EnsureRelation(Schema::Untyped("post_recovery", {"a", "b"}))
                  .ok());
  ASSERT_TRUE(kb.Assert("post_recovery", {Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(mgr.value()->status().ok())
      << mgr.value()->status().ToString();
  std::string post = KbDigest(kb);
  mgr.value().reset();

  KnowledgeBase kb2;
  Result<std::unique_ptr<DurabilityManager>> again =
      DurabilityManager::Open(SoakOptions(dir, nullptr), &kb2);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(KbDigest(kb2), post) << "seed " << seed;
}

TEST(CrashRecoverySoakTest, TwentyFiveSeededKillPointSchedules) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::vector<Op> script = MakeScript(seed, 80);

    // Pass 1 (clean): count the physical durable-IO ops of the workload
    // so the kill point can be placed anywhere inside it.
    uint64_t total_ops = 0;
    {
      std::string dir = TempDir("count" + std::to_string(seed));
      CrashInjector counter;
      KnowledgeBase kb;
      Result<std::unique_ptr<DurabilityManager>> mgr =
          DurabilityManager::Open(SoakOptions(dir, &counter), &kb);
      ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
      SoakResult clean = Execute(script, &kb, mgr.value().get());
      EXPECT_FALSE(clean.crashed);
      EXPECT_TRUE(mgr.value()->status().ok())
          << mgr.value()->status().ToString();
      mgr.value().reset();
      total_ops = counter.ops();
      RemoveRecursively(dir);
    }
    ASSERT_GT(total_ops, 0u);

    // Pass 2: the same script killed at a seed-chosen operation, with a
    // seed-chosen fraction of the dying write left behind (torn write).
    Rng schedule_rng(seed * 7919);
    CrashInjector::Schedule schedule;
    schedule.kill_after_ops = 1 + schedule_rng.Index(total_ops);
    static const double kTornFractions[] = {0.0, 0.25, 0.5, 1.0};
    schedule.torn_fraction = kTornFractions[schedule_rng.Index(4)];
    CrashInjector crash(schedule);

    std::string dir = TempDir("soak" + std::to_string(seed));
    SoakResult run;
    {
      KnowledgeBase kb;
      Result<std::unique_ptr<DurabilityManager>> mgr =
          DurabilityManager::Open(SoakOptions(dir, &crash), &kb);
      if (mgr.ok()) {
        run = Execute(script, &kb, mgr.value().get());
      } else {
        // Killed writing the very first segment header: nothing durable
        // ever existed, recovery must yield the empty KB.
        ASSERT_EQ(mgr.status().code(), StatusCode::kDataLoss)
            << mgr.status().ToString();
        KnowledgeBase empty;
        run.digests.push_back(KbDigest(empty));
        run.crashed = true;
      }
    }
    EXPECT_TRUE(crash.crashed())
        << "kill op " << schedule.kill_after_ops << " of " << total_ops;

    ExpectRecoversToCommittedPrefix(dir, run, seed);
    RemoveRecursively(dir);
  }
}

TEST(CrashRecoverySoakTest, CorruptionMatrix) {
  enum Mode {
    kTruncateTail = 0,
    kBitFlipWal,
    kBitFlipCheckpoint,
    kDeleteNewestCheckpoint,
    kModeCount,
  };
  static const char* kModeNames[] = {"truncate_tail", "bitflip_wal",
                                     "bitflip_checkpoint",
                                     "delete_newest_checkpoint"};
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    // A clean run with two forced trailing checkpoints and live WAL both
    // between and after them, so every corruption mode has a target.
    std::vector<Op> script = MakeScript(seed + 100, 60);
    script.push_back({Op::kCheckpoint});
    script.push_back({Op::kCreate, "zz_late"});
    script.push_back(
        {Op::kInsert, "zz_late", Tuple({Value::Int(1), Value::Int(2)})});
    script.push_back({Op::kCheckpoint});
    script.push_back(
        {Op::kInsert, "zz_late", Tuple({Value::Int(3), Value::Int(4)})});

    for (int mode = 0; mode < kModeCount; ++mode) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " mode " +
                   kModeNames[mode]);
      std::string dir = TempDir("matrix" + std::to_string(seed) + "_" +
                                std::to_string(mode));
      SoakResult run;
      {
        KnowledgeBase kb;
        Result<std::unique_ptr<DurabilityManager>> mgr =
            DurabilityManager::Open(SoakOptions(dir, nullptr), &kb);
        ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
        run = Execute(script, &kb, mgr.value().get());
        EXPECT_FALSE(run.crashed);
        ASSERT_TRUE(mgr.value()->status().ok())
            << mgr.value()->status().ToString();
      }

      std::vector<uint64_t> checkpoints = ListCheckpoints(dir);
      ASSERT_GE(checkpoints.size(), 2u);
      std::vector<uint64_t> segments = ListWalSegments(dir);
      ASSERT_FALSE(segments.empty());
      std::string last_segment =
          dir + "/wal-" + [&] {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%010llu",
                          static_cast<unsigned long long>(segments.back()));
            return std::string(buf);
          }() + ".log";
      Rng rng(seed * 31 + static_cast<uint64_t>(mode));

      switch (mode) {
        case kTruncateTail: {
          uint64_t size = FileSizeBytes(last_segment);
          ASSERT_GT(size, 23u);  // header + at least a partial frame
          ASSERT_EQ(::truncate(last_segment.c_str(),
                               static_cast<off_t>(size - 3)),
                    0);
          break;
        }
        case kBitFlipWal: {
          Result<std::string> data = ReadFileText(last_segment);
          ASSERT_TRUE(data.ok());
          ASSERT_GT(data.value().size(), 20u);
          std::string flipped = data.value();
          size_t at = 20 + rng.Index(flipped.size() - 20);
          flipped[at] ^= static_cast<char>(1 << rng.Index(8));
          ASSERT_TRUE(WriteFileText(last_segment, flipped).ok());
          break;
        }
        case kBitFlipCheckpoint: {
          std::string manifest = dir + "/" +
                                 CheckpointDirName(checkpoints.back()) +
                                 "/manifest.tsv";
          Result<std::string> data = ReadFileText(manifest);
          ASSERT_TRUE(data.ok());
          std::string flipped = data.value();
          flipped[rng.Index(flipped.size())] ^=
              static_cast<char>(1 << rng.Index(8));
          ASSERT_TRUE(WriteFileText(manifest, flipped).ok());
          break;
        }
        case kDeleteNewestCheckpoint:
          ASSERT_TRUE(RemoveCheckpoint(dir, checkpoints.back()).ok());
          break;
      }

      KnowledgeBase kb;
      Result<std::unique_ptr<DurabilityManager>> mgr =
          DurabilityManager::Open(SoakOptions(dir, nullptr), &kb);
      ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
      std::string digest = KbDigest(kb);
      if (mode == kBitFlipCheckpoint || mode == kDeleteNewestCheckpoint) {
        // The WAL survives intact, so falling back to the older
        // checkpoint loses nothing: recovery lands on the final state.
        EXPECT_EQ(digest, run.digests.back());
        if (mode == kBitFlipCheckpoint) {
          EXPECT_TRUE(mgr.value()->recovery().checkpoint_fallback);
        }
      } else {
        EXPECT_TRUE(mgr.value()->recovery().torn_tail);
        EXPECT_NE(std::find(run.digests.begin(), run.digests.end(), digest),
                  run.digests.end())
            << "recovered state is not a committed prefix:\n" << digest;
      }
      mgr.value().reset();
      RemoveRecursively(dir);
    }
  }
}

TEST(CrashRecoverySoakTest, FsyncPoliciesAllRecover) {
  // The fsync policy affects durability timing guarantees, not replay
  // correctness; the full workload must round-trip under each policy.
  for (FsyncPolicy policy : {FsyncPolicy::kNone, FsyncPolicy::kEveryCommit,
                             FsyncPolicy::kInterval}) {
    SCOPED_TRACE(FsyncPolicyName(policy));
    std::string dir = TempDir(std::string("fsync_") + FsyncPolicyName(policy));
    std::vector<Op> script = MakeScript(4242, 40);
    SoakResult run;
    {
      KnowledgeBase kb;
      DurabilityOptions options = SoakOptions(dir, nullptr);
      options.fsync = policy;
      Result<std::unique_ptr<DurabilityManager>> mgr =
          DurabilityManager::Open(options, &kb);
      ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
      run = Execute(script, &kb, mgr.value().get());
      ASSERT_TRUE(mgr.value()->status().ok());
    }
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(SoakOptions(dir, nullptr), &kb);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    EXPECT_EQ(KbDigest(kb), run.digests.back());
    mgr.value().reset();
    RemoveRecursively(dir);
  }
}

}  // namespace
}  // namespace vada
