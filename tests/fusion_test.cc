#include <gtest/gtest.h>

#include "fusion/dedup.h"
#include "fusion/fuser.h"

namespace vada {
namespace {

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<Value>>& rows) {
  Relation rel(Schema::Untyped(name, attrs));
  for (const std::vector<Value>& row : rows) {
    EXPECT_TRUE(rel.InsertUnchecked(Tuple(row)).ok());
  }
  return rel;
}

Relation Listings() {
  return MakeRelation(
      "r", {"street", "postcode", "price"},
      {
          {Value::String("12 High St"), Value::String("LS1"), Value::Int(100000)},
          {Value::String("12 High  St"), Value::String("LS1"), Value::Int(100500)},
          {Value::String("7 Park Rd"), Value::String("LS2"), Value::Int(200000)},
          {Value::String("99 Mill Ln"), Value::String("LS1"), Value::Int(500000)},
      });
}

TEST(DuplicateDetectorTest, FindsNearDuplicatesWithinBlock) {
  DedupOptions opts;
  opts.blocking_attributes = {"postcode"};
  opts.threshold = 0.85;
  DuplicateDetector detector(opts);
  Relation rel = Listings();
  Result<std::vector<DuplicatePair>> pairs = detector.FindDuplicates(rel);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  ASSERT_EQ(pairs.value().size(), 1u);
  EXPECT_EQ(pairs.value()[0].row_a, 0u);
  EXPECT_EQ(pairs.value()[0].row_b, 1u);
  EXPECT_GT(pairs.value()[0].similarity, 0.85);
}

TEST(DuplicateDetectorTest, BlockingPreventsCrossBlockComparison) {
  // Identical rows in different postcodes are never compared.
  Relation rel = MakeRelation(
      "r", {"street", "postcode"},
      {{Value::String("Same St"), Value::String("A")},
       {Value::String("Same St"), Value::String("B")}});
  DedupOptions opts;
  opts.blocking_attributes = {"postcode"};
  opts.threshold = 0.5;
  DuplicateDetector detector(opts);
  Result<std::vector<DuplicatePair>> pairs = detector.FindDuplicates(rel);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs.value().empty());
}

TEST(DuplicateDetectorTest, UnknownBlockingAttributeFails) {
  DedupOptions opts;
  opts.blocking_attributes = {"nope"};
  DuplicateDetector detector(opts);
  EXPECT_FALSE(detector.FindDuplicates(Listings()).ok());
}

TEST(DuplicateDetectorTest, NullBlockingKeysLeftUnpaired) {
  Relation rel = MakeRelation("r", {"street", "postcode"},
                              {{Value::String("A St"), Value::Null()},
                               {Value::String("A St"), Value::Null()}});
  DedupOptions opts;
  opts.blocking_attributes = {"postcode"};
  opts.threshold = 0.1;
  DuplicateDetector detector(opts);
  Result<std::vector<DuplicatePair>> pairs = detector.FindDuplicates(rel);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs.value().empty());
}

TEST(DuplicateDetectorTest, RecordSimilarityNumericCloseness) {
  Relation rel = MakeRelation("r", {"price"},
                              {{Value::Int(100000)}, {Value::Int(100500)},
                               {Value::Int(999)}});
  DuplicateDetector detector;
  // 0.5% price difference sits well inside the 5% similarity band...
  EXPECT_GT(detector.RecordSimilarity(rel, 0, 1), 0.85);
  // ...while a 100x difference scores zero.
  EXPECT_LT(detector.RecordSimilarity(rel, 0, 2), 0.05);
}

TEST(DuplicateDetectorTest, ClusterTransitivity) {
  // a~b and b~c should cluster {a,b,c} even if a!~c directly.
  Relation rel = MakeRelation(
      "r", {"street", "postcode"},
      {{Value::String("12 High Street"), Value::String("LS1")},
       {Value::String("12 High  Street"), Value::String("LS1")},
       {Value::String("12 High   Street"), Value::String("LS1")},
       {Value::String("99 Other Road"), Value::String("LS1")}});
  DedupOptions opts;
  opts.blocking_attributes = {"postcode"};
  opts.threshold = 0.9;
  DuplicateDetector detector(opts);
  Result<DuplicateClusters> clusters = detector.Cluster(rel);
  ASSERT_TRUE(clusters.ok());
  EXPECT_EQ(clusters.value().num_clusters, 2u);
  EXPECT_EQ(clusters.value().cluster_of[0], clusters.value().cluster_of[1]);
  EXPECT_EQ(clusters.value().cluster_of[1], clusters.value().cluster_of[2]);
  EXPECT_NE(clusters.value().cluster_of[0], clusters.value().cluster_of[3]);
}

TEST(FuserTest, CollapsesClustersAndResolvesConflicts) {
  // Rows are distinct (set semantics) but clustered together; price 100
  // holds the 2-vs-1 majority.
  Relation rel = MakeRelation(
      "r", {"street", "price"},
      {{Value::String("12 High St"), Value::Int(100)},
       {Value::String("12 High  St"), Value::Int(100)},
       {Value::String("12 High St."), Value::Int(200)}});
  DuplicateClusters clusters;
  clusters.cluster_of = {0, 0, 0};
  clusters.num_clusters = 1;
  Fuser fuser;
  FusionStats stats;
  Result<Relation> fused = fuser.Fuse(rel, clusters, "out", &stats);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  ASSERT_EQ(fused.value().size(), 1u);
  EXPECT_GE(stats.conflicts_resolved, 1u);
  EXPECT_EQ(fused.value().rows()[0].at(1), Value::Int(100));
}

TEST(FuserTest, WeightedVotesBreakTies) {
  Relation rel = MakeRelation("r", {"v"},
                              {{Value::Int(1)}, {Value::Int(2)}});
  DuplicateClusters clusters;
  clusters.cluster_of = {0, 0};
  clusters.num_clusters = 1;
  FusionOptions opts;
  opts.row_weights = {0.2, 0.9};  // second row more trusted
  Fuser fuser(opts);
  Result<Relation> fused = fuser.Fuse(rel, clusters, "out");
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused.value().rows()[0].at(0), Value::Int(2));
}

TEST(FuserTest, NullsFilledFromClusterMembers) {
  Relation rel = MakeRelation(
      "r", {"street", "crimerank"},
      {{Value::String("High St"), Value::Null()},
       {Value::String("High St"), Value::Int(7)}});
  DuplicateClusters clusters;
  clusters.cluster_of = {0, 0};
  clusters.num_clusters = 1;
  Fuser fuser;
  FusionStats stats;
  Result<Relation> fused = fuser.Fuse(rel, clusters, "out", &stats);
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ(fused.value().size(), 1u);
  EXPECT_EQ(fused.value().rows()[0].at(1), Value::Int(7));
  EXPECT_EQ(stats.nulls_filled, 1u);
}

TEST(FuserTest, SingletonClustersPassThrough) {
  Relation rel = Listings();
  DuplicateClusters clusters;
  clusters.cluster_of = {0, 1, 2, 3};
  clusters.num_clusters = 4;
  Fuser fuser;
  Result<Relation> fused = fuser.Fuse(rel, clusters, "out");
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused.value().size(), 4u);
}

TEST(FuserTest, SizeMismatchRejected) {
  Relation rel = Listings();
  DuplicateClusters clusters;
  clusters.cluster_of = {0};
  clusters.num_clusters = 1;
  Fuser fuser;
  EXPECT_FALSE(fuser.Fuse(rel, clusters, "out").ok());
  FusionOptions opts;
  opts.row_weights = {1.0};
  DuplicateClusters ok_clusters;
  ok_clusters.cluster_of = {0, 1, 2, 3};
  ok_clusters.num_clusters = 4;
  Fuser weighted(opts);
  EXPECT_FALSE(weighted.Fuse(rel, ok_clusters, "out").ok());
}

TEST(FusionEndToEndTest, DedupPlusFuseShrinksOverlap) {
  // Two portals listing overlapping properties with slight noise.
  Relation rel = MakeRelation(
      "r", {"street", "postcode", "price", "crimerank"},
      {
          {Value::String("12 High St"), Value::String("LS1"), Value::Int(100000),
           Value::Null()},
          {Value::String("12 High St"), Value::String("LS1"), Value::Int(100500),
           Value::Int(3)},
          {Value::String("7 Park Rd"), Value::String("LS2"), Value::Int(200000),
           Value::Null()},
      });
  DedupOptions opts;
  opts.blocking_attributes = {"postcode"};
  opts.threshold = 0.8;
  DuplicateDetector detector(opts);
  Result<DuplicateClusters> clusters = detector.Cluster(rel);
  ASSERT_TRUE(clusters.ok());
  Fuser fuser;
  Result<Relation> fused = fuser.Fuse(rel, clusters.value(), "out");
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ(fused.value().size(), 2u);
  // The fused High St row inherited the crimerank from its duplicate.
  for (const Tuple& row : fused.value().rows()) {
    if (row.at(0) == Value::String("12 High St")) {
      EXPECT_EQ(row.at(3), Value::Int(3));
    }
  }
}

}  // namespace
}  // namespace vada
