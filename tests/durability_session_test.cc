// End-to-end durability at the session layer: a wrangling session with
// `WranglerConfig::durability` enabled write-ahead-logs every KB commit;
// a new session on the same directory recovers the full knowledge base —
// sources, metadata, result — before any input is re-registered.

#include <gtest/gtest.h>

#include "extract/real_estate.h"
#include "kb/checkpoint.h"
#include "kb/fs_util.h"
#include "wrangler/session.h"
#include "kb_digest_test_util.h"

namespace vada {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/vada_dsess_" + name;
  EXPECT_TRUE(RemoveRecursively(dir).ok());
  return dir;  // DurabilityManager::Open creates it
}

Schema TargetSchema() {
  return Schema::Untyped("target",
                         {"type", "street", "postcode", "bedrooms", "price"});
}

WranglerConfig DurableConfig(const std::string& dir) {
  WranglerConfig config;
  config.durability.enabled = true;
  config.durability.directory = dir;
  config.durability.fsync = FsyncPolicy::kNone;  // tests: speed over safety
  return config;
}

class DurabilitySessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyUniverseOptions uopts;
    uopts.num_properties = 40;
    uopts.num_postcodes = 8;
    uopts.seed = 11;
    truth_ = GeneratePropertyUniverse(uopts);
    ExtractionErrorOptions rm;
    rm.seed = 7;
    rightmove_ = ExtractRightmove(truth_, rm);
  }

  Status Bootstrap(WranglingSession* session) {
    VADA_RETURN_IF_ERROR(session->SetTargetSchema(TargetSchema()));
    return session->AddSource(rightmove_);
  }

  GroundTruth truth_;
  Relation rightmove_{Schema()};
};

TEST_F(DurabilitySessionTest, SessionStateSurvivesRestart) {
  std::string dir = TempDir("restart");
  std::string digest;
  {
    WranglingSession session(DurableConfig(dir));
    ASSERT_TRUE(session.durability_open_status().ok())
        << session.durability_open_status().ToString();
    ASSERT_TRUE(Bootstrap(&session).ok());
    Status s = session.Run();
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_NE(session.result(), nullptr);
    EXPECT_GT(session.result()->size(), 0u);
    digest = KbDigest(session.kb());
  }
  {
    WranglingSession session(DurableConfig(dir));
    ASSERT_NE(session.durability(), nullptr);
    EXPECT_TRUE(session.durability()->recovery().recovered);
    EXPECT_EQ(KbDigest(session.kb()), digest);
    // The recovered KB is at the orchestration fixpoint: re-declaring the
    // same inputs and re-running is effect-free.
    ASSERT_TRUE(Bootstrap(&session).ok());
    OrchestrationStats stats;
    ASSERT_TRUE(session.Run(&stats).ok());
    EXPECT_EQ(stats.effective_steps, 0u);
    EXPECT_EQ(KbDigest(session.kb()), digest);
  }
}

TEST_F(DurabilitySessionTest, CheckpointApiAndRecoveryFromCheckpoint) {
  std::string dir = TempDir("checkpoint");
  std::string digest;
  {
    WranglingSession session(DurableConfig(dir));
    ASSERT_TRUE(Bootstrap(&session).ok());
    ASSERT_TRUE(session.Run().ok());
    Status ckpt = session.Checkpoint();
    ASSERT_TRUE(ckpt.ok()) << ckpt.ToString();
    EXPECT_FALSE(ListCheckpoints(dir).empty());
    digest = KbDigest(session.kb());
  }
  {
    WranglingSession session(DurableConfig(dir));
    ASSERT_NE(session.durability(), nullptr);
    EXPECT_GT(session.durability()->recovery().checkpoint_id, 0u);
    EXPECT_EQ(KbDigest(session.kb()), digest);
  }
}

TEST_F(DurabilitySessionTest, CheckpointRequiresDurability) {
  WranglingSession session;
  EXPECT_EQ(session.Checkpoint().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DurabilitySessionTest, OpenFailureSurfacesThroughRun) {
  // A durability directory that cannot be created: its parent is a file.
  std::string parent = testing::TempDir() + "/vada_dsess_not_a_dir";
  ASSERT_TRUE(RemoveRecursively(parent).ok());
  ASSERT_TRUE(WriteFileText(parent, "occupied").ok());
  WranglerConfig config = DurableConfig(parent + "/wal");
  WranglingSession session(config);
  EXPECT_FALSE(session.durability_open_status().ok());
  ASSERT_TRUE(session.SetTargetSchema(TargetSchema()).ok());
  EXPECT_FALSE(session.Run().ok());
  EXPECT_FALSE(session.Checkpoint().ok());
}

TEST_F(DurabilitySessionTest, MetricsExposeDurabilityFamilies) {
  std::string dir = TempDir("metrics");
  WranglingSession session(DurableConfig(dir));
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  ASSERT_TRUE(session.Checkpoint().ok());
  SessionMetricsReport report = session.MetricsReport();
  ASSERT_FALSE(report.empty());
  EXPECT_GT(report.snapshot.Value("vada_wal_records_total"), 0.0);
  EXPECT_GT(report.snapshot.Value("vada_wal_bytes_total"), 0.0);
  EXPECT_GT(report.snapshot.Value("vada_wal_live_bytes"), 0.0);
  EXPECT_GT(report.snapshot.Value("vada_checkpoint_bytes"), 0.0);
  const obs::MetricSample* ckpt =
      report.snapshot.Find("vada_checkpoint_seconds", {});
  ASSERT_NE(ckpt, nullptr);
  EXPECT_EQ(ckpt->count, 1u);
  const obs::MetricSample* rec =
      report.snapshot.Find("vada_recovery_seconds", {});
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->count, 1u);
}

}  // namespace
}  // namespace vada
