#include <gtest/gtest.h>

#include "extract/open_government.h"
#include "extract/real_estate.h"
#include "obs/json.h"
#include "wrangler/evaluation.h"
#include "wrangler/session.h"

namespace vada {
namespace {

/// The paper's target schema (Figure 2(b)).
Schema TargetSchema() {
  return Schema::Untyped("target", {"type", "description", "street",
                                    "postcode", "bedrooms", "price",
                                    "crimerank"});
}

/// Fixture generating the Figure 2 demonstration scenario.
class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyUniverseOptions uopts;
    uopts.num_properties = 120;
    uopts.num_postcodes = 20;
    uopts.seed = 5;
    truth_ = GeneratePropertyUniverse(uopts);
    ExtractionErrorOptions rm;
    rm.seed = 101;
    rightmove_ = ExtractRightmove(truth_, rm);
    ExtractionErrorOptions otm;
    otm.seed = 202;
    otm.coverage = 0.6;
    onthemarket_ = ExtractOnthemarket(truth_, otm);
    deprivation_ = GenerateDeprivation(truth_);
    address_ = GenerateAddressReference(truth_);
  }

  /// Bootstrap inputs (paper step 1).
  Status Bootstrap(WranglingSession* session) {
    VADA_RETURN_IF_ERROR(session->SetTargetSchema(TargetSchema()));
    VADA_RETURN_IF_ERROR(session->AddSource(rightmove_));
    VADA_RETURN_IF_ERROR(session->AddSource(onthemarket_));
    VADA_RETURN_IF_ERROR(session->AddSource(deprivation_));
    return Status::OK();
  }

  Status AddAddressContext(WranglingSession* session) {
    return session->AddDataContext(
        address_, RelationRole::kReference,
        {{"street", "street"}, {"postcode", "postcode"}});
  }

  GroundTruth truth_;
  Relation rightmove_{Schema()};
  Relation onthemarket_{Schema()};
  Relation deprivation_{Schema()};
  Relation address_{Schema()};
};

TEST_F(SessionTest, RunWithoutTargetFails) {
  WranglingSession session;
  EXPECT_EQ(session.Run().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SessionTest, BootstrapProducesResult) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  OrchestrationStats stats;
  Status s = session.Run(&stats);
  ASSERT_TRUE(s.ok()) << s.ToString() << "\n" << session.trace().ToString();
  ASSERT_NE(session.result(), nullptr);
  EXPECT_GT(session.result()->size(), 0u);
  EXPECT_GT(stats.steps, 3u);
  // The result uses the target schema's attributes.
  EXPECT_EQ(session.result()->schema().AttributeNames(),
            TargetSchema().AttributeNames());
}

TEST_F(SessionTest, BootstrapGeneratesJoinMappings) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  bool has_join = false;
  for (const Mapping& m : session.mappings()) {
    if (m.source_relations.size() == 2) has_join = true;
  }
  EXPECT_TRUE(has_join) << "deprivation should join a property source";
}

TEST_F(SessionTest, RunIsIdempotentAtFixpoint) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  uint64_t version = session.kb().global_version();
  OrchestrationStats stats;
  ASSERT_TRUE(session.Run(&stats).ok());
  EXPECT_EQ(session.kb().global_version(), version);
  EXPECT_EQ(stats.effective_steps, 0u);
}

TEST_F(SessionTest, DataContextEnablesCfdLearningAndRepair) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  EXPECT_EQ(session.kb().FindRelation("cfd"), nullptr);

  ASSERT_TRUE(AddAddressContext(&session).ok());
  Status s = session.Run();
  ASSERT_TRUE(s.ok()) << s.ToString() << "\n" << session.trace().ToString();
  const Relation* cfds = session.kb().FindRelation("cfd");
  ASSERT_NE(cfds, nullptr);
  EXPECT_GT(cfds->size(), 0u) << "street->postcode should be learnable";
}

TEST_F(SessionTest, PayAsYouGoQualityImproves) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  ScenarioEvaluation step1 = EvaluateScenario(*session.result(), truth_);

  ASSERT_TRUE(AddAddressContext(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  ScenarioEvaluation step2 = EvaluateScenario(*session.result(), truth_);

  // Pay-as-you-go: more information must not materially worsen the
  // outcome, and must widen coverage. (Dimensions trade off: with
  // reference data the selector adds projection mappings, which raises
  // coverage while the newly covered rows lack crimerank values — the
  // equal-weight aggregate may dip within tolerance; step 4's user
  // context exists precisely to arbitrate this trade-off.)
  EXPECT_GE(step2.overall, step1.overall - 0.02);
  EXPECT_GT(step2.coverage, step1.coverage);
  EXPECT_GT(step2.rows, step1.rows);
}

TEST_F(SessionTest, FeedbackRevisesMatchScores) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(session.Run().ok());

  // Find a result row with implausible bedrooms and flag it.
  const Relation* result = session.result();
  ASSERT_NE(result, nullptr);
  std::optional<size_t> bed_idx = result->schema().AttributeIndex("bedrooms");
  ASSERT_TRUE(bed_idx.has_value());
  size_t flagged = 0;
  for (const Tuple& row : result->rows()) {
    std::optional<double> d = row.at(*bed_idx).AsDouble();
    if (d.has_value() && *d > 8.0) {
      ASSERT_TRUE(session
                      .AddFeedback(FeedbackItem{row, "bedrooms",
                                                FeedbackPolarity::kIncorrect})
                      .ok());
      if (++flagged >= 10) break;
    }
  }
  ASSERT_GT(flagged, 0u) << "expected some area-extraction errors";

  Status s = session.Run();
  ASSERT_TRUE(s.ok()) << s.ToString();
  const Relation* penalties = session.kb().FindRelation("match_penalty");
  ASSERT_NE(penalties, nullptr);
  EXPECT_GT(penalties->size(), 0u);
}

TEST_F(SessionTest, UserContextChangesSelection) {
  auto run_with_context = [this](bool crime_first) {
    WranglingSession session;
    EXPECT_TRUE(Bootstrap(&session).ok());
    EXPECT_TRUE(AddAddressContext(&session).ok());
    UserContext uc;
    if (crime_first) {
      // Figure 2(d): completeness of crimerank dominates.
      EXPECT_TRUE(uc.AddStatement("completeness", "crimerank", "very strongly",
                                  "completeness", "bedrooms")
                      .ok());
    } else {
      EXPECT_TRUE(uc.AddStatement("completeness", "bedrooms", "very strongly",
                                  "completeness", "crimerank")
                      .ok());
    }
    EXPECT_TRUE(session.SetUserContext(uc).ok());
    EXPECT_TRUE(session.Run().ok());
    return session.selected_mappings();
  };

  std::vector<std::string> crime_selection = run_with_context(true);
  std::vector<std::string> bedrooms_selection = run_with_context(false);
  ASSERT_FALSE(crime_selection.empty());
  ASSERT_FALSE(bedrooms_selection.empty());
  // Crimerank-priority must keep a join mapping (the only crimerank
  // provider) at the top.
  EXPECT_NE(crime_selection.front().find("join"), std::string::npos)
      << "crimerank priority should prefer a deprivation join";
}

TEST_F(SessionTest, TraceRecordsOrchestration) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  const ExecutionTrace& trace = session.trace();
  EXPECT_GT(trace.size(), 0u);
  std::map<std::string, size_t> counts = trace.ExecutionCounts();
  EXPECT_GT(counts["schema_matching"], 0u);
  EXPECT_GT(counts["mapping_generation"], 0u);
  EXPECT_GT(counts["mapping_execution"], 0u);
  EXPECT_GT(counts["fusion"], 0u);
  // Browsable rendering mentions the transducers.
  EXPECT_NE(trace.ToString().find("schema_matching"), std::string::npos);
}

TEST_F(SessionTest, CustomTransducerParticipates) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  // A Vadalog-implemented transducer: flags cheap properties once the
  // result relation is non-empty (extensibility route of §2.3).
  ASSERT_TRUE(
      session
          .AddTransducer(std::make_unique<VadalogTransducer>(
              "cheap_flagger", "quality",
              "ready() :- sys_relation_nonempty(\"wrangled_result\").",
              "cheap(S, P) :- wrangled_result(T, D, S, PC, B, P, C), "
              "P < 150000.",
              std::vector<std::string>{"cheap"}))
          .ok());
  ASSERT_TRUE(session.Run().ok());
  const Relation* cheap = session.kb().FindRelation("cheap");
  ASSERT_NE(cheap, nullptr);
  EXPECT_GT(cheap->size(), 0u);
}

TEST_F(SessionTest, DuplicateTargetSchemaRejected) {
  WranglingSession session;
  ASSERT_TRUE(session.SetTargetSchema(TargetSchema()).ok());
  EXPECT_FALSE(session.SetTargetSchema(TargetSchema()).ok());
}

TEST_F(SessionTest, ResultQualityEstimateAvailable) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(AddAddressContext(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  Result<RelationQuality> q = session.EstimateResultQuality();
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_GT(q.value().row_count, 0u);
  // With reference data, accuracy for street must be available.
  ASSERT_TRUE(q.value().attribute.count("street") > 0);
  EXPECT_TRUE(q.value().attribute.at("street").accuracy.has_value());
}

TEST_F(SessionTest, MetricsReportExposesOrchestrationMetrics) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  OrchestrationStats stats;
  ASSERT_TRUE(session.Run(&stats).ok());

  SessionMetricsReport report = session.MetricsReport();
  ASSERT_FALSE(report.empty());
  EXPECT_GT(report.snapshot.Value("vada_datalog_rules_fired"), 0.0);
  EXPECT_GT(report.snapshot.Value("vada_datalog_join_probes"), 0.0);
  EXPECT_DOUBLE_EQ(report.snapshot.Value("vada_orchestrator_steps"),
                   static_cast<double>(stats.steps));
  EXPECT_DOUBLE_EQ(report.snapshot.Value("vada_orchestrator_dependency_checks"),
                   static_cast<double>(stats.dependency_checks));
  EXPECT_DOUBLE_EQ(report.snapshot.Value("vada_session_runs"), 1.0);
  EXPECT_GT(report.snapshot.Value("vada_kb_relations"), 0.0);

  // Per-transducer execute-duration histograms, one observation per run.
  std::map<std::string, size_t> counts = session.trace().ExecutionCounts();
  for (const char* transducer :
       {"schema_matching", "mapping_generation", "mapping_execution",
        "fusion"}) {
    const obs::MetricSample* h = report.snapshot.Find(
        "vada_transducer_execute_seconds", {{"transducer", transducer}});
    ASSERT_NE(h, nullptr) << transducer;
    EXPECT_EQ(h->kind, obs::MetricKind::kHistogram);
    EXPECT_EQ(h->count, counts[transducer]) << transducer;
    EXPECT_GT(h->sum, 0.0) << transducer;
  }
}

TEST_F(SessionTest, MetricsReportRendersBothExportFormats) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  SessionMetricsReport report = session.MetricsReport();

  // Prometheus text exposition: typed families, our metrics present.
  ASSERT_FALSE(report.prometheus.empty());
  EXPECT_NE(report.prometheus.find("# TYPE vada_orchestrator_steps counter"),
            std::string::npos);
  EXPECT_NE(report.prometheus.find(
                "# TYPE vada_transducer_execute_seconds histogram"),
            std::string::npos);
  EXPECT_NE(report.prometheus.find("vada_kb_relation_rows{relation="),
            std::string::npos);
  EXPECT_NE(report.prometheus.find("le=\"+Inf\""), std::string::npos);

  // Chrome trace: valid JSON with at least one event per orchestration
  // step (steps on tid 1, spans on tid 2).
  std::string error;
  ASSERT_TRUE(obs::JsonLint(report.chrome_trace, &error)) << error;
  size_t events = 0;
  for (size_t pos = report.chrome_trace.find("\"ph\":\"X\"");
       pos != std::string::npos;
       pos = report.chrome_trace.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_GE(events, session.trace().size());
  EXPECT_NE(report.chrome_trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(report.chrome_trace.find("schema_matching"), std::string::npos);
}

TEST_F(SessionTest, MetricsReportEmptyWhenObservabilityDisabled) {
  WranglerConfig config;
  config.obs.enabled = false;
  WranglingSession session(config);
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  ASSERT_NE(session.result(), nullptr);
  EXPECT_GT(session.result()->size(), 0u);

  SessionMetricsReport report = session.MetricsReport();
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(report.prometheus.empty());
  EXPECT_TRUE(report.chrome_trace.empty());
  EXPECT_EQ(session.obs().metrics(), nullptr);
  EXPECT_EQ(session.obs().spans(), nullptr);
}

TEST_F(SessionTest, MetricsAccumulateAcrossRuns) {
  WranglingSession session;
  ASSERT_TRUE(Bootstrap(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  double steps_after_bootstrap =
      session.MetricsReport().snapshot.Value("vada_orchestrator_steps");
  ASSERT_TRUE(AddAddressContext(&session).ok());
  ASSERT_TRUE(session.Run().ok());
  SessionMetricsReport report = session.MetricsReport();
  EXPECT_GT(report.snapshot.Value("vada_orchestrator_steps"),
            steps_after_bootstrap);
  EXPECT_DOUBLE_EQ(report.snapshot.Value("vada_session_runs"), 2.0);
}

}  // namespace
}  // namespace vada
