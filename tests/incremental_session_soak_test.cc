// Feedback-stream soak for differential maintenance (DESIGN.md §5k):
// a session with config.incremental.enabled replays a seeded stream of
// interleaved feedback, data-context, user-context and source events;
// a shadow oracle session with maintenance off replays the identical
// stream. After every event round the two wrangled results must be
// row-identical — the session-level counterpart of the 500-program
// engine fuzz in datalog_differential_test.cc. Runs in tier-1 ctest and
// the TSan CI job (the incremental session also runs a worker pool).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "extract/open_government.h"
#include "extract/real_estate.h"
#include "wrangler/session.h"

namespace vada {
namespace {

Schema TargetSchema() {
  return Schema::Untyped("target", {"type", "description", "street",
                                    "postcode", "bedrooms", "price",
                                    "crimerank"});
}

/// Sorted canonical rows of a relation (nullptr -> empty).
std::vector<std::string> Canonical(const Relation* rel) {
  std::vector<std::string> lines;
  if (rel == nullptr) return lines;
  lines.reserve(rel->rows().size());
  for (const Tuple& row : rel->rows()) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += '|';
      line += row.at(i).ToLiteral();
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

Status Bootstrap(WranglingSession* session, const GroundTruth& truth) {
  ExtractionErrorOptions rm;
  rm.seed = 31;
  ExtractionErrorOptions otm;
  otm.seed = 32;
  otm.coverage = 0.6;
  VADA_RETURN_IF_ERROR(session->SetTargetSchema(TargetSchema()));
  VADA_RETURN_IF_ERROR(session->AddSource(ExtractRightmove(truth, rm)));
  VADA_RETURN_IF_ERROR(session->AddSource(ExtractOnthemarket(truth, otm)));
  VADA_RETURN_IF_ERROR(session->AddSource(GenerateDeprivation(truth)));
  return Status::OK();
}

TEST(IncrementalSessionSoakTest, EventStreamMatchesFullRerunOracle) {
  PropertyUniverseOptions uopts;
  uopts.num_properties = 40;
  uopts.num_postcodes = 8;
  uopts.seed = 11;
  GroundTruth truth = GeneratePropertyUniverse(uopts);

  WranglerConfig inc_config;
  inc_config.incremental.enabled = true;
  // Pool-backed, to put the delta path under the TSan job's eye too.
  inc_config.parallelism.threads = 3;
  inc_config.parallelism.snapshot_cache = true;
  WranglingSession incremental(inc_config);
  WranglingSession oracle;  // defaults: full re-execution every round
  ASSERT_TRUE(Bootstrap(&incremental, truth).ok());
  ASSERT_TRUE(Bootstrap(&oracle, truth).ok());

  Rng rng(2026);
  bool added_context = false;
  bool added_user_context = false;
  const int rounds = 10;
  for (int round = 0; round <= rounds; ++round) {
    if (round > 0) {
      switch (rng.UniformInt(0, 3)) {
        case 0: {  // feedback on random current result rows
          const Relation* result = incremental.result();
          ASSERT_NE(result, nullptr);
          ASSERT_FALSE(result->rows().empty());
          int items = static_cast<int>(rng.UniformInt(1, 3));
          const std::vector<std::string> attrs = {"bedrooms", "price", ""};
          for (int i = 0; i < items; ++i) {
            const Tuple& row =
                result->rows()[rng.UniformInt(0, result->rows().size() - 1)];
            FeedbackItem item{row, attrs[rng.UniformInt(0, attrs.size() - 1)],
                              rng.Bernoulli(0.7)
                                  ? FeedbackPolarity::kIncorrect
                                  : FeedbackPolarity::kCorrect};
            ASSERT_TRUE(incremental.AddFeedback(item).ok());
            ASSERT_TRUE(oracle.AddFeedback(item).ok());
          }
          break;
        }
        case 1: {  // a fresh batch of source rows trickles in
          PropertyUniverseOptions extra;
          extra.num_properties = static_cast<int>(rng.UniformInt(2, 5));
          extra.num_postcodes = 3;
          extra.seed = 1000 + round;
          GroundTruth more = GeneratePropertyUniverse(extra);
          ExtractionErrorOptions err;
          err.seed = 2000 + round;
          Relation batch = ExtractRightmove(more, err);
          ASSERT_TRUE(incremental.AddSource(batch).ok());
          ASSERT_TRUE(oracle.AddSource(batch).ok());
          break;
        }
        case 2: {  // data context (once)
          if (added_context) continue;
          added_context = true;
          Relation address = GenerateAddressReference(truth);
          std::vector<ContextCorrespondence> corr = {
              {"street", "street"}, {"postcode", "postcode"}};
          ASSERT_TRUE(incremental
                          .AddDataContext(address, RelationRole::kReference,
                                          corr)
                          .ok());
          ASSERT_TRUE(
              oracle.AddDataContext(address, RelationRole::kReference, corr)
                  .ok());
          break;
        }
        default: {  // user context (once)
          if (added_user_context) continue;
          added_user_context = true;
          UserContext uc;
          ASSERT_TRUE(uc.AddStatement("completeness", "crimerank",
                                      "very strongly", "completeness",
                                      "bedrooms")
                          .ok());
          ASSERT_TRUE(incremental.SetUserContext(uc).ok());
          ASSERT_TRUE(oracle.SetUserContext(uc).ok());
          break;
        }
      }
    }
    Status si = incremental.Run();
    ASSERT_TRUE(si.ok()) << "round " << round << ": " << si.ToString();
    Status so = oracle.Run();
    ASSERT_TRUE(so.ok()) << "round " << round << ": " << so.ToString();
    EXPECT_EQ(Canonical(incremental.result()), Canonical(oracle.result()))
        << "incremental/full divergence at round " << round;
  }

  // The stream must actually have exercised the delta path, not just
  // re-initialised every round.
  ASSERT_NE(incremental.delta_log(), nullptr);
  uint64_t applies = 0;
  for (const auto& [id, mds] : incremental.state().mapping_delta) {
    if (mds.eval != nullptr) applies += mds.eval->lifetime_stats().applies;
  }
  EXPECT_GT(applies, 0u) << "no delta batch ever reached an evaluator";
  Result<std::string> plan = incremental.ExplainIncremental();
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("plan"), std::string::npos) << plan.value();
  // The oracle session has no log and must say so.
  EXPECT_EQ(oracle.ExplainIncremental().status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace vada
