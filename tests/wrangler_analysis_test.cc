// Registration-time static analysis of transducer Vadalog (see
// WranglerConfig::analysis and WranglingSession::AddTransducer).
#include <gtest/gtest.h>

#include <memory>

#include "wrangler/session.h"

namespace vada {
namespace {

Schema TargetSchema() {
  return Schema::Untyped("target", {"a", "b"});
}

std::unique_ptr<Transducer> Custom(const std::string& dependency) {
  return std::make_unique<FunctionTransducer>(
      "custom", "testing", dependency,
      [](KnowledgeBase*) { return Status::OK(); });
}

TEST(WranglerAnalysisTest, UnsafeDependencyRejectsRegistration) {
  WranglingSession session;
  Status s = session.AddTransducer(Custom("ready(X) :- other(Y)."));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("custom"), std::string::npos);
  EXPECT_NE(s.message().find("safety/unbound-head-variable"),
            std::string::npos);
}

TEST(WranglerAnalysisTest, DependencyMustDefineReadyGoal) {
  WranglingSession session;
  Status s = session.AddTransducer(
      Custom("go() :- sys_relation_nonempty(\"x\")."));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("goal/undefined"), std::string::npos);
}

TEST(WranglerAnalysisTest, SysRelationArityMisuseIsCaught) {
  WranglingSession session;
  Status s = session.AddTransducer(
      Custom("ready() :- sys_relation_nonempty(R, \"extra\")."));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("catalog/arity-mismatch"), std::string::npos);
}

TEST(WranglerAnalysisTest, UnparsableDependencyIsRejected) {
  WranglingSession session;
  Status s = session.AddTransducer(Custom("ready( :- ."));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("parse/error"), std::string::npos);
}

TEST(WranglerAnalysisTest, CleanDependencyRegisters) {
  WranglingSession session;
  Status s = session.AddTransducer(
      Custom("ready() :- sys_relation_nonempty(S), "
             "sys_relation_role(S, \"source\")."));
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(WranglerAnalysisTest, EnforcementOffAcceptsAnything) {
  WranglerConfig config;
  config.analysis = AnalysisEnforcement::kOff;
  WranglingSession session(std::move(config));
  EXPECT_TRUE(session.AddTransducer(Custom("ready(X) :- other(Y).")).ok());
}

TEST(WranglerAnalysisTest, StrictModePromotesWarnings) {
  // Singleton S is only a warning: default enforcement registers, strict
  // enforcement rejects.
  const std::string dep = "ready() :- sys_relation_role(S, \"source\").";
  WranglingSession lenient;
  EXPECT_TRUE(lenient.AddTransducer(Custom(dep)).ok());

  WranglerConfig config;
  config.analysis = AnalysisEnforcement::kStrict;
  WranglingSession strict(std::move(config));
  Status s = strict.AddTransducer(Custom(dep));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("strict analysis"), std::string::npos);
  EXPECT_NE(s.message().find("lint/singleton-variable"), std::string::npos);
}

TEST(WranglerAnalysisTest, VadalogTransducerProgramIsAnalyzedToo) {
  WranglingSession session;
  Status s = session.AddTransducer(std::make_unique<VadalogTransducer>(
      "vt", "testing", "ready() :- sys_relation_nonempty(\"src\").",
      /*program_text=*/"out(X, Z) :- src(X).",
      std::vector<std::string>{"out"}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("vt program"), std::string::npos);
  EXPECT_NE(s.message().find("safety/unbound-head-variable"),
            std::string::npos);
}

TEST(WranglerAnalysisTest, StandardSuitePassesStrictAnalysis) {
  WranglerConfig config;
  config.analysis = AnalysisEnforcement::kStrict;
  WranglingSession session(std::move(config));
  Status s = session.SetTargetSchema(TargetSchema());
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(WranglerAnalysisTest, NullTransducerRejected) {
  WranglingSession session;
  EXPECT_EQ(session.AddTransducer(nullptr).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vada
