// Golden end-to-end regression test: a fixed demo scenario (two
// deep-web property sources, seeded extraction errors) is wrangled by a
// full WranglingSession bootstrap and the fused result relation is
// compared against a canonical snapshot checked into tests/golden/.
// Every planner configuration — oracle, indexes, reorder, parallel —
// must reproduce the snapshot exactly, pinning down both the wrangling
// semantics and the planner's output-preservation guarantee.
//
// Regenerate the snapshot after an intentional semantic change with:
//   VADA_UPDATE_GOLDEN=1 ./tests/golden_session_test
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "extract/real_estate.h"
#include "kb/schema.h"
#include "wrangler/session.h"

#ifndef VADA_GOLDEN_DIR
#error "VADA_GOLDEN_DIR must point at tests/golden"
#endif

namespace vada {
namespace {

const char kGoldenFile[] = VADA_GOLDEN_DIR "/wrangled_result.txt";

/// Canonical form of the result relation: one line per row, cells as
/// unambiguous literals joined by '|', rows sorted. Sorting makes the
/// snapshot independent of derivation order, which `reorder` is allowed
/// to permute (the fact *set* is the guarantee, DESIGN.md §5f).
std::vector<std::string> Canonicalize(const Relation& result) {
  std::vector<std::string> lines;
  lines.reserve(result.rows().size());
  for (const Tuple& row : result.rows()) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += '|';
      line += row.at(i).ToLiteral();
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::vector<std::string> RunDemoScenario(const WranglerConfig& config) {
  PropertyUniverseOptions uopts;
  uopts.num_properties = 80;
  uopts.num_postcodes = 12;
  uopts.seed = 21;
  GroundTruth truth = GeneratePropertyUniverse(uopts);
  ExtractionErrorOptions rm_err;
  rm_err.seed = 5;
  ExtractionErrorOptions otm_err;
  otm_err.seed = 6;

  WranglingSession session(config);
  Schema target = Schema::Untyped(
      "target",
      {"type", "description", "street", "postcode", "bedrooms", "price",
       "crimerank"});
  EXPECT_TRUE(session.SetTargetSchema(target).ok());
  EXPECT_TRUE(session.AddSource(ExtractRightmove(truth, rm_err)).ok());
  EXPECT_TRUE(session.AddSource(ExtractOnthemarket(truth, otm_err)).ok());
  EXPECT_TRUE(session.Run().ok());
  EXPECT_NE(session.result(), nullptr);
  if (session.result() == nullptr) return {};
  return Canonicalize(*session.result());
}

std::vector<std::string> ReadGolden() {
  std::ifstream in(kGoldenFile);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(GoldenSessionTest, DemoScenarioMatchesGoldenUnderAllPlannerConfigs) {
  std::vector<std::string> baseline = RunDemoScenario(WranglerConfig());
  ASSERT_FALSE(baseline.empty());

  if (std::getenv("VADA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenFile, std::ios::trunc);
    for (const std::string& line : baseline) out << line << "\n";
    ASSERT_TRUE(out.good()) << "failed to write " << kGoldenFile;
    GTEST_SKIP() << "golden file regenerated at " << kGoldenFile;
  }

  std::vector<std::string> golden = ReadGolden();
  ASSERT_FALSE(golden.empty())
      << "missing golden snapshot " << kGoldenFile
      << " — run with VADA_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(baseline, golden);

  struct Variant {
    const char* name;
    WranglerConfig config;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "oracle (full scans, legacy order)";
    v.config.planner = {.indexes = false, .reorder = false};
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "indexes only, tiny gate";
    v.config.planner = {.indexes = true, .reorder = false,
                        .min_index_size = 1};
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "reorder only";
    v.config.planner = {.indexes = false, .reorder = true};
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "parallel with cache";
    v.config.parallelism.threads = 4;
    v.config.parallelism.snapshot_cache = true;
    v.config.parallelism.parallel_chunk_threshold = 64;
    variants.push_back(v);
  }
  for (const Variant& v : variants) {
    SCOPED_TRACE(v.name);
    EXPECT_EQ(RunDemoScenario(v.config), golden);
  }
}

}  // namespace
}  // namespace vada
