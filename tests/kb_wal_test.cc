#include "kb/wal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "common/rng.h"
#include "kb/fs_util.h"

namespace vada {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/vada_wal_" + name;
  EXPECT_TRUE(RemoveRecursively(dir).ok());
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

WalRecord InsertRecord(const std::string& relation, Tuple tuple,
                       uint64_t txn = 0) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.txn_id = txn;
  r.relation = relation;
  r.tuple = std::move(tuple);
  return r;
}

std::vector<WalRecord> ReadAll(const std::string& dir,
                               WalReadStats* stats = nullptr) {
  std::vector<WalRecord> records;
  WalReadStats local;
  Status s = ScanWal(
      dir, {1, 0},
      [&](const WalRecord& r, const WalPosition&) -> Status {
        records.push_back(r);
        return Status::OK();
      },
      stats != nullptr ? stats : &local);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return records;
}

bool RecordsEqual(const WalRecord& a, const WalRecord& b) {
  return a.type == b.type && a.txn_id == b.txn_id && a.relation == b.relation &&
         a.tuple == b.tuple && a.schema == b.schema &&
         a.role_removed == b.role_removed &&
         (a.type != WalRecordType::kCatalogRole || a.role_removed ||
          a.role == b.role);
}

TEST(WalCodecTest, RoundTripsEveryRecordType) {
  std::vector<WalRecord> records;
  WalRecord begin;
  begin.type = WalRecordType::kTxnBegin;
  begin.txn_id = 7;
  records.push_back(begin);

  WalRecord create;
  create.type = WalRecordType::kCreateRelation;
  create.schema = Schema("listing", {{"street", AttributeType::kString},
                                     {"price", AttributeType::kInt},
                                     {"score", AttributeType::kAny}});
  records.push_back(create);

  records.push_back(InsertRecord(
      "listing",
      Tuple({Value::String("High \"St\"\nwith newline"), Value::Int(-42),
             Value::Double(2.5), Value::Bool(false), Value::Null()}),
      7));

  WalRecord retract = InsertRecord("listing", Tuple({Value::String("")}), 7);
  retract.type = WalRecordType::kRetract;
  records.push_back(retract);

  WalRecord clear;
  clear.type = WalRecordType::kClear;
  clear.relation = "listing";
  records.push_back(clear);

  WalRecord drop;
  drop.type = WalRecordType::kDrop;
  drop.relation = "listing";
  records.push_back(drop);

  WalRecord role;
  role.type = WalRecordType::kCatalogRole;
  role.relation = "listing";
  role.role = RelationRole::kReference;
  records.push_back(role);

  WalRecord role_removed = role;
  role_removed.role_removed = true;
  records.push_back(role_removed);

  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn_id = 7;
  records.push_back(commit);

  WalRecord abort;
  abort.type = WalRecordType::kAbort;
  abort.txn_id = 9;
  records.push_back(abort);

  for (const WalRecord& r : records) {
    Result<WalRecord> back = DecodeWalRecord(EncodeWalRecord(r));
    ASSERT_TRUE(back.ok()) << r.ToString() << ": "
                           << back.status().ToString();
    EXPECT_TRUE(RecordsEqual(r, back.value())) << r.ToString();
  }
}

TEST(WalCodecTest, RejectsTruncatedAndTrailingPayloads) {
  std::string payload = EncodeWalRecord(
      InsertRecord("r", Tuple({Value::String("hello"), Value::Int(1)})));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Result<WalRecord> r =
        DecodeWalRecord(std::string_view(payload.data(), cut));
    EXPECT_FALSE(r.ok()) << "prefix of length " << cut << " decoded";
    if (!r.ok()) EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  }
  EXPECT_FALSE(DecodeWalRecord(payload + "x").ok());
}

TEST(WalWriterTest, AppendScanRoundTrip) {
  std::string dir = TempDir("roundtrip");
  WalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  std::vector<WalRecord> written;
  for (int i = 0; i < 20; ++i) {
    WalRecord r = InsertRecord("rel", Tuple({Value::Int(i)}));
    ASSERT_TRUE(writer.value()->Append(r).ok());
    written.push_back(r);
  }
  writer.value().reset();  // flush on close

  WalReadStats stats;
  std::vector<WalRecord> read = ReadAll(dir, &stats);
  ASSERT_EQ(read.size(), written.size());
  for (size_t i = 0; i < read.size(); ++i) {
    EXPECT_TRUE(RecordsEqual(read[i], written[i])) << i;
  }
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.records, 20u);
  EXPECT_EQ(stats.commits, 0u);  // `commits` counts explicit kCommit records
}

TEST(WalWriterTest, RotatesSegmentsAndScansAcross) {
  std::string dir = TempDir("rotate");
  WalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  options.segment_bytes = 256;  // force frequent rotation
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer.value()
                    ->Append(InsertRecord(
                        "rel", Tuple({Value::Int(i),
                                      Value::String("padding-padding")})))
                    .ok());
  }
  writer.value().reset();
  EXPECT_GT(ListWalSegments(dir).size(), 1u);
  EXPECT_EQ(ReadAll(dir).size(), 50u);
}

TEST(WalWriterTest, ExplicitRotateReturnsBoundaryPosition) {
  std::string dir = TempDir("explicit_rotate");
  WalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      writer.value()->Append(InsertRecord("a", Tuple({Value::Int(1)}))).ok());
  Result<WalPosition> pos = writer.value()->Rotate();
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos.value().segment, 2u);
  ASSERT_TRUE(
      writer.value()->Append(InsertRecord("b", Tuple({Value::Int(2)}))).ok());
  writer.value().reset();

  // Scanning from the rotation point sees only the post-rotate record.
  std::vector<WalRecord> after;
  WalReadStats stats;
  ASSERT_TRUE(ScanWal(
                  dir, pos.value(),
                  [&](const WalRecord& r, const WalPosition&) -> Status {
                    after.push_back(r);
                    return Status::OK();
                  },
                  &stats)
                  .ok());
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].relation, "b");
}

TEST(WalWriterTest, RefusesToReuseExistingSegmentNumbers) {
  std::string dir = TempDir("reuse");
  WalOptions options;
  options.directory = dir;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 3);
    ASSERT_TRUE(writer.ok());
  }
  EXPECT_FALSE(WalWriter::Open(options, 3).ok());
  EXPECT_FALSE(WalWriter::Open(options, 2).ok());
  EXPECT_TRUE(WalWriter::Open(options, 4).ok());
}

TEST(WalWriterTest, DeleteSegmentsBeforeKeepsTail) {
  std::string dir = TempDir("truncate_old");
  WalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  options.segment_bytes = 128;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(writer.value()
                    ->Append(InsertRecord(
                        "rel", Tuple({Value::Int(i),
                                      Value::String("padding-padding")})))
                    .ok());
  }
  std::vector<uint64_t> before = ListWalSegments(dir);
  ASSERT_GT(before.size(), 2u);
  uint64_t cut = before[before.size() - 2];
  ASSERT_TRUE(writer.value()->DeleteSegmentsBefore(cut).ok());
  std::vector<uint64_t> after = ListWalSegments(dir);
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after.front(), cut);
  writer.value().reset();
  // The surviving tail still scans cleanly from the cut.
  WalReadStats stats;
  ASSERT_TRUE(ScanWal(dir, {cut, 0}, nullptr, &stats).ok());
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_GT(stats.records, 0u);
}

TEST(WalScanTest, DetectsTruncatedTailAndTruncateRepairs) {
  std::string dir = TempDir("torn");
  WalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          writer.value()
              ->Append(InsertRecord("rel", Tuple({Value::Int(i)})))
              .ok());
    }
  }
  // Tear the last record: chop a few bytes off the segment.
  std::string path = dir + "/wal-0000000001.log";
  uint64_t size = FileSizeBytes(path);
  ASSERT_GT(size, 4u);
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size - 3)), 0);

  WalReadStats stats;
  std::vector<WalRecord> read = ReadAll(dir, &stats);
  EXPECT_EQ(read.size(), 9u);  // last record lost, prefix intact
  EXPECT_TRUE(stats.torn_tail);

  ASSERT_TRUE(TruncateWalAfter(dir, stats).ok());
  WalReadStats repaired;
  EXPECT_EQ(ReadAll(dir, &repaired).size(), 9u);
  EXPECT_FALSE(repaired.torn_tail);
  EXPECT_EQ(FileSizeBytes(path), repaired.end.offset);
}

TEST(WalScanTest, DetectsBitFlip) {
  std::string dir = TempDir("bitflip");
  WalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          writer.value()
              ->Append(InsertRecord("rel", Tuple({Value::Int(i)})))
              .ok());
    }
  }
  std::string path = dir + "/wal-0000000001.log";
  Result<std::string> data = ReadFileText(path);
  ASSERT_TRUE(data.ok());
  std::string flipped = data.value();
  flipped[flipped.size() - 5] ^= 0x40;  // corrupt the last record's payload
  ASSERT_TRUE(WriteFileText(path, flipped).ok());

  WalReadStats stats;
  std::vector<WalRecord> read = ReadAll(dir, &stats);
  EXPECT_EQ(read.size(), 4u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_NE(stats.torn_reason.find("CRC"), std::string::npos)
      << stats.torn_reason;
}

TEST(WalScanTest, DetectsBadSegmentHeader) {
  std::string dir = TempDir("badheader");
  ASSERT_TRUE(WriteFileText(dir + "/wal-0000000001.log", "not a wal").ok());
  WalReadStats stats;
  EXPECT_TRUE(ReadAll(dir, &stats).empty());
  EXPECT_TRUE(stats.torn_tail);
}

TEST(WalScanTest, StopsAtSegmentGap) {
  std::string dir = TempDir("gap");
  WalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  options.segment_bytes = 128;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(writer.value()
                      ->Append(InsertRecord(
                          "rel", Tuple({Value::Int(i),
                                        Value::String("padding-padding")})))
                      .ok());
    }
  }
  std::vector<uint64_t> segments = ListWalSegments(dir);
  ASSERT_GT(segments.size(), 2u);
  uint64_t missing = segments[1];
  char name[64];
  std::snprintf(name, sizeof(name), "%s/wal-%010llu.log", dir.c_str(),
                static_cast<unsigned long long>(missing));
  ASSERT_TRUE(RemoveRecursively(name).ok());

  WalReadStats stats;
  ReadAll(dir, &stats);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_NE(stats.torn_reason.find("missing"), std::string::npos);
  EXPECT_EQ(stats.end.segment, segments[0]);
}

TEST(WalScanTest, MissingReplayStartSegmentIsTornNotSilentlySkipped) {
  std::string dir = TempDir("missing_start");
  WalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  WalPosition resume;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        writer.value()->Append(InsertRecord("rel", Tuple({Value::Int(1)}))).ok());
    // A checkpoint-style resume position: segment 2, past its header.
    Result<WalPosition> rotated = writer.value()->Rotate();
    ASSERT_TRUE(rotated.ok());
    resume = rotated.value();
    ASSERT_GT(resume.offset, 0u);
    ASSERT_TRUE(
        writer.value()->Append(InsertRecord("rel", Tuple({Value::Int(2)}))).ok());
    ASSERT_TRUE(writer.value()->Rotate().ok());
    ASSERT_TRUE(
        writer.value()->Append(InsertRecord("rel", Tuple({Value::Int(3)}))).ok());
  }
  // Lose the resume-position segment while a later one survives: the
  // scan must flag the gap, not replay the disconnected suffix.
  char name[64];
  std::snprintf(name, sizeof(name), "%s/wal-%010llu.log", dir.c_str(),
                static_cast<unsigned long long>(resume.segment));
  ASSERT_TRUE(RemoveRecursively(name).ok());

  WalReadStats stats;
  std::vector<WalRecord> records;
  Status s = ScanWal(
      dir, resume,
      [&](const WalRecord& r, const WalPosition&) -> Status {
        records.push_back(r);
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(records.empty());
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_NE(stats.torn_reason.find("missing"), std::string::npos)
      << stats.torn_reason;
  EXPECT_EQ(stats.end, resume);
}

TEST(CrashInjectorTest, KillsAtScheduledOpAndStaysDead) {
  CrashInjector::Schedule schedule;
  schedule.kill_after_ops = 3;
  schedule.torn_fraction = 0.5;
  CrashInjector crash(schedule);
  EXPECT_EQ(crash.AdmitWrite(100), 100u);
  EXPECT_TRUE(crash.AdmitOp());
  EXPECT_FALSE(crash.crashed());
  EXPECT_EQ(crash.AdmitWrite(100), 50u);  // the torn write
  EXPECT_TRUE(crash.crashed());
  EXPECT_EQ(crash.AdmitWrite(100), 0u);
  EXPECT_FALSE(crash.AdmitOp());
}

TEST(CrashInjectorTest, WriterSurfacesSimulatedCrashAsDataLoss) {
  std::string dir = TempDir("injected");
  CrashInjector::Schedule schedule;
  // Segment open costs two ops (create + header write), then one per
  // record: die writing the 3rd record.
  schedule.kill_after_ops = 5;
  CrashInjector crash(schedule);
  WalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  options.crash = &crash;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
  ASSERT_TRUE(writer.ok());
  WalRecord r = InsertRecord("rel", Tuple({Value::Int(1)}));
  ASSERT_TRUE(writer.value()->Append(r).ok());
  ASSERT_TRUE(writer.value()->Append(r).ok());
  Status died = writer.value()->Append(r);
  EXPECT_EQ(died.code(), StatusCode::kDataLoss);
  // Sticky: later appends fail with the same status without touching disk.
  EXPECT_EQ(writer.value()->Append(r).code(), StatusCode::kDataLoss);
  writer.value().reset();

  // What reached disk is a clean 2-record prefix.
  WalReadStats stats;
  EXPECT_EQ(ReadAll(dir, &stats).size(), 2u);
  EXPECT_FALSE(stats.torn_tail);
}

TEST(CrashInjectorTest, TornFractionLeavesDetectablePartialRecord) {
  std::string dir = TempDir("torn_frac");
  CrashInjector::Schedule schedule;
  schedule.kill_after_ops = 4;  // 2 open ops + 1st record; die on the 2nd
  schedule.torn_fraction = 0.5;
  CrashInjector crash(schedule);
  WalOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  options.crash = &crash;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
  ASSERT_TRUE(writer.ok());
  WalRecord r = InsertRecord("rel", Tuple({Value::String("payload")}));
  ASSERT_TRUE(writer.value()->Append(r).ok());
  EXPECT_EQ(writer.value()->Append(r).code(), StatusCode::kDataLoss);
  writer.value().reset();

  WalReadStats stats;
  EXPECT_EQ(ReadAll(dir, &stats).size(), 1u);
  EXPECT_TRUE(stats.torn_tail);
  ASSERT_TRUE(TruncateWalAfter(dir, stats).ok());
  WalReadStats repaired;
  ReadAll(dir, &repaired);
  EXPECT_FALSE(repaired.torn_tail);
}

TEST(WalFuzzTest, RandomRecordsRoundTripAndRandomCutsNeverCrash) {
  Rng rng(20260808);
  for (int round = 0; round < 10; ++round) {
    std::string dir = TempDir("fuzz" + std::to_string(round));
    WalOptions options;
    options.directory = dir;
    options.fsync = FsyncPolicy::kNone;
    options.segment_bytes = 512;
    size_t n = static_cast<size_t>(rng.UniformInt(1, 30));
    {
      Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(options, 1);
      ASSERT_TRUE(writer.ok());
      for (size_t i = 0; i < n; ++i) {
        std::string payload(static_cast<size_t>(rng.UniformInt(0, 40)), 'x');
        ASSERT_TRUE(writer.value()
                        ->Append(InsertRecord(
                            "rel", Tuple({Value::Int(rng.UniformInt(-5, 5)),
                                          Value::String(payload)})))
                        .ok());
      }
    }
    // Random cut somewhere in the last segment: the scan must stop
    // cleanly at or before the cut, never crash or over-read.
    std::vector<uint64_t> segments = ListWalSegments(dir);
    char path[256];
    std::snprintf(path, sizeof(path), "%s/wal-%010llu.log", dir.c_str(),
                  static_cast<unsigned long long>(segments.back()));
    uint64_t size = FileSizeBytes(path);
    uint64_t cut = static_cast<uint64_t>(rng.UniformInt(
        0, static_cast<int64_t>(size)));
    ASSERT_EQ(::truncate(path, static_cast<off_t>(cut)), 0);
    WalReadStats stats;
    std::vector<WalRecord> read = ReadAll(dir, &stats);
    EXPECT_LE(read.size(), n);
    ASSERT_TRUE(TruncateWalAfter(dir, stats).ok());
    WalReadStats repaired;
    EXPECT_EQ(ReadAll(dir, &repaired).size(), read.size());
    EXPECT_FALSE(repaired.torn_tail);
  }
}

}  // namespace
}  // namespace vada
