// Property tests for the process-wide interning dictionary behind the
// columnar Datalog storage engine (DESIGN.md §5j): intern/lookup
// round-trips over seeded random values, id stability across snapshot
// borrowing and KB write-guard rollback, and concurrent Intern/value()
// (the TSan job runs this file to certify the chunked wait-free reads).
#include "datalog/symbol_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datalog/database.h"
#include "kb/knowledge_base.h"
#include "kb/write_guard.h"

namespace vada::datalog {
namespace {

/// Deterministic mixed-type value stream (strings, ints, doubles, bools,
/// nulls) with deliberate collisions: small domains make re-interning of
/// equal values the common case, which is what the canonical-id property
/// is about.
Value RandomValue(std::mt19937* rng) {
  switch ((*rng)() % 5) {
    case 0:
      return Value::Int(static_cast<int64_t>((*rng)() % 64) - 32);
    case 1:
      return Value::Double(static_cast<double>((*rng)() % 16) / 4.0);
    case 2:
      return Value::String("sym_" + std::to_string((*rng)() % 128));
    case 3:
      return Value::Bool((*rng)() % 2 == 0);
    default:
      return Value::Null();
  }
}

TEST(SymbolTableTest, InternLookupRoundTripSeeded) {
  SymbolTable table;
  std::mt19937 rng(20260808);
  std::vector<std::pair<Value, SymbolId>> interned;
  for (int i = 0; i < 4000; ++i) {
    Value v = RandomValue(&rng);
    SymbolId id = table.Intern(v);
    // Canonical: equal values always map to the same id, and Find sees
    // exactly what Intern assigned.
    EXPECT_EQ(table.Intern(v), id);
    ASSERT_TRUE(table.Find(v).has_value());
    EXPECT_EQ(*table.Find(v), id);
    // Round-trip: the id resolves back to a strictly equal Value.
    EXPECT_EQ(table.value(id), v);
    interned.emplace_back(std::move(v), id);
  }
  // Ids are dense from 0 in first-intern order and never remapped.
  std::set<SymbolId> distinct;
  for (const auto& [v, id] : interned) {
    EXPECT_EQ(table.value(id), v);  // still stable after all interning
    distinct.insert(id);
  }
  EXPECT_EQ(distinct.size(), table.size());
  EXPECT_EQ(*distinct.rbegin(), static_cast<SymbolId>(table.size() - 1));
}

TEST(SymbolTableTest, FindNeverGrowsTheTable) {
  SymbolTable table;
  table.Intern(Value::Int(1));
  size_t before = table.size();
  EXPECT_FALSE(table.Find(Value::String("never interned")).has_value());
  EXPECT_EQ(table.size(), before);
}

TEST(SymbolTableTest, NanInternsFreshMirroringValueEquality) {
  // Double(NaN) != Double(NaN), so each NaN gets its own id — the same
  // semantics the row engine's hash sets had (DESIGN.md §5j).
  SymbolTable table;
  Value nan = Value::Double(std::nan(""));
  SymbolId a = table.Intern(nan);
  SymbolId b = table.Intern(nan);
  EXPECT_NE(a, b);
  EXPECT_TRUE(std::isnan(table.value(a).double_value()));
  EXPECT_FALSE(table.Find(nan).has_value());  // never equal to itself
}

TEST(SymbolTableTest, IdsStableAcrossSnapshotBorrowAndCowDetach) {
  auto snapshot = std::make_shared<Database>();
  snapshot->Insert("p", Tuple({Value::String("alpha"), Value::Int(1)}));
  snapshot->Insert("p", Tuple({Value::String("beta"), Value::Int(2)}));

  // Record the ids the snapshot's columns hold.
  Database::View before = snapshot->view("p");
  ASSERT_TRUE(before.valid());
  std::vector<SymbolId> ids(before.column(0), before.column(0) + before.rows());

  // Borrow, then write through the borrower (copy-on-write detach).
  Database borrower;
  borrower.AttachShared(snapshot);
  borrower.Insert("p", Tuple({Value::String("gamma"), Value::Int(3)}));
  EXPECT_EQ(borrower.FactCount("p"), 3u);
  EXPECT_EQ(snapshot->FactCount("p"), 2u);  // owner untouched

  // The borrowed rows kept their exact ids through the detach, and the
  // owner's columns are bit-identical to what they were before.
  Database::View after_owner = snapshot->view("p");
  Database::View after_borrower = borrower.view("p");
  for (size_t r = 0; r < ids.size(); ++r) {
    EXPECT_EQ(after_owner.column(0)[r], ids[r]);
    EXPECT_EQ(after_borrower.column(0)[r], ids[r]);
  }
}

TEST(SymbolTableTest, IdsSurviveWriteGuardRollback) {
  SymbolTable& table = SymbolTable::Global();

  KnowledgeBase kb;
  Relation rel(Schema::Untyped("guarded", {"name", "rank"}));
  ASSERT_TRUE(
      rel.InsertUnchecked(Tuple({Value::String("keep"), Value::Int(7)})).ok());
  ASSERT_TRUE(kb.ReplaceRelation(rel).ok());

  // Interning happens at the KB -> engine boundary.
  Database db;
  db.LoadRelation(*kb.FindRelation("guarded"));
  Database::View view = db.view("guarded");
  ASSERT_TRUE(view.valid());
  std::vector<SymbolId> ids(view.column(0), view.column(0) + view.rows());

  {
    WriteGuard guard(&kb);
    Relation bigger(Schema::Untyped("guarded", {"name", "rank"}));
    ASSERT_TRUE(
        bigger.InsertUnchecked(Tuple({Value::String("drop"), Value::Int(8)}))
            .ok());
    ASSERT_TRUE(kb.ReplaceRelation(bigger).ok());
    guard.Rollback();
  }

  // Rollback restored the KB; the global table never un-interns, so the
  // ids taken before the aborted write still resolve, and re-loading the
  // restored relation reproduces them exactly.
  for (SymbolId id : ids) {
    EXPECT_EQ(table.Intern(table.value(id)), id);
  }
  Database reloaded;
  reloaded.LoadRelation(*kb.FindRelation("guarded"));
  Database::View reloaded_view = reloaded.view("guarded");
  ASSERT_EQ(reloaded_view.rows(), ids.size());
  for (size_t r = 0; r < ids.size(); ++r) {
    EXPECT_EQ(reloaded_view.column(0)[r], ids[r]);
  }
}

TEST(SymbolTableTest, ConcurrentInternAndReadAreRaceFree) {
  // 4 writers intern overlapping value ranges while readers resolve
  // every id each writer publishes. TSan certifies the release/acquire
  // chunk handoff; the assertions certify canonical ids.
  SymbolTable table;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  // Release/acquire handoff of published ids, so readers only ever
  // dereference ids obtained from published data — the table's stated
  // pre-condition for wait-free value().
  std::vector<std::atomic<SymbolId>> published(kWriters * kPerWriter);
  for (auto& p : published) p.store(kNoSymbol, std::memory_order_relaxed);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&table, &published, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        // Overlapping domains: every other value collides across writers.
        Value v = (i % 2 == 0)
                      ? Value::String("shared_" + std::to_string(i))
                      : Value::Int(static_cast<int64_t>(w) * kPerWriter + i);
        published[w * kPerWriter + i].store(table.Intern(v),
                                            std::memory_order_release);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&table, &published] {
      // Chase the writers: resolve whatever has been published so far.
      for (int pass = 0; pass < 3; ++pass) {
        for (const auto& slot : published) {
          SymbolId id = slot.load(std::memory_order_acquire);
          if (id == kNoSymbol) continue;
          (void)table.value(id);  // must be a fully constructed Value
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Shared values interned to one canonical id regardless of which
  // writer got there first.
  for (int i = 0; i < kPerWriter; i += 2) {
    for (int w = 1; w < kWriters; ++w) {
      EXPECT_EQ(published[w * kPerWriter + i].load(),
                published[i].load());
    }
  }
  // And every id round-trips after the dust settles.
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 1; i < kPerWriter; i += 2) {
      EXPECT_EQ(table.value(published[w * kPerWriter + i].load()).int_value(),
                static_cast<int64_t>(w) * kPerWriter + i);
    }
  }
}

}  // namespace
}  // namespace vada::datalog
