#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace vada::datalog {
namespace {

/// Property: naive and semi-naive evaluation must derive identical fact
/// sets on randomly generated positive recursive programs over random
/// graphs. Naive evaluation serves as the executable oracle.
class NaiveSemiNaiveEquivalence : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveSemiNaiveEquivalence,
                         ::testing::Range(0, 12));

Database RandomGraph(Rng* rng, int nodes, int edges) {
  Database db;
  for (int i = 0; i < edges; ++i) {
    db.Insert("edge", Tuple({Value::Int(rng->UniformInt(0, nodes - 1)),
                             Value::Int(rng->UniformInt(0, nodes - 1))}));
  }
  for (int i = 0; i < nodes; ++i) {
    if (rng->Bernoulli(0.3)) db.Insert("src", Tuple({Value::Int(i)}));
    db.Insert("node", Tuple({Value::Int(i)}));
  }
  return db;
}

std::vector<Tuple> RunAll(const Program& p, Database db, bool semi_naive,
                          const std::vector<std::string>& goals) {
  EvalOptions opts;
  opts.semi_naive = semi_naive;
  Evaluator eval(p, opts);
  EXPECT_TRUE(eval.Prepare().ok());
  EXPECT_TRUE(eval.Run(&db).ok());
  std::vector<Tuple> all;
  for (const std::string& g : goals) {
    std::vector<Tuple> facts = db.facts(g);
    std::sort(facts.begin(), facts.end());
    // Tag with an index value so different predicates don't collide.
    for (Tuple& t : facts) {
      t.Append(Value::String(g));
      all.push_back(std::move(t));
    }
  }
  std::sort(all.begin(), all.end());
  return all;
}

TEST_P(NaiveSemiNaiveEquivalence, SameFixpointOnRandomGraphs) {
  Rng rng(GetParam());
  int nodes = static_cast<int>(rng.UniformInt(3, 15));
  int edges = static_cast<int>(rng.UniformInt(2, 40));
  Database db = RandomGraph(&rng, nodes, edges);

  Result<Program> p = Parser::Parse(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), not reach(X).\n"
      "fanout(X, count<Y>) :- tc(X, Y).\n");
  ASSERT_TRUE(p.ok());

  std::vector<std::string> goals = {"tc", "reach", "unreach", "fanout"};
  auto semi = RunAll(p.value(), db, true, goals);
  auto naive = RunAll(p.value(), db, false, goals);
  EXPECT_EQ(semi, naive) << "seed " << GetParam();
}

/// Property: transitive closure on a directed path of length n has
/// exactly n*(n+1)/2 pairs, for any n.
class TcPathLength : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Lengths, TcPathLength,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 50));

TEST_P(TcPathLength, ClosedForm) {
  int n = GetParam();
  Database db;
  for (int i = 0; i < n; ++i) {
    db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  Result<Program> p = Parser::Parse(
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).");
  ASSERT_TRUE(p.ok());
  Result<std::vector<Tuple>> result = Query(p.value(), &db, "tc");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(),
            static_cast<size_t>(n) * (n + 1) / 2);
}

/// Property: evaluation is monotone in the EDB for positive programs —
/// adding edges can only grow the closure.
TEST(DatalogPropertyTest, PositiveProgramMonotoneInEdb) {
  Rng rng(99);
  Result<Program> p = Parser::Parse(
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).");
  ASSERT_TRUE(p.ok());

  std::vector<Tuple> edges;
  for (int i = 0; i < 30; ++i) {
    edges.push_back(Tuple({Value::Int(rng.UniformInt(0, 9)),
                           Value::Int(rng.UniformInt(0, 9))}));
  }
  size_t prev_size = 0;
  for (size_t prefix = 5; prefix <= edges.size(); prefix += 5) {
    Database db;
    for (size_t i = 0; i < prefix; ++i) db.Insert("edge", edges[i]);
    Result<std::vector<Tuple>> result = Query(p.value(), &db, "tc");
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().size(), prev_size);
    prev_size = result.value().size();
  }
}

/// Property: evaluation is idempotent — re-running the evaluator on the
/// result database derives nothing new.
TEST(DatalogPropertyTest, FixpointIsIdempotent) {
  Rng rng(7);
  Database db;
  for (int i = 0; i < 25; ++i) {
    db.Insert("edge", Tuple({Value::Int(rng.UniformInt(0, 7)),
                             Value::Int(rng.UniformInt(0, 7))}));
  }
  Result<Program> p = Parser::Parse(
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).");
  ASSERT_TRUE(p.ok());
  Evaluator eval(p.value());
  ASSERT_TRUE(eval.Prepare().ok());
  ASSERT_TRUE(eval.Run(&db).ok());
  size_t size_after_first = db.TotalFacts();

  Evaluator eval2(p.value());
  ASSERT_TRUE(eval2.Prepare().ok());
  EvalStats stats;
  ASSERT_TRUE(eval2.Run(&db, &stats).ok());
  EXPECT_EQ(db.TotalFacts(), size_after_first);
  EXPECT_EQ(stats.facts_derived, 0u);
}

/// Property: for any partition of nodes into reachable/unreachable,
/// reach and unreach are complementary over node.
TEST(DatalogPropertyTest, NegationComplement) {
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    Database db = RandomGraph(&rng, 12, 20);
    Result<Program> p = Parser::Parse(
        "reach(X) :- src(X).\n"
        "reach(Y) :- reach(X), edge(X, Y).\n"
        "unreach(X) :- node(X), not reach(X).\n");
    ASSERT_TRUE(p.ok());
    Evaluator eval(p.value());
    ASSERT_TRUE(eval.Prepare().ok());
    ASSERT_TRUE(eval.Run(&db).ok());
    size_t nodes = db.FactCount("node");
    size_t unreach = db.FactCount("unreach");
    // reach may contain non-node values reached via edges; count only
    // reach ∩ node.
    size_t reach_nodes = 0;
    for (const Tuple& t : db.facts("node")) {
      if (db.Contains("reach", t)) ++reach_nodes;
    }
    EXPECT_EQ(reach_nodes + unreach, nodes) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vada::datalog
