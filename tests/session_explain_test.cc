#include <gtest/gtest.h>

#include "extract/open_government.h"
#include "extract/real_estate.h"
#include "kb/persistence.h"
#include "wrangler/session.h"

namespace vada {
namespace {

Schema TargetSchema() {
  return Schema::Untyped("target", {"type", "description", "street",
                                    "postcode", "bedrooms", "price",
                                    "crimerank"});
}

class SessionExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyUniverseOptions uopts;
    uopts.num_properties = 80;
    uopts.num_postcodes = 12;
    uopts.seed = 31;
    truth_ = GeneratePropertyUniverse(uopts);
    ExtractionErrorOptions opts;
    opts.seed = 3;
    ASSERT_TRUE(session_.SetTargetSchema(TargetSchema()).ok());
    ASSERT_TRUE(session_.AddSource(ExtractRightmove(truth_, opts)).ok());
    ASSERT_TRUE(session_.AddSource(GenerateDeprivation(truth_)).ok());
    ASSERT_TRUE(session_.Run().ok());
  }

  GroundTruth truth_;
  WranglingSession session_;
};

TEST_F(SessionExplainTest, ExplainsRowViaMappingAndSourceTuples) {
  // Pick a result row with a crimerank: it must come from the join
  // mapping, whose premises are a rightmove and a deprivation tuple.
  const Relation* result = session_.result();
  ASSERT_NE(result, nullptr);
  size_t crime = *result->schema().AttributeIndex("crimerank");
  const Tuple* joined_row = nullptr;
  for (const Tuple& row : result->rows()) {
    if (!row.at(crime).is_null()) {
      joined_row = &row;
      break;
    }
  }
  ASSERT_NE(joined_row, nullptr);

  Result<std::string> explanation = session_.ExplainResultRow(*joined_row);
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  EXPECT_NE(explanation.value().find("via mapping"), std::string::npos)
      << explanation.value();
  EXPECT_NE(explanation.value().find("rule:"), std::string::npos);
  EXPECT_NE(explanation.value().find("from rightmove("), std::string::npos)
      << explanation.value();
  EXPECT_NE(explanation.value().find("from deprivation("), std::string::npos)
      << explanation.value();
}

TEST_F(SessionExplainTest, UnknownRowReportsFusion) {
  Tuple bogus({Value::String("x"), Value::String("x"), Value::String("x"),
               Value::String("x"), Value::Int(1), Value::Int(1),
               Value::Int(1)});
  Result<std::string> explanation = session_.ExplainResultRow(bogus);
  ASSERT_TRUE(explanation.ok());
  EXPECT_NE(explanation.value().find("assembled by fusion"),
            std::string::npos);
}

TEST_F(SessionExplainTest, TraceMarkdownRendering) {
  std::string md = session_.trace().ToMarkdown();
  EXPECT_NE(md.find("| step | transducer |"), std::string::npos);
  EXPECT_NE(md.find("schema_matching"), std::string::npos);
  EXPECT_NE(md.find("| changed |"), std::string::npos);
}

TEST_F(SessionExplainTest, SessionKbSurvivesPersistenceRoundTrip) {
  // The whole wrangled knowledge base — sources, metadata, results —
  // saves and restores losslessly (audit/replay scenario).
  std::string dir = testing::TempDir() + "/vada_session_kb";
  ASSERT_TRUE(SaveKnowledgeBase(session_.kb(), dir).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().RelationNames(), session_.kb().RelationNames());
  for (const std::string& name : session_.kb().RelationNames()) {
    EXPECT_EQ(loaded.value().FindRelation(name)->SortedRows(),
              session_.kb().FindRelation(name)->SortedRows())
        << name;
    EXPECT_EQ(loaded.value().catalog().GetRole(name),
              session_.kb().catalog().GetRole(name))
        << name;
  }
}

/// Confluence: the final knowledge-base contents must not depend on the
/// scheduling policy — FIFO and the activity-priority network transducer
/// must reach the same fixpoint (the paper's declarative-orchestration
/// promise: policies affect the path, not the destination).
TEST(SessionConfluenceTest, PolicyIndependentFixpoint) {
  PropertyUniverseOptions uopts;
  uopts.num_properties = 60;
  uopts.num_postcodes = 10;
  uopts.seed = 99;
  GroundTruth truth = GeneratePropertyUniverse(uopts);
  ExtractionErrorOptions opts;
  opts.seed = 8;
  Relation rightmove = ExtractRightmove(truth, opts);
  Relation deprivation = GenerateDeprivation(truth);
  Relation address = GenerateAddressReference(truth);

  auto run = [&](std::unique_ptr<SchedulingPolicy> policy) {
    KnowledgeBase kb;
    auto state = std::make_unique<WranglingState>();
    state->target_relation = "target";
    EXPECT_TRUE(kb.CreateRelation(TargetSchema()).ok());
    kb.catalog().SetRole("target", RelationRole::kTarget);
    EXPECT_TRUE(kb.InsertAll(rightmove).ok());
    kb.catalog().SetRole("rightmove", RelationRole::kSource);
    EXPECT_TRUE(kb.InsertAll(deprivation).ok());
    kb.catalog().SetRole("deprivation", RelationRole::kSource);
    DataContextBinding binding;
    binding.context_relation = "address";
    binding.kind = RelationRole::kReference;
    binding.correspondences = {{"street", "street"}, {"postcode", "postcode"}};
    EXPECT_TRUE(state->data_context.AddBinding(binding).ok());
    EXPECT_TRUE(kb.InsertAll(address).ok());
    kb.catalog().SetRole("address", RelationRole::kReference);
    EXPECT_TRUE(
        kb.ReplaceRelationIfChanged(state->data_context.ToRelation()).ok());

    TransducerRegistry registry;
    EXPECT_TRUE(RegisterStandardTransducers(&registry, state.get()).ok());
    OrchestratorOptions oopts;
    oopts.max_steps = 2000;
    NetworkTransducer orchestrator(&registry, std::move(policy), oopts);
    Status s = orchestrator.Run(&kb);
    EXPECT_TRUE(s.ok()) << s.ToString();

    // Snapshot: every relation's sorted rows.
    std::map<std::string, std::vector<Tuple>> snapshot;
    for (const std::string& name : kb.RelationNames()) {
      snapshot[name] = kb.FindRelation(name)->SortedRows();
    }
    return snapshot;
  };

  auto fifo = run(std::make_unique<FifoPolicy>());
  auto priority = run(std::make_unique<ActivityPriorityPolicy>(
      ActivityPriorityPolicy::DefaultActivityOrder()));
  ASSERT_EQ(fifo.size(), priority.size());
  for (const auto& [name, rows] : fifo) {
    ASSERT_TRUE(priority.count(name) > 0) << name;
    EXPECT_EQ(priority.at(name), rows) << "relation " << name
                                       << " differs between policies";
  }
}

}  // namespace
}  // namespace vada
