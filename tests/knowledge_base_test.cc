#include <gtest/gtest.h>

#include "kb/knowledge_base.h"

namespace vada {
namespace {

TEST(KnowledgeBaseTest, CreateAndLookup) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
  EXPECT_TRUE(kb.HasRelation("r"));
  EXPECT_NE(kb.FindRelation("r"), nullptr);
  EXPECT_EQ(kb.FindRelation("missing"), nullptr);
  EXPECT_FALSE(kb.GetRelation("missing").ok());
}

TEST(KnowledgeBaseTest, CreateDuplicateFails) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
  EXPECT_EQ(kb.CreateRelation(Schema::Untyped("r", {"a"})).code(),
            StatusCode::kAlreadyExists);
}

TEST(KnowledgeBaseTest, EnsureRelationIdempotentButSchemaStrict) {
  KnowledgeBase kb;
  Schema s = Schema::Untyped("r", {"a"});
  ASSERT_TRUE(kb.EnsureRelation(s).ok());
  EXPECT_TRUE(kb.EnsureRelation(s).ok());
  EXPECT_EQ(kb.EnsureRelation(Schema::Untyped("r", {"b"})).code(),
            StatusCode::kFailedPrecondition);
}

TEST(KnowledgeBaseTest, VersionsBumpOnlyOnRealChanges) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
  uint64_t v0 = kb.relation_version("r");
  ASSERT_TRUE(kb.Assert("r", {Value::Int(1)}).ok());
  uint64_t v1 = kb.relation_version("r");
  EXPECT_GT(v1, v0);
  // Duplicate insert: no bump.
  ASSERT_TRUE(kb.Assert("r", {Value::Int(1)}).ok());
  EXPECT_EQ(kb.relation_version("r"), v1);
  // Retract bumps.
  ASSERT_TRUE(kb.Retract("r", Tuple({Value::Int(1)})).ok());
  EXPECT_GT(kb.relation_version("r"), v1);
  // Retracting a missing tuple: no bump.
  uint64_t v2 = kb.relation_version("r");
  ASSERT_TRUE(kb.Retract("r", Tuple({Value::Int(9)})).ok());
  EXPECT_EQ(kb.relation_version("r"), v2);
}

TEST(KnowledgeBaseTest, GlobalVersionTracksAllRelations) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("a", {"x"})).ok());
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("b", {"x"})).ok());
  uint64_t g = kb.global_version();
  ASSERT_TRUE(kb.Assert("a", {Value::Int(1)}).ok());
  ASSERT_TRUE(kb.Assert("b", {Value::Int(1)}).ok());
  EXPECT_EQ(kb.global_version(), g + 2);
}

TEST(KnowledgeBaseTest, InsertIntoUnknownRelationFails) {
  KnowledgeBase kb;
  EXPECT_EQ(kb.Assert("nope", {Value::Int(1)}).code(), StatusCode::kNotFound);
}

TEST(KnowledgeBaseTest, InsertAllCreatesAndFills) {
  KnowledgeBase kb;
  Relation rel(Schema::Untyped("r", {"a"}));
  ASSERT_TRUE(rel.Insert(Tuple({Value::Int(1)})).ok());
  ASSERT_TRUE(rel.Insert(Tuple({Value::Int(2)})).ok());
  ASSERT_TRUE(kb.InsertAll(rel).ok());
  EXPECT_EQ(kb.FindRelation("r")->size(), 2u);
}

TEST(KnowledgeBaseTest, ReplaceRelationSwapsContents) {
  KnowledgeBase kb;
  Relation v1(Schema::Untyped("r", {"a"}));
  ASSERT_TRUE(v1.Insert(Tuple({Value::Int(1)})).ok());
  ASSERT_TRUE(kb.ReplaceRelation(v1).ok());
  Relation v2(Schema::Untyped("r", {"a"}));
  ASSERT_TRUE(v2.Insert(Tuple({Value::Int(9)})).ok());
  ASSERT_TRUE(kb.ReplaceRelation(v2).ok());
  ASSERT_EQ(kb.FindRelation("r")->size(), 1u);
  EXPECT_EQ(kb.FindRelation("r")->rows()[0].at(0), Value::Int(9));
}

TEST(KnowledgeBaseTest, ClearAndDrop) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
  ASSERT_TRUE(kb.Assert("r", {Value::Int(1)}).ok());
  ASSERT_TRUE(kb.ClearRelation("r").ok());
  EXPECT_TRUE(kb.HasRelation("r"));
  EXPECT_EQ(kb.FindRelation("r")->size(), 0u);
  ASSERT_TRUE(kb.DropRelation("r").ok());
  EXPECT_FALSE(kb.HasRelation("r"));
  EXPECT_FALSE(kb.DropRelation("r").ok());
}

TEST(KnowledgeBaseTest, RelationNamesSorted) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("zebra", {"a"})).ok());
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("apple", {"a"})).ok());
  EXPECT_EQ(kb.RelationNames(), (std::vector<std::string>{"apple", "zebra"}));
}

TEST(CatalogTest, RolesRoundTrip) {
  Catalog cat;
  cat.SetRole("rightmove", RelationRole::kSource);
  cat.SetRole("target", RelationRole::kTarget);
  cat.SetRole("address", RelationRole::kReference);
  EXPECT_EQ(*cat.GetRole("rightmove"), RelationRole::kSource);
  EXPECT_FALSE(cat.GetRole("unknown").has_value());
  EXPECT_EQ(cat.RelationsWithRole(RelationRole::kSource),
            (std::vector<std::string>{"rightmove"}));
  EXPECT_TRUE(cat.IsDataContext("address"));
  EXPECT_FALSE(cat.IsDataContext("rightmove"));
  cat.Remove("address");
  EXPECT_FALSE(cat.GetRole("address").has_value());
}

TEST(CatalogTest, RoleNames) {
  EXPECT_STREQ(RelationRoleName(RelationRole::kSource), "source");
  EXPECT_STREQ(RelationRoleName(RelationRole::kReference), "reference");
  EXPECT_STREQ(RelationRoleName(RelationRole::kResult), "result");
}

}  // namespace
}  // namespace vada
