#include <gtest/gtest.h>

#include "kb/tuple.h"
#include "kb/value.h"

namespace vada {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(-7).int_value(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
}

TEST(ValueTest, EqualityIsStrictOnType) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Double(3.0));
  EXPECT_NE(Value::String("3"), Value::Int(3));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, OrderingByTypeTagThenPayload) {
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::Double(1.0));  // type tag dominates
  EXPECT_LT(Value::Double(9.0), Value::String(""));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
}

TEST(ValueTest, AsDoubleCoercesNumericsOnly) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Double(4.5).AsDouble(), 4.5);
  EXPECT_FALSE(Value::String("4").AsDouble().has_value());
  EXPECT_FALSE(Value::Null().AsDouble().has_value());
  EXPECT_FALSE(Value::Bool(true).AsDouble().has_value());
}

TEST(ValueTest, FromTextInference) {
  EXPECT_EQ(Value::FromText(""), Value::Null());
  EXPECT_EQ(Value::FromText("true"), Value::Bool(true));
  EXPECT_EQ(Value::FromText("false"), Value::Bool(false));
  EXPECT_EQ(Value::FromText("42"), Value::Int(42));
  EXPECT_EQ(Value::FromText("-17"), Value::Int(-17));
  EXPECT_EQ(Value::FromText("2.5"), Value::Double(2.5));
  EXPECT_EQ(Value::FromText("1e3"), Value::Double(1000.0));
  EXPECT_EQ(Value::FromText("SW1A 1AA"), Value::String("SW1A 1AA"));
  EXPECT_EQ(Value::FromText("12b"), Value::String("12b"));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Null().ToString(/*null_as_empty=*/true), "");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(12).ToString(), "12");
  EXPECT_EQ(Value::String("x").ToString(), "x");
}

TEST(ValueTest, ToLiteralQuotesStrings) {
  EXPECT_EQ(Value::String("a \"b\"").ToLiteral(), "\"a \\\"b\\\"\"");
  EXPECT_EQ(Value::Int(5).ToLiteral(), "5");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Int(3).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  // Different types should (practically always) hash differently.
  EXPECT_NE(Value::Int(0).Hash(), Value::Null().Hash());
}

TEST(TupleTest, EqualityAndOrdering) {
  Tuple a({Value::Int(1), Value::String("x")});
  Tuple b({Value::Int(1), Value::String("x")});
  Tuple c({Value::Int(1), Value::String("y")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(TupleTest, Project) {
  Tuple t({Value::Int(1), Value::Int(2), Value::Int(3)});
  Tuple p = t.Project({2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(0), Value::Int(3));
  EXPECT_EQ(p.at(1), Value::Int(1));
}

TEST(TupleTest, HashMatchesEquality) {
  Tuple a({Value::Int(1), Value::Null()});
  Tuple b({Value::Int(1), Value::Null()});
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TupleTest, ToStringQuotesStrings) {
  Tuple t({Value::Int(1), Value::String("a")});
  EXPECT_EQ(t.ToString(), "(1, \"a\")");
}

}  // namespace
}  // namespace vada
