#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

namespace vada {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(100);
  pool.ParallelFor(seen.size(), [&](size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, SingleIterationRunsInline) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.ParallelFor(1, [&](size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForAccumulatesCorrectSum) {
  ThreadPool pool(4);
  constexpr size_t kN = 5'000;
  std::atomic<long long> sum{0};
  pool.ParallelFor(kN, [&](size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A worker that calls ParallelFor again must make progress even when
  // every other worker is blocked inside the same outer loop (the caller
  // always participates, so helpers are an optimisation, not a
  // requirement).
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndFutureCompletes) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  std::future<void> f = pool.Submit([&] { ran.store(true); });
  f.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, SubmitOnZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  bool ran = false;
  std::future<void> f = pool.Submit([&] { ran = true; });
  // Inline execution: the task has completed by the time Submit returns.
  EXPECT_TRUE(ran);
  f.wait();
}

TEST(ThreadPoolTest, TasksExecutedCounts) {
  ThreadPool pool(2);
  const uint64_t before = pool.tasks_executed();
  pool.ParallelFor(100, [](size_t) {});
  pool.Submit([] {}).wait();
  EXPECT_GE(pool.tasks_executed(), before + 101);
}

TEST(ThreadPoolTest, ManySmallLoopsStress) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(17, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 17);
  }
}

}  // namespace
}  // namespace vada
