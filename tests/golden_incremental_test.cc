// Golden incremental-session regression test (DESIGN.md §5k): the demo
// scenario is driven through a deterministic feedback/context/source
// event stream and the final fused result is compared against a
// canonical snapshot in tests/golden/. The snapshot must be reproduced
// exactly with differential maintenance off, on, on with a tiny
// fallback threshold (every batch becomes a full re-run), and on with
// a worker pool — pinning down that delta maintenance never changes
// what the user sees, only how it is computed.
//
// Regenerate after an intentional semantic change with:
//   VADA_UPDATE_GOLDEN=1 ./tests/golden_incremental_test
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "extract/open_government.h"
#include "extract/real_estate.h"
#include "kb/schema.h"
#include "wrangler/session.h"

#ifndef VADA_GOLDEN_DIR
#error "VADA_GOLDEN_DIR must point at tests/golden"
#endif

namespace vada {
namespace {

const char kGoldenFile[] = VADA_GOLDEN_DIR "/incremental_result.txt";

std::vector<std::string> Canonicalize(const Relation& result) {
  std::vector<std::string> lines;
  lines.reserve(result.rows().size());
  for (const Tuple& row : result.rows()) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += '|';
      line += row.at(i).ToLiteral();
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// The pay-as-you-go event stream: bootstrap, data context, feedback on
/// implausible bedroom counts, one late source batch. Deterministic —
/// every seed fixed, feedback rows chosen by a sorted scan.
std::vector<std::string> RunIncrementalScenario(const WranglerConfig& config) {
  PropertyUniverseOptions uopts;
  uopts.num_properties = 60;
  uopts.num_postcodes = 10;
  uopts.seed = 23;
  GroundTruth truth = GeneratePropertyUniverse(uopts);
  ExtractionErrorOptions rm_err;
  rm_err.seed = 7;
  ExtractionErrorOptions otm_err;
  otm_err.seed = 8;
  otm_err.coverage = 0.6;

  WranglingSession session(config);
  Schema target = Schema::Untyped(
      "target", {"type", "description", "street", "postcode", "bedrooms",
                 "price", "crimerank"});
  EXPECT_TRUE(session.SetTargetSchema(target).ok());
  EXPECT_TRUE(session.AddSource(ExtractRightmove(truth, rm_err)).ok());
  EXPECT_TRUE(session.AddSource(ExtractOnthemarket(truth, otm_err)).ok());
  EXPECT_TRUE(session.AddSource(GenerateDeprivation(truth)).ok());
  EXPECT_TRUE(session.Run().ok());

  EXPECT_TRUE(session
                  .AddDataContext(GenerateAddressReference(truth),
                                  RelationRole::kReference,
                                  {{"street", "street"},
                                   {"postcode", "postcode"}})
                  .ok());
  EXPECT_TRUE(session.Run().ok());

  // Deterministic feedback: flag the first (in sorted order) rows whose
  // extracted bedroom count is implausible.
  const Relation* result = session.result();
  EXPECT_NE(result, nullptr);
  if (result == nullptr) return {};
  std::optional<size_t> bed_idx = result->schema().AttributeIndex("bedrooms");
  EXPECT_TRUE(bed_idx.has_value());
  std::vector<Tuple> rows = result->rows();
  std::sort(rows.begin(), rows.end());
  size_t flagged = 0;
  for (const Tuple& row : rows) {
    std::optional<double> d = row.at(*bed_idx).AsDouble();
    if (d.has_value() && *d > 8.0) {
      EXPECT_TRUE(session
                      .AddFeedback(FeedbackItem{row, "bedrooms",
                                                FeedbackPolarity::kIncorrect})
                      .ok());
      if (++flagged >= 5) break;
    }
  }
  EXPECT_TRUE(session.Run().ok());

  // A late source batch from a disjoint universe trickles in.
  PropertyUniverseOptions extra;
  extra.num_properties = 4;
  extra.num_postcodes = 2;
  extra.seed = 99;
  ExtractionErrorOptions extra_err;
  extra_err.seed = 9;
  EXPECT_TRUE(
      session.AddSource(ExtractRightmove(GeneratePropertyUniverse(extra),
                                         extra_err))
          .ok());
  EXPECT_TRUE(session.Run().ok());

  EXPECT_NE(session.result(), nullptr);
  if (session.result() == nullptr) return {};
  return Canonicalize(*session.result());
}

std::vector<std::string> ReadGolden() {
  std::ifstream in(kGoldenFile);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(GoldenIncrementalTest, FeedbackStreamMatchesGoldenWithAndWithoutDeltas) {
  WranglerConfig incremental;
  incremental.incremental.enabled = true;
  std::vector<std::string> baseline = RunIncrementalScenario(incremental);
  ASSERT_FALSE(baseline.empty());

  if (std::getenv("VADA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenFile, std::ios::trunc);
    for (const std::string& line : baseline) out << line << "\n";
    ASSERT_TRUE(out.good()) << "failed to write " << kGoldenFile;
    GTEST_SKIP() << "golden file regenerated at " << kGoldenFile;
  }

  std::vector<std::string> golden = ReadGolden();
  ASSERT_FALSE(golden.empty())
      << "missing golden snapshot " << kGoldenFile
      << " — run with VADA_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(baseline, golden);

  struct Variant {
    const char* name;
    WranglerConfig config;
  };
  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "maintenance off (full re-execution)";
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "maintenance on, every batch falls back";
    v.config.incremental.enabled = true;
    v.config.incremental.max_delta_fraction = 0.0;  // <= 0: always full
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "maintenance on, pool-backed";
    v.config.incremental.enabled = true;
    v.config.parallelism.threads = 4;
    v.config.parallelism.snapshot_cache = true;
    variants.push_back(v);
  }
  for (const Variant& v : variants) {
    SCOPED_TRACE(v.name);
    EXPECT_EQ(RunIncrementalScenario(v.config), golden);
  }
}

}  // namespace
}  // namespace vada
