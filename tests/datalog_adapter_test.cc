#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/kb_adapter.h"
#include "datalog/parser.h"

namespace vada::datalog {
namespace {

Program MustParse(const std::string& src) {
  Result<Program> p = Parser::Parse(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

KnowledgeBase ThreeRelationKb() {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("small", {"x"})).ok());
  EXPECT_TRUE(kb.Assert("small", {Value::Int(1)}).ok());
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("negated", {"x"})).ok());
  EXPECT_TRUE(kb.Assert("negated", {Value::Int(1)}).ok());
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("huge", {"x"})).ok());
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(kb.Assert("huge", {Value::Int(i)}).ok());
  }
  return kb;
}

TEST(KbAdapterTest, LoadReferencedRelationsSkipsUnreferenced) {
  KnowledgeBase kb = ThreeRelationKb();
  Program p = MustParse("out(X) :- small(X), not negated(X).");
  Database db;
  LoadReferencedRelations(p, kb, &db);
  EXPECT_EQ(db.FactCount("small"), 1u);
  EXPECT_EQ(db.FactCount("negated"), 1u);  // negated atoms are referenced
  EXPECT_EQ(db.FactCount("huge"), 0u);     // not mentioned: not loaded
}

TEST(KbAdapterTest, DerivedPredicatesNotPreloaded) {
  KnowledgeBase kb = ThreeRelationKb();
  // A KB relation that shadows an IDB predicate must not leak in as EDB:
  // derived relations are recomputed, not accumulated (the stale-result
  // bug class fixed in MappingExecutor).
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("out", {"x"})).ok());
  ASSERT_TRUE(kb.Assert("out", {Value::Int(777)}).ok());
  Program p = MustParse(
      "out(X) :- small(X).\n"
      "final(X) :- out(X).\n");
  Database db;
  LoadReferencedRelations(p, kb, &db);
  EXPECT_EQ(db.FactCount("out"), 0u);
  Result<std::vector<Tuple>> result = Query(p, &db, "final");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].at(0), Value::Int(1));  // not 777
}

TEST(KbAdapterTest, QueryMatchesFullLoadSemantics) {
  KnowledgeBase kb = ThreeRelationKb();
  Program p = MustParse("out(X) :- huge(X), X < 5, not negated(X).");

  Database full;
  LoadKnowledgeBase(kb, &full);
  Result<std::vector<Tuple>> via_full = Query(p, &full, "out");
  ASSERT_TRUE(via_full.ok());

  Result<std::vector<Tuple>> via_referenced =
      QueryKnowledgeBase(p, kb, "out");
  ASSERT_TRUE(via_referenced.ok());
  EXPECT_EQ(via_full.value(), via_referenced.value());
  EXPECT_EQ(via_referenced.value().size(), 4u);  // 0,2,3,4 (1 is negated)
}

TEST(EvalEdgeTest, RuleWithOnlyBuiltinsFiresOnce) {
  Database db;
  Program p = MustParse("flag(1) :- 1 < 2.");
  Result<std::vector<Tuple>> result = Query(p, &db, "flag");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().size(), 1u);
}

TEST(EvalEdgeTest, RuleWithFalseBuiltinNeverFires) {
  Database db;
  Program p = MustParse("flag(1) :- 2 < 1.");
  Result<std::vector<Tuple>> result = Query(p, &db, "flag");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(EvalEdgeTest, EmptyProgramIsFine) {
  Database db;
  db.Insert("p", Tuple({Value::Int(1)}));
  Program p;
  Result<std::vector<Tuple>> result = Query(p, &db, "p");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
}

TEST(EvalEdgeTest, UnknownGoalReturnsEmpty) {
  Database db;
  Program p = MustParse("p(1).");
  Result<std::vector<Tuple>> result = Query(p, &db, "no_such_predicate");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(EvalEdgeTest, ConstantsOnlyJoinAcrossArities) {
  Database db;
  db.Insert("wide", Tuple({Value::Int(1), Value::Int(2), Value::Int(3)}));
  // A body atom with wrong arity for its predicate simply never unifies
  // (defensive behaviour; validated programs do not hit this).
  Program p = MustParse("out(X) :- wide(X, Y).");
  Result<std::vector<Tuple>> result = Query(p, &db, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(EvalEdgeTest, DeepStratificationChain) {
  // 12 levels of negation: exercises stratum ordering end to end.
  std::string src = "p0(X) :- base(X).\n";
  for (int i = 1; i <= 12; ++i) {
    src += "p" + std::to_string(i) + "(X) :- base(X), not p" +
           std::to_string(i - 1) + "(X).\n";
  }
  Database db;
  db.Insert("base", Tuple({Value::Int(1)}));
  Program p = MustParse(src);
  Evaluator eval(p);
  ASSERT_TRUE(eval.Prepare().ok());
  ASSERT_TRUE(eval.Run(&db).ok());
  // p0 holds; p1 = not p0 -> empty; p2 = not p1 -> holds; alternating.
  for (int i = 0; i <= 12; ++i) {
    bool expect_holds = (i % 2 == 0);
    EXPECT_EQ(db.FactCount("p" + std::to_string(i)),
              expect_holds ? 1u : 0u)
        << "level " << i;
  }
}

}  // namespace
}  // namespace vada::datalog
