#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/similarity.h"
#include "common/status.h"
#include "common/strings.h"

namespace vada {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "parse_error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "data_loss");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, JoinRoundTrips) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("aBc1"), "ABC1");
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringsTest, TokenizeIdentifierHandlesSeparatorsAndCamelCase) {
  EXPECT_EQ(TokenizeIdentifier("crimeRank_id"),
            (std::vector<std::string>{"crime", "rank", "id"}));
  EXPECT_EQ(TokenizeIdentifier("postcode"),
            (std::vector<std::string>{"postcode"}));
  EXPECT_EQ(TokenizeIdentifier("number-of bedrooms"),
            (std::vector<std::string>{"number", "of", "bedrooms"}));
  EXPECT_TRUE(TokenizeIdentifier("").empty());
}

TEST(StringsTest, IsDigits) {
  EXPECT_TRUE(IsDigits("0123"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits("-12"));
}

TEST(SimilarityTest, LevenshteinDistanceBasics) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", "ab"), 2);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
}

TEST(SimilarityTest, LevenshteinSimilarityRange) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  double s = LevenshteinSimilarity("price", "prices");
  EXPECT_GT(s, 0.8);
  EXPECT_LT(s, 1.0);
}

TEST(SimilarityTest, JaroWinklerFavorsSharedPrefix) {
  double with_prefix = JaroWinklerSimilarity("postcode", "postcodes");
  double without = JaroWinklerSimilarity("postcode", "odestcops");
  EXPECT_GT(with_prefix, without);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("a", ""), 0.0);
}

TEST(SimilarityTest, JaroKnownValue) {
  // Classic example: MARTHA vs MARHTA = 0.944...
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.9444, 1e-3);
}

TEST(SimilarityTest, QGramJaccard) {
  EXPECT_DOUBLE_EQ(QGramJaccard("abc", "abc", 2), 1.0);
  EXPECT_DOUBLE_EQ(QGramJaccard("", "", 2), 1.0);
  EXPECT_GT(QGramJaccard("street", "strret", 2), 0.3);
  EXPECT_LT(QGramJaccard("street", "zzzzzz", 2), 0.01);
}

TEST(SimilarityTest, TokenJaccardAndDice) {
  std::vector<std::string> a = {"number", "of", "bedrooms"};
  std::vector<std::string> b = {"bedrooms"};
  EXPECT_NEAR(TokenJaccard(a, b), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(TokenDice(a, b), 2.0 / 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(TokenJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TokenDice(a, a), 1.0);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(6);
  int hits = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kTrials), 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(8);
  double sum = 0.0, sq = 0.0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kTrials;
  double var = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace vada
