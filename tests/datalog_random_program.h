// Shared random-program generator for the datalog differential fuzz
// harness and the dataflow/optimizer property tests: seeds map
// deterministically to (EDB, program) pairs exercising every feature
// the planner and the optimizer touch — multi-way joins, constants in
// atoms, comparisons, arithmetic assignments, stratified negation and
// aggregates, over relations that may be empty.
#ifndef VADA_TESTS_DATALOG_RANDOM_PROGRAM_H_
#define VADA_TESTS_DATALOG_RANDOM_PROGRAM_H_

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/database.h"
#include "datalog/differential.h"
#include "datalog/evaluator.h"

namespace vada::datalog {

struct EvalOutput {
  std::map<std::string, std::vector<Tuple>> facts;
  EvalStats stats;

  std::map<std::string, std::vector<Tuple>> SortedFacts() const {
    std::map<std::string, std::vector<Tuple>> out = facts;
    for (auto& [pred, rows] : out) std::sort(rows.begin(), rows.end());
    return out;
  }

  /// Bit-identity: same rows in the same order, same stats.
  bool operator==(const EvalOutput& o) const {
    return facts == o.facts && stats.iterations == o.stats.iterations &&
           stats.facts_derived == o.stats.facts_derived &&
           stats.rule_applications == o.stats.rule_applications &&
           stats.join_probes == o.stats.join_probes &&
           stats.index_probes == o.stats.index_probes &&
           stats.index_candidates == o.stats.index_candidates &&
           stats.index_builds == o.stats.index_builds;
  }
};

inline EvalOutput Evaluate(const Program& program, const Database& edb,
                           const EvalOptions& options) {
  Database db = edb;
  Evaluator eval(program, options);
  EXPECT_TRUE(eval.Prepare().ok());
  EvalOutput out;
  EXPECT_TRUE(eval.Run(&db, &out.stats).ok());
  for (const std::string& pred : db.Predicates()) {
    out.facts[pred] = db.facts(pred);
  }
  return out;
}

/// Random EDB over three binary edge relations (one possibly left empty
/// while rules still reference it), a string-labelled relation, a
/// weighted relation, and unary node/src relations.
inline Database RandomEdb(Rng* rng) {
  Database db;
  int nodes = static_cast<int>(rng->UniformInt(3, 12));
  int edges = static_cast<int>(rng->UniformInt(4, 60));
  bool e2_empty = rng->Bernoulli(0.2);
  for (int e = 0; e < 3; ++e) {
    if (e == 2 && e2_empty) continue;
    std::string pred = "e" + std::to_string(e);
    for (int i = 0; i < edges; ++i) {
      db.Insert(pred, Tuple({Value::Int(rng->UniformInt(0, nodes - 1)),
                             Value::Int(rng->UniformInt(0, nodes - 1))}));
    }
  }
  for (int i = 0; i < edges / 2; ++i) {
    db.Insert("lab",
              Tuple({Value::Int(rng->UniformInt(0, nodes - 1)),
                     Value::String("s" + std::to_string(rng->UniformInt(0, 3)))}));
    db.Insert("w", Tuple({Value::Int(rng->UniformInt(0, nodes - 1)),
                          Value::Int(rng->UniformInt(0, nodes - 1)),
                          Value::Int(rng->UniformInt(0, 9))}));
  }
  for (int i = 0; i < nodes; ++i) {
    if (rng->Bernoulli(0.3)) db.Insert("src", Tuple({Value::Int(i)}));
    db.Insert("node", Tuple({Value::Int(i)}));
  }
  return db;
}

/// Random program exercising every feature the planner touches: multi-way
/// joins (cross products included), constants in atoms, comparisons,
/// arithmetic assignments, stratified negation and aggregates.
inline std::string RandomProgram(Rng* rng) {
  std::ostringstream p;
  p << "p0(X, Y) :- e0(X, Y).\n";
  int rules = static_cast<int>(rng->UniformInt(4, 9));
  for (int r = 0; r < rules; ++r) {
    int head = static_cast<int>(rng->UniformInt(0, 3));
    switch (rng->UniformInt(0, 6)) {
      case 0:  // copy, sometimes from the (possibly empty) e2
        p << "p" << head << "(X, Y) :- e" << rng->UniformInt(0, 2)
          << "(X, Y).\n";
        break;
      case 1:  // linear recursion
        p << "p" << head << "(X, Y) :- e" << rng->UniformInt(0, 2)
          << "(X, Z), p" << rng->UniformInt(0, 3) << "(Z, Y).\n";
        break;
      case 2:  // nonlinear recursion
        p << "p" << head << "(X, Y) :- p" << rng->UniformInt(0, 3)
          << "(X, Z), p" << rng->UniformInt(0, 3) << "(Z, Y).\n";
        break;
      case 3:  // constant in an atom position
        p << "p" << head << "(X, Y) :- e" << rng->UniformInt(0, 1) << "(X, Y), "
          << "e" << rng->UniformInt(0, 1) << "(" << rng->UniformInt(0, 5)
          << ", X).\n";
        break;
      case 4:  // comparison filter over a two-atom join
        p << "p" << head << "(X, Y) :- e" << rng->UniformInt(0, 1)
          << "(X, Z), e" << rng->UniformInt(0, 1) << "(Z, Y), X "
          << (rng->Bernoulli(0.5) ? "<" : "!=") << " Y.\n";
        break;
      case 5:  // arithmetic assignment
        p << "p" << head << "(X, S) :- w(X, Y, C), S = C + "
          << rng->UniformInt(1, 3) << ".\n";
        break;
      default:  // cross product joined back through a label
        p << "p" << head << "(X, Y) :- node(X), node(Y), lab(X, \"s"
          << rng->UniformInt(0, 3) << "\").\n";
        break;
    }
  }
  // Fixed stratified tail: negation over reachability and aggregates.
  p << "reach(X) :- src(X).\n"
       "reach(Y) :- reach(X), e0(X, Y).\n"
       "unreach(X) :- node(X), not reach(X).\n"
       "fanout(X, count<Y>) :- p0(X, Y).\n"
       "wsum(X, sum<C>) :- w(X, Y, C).\n"
       "span(min<X>, max<Y>) :- p1(X, Y).\n";
  return p.str();
}

/// Every predicate RandomProgram derives — the goal set the optimizer
/// differential sweeps (each one exercises a different rewrite shape:
/// plain/recursive IDB, negation, aggregates).
inline std::vector<std::string> RandomProgramGoals() {
  return {"p0", "p1",     "p2",     "p3",   "reach",
          "unreach", "fanout", "wsum", "span"};
}

/// The base (pre-derivation) fact sets of `db`, keyed by predicate —
/// the shadow state the incremental-vs-full fuzz maintains alongside a
/// DifferentialEvaluator.
inline std::map<std::string, std::set<Tuple>> BaseRows(const Database& db) {
  std::map<std::string, std::set<Tuple>> base;
  for (const std::string& pred : db.Predicates()) {
    const std::vector<Tuple> rows = db.facts(pred);
    base[pred].insert(rows.begin(), rows.end());
  }
  return base;
}

inline Database BaseToDatabase(
    const std::map<std::string, std::set<Tuple>>& base) {
  Database db;
  for (const auto& [pred, rows] : base) {
    for (const Tuple& t : rows) db.Insert(pred, t);
  }
  return db;
}

/// Applies one delta batch to a shadow base map under the
/// DifferentialEvaluator contract: rows in both lists of a batch net
/// out, then inserts union in and retracts drop out (absent rows are
/// no-ops).
inline void ApplyDeltaToBase(const RelationDelta& delta,
                             std::map<std::string, std::set<Tuple>>* base) {
  for (const auto& [pred, dr] : delta) {
    std::set<Tuple> ins(dr.inserts.begin(), dr.inserts.end());
    std::set<Tuple> ret(dr.retracts.begin(), dr.retracts.end());
    for (auto it = ins.begin(); it != ins.end();) {
      auto rit = ret.find(*it);
      if (rit != ret.end()) {
        ret.erase(rit);
        it = ins.erase(it);
      } else {
        ++it;
      }
    }
    std::set<Tuple>& rows = (*base)[pred];
    for (const Tuple& t : ins) rows.insert(t);
    for (const Tuple& t : ret) rows.erase(t);
    if (rows.empty()) base->erase(pred);
  }
}

/// A random tuple of the right arity/domain for `pred`, matching the
/// RandomEdb shapes (plus the IDB predicates deltas may feed directly).
inline Tuple RandomDeltaTuple(Rng* rng, const std::string& pred) {
  auto node = [&] { return Value::Int(rng->UniformInt(0, 12)); };
  if (pred == "lab") {
    return Tuple({node(),
                  Value::String("s" + std::to_string(rng->UniformInt(0, 3)))});
  }
  if (pred == "w") {
    return Tuple({node(), node(), Value::Int(rng->UniformInt(0, 9))});
  }
  if (pred == "src" || pred == "node" || pred == "reach") {
    return Tuple({node()});
  }
  return Tuple({node(), node()});  // e0/e1/e2/p0
}

/// A randomized insert/retract stream over the RandomEdb relations (and
/// occasionally base facts of IDB predicates, exercising the staged
/// path): small mixed batches with real retracts of current base rows,
/// no-op retracts of absent rows, insert+retract pairs that must net
/// out, empty batches — plus one oversized insert burst per stream that
/// crosses the default full-rebuild threshold.
inline std::vector<RelationDelta> RandomDeltaStream(Rng* rng,
                                                    const Database& edb) {
  std::map<std::string, std::set<Tuple>> base = BaseRows(edb);
  const std::vector<std::string> preds = {"e0", "e1",   "e2",   "lab", "w",
                                          "src", "node", "p0",   "reach"};
  std::vector<RelationDelta> stream;
  const int batches = 6;
  const int burst = static_cast<int>(rng->UniformInt(1, batches - 1));
  for (int b = 0; b < batches; ++b) {
    RelationDelta delta;
    if (b == burst) {
      // Distinct rows outside the 0..12 node domain: every one is a
      // fresh base flip, so the burst always exceeds the default
      // full-rebuild threshold (RandomEdb tops out near 280 rows).
      DeltaRows& dr = delta["e0"];
      int start = static_cast<int>(rng->UniformInt(100, 400));
      for (int i = 0; i < 90; ++i) {
        dr.inserts.push_back(
            Tuple({Value::Int(start + i), Value::Int(start + i + 1)}));
      }
    } else {
      int touched = static_cast<int>(rng->UniformInt(1, 3));
      for (int t = 0; t < touched; ++t) {
        const std::string& pred =
            preds[rng->UniformInt(0, preds.size() - 1)];
        DeltaRows& dr = delta[pred];
        int ins = static_cast<int>(rng->UniformInt(0, 2));
        int ret = static_cast<int>(rng->UniformInt(0, 2));
        for (int i = 0; i < ins; ++i) {
          dr.inserts.push_back(RandomDeltaTuple(rng, pred));
        }
        for (int i = 0; i < ret; ++i) {
          const std::set<Tuple>& rows = base[pred];
          if (!rows.empty() && rng->Bernoulli(0.7)) {
            auto it = rows.begin();
            std::advance(it, rng->UniformInt(0, rows.size() - 1));
            dr.retracts.push_back(*it);
          } else {
            dr.retracts.push_back(RandomDeltaTuple(rng, pred));
          }
        }
        if (!dr.inserts.empty() && rng->Bernoulli(0.15)) {
          dr.retracts.push_back(dr.inserts.front());  // nets out
        }
      }
    }
    ApplyDeltaToBase(delta, &base);
    stream.push_back(std::move(delta));
  }
  return stream;
}

}  // namespace vada::datalog

#endif  // VADA_TESTS_DATALOG_RANDOM_PROGRAM_H_
