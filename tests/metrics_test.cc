#include <gtest/gtest.h>

#include "quality/metrics.h"

namespace vada {
namespace {

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<Value>>& rows) {
  Relation rel(Schema::Untyped(name, attrs));
  for (const std::vector<Value>& row : rows) {
    EXPECT_TRUE(rel.InsertUnchecked(Tuple(row)).ok());
  }
  return rel;
}

TEST(QualityEstimatorTest, CompletenessOnly) {
  Relation data = MakeRelation("r", {"a", "b"},
                               {{Value::Int(1), Value::Null()},
                                {Value::Int(2), Value::Int(3)}});
  QualityEstimator estimator;
  RelationQuality q = estimator.Estimate(data);
  EXPECT_EQ(q.row_count, 2u);
  EXPECT_DOUBLE_EQ(q.attribute.at("a").completeness, 1.0);
  EXPECT_DOUBLE_EQ(q.attribute.at("b").completeness, 0.5);
  EXPECT_FALSE(q.attribute.at("a").accuracy.has_value());
  EXPECT_FALSE(q.consistency.has_value());
}

TEST(QualityEstimatorTest, AccuracyAgainstReference) {
  Relation data = MakeRelation(
      "r", {"postcode"},
      {{Value::String("LS1")}, {Value::String("BAD")}, {Value::Null()}});
  Relation reference = MakeRelation(
      "address", {"pc"}, {{Value::String("LS1")}, {Value::String("LS2")}});
  QualityEstimator estimator;
  estimator.SetReference(&reference, {{"postcode", "pc"}});
  RelationQuality q = estimator.Estimate(data);
  ASSERT_TRUE(q.attribute.at("postcode").accuracy.has_value());
  // 1 of 2 non-null postcodes confirmed.
  EXPECT_DOUBLE_EQ(*q.attribute.at("postcode").accuracy, 0.5);
}

TEST(QualityEstimatorTest, AccuracyVacuouslyPerfectOnAllNull) {
  Relation data = MakeRelation("r", {"postcode"}, {{Value::Null()}});
  Relation reference = MakeRelation("address", {"pc"}, {{Value::String("X")}});
  QualityEstimator estimator;
  estimator.SetReference(&reference, {{"postcode", "pc"}});
  RelationQuality q = estimator.Estimate(data);
  EXPECT_DOUBLE_EQ(*q.attribute.at("postcode").accuracy, 1.0);
}

TEST(QualityEstimatorTest, ConsistencyViaCfds) {
  Relation evidence = MakeRelation(
      "address", {"street", "postcode"},
      {{Value::String("High St"), Value::String("LS1")},
       {Value::String("High St"), Value::String("LS1")},
       {Value::String("Park Rd"), Value::String("LS2")},
       {Value::String("Park Rd"), Value::String("LS2")}});
  CfdLearnerOptions opts;
  opts.min_support_count = 2;
  opts.try_pairs = false;
  std::vector<Cfd> cfds = CfdLearner(opts).Learn(evidence);
  ASSERT_FALSE(cfds.empty());

  Relation data = MakeRelation(
      "r", {"street", "postcode"},
      {{Value::String("High St"), Value::String("LS1")},
       {Value::String("Park Rd"), Value::String("WRONG")}});
  QualityEstimator estimator;
  estimator.SetCfds(cfds, &evidence);
  RelationQuality q = estimator.Estimate(data);
  ASSERT_TRUE(q.consistency.has_value());
  EXPECT_DOUBLE_EQ(*q.consistency, 0.5);
}

TEST(QualityEstimatorTest, FactsFlattenReport) {
  Relation data = MakeRelation("r", {"a"}, {{Value::Int(1)}});
  QualityEstimator estimator;
  std::vector<QualityMetricFact> facts = estimator.EstimateFacts(data, "m0");
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].entity, "m0");
  EXPECT_EQ(facts[0].metric, "completeness");
  EXPECT_EQ(facts[0].subject, "a");
  EXPECT_DOUBLE_EQ(facts[0].value, 1.0);
}

TEST(QualityMetricsRelationTest, RoundTrip) {
  std::vector<QualityMetricFact> facts = {
      {"m0", "completeness", "price", 0.9},
      {"m0", "consistency", "", 0.8},
  };
  Relation rel = QualityMetricsToRelation(facts);
  Result<std::vector<QualityMetricFact>> back =
      QualityMetricsFromRelation(rel);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
}

TEST(QualityMetricsRelationTest, WrongArityRejected) {
  Relation rel(Schema::Untyped("quality_metric", {"a"}));
  EXPECT_FALSE(QualityMetricsFromRelation(rel).ok());
}

TEST(RelationQualityTest, ToStringMentionsAttributes) {
  Relation data = MakeRelation("r", {"alpha"}, {{Value::Int(1)}});
  QualityEstimator estimator;
  std::string s = estimator.Estimate(data).ToString();
  EXPECT_NE(s.find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace vada
