#include <gtest/gtest.h>

#include <sys/stat.h>

#include "common/rng.h"
#include "kb/fs_util.h"
#include "kb/persistence.h"

namespace vada {
namespace {

std::string TempDir(const char* name) {
  return testing::TempDir() + "/vada_persistence_" + name;
}

KnowledgeBase SampleKb() {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.CreateRelation(
                    Schema("listing", {{"street", AttributeType::kString},
                                       {"price", AttributeType::kInt},
                                       {"score", AttributeType::kAny}}))
                  .ok());
  kb.catalog().SetRole("listing", RelationRole::kSource);
  EXPECT_TRUE(kb.Assert("listing", {Value::String("High St"),
                                    Value::Int(100000), Value::Double(0.5)})
                  .ok());
  EXPECT_TRUE(kb.Assert("listing", {Value::String("42"),  // number-like string
                                    Value::Null(), Value::Bool(true)})
                  .ok());
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("notes", {"text"})).ok());
  EXPECT_TRUE(
      kb.Assert("notes", {Value::String("tricky \"quoted\", comma")}).ok());
  EXPECT_TRUE(kb.Assert("notes", {Value::String("line1\nline2")}).ok());
  return kb;
}

TEST(CellCodecTest, RoundTripsEveryType) {
  for (const Value& v :
       {Value::Null(), Value::Bool(true), Value::Bool(false), Value::Int(-7),
        Value::Double(2.5), Value::String(""), Value::String("plain"),
        Value::String("42"), Value::String("true"),
        Value::String("with \"quotes\" and \\ backslash")}) {
    Result<Value> back = DecodeCell(EncodeCell(v));
    ASSERT_TRUE(back.ok()) << EncodeCell(v) << ": "
                           << back.status().ToString();
    EXPECT_EQ(back.value(), v) << EncodeCell(v);
  }
}

TEST(CellCodecTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeCell("not a literal").ok());
  EXPECT_FALSE(DecodeCell("\"unterminated").ok());
  EXPECT_FALSE(DecodeCell("\"x\"y").ok());
}

// Pre-columnar image compatibility (DESIGN.md §5j): symbol ids never
// reach disk, so the cell encoding is byte-for-byte what the row engine
// wrote. These literals are frozen golden bytes — if any of them change,
// existing checkpoints and WAL images stop loading. Extend, never edit.
TEST(CellCodecTest, GoldenBytesMatchPreColumnarImages) {
  EXPECT_EQ(EncodeCell(Value::Null()), "NULL");
  EXPECT_EQ(EncodeCell(Value::Bool(true)), "true");
  EXPECT_EQ(EncodeCell(Value::Bool(false)), "false");
  EXPECT_EQ(EncodeCell(Value::Int(0)), "0");
  EXPECT_EQ(EncodeCell(Value::Int(-7)), "-7");
  EXPECT_EQ(EncodeCell(Value::Int(100000)), "100000");
  EXPECT_EQ(EncodeCell(Value::Double(1.0)), "1.0");
  EXPECT_EQ(EncodeCell(Value::Double(2.5)), "2.5");
  EXPECT_EQ(EncodeCell(Value::Double(0.1)), "0.10000000000000001");
  EXPECT_EQ(EncodeCell(Value::String("High St")), "\"High St\"");
  EXPECT_EQ(EncodeCell(Value::String("42")), "\"42\"");
  EXPECT_EQ(EncodeCell(Value::String("a \"q\" \\ b")),
            "\"a \\\"q\\\" \\\\ b\"");

  // And the decode direction accepts those exact bytes (a checkpoint
  // written by a pre-columnar build loads into this one unchanged).
  EXPECT_EQ(DecodeCell("NULL").value(), Value::Null());
  EXPECT_EQ(DecodeCell("").value(), Value::Null());
  EXPECT_EQ(DecodeCell("true").value(), Value::Bool(true));
  EXPECT_EQ(DecodeCell("-7").value(), Value::Int(-7));
  EXPECT_EQ(DecodeCell("1.0").value(), Value::Double(1.0));
  EXPECT_EQ(DecodeCell("0.10000000000000001").value(), Value::Double(0.1));
  EXPECT_EQ(DecodeCell("\"High St\"").value(), Value::String("High St"));
  EXPECT_EQ(DecodeCell("\"42\"").value(), Value::String("42"));
}

TEST(PersistenceTest, SaveLoadRoundTrip) {
  KnowledgeBase kb = SampleKb();
  std::string dir = TempDir("roundtrip");
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());

  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().RelationNames(), kb.RelationNames());
  for (const std::string& name : kb.RelationNames()) {
    const Relation* original = kb.FindRelation(name);
    const Relation* restored = loaded.value().FindRelation(name);
    ASSERT_NE(restored, nullptr) << name;
    EXPECT_EQ(restored->schema(), original->schema()) << name;
    EXPECT_EQ(restored->SortedRows(), original->SortedRows()) << name;
  }
  // Catalog roles survive.
  EXPECT_EQ(*loaded.value().catalog().GetRole("listing"),
            RelationRole::kSource);
  EXPECT_FALSE(loaded.value().catalog().GetRole("notes").has_value());
}

TEST(PersistenceTest, NumberLikeStringsStayStrings) {
  KnowledgeBase kb = SampleKb();
  std::string dir = TempDir("typed");
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok());
  // The row with street = "42" (string!) must not come back as Int.
  bool found = false;
  for (const Tuple& row : loaded.value().FindRelation("listing")->rows()) {
    if (row.at(0) == Value::String("42")) {
      found = true;
      EXPECT_EQ(row.at(2), Value::Bool(true));
      EXPECT_TRUE(row.at(1).is_null());
    }
  }
  EXPECT_TRUE(found);
}

TEST(PersistenceTest, OverwriteExistingDirectory) {
  KnowledgeBase kb = SampleKb();
  std::string dir = TempDir("overwrite");
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  ASSERT_TRUE(kb.Assert("notes", {Value::String("new note")}).ok());
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().FindRelation("notes")->size(), 3u);
}

TEST(PersistenceTest, MissingDirectoryFails) {
  EXPECT_FALSE(LoadKnowledgeBase("/nonexistent/vada").ok());
}

TEST(PersistenceTest, NonManifestDirectoryFails) {
  std::string dir = TempDir("bad");
  ::mkdir(dir.c_str(), 0755);
  FILE* f = fopen((dir + "/manifest.tsv").c_str(), "w");
  fputs("something else\n", f);
  fclose(f);
  EXPECT_FALSE(LoadKnowledgeBase(dir).ok());
}

TEST(CellCodecTest, SeededPropertyRoundTrip) {
  // Random values across every type, biased toward encoding hazards:
  // embedded quotes, newlines, tabs, commas, empty strings vs nulls,
  // number-like and bool-like strings, negative and large magnitudes.
  Rng rng(987654321);
  static const std::vector<std::string> kHazards = {
      "", " ", ",", "\"", "\"\"", "a,b", "line1\nline2", "tab\there",
      "42", "-17", "2.5", "true", "false", "null", "\\", "trail\\\"",
      "\r\n", "héllo wörld"};
  for (int i = 0; i < 2000; ++i) {
    Value v;
    switch (rng.UniformInt(0, 4)) {
      case 0:
        v = Value::Null();
        break;
      case 1:
        v = Value::Bool(rng.Bernoulli(0.5));
        break;
      case 2:
        // Full signed range, including INT64_MIN/MAX edges.
        v = rng.Bernoulli(0.1)
                ? Value::Int(rng.Bernoulli(0.5)
                                 ? std::numeric_limits<int64_t>::max()
                                 : std::numeric_limits<int64_t>::min())
                : Value::Int(rng.UniformInt(-1000000000000, 1000000000000));
        break;
      case 3:
        v = Value::Double((rng.UniformDouble() - 0.5) * 1e12);
        break;
      default:
        if (rng.Bernoulli(0.5)) {
          v = Value::String(rng.Choice(kHazards));
        } else {
          std::string s;
          size_t len = rng.Index(12);
          for (size_t k = 0; k < len; ++k) {
            s += static_cast<char>(rng.UniformInt(32, 126));
          }
          v = Value::String(s);
        }
    }
    std::string cell = EncodeCell(v);
    Result<Value> back = DecodeCell(cell);
    ASSERT_TRUE(back.ok()) << "iteration " << i << ": " << cell << ": "
                           << back.status().ToString();
    EXPECT_EQ(back.value(), v) << "iteration " << i << ": " << cell;
  }
}

TEST(PersistenceTest, ResaveDropsStaleRelationFiles) {
  KnowledgeBase kb = SampleKb();
  std::string dir = TempDir("stale");
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  ASSERT_TRUE(PathExists(dir + "/notes.csv"));

  ASSERT_TRUE(kb.DropRelation("notes").ok());
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  // The dropped relation's CSV must not linger from the previous save.
  EXPECT_FALSE(PathExists(dir + "/notes.csv"));
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().HasRelation("notes"));
}

TEST(PersistenceTest, SaveStagesThenRenamesAtomically) {
  KnowledgeBase kb = SampleKb();
  std::string dir = TempDir("atomic");
  ASSERT_TRUE(RemoveRecursively(dir).ok());
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  // No staging or parked-old residue after a clean save.
  EXPECT_FALSE(PathExists(dir + ".tmp-save"));
  EXPECT_FALSE(PathExists(dir + ".old"));
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  EXPECT_FALSE(PathExists(dir + ".tmp-save"));
  EXPECT_FALSE(PathExists(dir + ".old"));
}

TEST(PersistenceTest, LoadFallsBackToParkedOldImage) {
  // A crash between "park the old image" and "rename the new one in"
  // leaves only `<dir>.old`; the loader must fall back to it.
  KnowledgeBase kb = SampleKb();
  std::string dir = TempDir("fallback");
  ASSERT_TRUE(RemoveRecursively(dir).ok());
  ASSERT_TRUE(RemoveRecursively(dir + ".old").ok());
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  ASSERT_TRUE(RenamePath(dir, dir + ".old").ok());

  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().RelationNames(), kb.RelationNames());
}

TEST(PersistenceTest, EmptyRelationsSurvive) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("empty", {"a", "b"})).ok());
  std::string dir = TempDir("empty");
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().HasRelation("empty"));
  EXPECT_EQ(loaded.value().FindRelation("empty")->size(), 0u);
  EXPECT_EQ(loaded.value().FindRelation("empty")->schema().arity(), 2u);
}

}  // namespace
}  // namespace vada
