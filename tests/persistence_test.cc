#include <gtest/gtest.h>

#include <sys/stat.h>

#include "kb/persistence.h"

namespace vada {
namespace {

std::string TempDir(const char* name) {
  return testing::TempDir() + "/vada_persistence_" + name;
}

KnowledgeBase SampleKb() {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.CreateRelation(
                    Schema("listing", {{"street", AttributeType::kString},
                                       {"price", AttributeType::kInt},
                                       {"score", AttributeType::kAny}}))
                  .ok());
  kb.catalog().SetRole("listing", RelationRole::kSource);
  EXPECT_TRUE(kb.Assert("listing", {Value::String("High St"),
                                    Value::Int(100000), Value::Double(0.5)})
                  .ok());
  EXPECT_TRUE(kb.Assert("listing", {Value::String("42"),  // number-like string
                                    Value::Null(), Value::Bool(true)})
                  .ok());
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("notes", {"text"})).ok());
  EXPECT_TRUE(
      kb.Assert("notes", {Value::String("tricky \"quoted\", comma")}).ok());
  EXPECT_TRUE(kb.Assert("notes", {Value::String("line1\nline2")}).ok());
  return kb;
}

TEST(CellCodecTest, RoundTripsEveryType) {
  for (const Value& v :
       {Value::Null(), Value::Bool(true), Value::Bool(false), Value::Int(-7),
        Value::Double(2.5), Value::String(""), Value::String("plain"),
        Value::String("42"), Value::String("true"),
        Value::String("with \"quotes\" and \\ backslash")}) {
    Result<Value> back = DecodeCell(EncodeCell(v));
    ASSERT_TRUE(back.ok()) << EncodeCell(v) << ": "
                           << back.status().ToString();
    EXPECT_EQ(back.value(), v) << EncodeCell(v);
  }
}

TEST(CellCodecTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeCell("not a literal").ok());
  EXPECT_FALSE(DecodeCell("\"unterminated").ok());
  EXPECT_FALSE(DecodeCell("\"x\"y").ok());
}

TEST(PersistenceTest, SaveLoadRoundTrip) {
  KnowledgeBase kb = SampleKb();
  std::string dir = TempDir("roundtrip");
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());

  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().RelationNames(), kb.RelationNames());
  for (const std::string& name : kb.RelationNames()) {
    const Relation* original = kb.FindRelation(name);
    const Relation* restored = loaded.value().FindRelation(name);
    ASSERT_NE(restored, nullptr) << name;
    EXPECT_EQ(restored->schema(), original->schema()) << name;
    EXPECT_EQ(restored->SortedRows(), original->SortedRows()) << name;
  }
  // Catalog roles survive.
  EXPECT_EQ(*loaded.value().catalog().GetRole("listing"),
            RelationRole::kSource);
  EXPECT_FALSE(loaded.value().catalog().GetRole("notes").has_value());
}

TEST(PersistenceTest, NumberLikeStringsStayStrings) {
  KnowledgeBase kb = SampleKb();
  std::string dir = TempDir("typed");
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok());
  // The row with street = "42" (string!) must not come back as Int.
  bool found = false;
  for (const Tuple& row : loaded.value().FindRelation("listing")->rows()) {
    if (row.at(0) == Value::String("42")) {
      found = true;
      EXPECT_EQ(row.at(2), Value::Bool(true));
      EXPECT_TRUE(row.at(1).is_null());
    }
  }
  EXPECT_TRUE(found);
}

TEST(PersistenceTest, OverwriteExistingDirectory) {
  KnowledgeBase kb = SampleKb();
  std::string dir = TempDir("overwrite");
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  ASSERT_TRUE(kb.Assert("notes", {Value::String("new note")}).ok());
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().FindRelation("notes")->size(), 3u);
}

TEST(PersistenceTest, MissingDirectoryFails) {
  EXPECT_FALSE(LoadKnowledgeBase("/nonexistent/vada").ok());
}

TEST(PersistenceTest, NonManifestDirectoryFails) {
  std::string dir = TempDir("bad");
  ::mkdir(dir.c_str(), 0755);
  FILE* f = fopen((dir + "/manifest.tsv").c_str(), "w");
  fputs("something else\n", f);
  fclose(f);
  EXPECT_FALSE(LoadKnowledgeBase(dir).ok());
}

TEST(PersistenceTest, EmptyRelationsSurvive) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("empty", {"a", "b"})).ok());
  std::string dir = TempDir("empty");
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().HasRelation("empty"));
  EXPECT_EQ(loaded.value().FindRelation("empty")->size(), 0u);
  EXPECT_EQ(loaded.value().FindRelation("empty")->schema().arity(), 2u);
}

}  // namespace
}  // namespace vada
