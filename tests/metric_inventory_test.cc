// Drift guard between the runtime metric inventory and the documented
// one (DESIGN.md §5b): every metric family a full-featured wrangle
// registers must appear in the doc, and every `vada_*` family the doc
// names must actually be registered at runtime. Catching both directions
// keeps §5b the authoritative dashboard-building reference.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "extract/open_government.h"
#include "extract/real_estate.h"
#include "kb/fs_util.h"
#include "obs/metrics.h"
#include "transducer/fault_injection.h"
#include "wrangler/session.h"

namespace vada {
namespace {

// Blocking GET against 127.0.0.1:`port`, response body discarded — only
// the side effect matters (the scrape registers the server's counter).
void Touch(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: l\r\n"
                        "Connection: close\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  char buf[4096];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);
}

Schema TargetSchema() {
  return Schema::Untyped("target", {"type", "description", "street",
                                    "postcode", "bedrooms", "price",
                                    "crimerank"});
}

Status Bootstrap(WranglingSession* session) {
  PropertyUniverseOptions uopts;
  uopts.num_properties = 40;
  uopts.num_postcodes = 8;
  uopts.seed = 7;
  GroundTruth truth = GeneratePropertyUniverse(uopts);
  ExtractionErrorOptions rm;
  rm.seed = 301;
  ExtractionErrorOptions otm;
  otm.seed = 302;
  otm.coverage = 0.6;
  VADA_RETURN_IF_ERROR(session->SetTargetSchema(TargetSchema()));
  VADA_RETURN_IF_ERROR(session->AddSource(ExtractRightmove(truth, rm)));
  VADA_RETURN_IF_ERROR(session->AddSource(ExtractOnthemarket(truth, otm)));
  VADA_RETURN_IF_ERROR(session->AddSource(GenerateDeprivation(truth)));
  return session->AddDataContext(GenerateAddressReference(truth),
                                 RelationRole::kReference,
                                 {{"street", "street"},
                                  {"postcode", "postcode"}});
}

/// Every metric family `registry` holds, by name (labels collapsed).
std::set<std::string> RuntimeFamilies(const obs::MetricsRegistry& registry) {
  std::set<std::string> names;
  for (const obs::MetricSample& s : registry.Snapshot().samples) {
    names.insert(s.name);
  }
  return names;
}

/// Every `vada_[a-z0-9_]+` token in DESIGN.md's §5b section.
std::set<std::string> DocumentedFamilies() {
  std::ifstream in(VADA_DESIGN_MD);
  EXPECT_TRUE(in.good()) << "cannot open " << VADA_DESIGN_MD;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  size_t begin = text.find("\n## 5b");
  EXPECT_NE(begin, std::string::npos) << "DESIGN.md lost its §5b heading";
  size_t end = text.find("\n## ", begin + 1);
  if (end == std::string::npos) end = text.size();

  std::set<std::string> names;
  const std::string prefix = "vada_";
  size_t pos = begin;
  while ((pos = text.find(prefix, pos)) != std::string::npos && pos < end) {
    size_t token_end = pos + prefix.size();
    while (token_end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[token_end])) ||
            std::isdigit(static_cast<unsigned char>(text[token_end])) ||
            text[token_end] == '_')) {
      ++token_end;
    }
    if (token_end > pos + prefix.size()) {
      names.insert(text.substr(pos, token_end - pos));
    }
    pos = token_end;
  }
  return names;
}

std::string Join(const std::set<std::string>& names) {
  std::string out;
  for (const std::string& n : names) out += "\n  " + n;
  return out;
}

TEST(MetricInventoryTest, RuntimeAndDesignDocAgreeBothWays) {
  obs::MetricsRegistry registry;

  // 1. A full-featured wrangle: shared registry, worker pool, snapshot
  //    cache, durability (WAL + checkpoint + recovery families, §5i) and
  //    the introspection server (one scrape registers the server's own
  //    request counter). MetricsReport refreshes the KB and process
  //    gauges.
  {
    std::string wal_dir = testing::TempDir() + "/vada_metric_inventory_wal";
    ASSERT_TRUE(RemoveRecursively(wal_dir).ok());  // fresh durable state
    WranglerConfig config;
    config.obs.registry = &registry;
    config.obs.http_port = 0;
    config.parallelism.threads = 2;
    config.parallelism.snapshot_cache = true;
    config.incremental.enabled = true;  // vada_delta_* families (§5k)
    config.durability.enabled = true;
    config.durability.directory = wal_dir;
    config.durability.fsync = FsyncPolicy::kEveryCommit;
    WranglingSession session(config);
    ASSERT_TRUE(session.durability_open_status().ok())
        << session.durability_open_status().ToString();
    ASSERT_TRUE(Bootstrap(&session).ok());
    ASSERT_TRUE(session.Run().ok());
    ASSERT_TRUE(session.Checkpoint().ok());
    ASSERT_NE(session.obs().http_server(), nullptr);
    Touch(session.obs().http_port(), "/metrics");
    (void)session.MetricsReport();
  }

  // 2. A fault-injected wrangle: failures (attempts exhausted once),
  //    retries and rollback timings land on the same registry.
  {
    FaultInjector::Options fopt;
    fopt.seed = 3;
    fopt.fault_rate = 0.9;
    fopt.max_failures = 2;
    FaultInjector injector(fopt);
    WranglerConfig config;
    config.obs.registry = &registry;
    config.fault_tolerance.max_attempts = 2;  // budget 2 exhausts a step
    config.fault_tolerance.sleep_ms = [](double) {};
    config.transducer_decorator = injector.Decorator();
    WranglingSession session(config);
    ASSERT_TRUE(Bootstrap(&session).ok());
    ASSERT_TRUE(session.Run().ok());
  }

  // 3. A wrangle whose wall-clock budget expires immediately: registers
  //    the budget-exhausted counter without wasting test time.
  {
    WranglerConfig config;
    config.obs.registry = &registry;
    config.fault_tolerance.run_budget_ms = 1e-9;
    WranglingSession session(config);
    ASSERT_TRUE(Bootstrap(&session).ok());
    OrchestrationStats stats;
    ASSERT_TRUE(session.Run(&stats).ok());
    ASSERT_TRUE(stats.budget_exhausted);
  }

  const std::set<std::string> runtime = RuntimeFamilies(registry);
  const std::set<std::string> documented = DocumentedFamilies();
  ASSERT_GE(runtime.size(), 30u) << "wrangle registered suspiciously few "
                                    "families — the scenario lost features";

  std::set<std::string> undocumented;
  for (const std::string& name : runtime) {
    if (documented.count(name) == 0) undocumented.insert(name);
  }
  EXPECT_TRUE(undocumented.empty())
      << "metrics registered at runtime but missing from DESIGN.md §5b:"
      << Join(undocumented);

  std::set<std::string> unregistered;
  for (const std::string& name : documented) {
    if (runtime.count(name) == 0) unregistered.insert(name);
  }
  EXPECT_TRUE(unregistered.empty())
      << "metrics documented in DESIGN.md §5b but never registered by a "
         "full-featured wrangle (stale docs or lost instrumentation):"
      << Join(unregistered);
}

}  // namespace
}  // namespace vada
