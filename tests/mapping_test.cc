#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "mapping/executor.h"
#include "mapping/generator.h"
#include "mapping/mapping.h"
#include "mapping/selector.h"

namespace vada {
namespace {

Schema TargetSchema() {
  return Schema::Untyped("target",
                         {"street", "postcode", "price", "crimerank"});
}

Schema RightmoveSchema() {
  return Schema::Untyped("rightmove", {"price", "street", "postcode"});
}

Schema DeprivationSchema() {
  return Schema::Untyped("deprivation", {"postcode", "crime"});
}

std::vector<MatchCandidate> ScenarioMatches() {
  return {
      {"rightmove", "price", "target", "price", 0.95, "combined"},
      {"rightmove", "street", "target", "street", 0.95, "combined"},
      {"rightmove", "postcode", "target", "postcode", 0.95, "combined"},
      {"deprivation", "postcode", "target", "postcode", 0.95, "combined"},
      {"deprivation", "crime", "target", "crimerank", 0.8, "combined"},
  };
}

TEST(MappingGeneratorTest, GeneratesProjectionPerSource) {
  MappingGenerator generator;
  Result<std::vector<Mapping>> mappings = generator.Generate(
      TargetSchema(), {RightmoveSchema(), DeprivationSchema()},
      ScenarioMatches());
  ASSERT_TRUE(mappings.ok()) << mappings.status().ToString();
  size_t projections = 0;
  for (const Mapping& m : mappings.value()) {
    if (m.source_relations.size() == 1) ++projections;
  }
  EXPECT_EQ(projections, 2u);
}

TEST(MappingGeneratorTest, GeneratesJoinOnSharedPostcode) {
  MappingGenerator generator;
  Result<std::vector<Mapping>> mappings = generator.Generate(
      TargetSchema(), {RightmoveSchema(), DeprivationSchema()},
      ScenarioMatches());
  ASSERT_TRUE(mappings.ok());
  const Mapping* join = nullptr;
  for (const Mapping& m : mappings.value()) {
    if (m.source_relations.size() == 2) join = &m;
  }
  ASSERT_NE(join, nullptr);
  // The join covers crimerank (from deprivation) and the rightmove attrs.
  EXPECT_NE(std::find(join->covered_attributes.begin(),
                      join->covered_attributes.end(), "crimerank"),
            join->covered_attributes.end());
  EXPECT_NE(std::find(join->covered_attributes.begin(),
                      join->covered_attributes.end(), "price"),
            join->covered_attributes.end());
  // The rule text contains both source atoms and one shared variable.
  EXPECT_NE(join->rule_text.find("rightmove("), std::string::npos);
  EXPECT_NE(join->rule_text.find("deprivation("), std::string::npos);
  EXPECT_NE(join->rule_text.find("V_postcode"), std::string::npos);
}

TEST(MappingGeneratorTest, LowScoreMatchesIgnored) {
  MappingGeneratorOptions opts;
  opts.min_match_score = 0.9;
  MappingGenerator generator(opts);
  std::vector<MatchCandidate> matches = {
      {"rightmove", "price", "target", "price", 0.5, "combined"},
  };
  Result<std::vector<Mapping>> mappings =
      generator.Generate(TargetSchema(), {RightmoveSchema()}, matches);
  ASSERT_TRUE(mappings.ok());
  EXPECT_TRUE(mappings.value().empty());
}

TEST(MappingGeneratorTest, JoinsCanBeDisabled) {
  MappingGeneratorOptions opts;
  opts.generate_joins = false;
  MappingGenerator generator(opts);
  Result<std::vector<Mapping>> mappings = generator.Generate(
      TargetSchema(), {RightmoveSchema(), DeprivationSchema()},
      ScenarioMatches());
  ASSERT_TRUE(mappings.ok());
  for (const Mapping& m : mappings.value()) {
    EXPECT_EQ(m.source_relations.size(), 1u);
  }
}

TEST(MappingSerializationTest, RoundTrip) {
  Mapping m;
  m.id = "m0_x";
  m.source_relations = {"a", "b"};
  m.target_relation = "target";
  m.covered_attributes = {"p", "q"};
  m.result_predicate = "mapping_result_m0_x";
  m.rule_text = "mapping_result_m0_x(X) :- a(X).";
  Relation rel = MappingsToRelation({m});
  Result<std::vector<Mapping>> back = MappingsFromRelation(rel);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 1u);
  EXPECT_EQ(back.value()[0].id, m.id);
  EXPECT_EQ(back.value()[0].source_relations, m.source_relations);
  EXPECT_EQ(back.value()[0].covered_attributes, m.covered_attributes);
  EXPECT_EQ(back.value()[0].rule_text, m.rule_text);
}

class MappingExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(kb_.CreateRelation(RightmoveSchema()).ok());
    ASSERT_TRUE(kb_.CreateRelation(DeprivationSchema()).ok());
    ASSERT_TRUE(kb_.Assert("rightmove",
                           {Value::Int(100), Value::String("High St"),
                            Value::String("LS1")})
                    .ok());
    ASSERT_TRUE(kb_.Assert("rightmove",
                           {Value::Int(200), Value::String("Park Rd"),
                            Value::String("LS2")})
                    .ok());
    ASSERT_TRUE(
        kb_.Assert("deprivation", {Value::String("LS1"), Value::Int(7)}).ok());
    MappingGenerator generator;
    Result<std::vector<Mapping>> mappings = generator.Generate(
        TargetSchema(), {RightmoveSchema(), DeprivationSchema()},
        ScenarioMatches());
    ASSERT_TRUE(mappings.ok());
    mappings_ = std::move(mappings).value();
  }

  const Mapping* FindJoin() const {
    for (const Mapping& m : mappings_) {
      if (m.source_relations.size() == 2) return &m;
    }
    return nullptr;
  }
  const Mapping* FindProjection(const std::string& source) const {
    for (const Mapping& m : mappings_) {
      if (m.source_relations == std::vector<std::string>{source}) return &m;
    }
    return nullptr;
  }

  KnowledgeBase kb_;
  std::vector<Mapping> mappings_;
};

TEST_F(MappingExecutionTest, ProjectionFillsMatchedAndNullsRest) {
  const Mapping* proj = FindProjection("rightmove");
  ASSERT_NE(proj, nullptr);
  MappingExecutor executor;
  Result<Relation> result = executor.Execute(*proj, TargetSchema(), kb_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().size(), 2u);
  // Attribute order: street, postcode, price, crimerank.
  for (const Tuple& row : result.value().rows()) {
    EXPECT_FALSE(row.at(0).is_null());  // street
    EXPECT_FALSE(row.at(2).is_null());  // price
    EXPECT_TRUE(row.at(3).is_null());   // crimerank not covered
  }
}

TEST_F(MappingExecutionTest, JoinFillsCrimerankForMatchingPostcodes) {
  const Mapping* join = FindJoin();
  ASSERT_NE(join, nullptr);
  MappingExecutor executor;
  Result<Relation> result = executor.Execute(*join, TargetSchema(), kb_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only LS1 has deprivation data.
  ASSERT_EQ(result.value().size(), 1u);
  const Tuple& row = result.value().rows()[0];
  EXPECT_EQ(row.at(1), Value::String("LS1"));
  EXPECT_EQ(row.at(3), Value::Int(7));
}

TEST_F(MappingExecutionTest, ExecuteUnionMergesMappings) {
  MappingExecutor executor;
  Result<Relation> result =
      executor.ExecuteUnion(mappings_, TargetSchema(), kb_, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().name(), "out");
  EXPECT_GE(result.value().size(), 3u);
}

TEST_F(MappingExecutionTest, BadRuleTextSurfacesError) {
  Mapping bad;
  bad.id = "bad";
  bad.result_predicate = "r";
  bad.rule_text = "r(X :- broken";
  MappingExecutor executor;
  EXPECT_FALSE(executor.Execute(bad, TargetSchema(), kb_).ok());
}

TEST(MappingSelectorTest, HigherMetricsWin) {
  Mapping a;
  a.id = "a";
  Mapping b;
  b.id = "b";
  std::vector<QualityMetricFact> metrics = {
      {"a", "completeness", "price", 0.9},
      {"b", "completeness", "price", 0.3},
  };
  MappingSelector selector;
  std::vector<MappingScore> scores = selector.Score({a, b}, metrics, nullptr);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].mapping_id, "a");
  EXPECT_GT(scores[0].total, scores[1].total);
}

TEST(MappingSelectorTest, WeightsFlipSelection) {
  Mapping a;
  a.id = "a";
  Mapping b;
  b.id = "b";
  std::vector<QualityMetricFact> metrics = {
      {"a", "completeness", "crimerank", 1.0},
      {"a", "completeness", "bedrooms", 0.2},
      {"b", "completeness", "crimerank", 0.1},
      {"b", "completeness", "bedrooms", 1.0},
  };
  UserContext crime_first;
  ASSERT_TRUE(crime_first
                  .AddStatement("completeness", "crimerank", "extremely",
                                "completeness", "bedrooms")
                  .ok());
  UserContext bedrooms_first;
  ASSERT_TRUE(bedrooms_first
                  .AddStatement("completeness", "bedrooms", "extremely",
                                "completeness", "crimerank")
                  .ok());
  CriterionWeights w_crime = crime_first.DeriveWeights().value();
  CriterionWeights w_bed = bedrooms_first.DeriveWeights().value();

  MappingSelector selector;
  std::vector<MappingScore> s_crime =
      selector.Score({a, b}, metrics, &w_crime);
  std::vector<MappingScore> s_bed = selector.Score({a, b}, metrics, &w_bed);
  EXPECT_EQ(s_crime[0].mapping_id, "a");
  EXPECT_EQ(s_bed[0].mapping_id, "b");
}

TEST(MappingSelectorTest, DottedSubjectsMatchAttributes) {
  Mapping a;
  a.id = "a";
  std::vector<QualityMetricFact> metrics = {
      {"a", "completeness", "bedrooms", 0.5}};
  UserContext uc;
  ASSERT_TRUE(uc.AddStatement("completeness", "property.bedrooms", "strongly",
                              "completeness", "property.price")
                  .ok());
  CriterionWeights w = uc.DeriveWeights().value();
  MappingSelector selector;
  std::vector<MappingScore> scores = selector.Score({a}, metrics, &w);
  ASSERT_EQ(scores.size(), 1u);
  // The bedrooms criterion got the user weight, not the fallback.
  const auto& [weight, value] =
      scores[0].per_criterion.at("completeness(bedrooms)");
  EXPECT_GT(weight, 0.5);
  EXPECT_DOUBLE_EQ(value, 0.5);
}

TEST(MappingSelectorTest, RelativeThresholdSelection) {
  SelectorOptions opts;
  opts.relative_threshold = 0.9;
  MappingSelector selector(opts);
  std::vector<MappingScore> scores;
  MappingScore s1;
  s1.mapping_id = "x";
  s1.total = 1.0;
  MappingScore s2;
  s2.mapping_id = "y";
  s2.total = 0.95;
  MappingScore s3;
  s3.mapping_id = "z";
  s3.total = 0.5;
  scores = {s1, s2, s3};
  std::vector<std::string> selected = selector.Select(scores);
  EXPECT_EQ(selected, (std::vector<std::string>{"x", "y"}));
}

TEST(MappingSelectorTest, MaxSelectedCap) {
  SelectorOptions opts;
  opts.relative_threshold = 0.0;
  opts.max_selected = 1;
  MappingSelector selector(opts);
  MappingScore s1;
  s1.mapping_id = "x";
  s1.total = 1.0;
  MappingScore s2;
  s2.mapping_id = "y";
  s2.total = 0.9;
  std::vector<std::string> selected = selector.Select({s1, s2});
  EXPECT_EQ(selected, (std::vector<std::string>{"x"}));
}

TEST(MappingSelectorTest, EmptyScores) {
  MappingSelector selector;
  EXPECT_TRUE(selector.Select({}).empty());
}

}  // namespace
}  // namespace vada
