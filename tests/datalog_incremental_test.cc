// Unit tests for the differential-maintenance building blocks
// (DESIGN.md §5k): DeltaLog answerability and netting, the KB mutator
// hooks that feed it, Evaluator::RunIncrement's monotone continuation,
// and the DifferentialEvaluator's strategy selection / EXPLAIN surface
// / join-work advantage. The incremental-vs-full equivalence itself is
// fuzzed at scale in datalog_differential_test.cc.
#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/database.h"
#include "datalog/differential.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "kb/delta_log.h"
#include "kb/knowledge_base.h"

namespace vada::datalog {
namespace {

Tuple Pair(int a, int b) { return Tuple({Value::Int(a), Value::Int(b)}); }

// ---------------------------------------------------------------------
// DeltaLog semantics
// ---------------------------------------------------------------------

TEST(DeltaLogTest, SinceNetsInsertRetractHistory) {
  DeltaLog log;
  log.OnInsert("r", Pair(1, 1), 1);
  log.OnInsert("r", Pair(2, 2), 2);
  log.OnRetract("r", Pair(1, 1), 3);  // nets out the insert at v1
  log.OnRetract("r", Pair(0, 0), 4);  // net retract

  std::optional<DeltaLog::RelationDelta> d = log.Since("r", 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->inserts, std::vector<Tuple>({Pair(2, 2)}));
  EXPECT_EQ(d->retracts, std::vector<Tuple>({Pair(0, 0)}));

  // Watermarks are exclusive: since v2 the v2 insert is old news.
  d = log.Since("r", 2);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->inserts.empty());
  EXPECT_EQ(d->retracts.size(), 2u);

  // A relation with no history has an (answerable) empty delta.
  d = log.Since("other", 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->inserts.empty() && d->retracts.empty());
}

TEST(DeltaLogTest, FloorResetAndEvictionBreakAnswerability) {
  DeltaLog log(/*max_records=*/4);
  log.SetFloor(10);
  EXPECT_FALSE(log.Since("r", 9).has_value());  // pre-attach history
  EXPECT_TRUE(log.Since("r", 10).has_value());

  log.OnInsert("r", Pair(1, 1), 11);
  log.OnReset("r", 12);  // DropRelation: history break
  EXPECT_FALSE(log.Since("r", 10).has_value());
  // At or past the reset the history is whole again.
  log.OnInsert("r", Pair(2, 2), 13);
  std::optional<DeltaLog::RelationDelta> d = log.Since("r", 12);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->inserts, std::vector<Tuple>({Pair(2, 2)}));

  // Capacity eviction drops the globally oldest records and poisons
  // only the evicted relation's early watermarks.
  log.OnInsert("s", Pair(1, 1), 14);
  log.OnInsert("s", Pair(2, 2), 15);
  log.OnInsert("s", Pair(3, 3), 16);
  log.OnInsert("s", Pair(4, 4), 17);  // over capacity: evicts r@12
  EXPECT_LE(log.size(), 4u);
  EXPECT_FALSE(log.Since("r", 12).has_value());
  d = log.Since("s", 14);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->inserts.size(), 3u);
}

TEST(DeltaLogTest, RewindDropsRecordsAboveVersionAndBumpsEpoch) {
  DeltaLog log;
  log.OnInsert("r", Pair(1, 1), 1);
  log.OnInsert("r", Pair(2, 2), 2);
  log.OnInsert("s", Pair(3, 3), 3);
  const uint64_t epoch = log.rewind_epoch();
  log.OnRewind(1);
  EXPECT_EQ(log.rewind_epoch(), epoch + 1);
  std::optional<DeltaLog::RelationDelta> d = log.Since("r", 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->inserts, std::vector<Tuple>({Pair(1, 1)}));
  d = log.Since("s", 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->inserts.empty());
}

// Every KB mutator must log its effective row changes so Since() can
// drive incremental re-evaluation.
TEST(DeltaLogTest, KnowledgeBaseMutatorsFeedTheLog) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"x", "y"})).ok());
  ASSERT_TRUE(kb.Insert("r", Pair(0, 0)).ok());  // pre-attach: not logged
  DeltaLog log;
  kb.AttachDeltaLog(&log);
  const uint64_t v0 = kb.global_version();
  EXPECT_FALSE(log.Since("r", v0 - 1).has_value());  // below the floor

  ASSERT_TRUE(kb.Insert("r", Pair(1, 1)).ok());
  ASSERT_TRUE(kb.Insert("r", Pair(1, 1)).ok());  // duplicate: no delta
  ASSERT_TRUE(kb.Retract("r", Pair(0, 0)).ok());
  std::optional<DeltaLog::RelationDelta> d = log.Since("r", v0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->inserts, std::vector<Tuple>({Pair(1, 1)}));
  EXPECT_EQ(d->retracts, std::vector<Tuple>({Pair(0, 0)}));

  // InsertAll logs each genuinely new row once.
  const uint64_t v1 = kb.global_version();
  Relation batch(Schema::Untyped("r", {"x", "y"}));
  ASSERT_TRUE(batch.InsertUnchecked(Pair(1, 1)).ok());  // already present
  ASSERT_TRUE(batch.InsertUnchecked(Pair(2, 2)).ok());
  ASSERT_TRUE(kb.InsertAll(batch).ok());
  d = log.Since("r", v1);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->inserts, std::vector<Tuple>({Pair(2, 2)}));

  // ReplaceRelation logs the row-level diff, not a history break.
  const uint64_t v2 = kb.global_version();
  Relation replacement(Schema::Untyped("r", {"x", "y"}));
  ASSERT_TRUE(replacement.InsertUnchecked(Pair(2, 2)).ok());
  ASSERT_TRUE(replacement.InsertUnchecked(Pair(3, 3)).ok());
  ASSERT_TRUE(kb.ReplaceRelation(replacement).ok());
  d = log.Since("r", v2);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->inserts, std::vector<Tuple>({Pair(3, 3)}));
  EXPECT_EQ(d->retracts, std::vector<Tuple>({Pair(1, 1)}));

  // ClearRelation logs exact retracts (still answerable) ...
  const uint64_t v3 = kb.global_version();
  ASSERT_TRUE(kb.ClearRelation("r").ok());
  d = log.Since("r", v3);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->retracts.size(), 2u);
  // ... while DropRelation is a history break.
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("gone", {"x"})).ok());
  ASSERT_TRUE(kb.Insert("gone", Tuple({Value::Int(1)})).ok());
  const uint64_t v4 = kb.global_version();
  ASSERT_TRUE(kb.DropRelation("gone").ok());
  EXPECT_FALSE(log.Since("gone", v4).has_value());
}

// ---------------------------------------------------------------------
// Evaluator::RunIncrement
// ---------------------------------------------------------------------

TEST(RunIncrementTest, ContinuesTransitiveClosureFromAnInsertion) {
  Result<Program> program = Parser::Parse(
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), e(Z, Y).\n");
  ASSERT_TRUE(program.ok());
  Database db;
  for (int i = 0; i < 30; ++i) db.Insert("e", Pair(i, i + 1));

  Evaluator eval(program.value());
  ASSERT_TRUE(eval.Prepare().ok());
  EvalStats full_stats;
  ASSERT_TRUE(eval.Run(&db, &full_stats).ok());

  // Graft a new source node on and continue instead of re-running:
  // tc(100, 15..31) are all genuinely new facts.
  Database delta;
  delta.Insert("e", Pair(100, 15));
  db.Insert("e", Pair(100, 15));
  EvalStats inc_stats;
  Database added;
  ASSERT_TRUE(eval.RunIncrement(&db, delta, &inc_stats, &added).ok());

  Database scratch;
  for (int i = 0; i < 30; ++i) scratch.Insert("e", Pair(i, i + 1));
  scratch.Insert("e", Pair(100, 15));
  Evaluator oracle(program.value());
  ASSERT_TRUE(oracle.Prepare().ok());
  EvalStats oracle_stats;
  ASSERT_TRUE(oracle.Run(&scratch, &oracle_stats).ok());

  std::vector<Tuple> got = db.facts("tc");
  std::vector<Tuple> want = scratch.facts("tc");
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  // Everything RunIncrement added was genuinely new, and the
  // continuation did less join work than the from-scratch run.
  EXPECT_GT(added.FactCount("tc"), 0u);
  EXPECT_EQ(full_stats.facts_derived + added.FactCount("tc"),
            oracle_stats.facts_derived);
  size_t inc_work = inc_stats.join_probes + inc_stats.index_probes +
                    inc_stats.index_candidates;
  size_t oracle_work = oracle_stats.join_probes + oracle_stats.index_probes +
                       oracle_stats.index_candidates;
  EXPECT_LT(inc_work, oracle_work);
}

TEST(RunIncrementTest, RejectsNegationAndAggregates) {
  Database db;
  Database delta;
  {
    Result<Program> p = Parser::Parse(
        "r(X) :- a(X), not b(X).\n");
    ASSERT_TRUE(p.ok());
    Evaluator eval(p.value());
    ASSERT_TRUE(eval.Prepare().ok());
    EXPECT_EQ(eval.RunIncrement(&db, delta).code(),
              StatusCode::kFailedPrecondition);
  }
  {
    Result<Program> p = Parser::Parse("c(X, count<Y>) :- a(X, Y).\n");
    ASSERT_TRUE(p.ok());
    Evaluator eval(p.value());
    ASSERT_TRUE(eval.Prepare().ok());
    EXPECT_EQ(eval.RunIncrement(&db, delta).code(),
              StatusCode::kFailedPrecondition);
  }
}

// ---------------------------------------------------------------------
// DifferentialEvaluator strategy selection + EXPLAIN
// ---------------------------------------------------------------------

TEST(DifferentialEvaluatorTest, ExplainNamesThePerStratumStrategies) {
  Result<Program> program = Parser::Parse(
      "join(X, Z) :- e(X, Y), f(Y, Z).\n"          // counting
      "tc(X, Y) :- e(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), e(Z, Y).\n"           // monotone/recompute
      "lonely(X) :- n(X), not join(X, X).\n"       // recompute (negation)
      "iso(X) :- g(X).\n");                        // untouched: skip
  ASSERT_TRUE(program.ok());
  Database edb;
  for (int i = 0; i < 10; ++i) {
    edb.Insert("e", Pair(i, i + 1));
    edb.Insert("f", Pair(i, i + 1));
    edb.Insert("n", Tuple({Value::Int(i)}));
    edb.Insert("g", Tuple({Value::Int(i)}));
  }
  DifferentialEvaluator diff(program.value());
  ASSERT_TRUE(diff.Prepare().ok());
  ASSERT_TRUE(diff.Initialize(edb).ok());
  EXPECT_EQ(diff.last_plan(), "full plan: initialize");

  RelationDelta insert_only;
  insert_only["e"].inserts.push_back(Pair(3, 7));
  ASSERT_TRUE(diff.ApplyDelta(insert_only).ok());
  EXPECT_NE(diff.last_plan().find("{join}=counting"), std::string::npos)
      << diff.last_plan();
  EXPECT_NE(diff.last_plan().find("{tc}=monotone"), std::string::npos)
      << diff.last_plan();
  EXPECT_NE(diff.last_plan().find("{lonely}=recompute"), std::string::npos)
      << diff.last_plan();
  EXPECT_NE(diff.last_plan().find("{iso}=skip"), std::string::npos)
      << diff.last_plan();

  // Retracts push recursive strata from monotone to recompute; the
  // counting stratum handles them in place.
  RelationDelta retract;
  retract["e"].retracts.push_back(Pair(3, 7));
  ASSERT_TRUE(diff.ApplyDelta(retract).ok());
  EXPECT_NE(diff.last_plan().find("{join}=counting"), std::string::npos)
      << diff.last_plan();
  EXPECT_NE(diff.last_plan().find("{tc}=recompute"), std::string::npos)
      << diff.last_plan();

  // A batch past max_delta_fraction falls back to one full run.
  RelationDelta burst;
  for (int i = 0; i < 200; ++i) burst["e"].inserts.push_back(Pair(100 + i, i));
  ASSERT_TRUE(diff.ApplyDelta(burst).ok());
  EXPECT_NE(diff.last_plan().find("full plan: fallback"), std::string::npos)
      << diff.last_plan();
  EXPECT_EQ(diff.lifetime_stats().full_fallbacks, 1u);

  // An empty batch is a no-op, not a maintenance round.
  ASSERT_TRUE(diff.ApplyDelta({}).ok());
  EXPECT_EQ(diff.last_plan(), "delta plan: no-op");
}

TEST(DifferentialEvaluatorTest, SmallDeltaDoesFarLessJoinWorkThanFullRun) {
  // Mapping-shaped join over a few thousand rows — the paper's
  // pay-as-you-go scenario: one feedback fact should not cost a
  // re-evaluation of the whole join.
  Result<Program> program = Parser::Parse(
      "out(X, Z) :- left(X, Y), right(Y, Z).\n");
  ASSERT_TRUE(program.ok());
  Rng rng(42);
  Database edb;
  for (int i = 0; i < 2000; ++i) {
    edb.Insert("left", Pair(static_cast<int>(rng.UniformInt(0, 500)),
                            static_cast<int>(rng.UniformInt(0, 500))));
    edb.Insert("right", Pair(static_cast<int>(rng.UniformInt(0, 500)),
                             static_cast<int>(rng.UniformInt(0, 500))));
  }
  DifferentialOptions opts;
  opts.max_delta_fraction = 1e9;
  DifferentialEvaluator diff(program.value(), opts);
  ASSERT_TRUE(diff.Prepare().ok());
  DeltaStats init;
  ASSERT_TRUE(diff.Initialize(edb, &init).ok());
  const size_t full_work = init.eval.join_probes + init.eval.index_probes +
                           init.eval.index_candidates;

  DeltaStats apply;
  RelationDelta one;
  one["left"].inserts.push_back(Pair(1000, 17));
  ASSERT_TRUE(diff.ApplyDelta(one, &apply).ok());
  const size_t delta_work = apply.eval.join_probes + apply.eval.index_probes +
                            apply.eval.index_candidates;
  // The unit-level floor; bench_incremental gates the full 10x stream.
  EXPECT_LT(delta_work * 10, full_work)
      << "delta=" << delta_work << " full=" << full_work;
}

TEST(DifferentialEvaluatorTest, BaseFactsOfIdbPredicatesAreMaintained) {
  Result<Program> program = Parser::Parse(
      "p(X, Y) :- e(X, Y).\n"
      "q(count<X>) :- p(X, Y).\n");
  ASSERT_TRUE(program.ok());
  Database edb;
  edb.Insert("e", Pair(1, 2));
  DifferentialEvaluator diff(program.value());
  ASSERT_TRUE(diff.Prepare().ok());
  ASSERT_TRUE(diff.Initialize(edb).ok());

  // Insert a base fact directly into the IDB predicate: visible, and
  // the aggregate downstream sees it.
  RelationDelta add;
  add["p"].inserts.push_back(Pair(9, 9));
  ASSERT_TRUE(diff.ApplyDelta(add).ok());
  EXPECT_TRUE(diff.database().Contains("p", Pair(9, 9)));
  EXPECT_EQ(diff.database().facts("q"),
            std::vector<Tuple>({Tuple({Value::Int(2)})}));

  // Retracting the base fact removes it (nothing else derives it),
  // but retracting a derived row's base flag must not kill the
  // derivation.
  RelationDelta drop;
  drop["p"].retracts.push_back(Pair(9, 9));
  drop["p"].inserts.push_back(Pair(1, 2));  // redundant base for derived row
  ASSERT_TRUE(diff.ApplyDelta(drop).ok());
  EXPECT_FALSE(diff.database().Contains("p", Pair(9, 9)));
  RelationDelta unbase;
  unbase["p"].retracts.push_back(Pair(1, 2));
  ASSERT_TRUE(diff.ApplyDelta(unbase).ok());
  EXPECT_TRUE(diff.database().Contains("p", Pair(1, 2)))
      << "derived row must survive losing its redundant base flag";
}

}  // namespace
}  // namespace vada::datalog
