#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/kb_adapter.h"
#include "datalog/parser.h"

namespace vada::datalog {
namespace {

Program MustParse(const std::string& src) {
  Result<Program> p = Parser::Parse(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\nsource:\n" << src;
  return std::move(p).value();
}

std::vector<Tuple> MustQuery(const std::string& src, Database* db,
                             const std::string& goal,
                             bool semi_naive = true) {
  EvalOptions opts;
  opts.semi_naive = semi_naive;
  Result<std::vector<Tuple>> r = Query(MustParse(src), db, goal, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

/// Both evaluation modes, as a parameterized suite.
class EvalModeTest : public ::testing::TestWithParam<bool> {
 protected:
  bool semi_naive() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(Modes, EvalModeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "SemiNaive" : "Naive";
                         });

TEST_P(EvalModeTest, FactsOnly) {
  Database db;
  auto result = MustQuery("p(1). p(2).", &db, "p", semi_naive());
  EXPECT_EQ(result.size(), 2u);
}

TEST_P(EvalModeTest, SimpleJoin) {
  Database db;
  db.Insert("q", Tuple({Value::Int(1), Value::Int(2)}));
  db.Insert("q", Tuple({Value::Int(2), Value::Int(3)}));
  db.Insert("r", Tuple({Value::Int(2)}));
  auto result =
      MustQuery("p(X, Y) :- q(X, Y), r(Y).", &db, "p", semi_naive());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], Tuple({Value::Int(1), Value::Int(2)}));
}

TEST_P(EvalModeTest, TransitiveClosure) {
  Database db;
  for (int i = 1; i < 6; ++i) {
    db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  auto result = MustQuery(
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).", &db, "tc",
      semi_naive());
  EXPECT_EQ(result.size(), 15u);  // 5+4+3+2+1
  EXPECT_TRUE(db.Contains("tc", Tuple({Value::Int(1), Value::Int(6)})));
}

TEST_P(EvalModeTest, TransitiveClosureWithCycle) {
  Database db;
  db.Insert("edge", Tuple({Value::Int(1), Value::Int(2)}));
  db.Insert("edge", Tuple({Value::Int(2), Value::Int(1)}));
  auto result = MustQuery(
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).", &db, "tc",
      semi_naive());
  EXPECT_EQ(result.size(), 4u);  // (1,1) (1,2) (2,1) (2,2)
}

TEST_P(EvalModeTest, StratifiedNegation) {
  Database db;
  for (int i = 1; i <= 4; ++i) db.Insert("node", Tuple({Value::Int(i)}));
  db.Insert("edge", Tuple({Value::Int(1), Value::Int(2)}));
  db.Insert("src", Tuple({Value::Int(1)}));
  auto result = MustQuery(
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), not reach(X).\n",
      &db, "unreach", semi_naive());
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], Tuple({Value::Int(3)}));
  EXPECT_EQ(result[1], Tuple({Value::Int(4)}));
}

TEST_P(EvalModeTest, ComparisonFilters) {
  Database db;
  for (int i = 1; i <= 5; ++i) db.Insert("n", Tuple({Value::Int(i)}));
  auto result =
      MustQuery("big(X) :- n(X), X >= 4.", &db, "big", semi_naive());
  EXPECT_EQ(result.size(), 2u);
}

TEST_P(EvalModeTest, NumericCoercionInComparisons) {
  Database db;
  db.Insert("n", Tuple({Value::Double(2.5)}));
  db.Insert("n", Tuple({Value::Int(3)}));
  auto result = MustQuery("big(X) :- n(X), X > 2.9.", &db, "big", semi_naive());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].at(0), Value::Int(3));
}

TEST_P(EvalModeTest, ArithmeticAssignment) {
  Database db;
  db.Insert("q", Tuple({Value::Int(3), Value::Int(4)}));
  auto result =
      MustQuery("p(S) :- q(A, B), S = A + B.", &db, "p", semi_naive());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].at(0), Value::Int(7));
}

TEST_P(EvalModeTest, DivisionYieldsDouble) {
  Database db;
  db.Insert("q", Tuple({Value::Int(7), Value::Int(2)}));
  auto result =
      MustQuery("p(S) :- q(A, B), S = A / B.", &db, "p", semi_naive());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].at(0), Value::Double(3.5));
}

TEST_P(EvalModeTest, DivisionByZeroFailsLiteral) {
  Database db;
  db.Insert("q", Tuple({Value::Int(7), Value::Int(0)}));
  auto result =
      MustQuery("p(S) :- q(A, B), S = A / B.", &db, "p", semi_naive());
  EXPECT_TRUE(result.empty());
}

TEST_P(EvalModeTest, AssignmentUnifiesWhenAlreadyBound) {
  Database db;
  db.Insert("q", Tuple({Value::Int(3), Value::Int(3)}));
  db.Insert("q", Tuple({Value::Int(3), Value::Int(4)}));
  // Y must equal X: only the (3,3) row survives.
  auto result = MustQuery("p(X, Y) :- q(X, Y), Y = X.", &db, "p", semi_naive());
  ASSERT_EQ(result.size(), 1u);
}

TEST_P(EvalModeTest, ConstantInAtomFilters) {
  Database db;
  db.Insert("q", Tuple({Value::String("a"), Value::Int(1)}));
  db.Insert("q", Tuple({Value::String("b"), Value::Int(2)}));
  auto result =
      MustQuery("p(X) :- q(\"a\", X).", &db, "p", semi_naive());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].at(0), Value::Int(1));
}

TEST_P(EvalModeTest, RepeatedVariableInAtom) {
  Database db;
  db.Insert("q", Tuple({Value::Int(1), Value::Int(1)}));
  db.Insert("q", Tuple({Value::Int(1), Value::Int(2)}));
  auto result = MustQuery("p(X) :- q(X, X).", &db, "p", semi_naive());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].at(0), Value::Int(1));
}

TEST_P(EvalModeTest, SameGenerationNonlinearRecursion) {
  // Nonlinear recursion: sg(X,Y) :- up(X,A), sg(A,B), down(B,Y).
  Database db;
  db.Insert("up", Tuple({Value::Int(1), Value::Int(3)}));
  db.Insert("up", Tuple({Value::Int(2), Value::Int(3)}));
  db.Insert("flat", Tuple({Value::Int(3), Value::Int(3)}));
  db.Insert("down", Tuple({Value::Int(3), Value::Int(1)}));
  db.Insert("down", Tuple({Value::Int(3), Value::Int(2)}));
  auto result = MustQuery(
      "sg(X, Y) :- flat(X, Y).\n"
      "sg(X, Y) :- up(X, A), sg(A, B), down(B, Y).\n",
      &db, "sg", semi_naive());
  EXPECT_TRUE(db.Contains("sg", Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_TRUE(db.Contains("sg", Tuple({Value::Int(1), Value::Int(1)})));
  EXPECT_EQ(result.size(), 5u);  // (3,3) (1,1) (1,2) (2,1) (2,2)
}

TEST_P(EvalModeTest, StringEqualityAndInequality) {
  Database db;
  db.Insert("q", Tuple({Value::String("a")}));
  db.Insert("q", Tuple({Value::String("b")}));
  auto result =
      MustQuery("p(X) :- q(X), X != \"a\".", &db, "p", semi_naive());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].at(0), Value::String("b"));
}

TEST_P(EvalModeTest, CrossTypeInequalityIsTrue) {
  Database db;
  db.Insert("q", Tuple({Value::Int(1), Value::String("1")}));
  auto result =
      MustQuery("p(X, Y) :- q(X, Y), X != Y.", &db, "p", semi_naive());
  EXPECT_EQ(result.size(), 1u);
}

TEST_P(EvalModeTest, ZeroArityPredicates) {
  Database db;
  db.Insert("q", Tuple({Value::Int(1)}));
  auto result = MustQuery("flag() :- q(X), X > 0.", &db, "flag", semi_naive());
  EXPECT_EQ(result.size(), 1u);
}

TEST(EvalTest, StatsArePopulated) {
  Database db;
  for (int i = 1; i < 20; ++i) {
    db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  Program p = MustParse(
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).");
  Evaluator eval(p);
  ASSERT_TRUE(eval.Prepare().ok());
  EvalStats stats;
  ASSERT_TRUE(eval.Run(&db, &stats).ok());
  EXPECT_GT(stats.iterations, 1u);
  EXPECT_EQ(stats.facts_derived, 19u * 20u / 2u);
  EXPECT_GT(stats.rule_applications, 0u);
}

TEST(EvalTest, RunWithoutPrepareFails) {
  Database db;
  Program p = MustParse("p(1).");
  Evaluator eval(p);
  EXPECT_EQ(eval.Run(&db).code(), StatusCode::kFailedPrecondition);
}

TEST(EvalTest, SemiNaiveBeatsNaiveOnRuleApplications) {
  auto run = [](bool semi_naive) {
    Database db;
    for (int i = 1; i < 60; ++i) {
      db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
    }
    Program p = MustParse(
        "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).");
    EvalOptions opts;
    opts.semi_naive = semi_naive;
    Evaluator eval(p, opts);
    EXPECT_TRUE(eval.Prepare().ok());
    EvalStats stats;
    EXPECT_TRUE(eval.Run(&db, &stats).ok());
    EXPECT_EQ(db.FactCount("tc"), 59u * 60u / 2u);
    return stats;
  };
  EvalStats semi = run(true);
  EvalStats naive = run(false);
  EXPECT_EQ(semi.facts_derived, naive.facts_derived);
  // Naive re-derives every fact each round; semi-naive must derive fewer
  // duplicate facts. Compare rounds as a cheap proxy: both need the same
  // number of rounds, but naive scans everything each time. The stronger
  // guarantee tested here: results identical (above) and semi-naive
  // completes (fixpoint) without exceeding naive's iteration count.
  EXPECT_LE(semi.iterations, naive.iterations + 1);
}

TEST(EvalTest, KnowledgeBaseAdapter) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("edge", {"from", "to"})).ok());
  ASSERT_TRUE(kb.Assert("edge", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(kb.Assert("edge", {Value::Int(2), Value::Int(3)}).ok());
  Result<std::vector<Tuple>> result = QueryKnowledgeBase(
      "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).", kb, "tc");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().size(), 3u);
}

TEST(EvalTest, KbAdapterParseErrorSurfaces) {
  KnowledgeBase kb;
  Result<std::vector<Tuple>> result = QueryKnowledgeBase("p(X :-", kb, "p");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace vada::datalog
