#include <gtest/gtest.h>

#include "context/ahp.h"
#include "context/data_context.h"
#include "context/user_context.h"

namespace vada {
namespace {

TEST(AhpTest, EmptyMatrixRejected) { EXPECT_FALSE(ComputeAhp({}).ok()); }

TEST(AhpTest, NonSquareRejected) {
  EXPECT_FALSE(ComputeAhp({{1.0, 2.0}}).ok());
}

TEST(AhpTest, NonPositiveRejected) {
  EXPECT_FALSE(ComputeAhp({{1.0, 0.0}, {2.0, 1.0}}).ok());
  EXPECT_FALSE(ComputeAhp({{1.0, -3.0}, {2.0, 1.0}}).ok());
}

TEST(AhpTest, SingleCriterion) {
  Result<AhpResult> r = ComputeAhp({{1.0}});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().weights[0], 1.0);
  EXPECT_DOUBLE_EQ(r.value().consistency_ratio, 0.0);
}

TEST(AhpTest, UniformMatrixGivesEqualWeights) {
  Result<AhpResult> r =
      ComputeAhp({{1, 1, 1}, {1, 1, 1}, {1, 1, 1}});
  ASSERT_TRUE(r.ok());
  for (double w : r.value().weights) EXPECT_NEAR(w, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.value().lambda_max, 3.0, 1e-9);
  EXPECT_NEAR(r.value().consistency_ratio, 0.0, 1e-9);
}

TEST(AhpTest, ConsistentMatrixRecoversWeights) {
  // Weights 0.6 / 0.3 / 0.1 -> a_ij = w_i / w_j is perfectly consistent.
  std::vector<double> w = {0.6, 0.3, 0.1};
  std::vector<std::vector<double>> m(3, std::vector<double>(3));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) m[i][j] = w[i] / w[j];
  }
  Result<AhpResult> r = ComputeAhp(m);
  ASSERT_TRUE(r.ok());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(r.value().weights[i], w[i], 1e-6);
  EXPECT_NEAR(r.value().consistency_ratio, 0.0, 1e-6);
}

TEST(AhpTest, SaatyClassicExampleConsistencyRatio) {
  // A mildly inconsistent 3x3 matrix: CR must be positive but moderate.
  Result<AhpResult> r = ComputeAhp({{1, 2, 5}, {0.5, 1, 4}, {0.2, 0.25, 1}});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().lambda_max, 3.0);
  EXPECT_GT(r.value().consistency_ratio, 0.0);
  EXPECT_LT(r.value().consistency_ratio, 0.1);  // acceptable consistency
  // Weights ordered as expected and sum to 1.
  EXPECT_GT(r.value().weights[0], r.value().weights[1]);
  EXPECT_GT(r.value().weights[1], r.value().weights[2]);
  double sum = 0.0;
  for (double w : r.value().weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AhpTest, RandomIndexTable) {
  EXPECT_DOUBLE_EQ(SaatyRandomIndex(1), 0.0);
  EXPECT_DOUBLE_EQ(SaatyRandomIndex(2), 0.0);
  EXPECT_DOUBLE_EQ(SaatyRandomIndex(3), 0.58);
  EXPECT_DOUBLE_EQ(SaatyRandomIndex(9), 1.45);
  EXPECT_DOUBLE_EQ(SaatyRandomIndex(50), 1.49);
}

TEST(ImportanceTest, ParsePhrases) {
  EXPECT_EQ(ParseImportance("moderately").value(), Importance::kModerate);
  EXPECT_EQ(ParseImportance("strongly more important than").value(),
            Importance::kStrong);
  EXPECT_EQ(ParseImportance("Very Strongly").value(), Importance::kVeryStrong);
  EXPECT_EQ(ParseImportance("extremely").value(), Importance::kExtreme);
  EXPECT_EQ(ParseImportance("equally").value(), Importance::kEqual);
  EXPECT_FALSE(ParseImportance("kinda").ok());
}

TEST(UserContextTest, EmptyDerivesNothing) {
  UserContext uc;
  EXPECT_TRUE(uc.empty());
  EXPECT_FALSE(uc.DeriveWeights().ok());
}

TEST(UserContextTest, PaperFigure2dWeights) {
  // Figure 2(d): four statements over six criteria.
  UserContext uc;
  ASSERT_TRUE(uc.AddStatement("completeness", "crimerank", "very strongly",
                              "accuracy", "property.type")
                  .ok());
  ASSERT_TRUE(uc.AddStatement("consistency", "property", "strongly",
                              "completeness", "property.bedrooms")
                  .ok());
  ASSERT_TRUE(uc.AddStatement("completeness", "property.street", "moderately",
                              "completeness", "property.postcode")
                  .ok());
  Result<CriterionWeights> w = uc.DeriveWeights();
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  double crime = w.value().Get(Criterion{"completeness", "crimerank"});
  double type_acc = w.value().Get(Criterion{"accuracy", "property.type"});
  double consistency = w.value().Get(Criterion{"consistency", "property"});
  double bedrooms = w.value().Get(Criterion{"completeness", "property.bedrooms"});
  double street = w.value().Get(Criterion{"completeness", "property.street"});
  double postcode =
      w.value().Get(Criterion{"completeness", "property.postcode"});
  EXPECT_GT(crime, type_acc);
  EXPECT_GT(consistency, bedrooms);
  EXPECT_GT(street, postcode);
  double total =
      crime + type_acc + consistency + bedrooms + street + postcode;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(UserContextTest, StrongerStatementStrongerWeightGap) {
  UserContext moderate;
  ASSERT_TRUE(
      moderate.AddStatement("completeness", "a", "moderately", "completeness",
                            "b")
          .ok());
  UserContext extreme;
  ASSERT_TRUE(extreme
                  .AddStatement("completeness", "a", "extremely",
                                "completeness", "b")
                  .ok());
  double gap_moderate =
      moderate.DeriveWeights().value().Get(Criterion{"completeness", "a"}) -
      moderate.DeriveWeights().value().Get(Criterion{"completeness", "b"});
  double gap_extreme =
      extreme.DeriveWeights().value().Get(Criterion{"completeness", "a"}) -
      extreme.DeriveWeights().value().Get(Criterion{"completeness", "b"});
  EXPECT_GT(gap_extreme, gap_moderate);
}

TEST(UserContextTest, GetFallback) {
  CriterionWeights w;
  EXPECT_DOUBLE_EQ(w.Get(Criterion{"completeness", "x"}, 0.5), 0.5);
}

TEST(UserContextTest, ToRelationRows) {
  UserContext uc;
  ASSERT_TRUE(
      uc.AddStatement("completeness", "a", "strongly", "accuracy", "b").ok());
  Relation rel = uc.ToRelation();
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.rows()[0].at(0), Value::String("completeness"));
  EXPECT_EQ(rel.rows()[0].at(2), Value::Int(5));
}

TEST(UserContextTest, UnknownPhraseRejected) {
  UserContext uc;
  EXPECT_FALSE(
      uc.AddStatement("completeness", "a", "sort of", "accuracy", "b").ok());
}

TEST(DataContextTest, AddBindingValidation) {
  DataContext dc;
  DataContextBinding b;
  b.context_relation = "address";
  b.kind = RelationRole::kSource;  // not a data-context kind
  b.correspondences = {{"street", "street"}};
  EXPECT_FALSE(dc.AddBinding(b).ok());
  b.kind = RelationRole::kReference;
  b.correspondences.clear();
  EXPECT_FALSE(dc.AddBinding(b).ok());
  b.correspondences = {{"street", "street"}};
  EXPECT_TRUE(dc.AddBinding(b).ok());
  EXPECT_FALSE(dc.empty());
}

TEST(DataContextTest, Lookups) {
  DataContext dc;
  DataContextBinding b;
  b.context_relation = "address";
  b.kind = RelationRole::kReference;
  b.correspondences = {{"street", "str"}, {"postcode", "pc"}};
  ASSERT_TRUE(dc.AddBinding(b).ok());

  EXPECT_EQ(dc.ContextAttributeFor("address", "street").value(), "str");
  EXPECT_FALSE(dc.ContextAttributeFor("address", "city").has_value());
  EXPECT_FALSE(dc.ContextAttributeFor("other", "street").has_value());
  EXPECT_EQ(dc.BindingsOfKind(RelationRole::kReference).size(), 1u);
  EXPECT_TRUE(dc.BindingsOfKind(RelationRole::kMaster).empty());
  EXPECT_EQ(dc.BindingsCovering("postcode").size(), 1u);
  EXPECT_TRUE(dc.BindingsCovering("crimerank").empty());
}

TEST(DataContextTest, ToRelationOneRowPerCorrespondence) {
  DataContext dc;
  DataContextBinding b;
  b.context_relation = "address";
  b.kind = RelationRole::kExample;
  b.correspondences = {{"street", "str"}, {"postcode", "pc"}};
  ASSERT_TRUE(dc.AddBinding(b).ok());
  Relation rel = dc.ToRelation();
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.rows()[0].at(1), Value::String("example"));
}

}  // namespace
}  // namespace vada
