#include <gtest/gtest.h>

#include "common/rng.h"
#include "extract/real_estate.h"
#include "wrangler/session.h"

namespace vada {
namespace {

Schema TargetSchema() {
  return Schema::Untyped("target", {"type", "description", "street",
                                    "postcode", "bedrooms", "price",
                                    "crimerank"});
}

/// A near-useless source: the right attribute names, almost all nulls.
Relation JunkSource(size_t rows) {
  Relation rel(Schema::Untyped(
      "junkportal",
      {"price", "street", "postcode", "bedrooms", "type", "description"}));
  Rng rng(123);
  for (size_t i = 0; i < rows; ++i) {
    rel.InsertUnchecked(Tuple({Value::Int(static_cast<int64_t>(i)),
                               Value::Null(), Value::Null(), Value::Null(),
                               Value::Null(), Value::Null()}));
  }
  return rel;
}

class SourceSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyUniverseOptions uopts;
    uopts.num_properties = 100;
    uopts.num_postcodes = 15;
    uopts.seed = 77;
    truth_ = GeneratePropertyUniverse(uopts);
    ExtractionErrorOptions opts;
    opts.seed = 5;
    rightmove_ = ExtractRightmove(truth_, opts);
  }

  GroundTruth truth_;
  Relation rightmove_{Schema()};
};

TEST_F(SourceSelectionTest, TrustScoresPublished) {
  WranglingSession session;
  ASSERT_TRUE(session.SetTargetSchema(TargetSchema()).ok());
  ASSERT_TRUE(session.AddSource(rightmove_).ok());
  ASSERT_TRUE(session.Run().ok());
  const Relation* trust = session.kb().FindRelation("source_trust");
  ASSERT_NE(trust, nullptr);
  ASSERT_EQ(trust->size(), 1u);
  EXPECT_EQ(trust->rows()[0].at(0), Value::String("rightmove"));
  std::optional<double> score = trust->rows()[0].at(1).AsDouble();
  ASSERT_TRUE(score.has_value());
  EXPECT_GT(*score, 0.8);  // mostly complete extraction
}

TEST_F(SourceSelectionTest, JunkSourceExcluded) {
  WranglingSession session;
  ASSERT_TRUE(session.SetTargetSchema(TargetSchema()).ok());
  ASSERT_TRUE(session.AddSource(rightmove_).ok());
  ASSERT_TRUE(session.AddSource(JunkSource(60)).ok());
  Status s = session.Run();
  ASSERT_TRUE(s.ok()) << s.ToString();

  const Relation* excluded = session.kb().FindRelation("excluded_source");
  ASSERT_NE(excluded, nullptr);
  EXPECT_TRUE(excluded->Contains(Tuple({Value::String("junkportal")})));
  EXPECT_FALSE(excluded->Contains(Tuple({Value::String("rightmove")})));

  // No mapping ranges over the junk source.
  for (const Mapping& m : session.mappings()) {
    for (const std::string& src : m.source_relations) {
      EXPECT_NE(src, "junkportal") << m.ToString();
    }
  }
}

TEST_F(SourceSelectionTest, JunkSourceDoesNotDegradeResult) {
  auto run = [this](bool with_junk) {
    WranglingSession session;
    EXPECT_TRUE(session.SetTargetSchema(TargetSchema()).ok());
    EXPECT_TRUE(session.AddSource(rightmove_).ok());
    if (with_junk) {
      EXPECT_TRUE(session.AddSource(JunkSource(60)).ok());
    }
    EXPECT_TRUE(session.Run().ok());
    return session.result()->SortedRows();
  };
  // With the junk source excluded, the result is identical to never
  // having registered it.
  EXPECT_EQ(run(false), run(true));
}

TEST_F(SourceSelectionTest, ExclusionCanBeDisabled) {
  WranglerConfig config;
  config.source_selector.exclude_below_min = false;
  WranglingSession session(config);
  ASSERT_TRUE(session.SetTargetSchema(TargetSchema()).ok());
  ASSERT_TRUE(session.AddSource(rightmove_).ok());
  ASSERT_TRUE(session.AddSource(JunkSource(60)).ok());
  ASSERT_TRUE(session.Run().ok());
  const Relation* excluded = session.kb().FindRelation("excluded_source");
  ASSERT_NE(excluded, nullptr);
  EXPECT_TRUE(excluded->empty());
}

TEST_F(SourceSelectionTest, EmptySourceNotScored) {
  // A registered but empty source never satisfies source_quality's
  // dependency and must not crash selection.
  WranglingSession session;
  ASSERT_TRUE(session.SetTargetSchema(TargetSchema()).ok());
  ASSERT_TRUE(session.AddSource(rightmove_).ok());
  Relation empty(Schema::Untyped("emptyportal", {"a", "b"}));
  ASSERT_TRUE(session.AddSource(empty).ok());
  EXPECT_TRUE(session.Run().ok());
}

}  // namespace
}  // namespace vada
