#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/span.h"

namespace vada::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(CounterTest, IncrementAndRead) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, BucketBoundsAreInclusive) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket 0 (<= 1)
  h.Observe(1.0);  // bucket 0 (bound is inclusive)
  h.Observe(1.5);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(9.0);  // +Inf bucket
  std::vector<uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(HistogramTest, ConcurrentObservesKeepCountAndSumConsistent) {
  Histogram h(Histogram::DefaultLatencyBucketsSeconds());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(0.001);
    });
  }
  for (std::thread& t : threads) t.join();
  constexpr uint64_t kTotal = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), kTotal);
  EXPECT_NEAR(h.sum(), 0.001 * kTotal, 1e-6);
  uint64_t bucket_total = 0;
  for (uint64_t c : h.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(RegistryTest, SameNameAndLabelsReturnSameObject) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("vada_test_hits", "help");
  Counter* b = reg.GetCounter("vada_test_hits", "help");
  EXPECT_EQ(a, b);
  Counter* labelled =
      reg.GetCounter("vada_test_hits", "help", {{"kind", "x"}});
  EXPECT_NE(a, labelled);
  EXPECT_EQ(labelled,
            reg.GetCounter("vada_test_hits", "help", {{"kind", "x"}}));
}

TEST(RegistryTest, SnapshotFindAndValue) {
  MetricsRegistry reg;
  reg.GetCounter("vada_test_hits", "")->Increment(3);
  reg.GetGauge("vada_test_depth", "")->Set(-2);
  Histogram* h = reg.GetHistogram("vada_test_latency", "", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_FALSE(snap.empty());
  EXPECT_EQ(snap.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.Value("vada_test_hits"), 3.0);
  EXPECT_DOUBLE_EQ(snap.Value("vada_test_depth"), -2.0);
  // Histograms report their observation count through Value().
  EXPECT_DOUBLE_EQ(snap.Value("vada_test_latency"), 2.0);
  EXPECT_DOUBLE_EQ(snap.Value("vada_test_absent"), 0.0);
  const MetricSample* s = snap.Find("vada_test_latency");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::kHistogram);
  EXPECT_EQ(s->count, 2u);
}

TEST(RegistryTest, FindMatchesLabels) {
  MetricsRegistry reg;
  reg.GetCounter("vada_test_runs", "", {{"transducer", "mapgen"}})
      ->Increment(7);
  reg.GetCounter("vada_test_runs", "", {{"transducer", "fusion"}})
      ->Increment(2);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Value("vada_test_runs", {{"transducer", "mapgen"}}),
                   7.0);
  EXPECT_DOUBLE_EQ(snap.Value("vada_test_runs", {{"transducer", "fusion"}}),
                   2.0);
  EXPECT_EQ(snap.Find("vada_test_runs", {{"transducer", "absent"}}), nullptr);
}

// Golden test: a deterministic registry renders to this exact exposition
// text (families sorted by name; labels sorted; cumulative buckets).
TEST(PrometheusTest, RendersExpositionFormat) {
  MetricsRegistry reg;
  reg.GetCounter("vada_test_hits", "total hits")->Increment(5);
  reg.GetGauge("vada_test_rows", "rows", {{"relation", "property"}})->Set(12);
  Histogram* h = reg.GetHistogram("vada_test_latency", "latency", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(3.0);

  const char* expected =
      "# HELP vada_test_hits total hits\n"
      "# TYPE vada_test_hits counter\n"
      "vada_test_hits 5\n"
      "# HELP vada_test_latency latency\n"
      "# TYPE vada_test_latency histogram\n"
      "vada_test_latency_bucket{le=\"0.1\"} 2\n"
      "vada_test_latency_bucket{le=\"1\"} 3\n"
      "vada_test_latency_bucket{le=\"+Inf\"} 4\n"
      "vada_test_latency_sum 3.6\n"
      "vada_test_latency_count 4\n"
      "# HELP vada_test_rows rows\n"
      "# TYPE vada_test_rows gauge\n"
      "vada_test_rows{relation=\"property\"} 12\n";
  EXPECT_EQ(reg.RenderPrometheus(), expected);
}

// Label values escape exactly backslash, double-quote and line feed —
// nothing else. Relation names are user data (CSV headers, target
// schemas), so a quote in a name must not corrupt the exposition.
TEST(PrometheusTest, LabelValuesEscapedPerExpositionFormat) {
  MetricsRegistry reg;
  reg.GetGauge("vada_test_esc", "", {{"relation", "a\\b\"c\nd\te"}})->Set(1);
  std::string text = reg.RenderPrometheus();
  // Backslash -> \\, quote -> \", newline -> \n; the tab stays literal
  // (\uXXXX-style escapes are JSON, not exposition format).
  EXPECT_NE(text.find("vada_test_esc{relation=\"a\\\\b\\\"c\\nd\te\"} 1"),
            std::string::npos)
      << text;
  // No raw newline may survive inside a label value: every line must
  // still start with a metric name or '#'.
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ASSERT_FALSE(line.empty());
    EXPECT_TRUE(line[0] == '#' || line.rfind("vada_test_esc", 0) == 0)
        << line;
  }
}

// Structural validity check, applied to a richer registry: every
// non-comment line is `name{labels}? value`.
TEST(PrometheusTest, EveryLineParsesAsExposition) {
  MetricsRegistry reg;
  reg.GetCounter("vada_test_a", "a help")->Increment();
  reg.GetGauge("vada_test_b", "", {{"k1", "v1"}, {"k2", "v 2"}})->Set(3);
  reg.GetHistogram("vada_test_c", "c help",
                   Histogram::DefaultLatencyBucketsSeconds())
      ->Observe(0.01);
  std::string text = reg.RenderPrometheus();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  size_t pos = 0;
  int samples = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    ++samples;
    // name is [a-zA-Z_][a-zA-Z0-9_]*, optionally followed by {…}, then
    // exactly one space and a value.
    size_t i = 0;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_')) {
      ++i;
    }
    ASSERT_GT(i, 0u) << line;
    if (i < line.size() && line[i] == '{') {
      size_t close = line.find('}', i);
      ASSERT_NE(close, std::string::npos) << line;
      i = close + 1;
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    char* end = nullptr;
    std::string value = line.substr(i + 1);
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << line;
  }
  // 1 counter + 1 gauge + (8 bounds + Inf + sum + count) histogram lines.
  EXPECT_EQ(samples, 1 + 1 + 11);
}

// ------------------------------------------------------------------ json

TEST(JsonTest, EscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonTest, LintAcceptsValidDocuments) {
  for (const char* doc :
       {"{}", "[]", "null", "true", "-1.5e3", "\"s\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\n\"}"}) {
    std::string error;
    EXPECT_TRUE(JsonLint(doc, &error)) << doc << ": " << error;
  }
}

TEST(JsonTest, LintRejectsInvalidDocuments) {
  for (const char* doc : {"", "{", "[1,]", "{\"a\":}", "{} extra", "'s'",
                          "{\"a\" 1}", "nul"}) {
    EXPECT_FALSE(JsonLint(doc)) << doc;
  }
}

// ----------------------------------------------------------------- spans

TEST(SpanTest, ScopedSpanRecordsIntoCollectorAndHistogram) {
  SpanCollector collector;
  Histogram hist(Histogram::DefaultLatencyBucketsSeconds());
  {
    ScopedSpan outer(&collector, &hist, "outer", "test");
    ScopedSpan inner(&collector, nullptr, "inner");
  }
  std::vector<SpanRecord> spans = collector.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans are recorded on close: inner first, at depth 1.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].category, "test");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[1].end_ns, spans[1].start_ns);
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_EQ(hist.count(), 1u);  // only the outer span had a histogram
}

TEST(SpanTest, NullTargetsAreNoOp) {
  ScopedSpan span(nullptr, nullptr, "ignored");
  // Nothing to assert beyond "does not crash": with both targets null the
  // span must not touch the clock or allocate its name.
}

// Each recording thread gets its own dense lane id, so concurrent spans
// from pool workers reconstruct as separate trace rows instead of one
// interleaved mess.
TEST(SpanTest, EachRecordingThreadGetsItsOwnLane) {
  SpanCollector collector;
  {
    ScopedSpan s(&collector, nullptr, "caller");
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&collector] {
      ScopedSpan outer(&collector, nullptr, "outer");
      ScopedSpan inner(&collector, nullptr, "inner");
    });
  }
  for (std::thread& t : workers) t.join();

  std::vector<SpanRecord> spans = collector.spans();
  ASSERT_EQ(spans.size(), 7u);
  EXPECT_EQ(collector.lanes(), 4u);  // calling thread + 3 workers
  std::set<uint64_t> lanes;
  for (const SpanRecord& s : spans) lanes.insert(s.lane);
  EXPECT_EQ(lanes.size(), 4u);
  // Depth bookkeeping is per-thread: every worker's inner span sits at
  // depth 1 under its outer span on the same lane.
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.depth, s.name == "inner" ? 1u : 0u) << s.name;
  }
}

// ------------------------------------------------------------ obs context

TEST(ObsContextTest, DisabledReturnsNullEverything) {
  ObsOptions options;
  options.enabled = false;
  ObsContext ctx(options);
  EXPECT_FALSE(ctx.enabled());
  EXPECT_EQ(ctx.metrics(), nullptr);
  EXPECT_EQ(ctx.spans(), nullptr);
}

TEST(ObsContextTest, OwnsPrivateRegistryByDefault) {
  ObsContext a;
  ObsContext b;
  ASSERT_NE(a.metrics(), nullptr);
  ASSERT_NE(b.metrics(), nullptr);
  EXPECT_NE(a.metrics(), b.metrics());
  EXPECT_NE(a.metrics(), &MetricsRegistry::Default());
  a.metrics()->GetCounter("vada_test_private", "")->Increment();
  EXPECT_DOUBLE_EQ(b.metrics()->Snapshot().Value("vada_test_private"), 0.0);
}

TEST(ObsContextTest, UsesProvidedRegistry) {
  MetricsRegistry shared;
  ObsOptions options;
  options.registry = &shared;
  ObsContext ctx(options);
  EXPECT_EQ(ctx.metrics(), &shared);
}

TEST(ObsContextTest, SpanCollectionCanBeDisabledAlone) {
  ObsOptions options;
  options.collect_spans = false;
  ObsContext ctx(options);
  EXPECT_NE(ctx.metrics(), nullptr);
  EXPECT_EQ(ctx.spans(), nullptr);
}

// ----------------------------------------------------------- chrome trace

TEST(ChromeTraceTest, ToJsonIsValidAndCarriesEvents) {
  ChromeTraceBuilder builder;
  ChromeTraceEvent e;
  e.name = "mapping_generation";
  e.category = "execution";
  e.ts_us = 100;
  e.dur_us = 250;
  e.args = {{"step", "1"}, {"note", "quote\"inside"}};
  builder.Add(e);

  SpanCollector collector;
  {
    ScopedSpan span(&collector, nullptr, "dep_check", "orchestrator");
  }
  builder.AddSpans(collector);
  EXPECT_EQ(builder.size(), 2u);

  std::string json = builder.ToJson();
  std::string error;
  EXPECT_TRUE(JsonLint(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mapping_generation\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dep_check\""), std::string::npos);
  // Spans land on their own lane.
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyBuilderStillValidJson) {
  ChromeTraceBuilder builder;
  std::string error;
  EXPECT_TRUE(JsonLint(builder.ToJson(), &error)) << error;
}

}  // namespace
}  // namespace vada::obs
