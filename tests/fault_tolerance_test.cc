#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "obs/obs.h"
#include "transducer/fault_injection.h"
#include "transducer/network.h"
#include "transducer/transducer.h"

namespace vada {
namespace {

KnowledgeBase SeedKb() {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("a", {"x"})).ok());
  EXPECT_TRUE(kb.Insert("a", {Value::Int(1)}).ok());
  return kb;
}

constexpr const char* kReadyOnA = "ready() :- sys_relation_nonempty(\"a\").";

/// A policy that never sleeps and records the requested backoffs.
FailurePolicy RecordingPolicy(std::vector<double>* backoffs) {
  FailurePolicy fp;
  fp.sleep_ms = [backoffs](double ms) { backoffs->push_back(ms); };
  return fp;
}

TEST(FaultToleranceTest, PartialWritesAreRolledBack) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  // Writes two tuples, then fails: the orchestrator must roll both back.
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "partial", "act", kReadyOnA,
                      [](KnowledgeBase* kb) {
                        VADA_RETURN_IF_ERROR(kb->EnsureRelation(
                            Schema::Untyped("out", {"v"})));
                        VADA_RETURN_IF_ERROR(
                            kb->Insert("out", {Value::Int(1)}));
                        VADA_RETURN_IF_ERROR(
                            kb->Insert("out", {Value::Int(2)}));
                        return Status::Internal("died mid-write");
                      }))
                  .ok());
  std::vector<double> backoffs;
  OrchestratorOptions options;
  options.failure_policy = RecordingPolicy(&backoffs);
  options.failure_policy.max_attempts = 2;
  options.failure_policy.quarantine_after = 1;
  options.failure_policy.quarantine_max_probes = 0;  // exact counts below
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  OrchestrationStats stats;
  ASSERT_TRUE(orchestrator.Run(&kb, &stats).ok());  // degrades, no abort
  // No partial state survived any of the attempts.
  EXPECT_FALSE(kb.HasRelation("out"));
  EXPECT_EQ(stats.rollbacks, 2u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  // The failure is a KB fact: sys_transducer_failure(name, code, attempt,
  // step) — queryable by dependency programs and scheduling policies.
  const Relation* failures = kb.FindRelation("sys_transducer_failure");
  ASSERT_NE(failures, nullptr);
  ASSERT_EQ(failures->size(), 1u);
  const Tuple& fact = failures->rows().front();
  EXPECT_EQ(fact.at(0).string_value(), "partial");
  EXPECT_EQ(fact.at(1).string_value(), "internal");
  EXPECT_EQ(fact.at(2).int_value(), 2);  // attempts consumed
}

TEST(FaultToleranceTest, RetriesUseExponentialBackoff) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  auto inner = std::make_unique<FunctionTransducer>(
      "flaky", "act", kReadyOnA, [](KnowledgeBase* kb) {
        VADA_RETURN_IF_ERROR(
            kb->EnsureRelation(Schema::Untyped("out", {"v"})));
        return kb->Insert("out", {Value::Int(42)});
      });
  FaultSpec spec;
  spec.kind = FaultKind::kFailFirstN;
  spec.count = 3;
  ASSERT_TRUE(registry.Add(WrapWithFault(std::move(inner), spec)).ok());

  std::vector<double> backoffs;
  OrchestratorOptions options;
  options.failure_policy = RecordingPolicy(&backoffs);
  options.failure_policy.max_attempts = 4;
  options.failure_policy.backoff_initial_ms = 1.0;
  options.failure_policy.backoff_multiplier = 2.0;
  options.failure_policy.backoff_max_ms = 50.0;
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  OrchestrationStats stats;
  ASSERT_TRUE(orchestrator.Run(&kb, &stats).ok());
  // Three failed attempts, then success on the fourth — all in one step.
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.failures, 0u);  // the step ultimately succeeded
  ASSERT_EQ(backoffs, (std::vector<double>{1.0, 2.0, 4.0}));
  ASSERT_TRUE(kb.HasRelation("out"));
  EXPECT_EQ(kb.FindRelation("out")->size(), 1u);
  // The step's trace row records the attempts and the rollbacks.
  ASSERT_FALSE(orchestrator.trace().events().empty());
  EXPECT_EQ(orchestrator.trace().events().front().attempts, 4u);
  EXPECT_TRUE(orchestrator.trace().events().front().rolled_back);
}

TEST(FaultToleranceTest, PermanentFailureIsQuarantinedAndRunCompletes) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "doomed", "act", kReadyOnA,
                      [](KnowledgeBase*) {
                        return Status::Internal("always fails");
                      }))
                  .ok());
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "producer", "act", kReadyOnA,
                      [](KnowledgeBase* kb) {
                        VADA_RETURN_IF_ERROR(kb->EnsureRelation(
                            Schema::Untyped("result", {"v"})));
                        return kb->Insert("result", {Value::Int(7)});
                      }))
                  .ok());
  std::vector<double> backoffs;
  OrchestratorOptions options;
  options.failure_policy = RecordingPolicy(&backoffs);
  options.failure_policy.max_attempts = 2;
  options.failure_policy.quarantine_after = 2;
  options.failure_policy.quarantine_max_probes = 1;
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  OrchestrationStats stats;
  // Graceful degradation: Run completes OK despite the permanent failure…
  ASSERT_TRUE(orchestrator.Run(&kb, &stats).ok());
  // …the healthy transducer still produced its output…
  ASSERT_TRUE(kb.HasRelation("result"));
  EXPECT_EQ(kb.FindRelation("result")->size(), 1u);
  // …and the broken one ended up benched, with its state inspectable.
  EXPECT_EQ(orchestrator.QuarantinedTransducers(),
            std::vector<std::string>{"doomed"});
  const NetworkTransducer::FailureState* fs =
      orchestrator.failure_state("doomed");
  ASSERT_NE(fs, nullptr);
  EXPECT_EQ(fs->circuit, NetworkTransducer::Circuit::kOpen);
  EXPECT_GE(fs->total_failures, 2u);
  const Relation* quarantined = kb.FindRelation("sys_transducer_quarantined");
  ASSERT_NE(quarantined, nullptr);
  ASSERT_FALSE(quarantined->empty());
  EXPECT_EQ(quarantined->rows().front().at(0).string_value(), "doomed");
  EXPECT_EQ(stats.quarantined, 1u);
}

TEST(FaultToleranceTest, HealedTransducerExitsQuarantine) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  auto inner = std::make_unique<FunctionTransducer>(
      "recovers", "act", kReadyOnA, [](KnowledgeBase* kb) {
        VADA_RETURN_IF_ERROR(
            kb->EnsureRelation(Schema::Untyped("out", {"v"})));
        return kb->Insert("out", {Value::Int(1)});
      });
  FaultSpec spec;
  spec.kind = FaultKind::kFailFirstN;
  spec.count = 4;  // 2 steps x 2 attempts all fail -> quarantine; 5th OK
  ASSERT_TRUE(registry.Add(WrapWithFault(std::move(inner), spec)).ok());
  std::vector<double> backoffs;
  OrchestratorOptions options;
  options.failure_policy = RecordingPolicy(&backoffs);
  options.failure_policy.max_attempts = 2;
  options.failure_policy.quarantine_after = 2;
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  OrchestrationStats stats;
  ASSERT_TRUE(orchestrator.Run(&kb, &stats).ok());
  // The fixpoint probe let it back in, it succeeded and left quarantine.
  EXPECT_TRUE(orchestrator.QuarantinedTransducers().empty());
  const NetworkTransducer::FailureState* fs =
      orchestrator.failure_state("recovers");
  ASSERT_NE(fs, nullptr);
  EXPECT_EQ(fs->circuit, NetworkTransducer::Circuit::kClosed);
  EXPECT_EQ(fs->total_failures, 2u);
  EXPECT_EQ(fs->consecutive_failures, 0u);
  ASSERT_TRUE(kb.HasRelation("out"));
  // Exiting quarantine retracts the sys_transducer_quarantined fact.
  const Relation* quarantined = kb.FindRelation("sys_transducer_quarantined");
  ASSERT_NE(quarantined, nullptr);
  EXPECT_TRUE(quarantined->empty());
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST(FaultToleranceTest, RunBudgetStopsGracefully) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "slowish", "act", kReadyOnA,
                      [](KnowledgeBase*) { return Status::OK(); }))
                  .ok());
  OrchestratorOptions options;
  options.failure_policy.run_budget_ms = 1e-6;  // exhausted immediately
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  OrchestrationStats stats;
  ASSERT_TRUE(orchestrator.Run(&kb, &stats).ok());
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_EQ(stats.steps, 0u);
}

TEST(FaultToleranceTest, CooperativeDeadlineIsDelivered) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  // A well-behaved long-running body: polls CheckContinue() and returns
  // its error when the soft deadline passes.
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "cooperative", "act", kReadyOnA,
                      [](KnowledgeBase*, ExecutionContext* ctx) {
                        if (ctx == nullptr) return Status::OK();
                        EXPECT_TRUE(ctx->has_deadline());
                        while (true) {
                          Status s = ctx->CheckContinue();
                          if (!s.ok()) return s;
                        }
                      }))
                  .ok());
  OrchestratorOptions options;
  options.failure_policy.max_attempts = 1;
  options.failure_policy.execute_timeout_ms = 2.0;
  options.failure_policy.on_failure_exhausted = FailureAction::kAbort;
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  Status s = orchestrator.Run(&kb);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(FaultToleranceTest, DependencyEvalFailureQuarantinesNotAborts) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "bad_dep", "act", "ready( :- nope",
                      [](KnowledgeBase*) { return Status::OK(); }))
                  .ok());
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "producer", "act", kReadyOnA,
                      [](KnowledgeBase* kb) {
                        VADA_RETURN_IF_ERROR(kb->EnsureRelation(
                            Schema::Untyped("result", {"v"})));
                        return kb->Insert("result", {Value::Int(7)});
                      }))
                  .ok());
  OrchestratorOptions options;
  options.failure_policy.quarantine_after = 2;
  options.failure_policy.quarantine_max_probes = 0;
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  OrchestrationStats stats;
  ASSERT_TRUE(orchestrator.Run(&kb, &stats).ok());
  ASSERT_TRUE(kb.HasRelation("result"));
  EXPECT_EQ(orchestrator.QuarantinedTransducers(),
            std::vector<std::string>{"bad_dep"});
  // The failure fact preserves the dependency error's code.
  const Relation* failures = kb.FindRelation("sys_transducer_failure");
  ASSERT_NE(failures, nullptr);
  ASSERT_FALSE(failures->empty());
  EXPECT_EQ(failures->rows().front().at(1).string_value(), "parse_error");
}

TEST(FaultToleranceTest, IsSatisfiedPreservesDependencyErrorCode) {
  KnowledgeBase kb = SeedKb();
  FunctionTransducer t("bad_dep", "act", "ready( :- nope",
                       [](KnowledgeBase*) { return Status::OK(); });
  NetworkTransducer orchestrator(nullptr, std::make_unique<FifoPolicy>());
  Result<bool> satisfied = orchestrator.IsSatisfied(t, &kb);
  ASSERT_FALSE(satisfied.ok());
  EXPECT_EQ(satisfied.status().code(), StatusCode::kParseError);
  EXPECT_NE(satisfied.status().message().find("bad_dep"), std::string::npos);
}

TEST(FaultToleranceTest, FailureMetricsAppearInPrometheusExposition) {
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "doomed", "act", kReadyOnA,
                      [](KnowledgeBase*) {
                        return Status::Internal("always fails");
                      }))
                  .ok());
  obs::ObsContext obs;
  std::vector<double> backoffs;
  OrchestratorOptions options;
  options.obs = &obs;
  options.failure_policy = RecordingPolicy(&backoffs);
  options.failure_policy.max_attempts = 2;
  options.failure_policy.quarantine_after = 1;
  options.failure_policy.quarantine_max_probes = 0;  // exact counts below
  NetworkTransducer orchestrator(&registry, std::make_unique<FifoPolicy>(),
                                 options);
  ASSERT_TRUE(orchestrator.Run(&kb).ok());
  std::string text = obs.metrics()->RenderPrometheus();
  EXPECT_NE(
      text.find(
          "vada_transducer_failures_total{code=\"internal\",transducer=\"doomed\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("vada_transducer_retries_total{transducer=\"doomed\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("vada_orchestrator_quarantined 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("vada_kb_rollback_seconds"), std::string::npos) << text;
}

TEST(FaultToleranceTest, NullChoosingPolicyIsAnOrchestrationError) {
  // A broken policy that violates its contract by returning nullptr.
  class BrokenPolicy : public SchedulingPolicy {
   public:
    const std::string& name() const override { return name_; }
    Transducer* Choose(const std::vector<Transducer*>&) override {
      return nullptr;
    }

   private:
    std::string name_ = "broken";
  };
  KnowledgeBase kb = SeedKb();
  TransducerRegistry registry;
  ASSERT_TRUE(registry
                  .Add(std::make_unique<FunctionTransducer>(
                      "fine", "act", kReadyOnA,
                      [](KnowledgeBase*) { return Status::OK(); }))
                  .ok());
  NetworkTransducer orchestrator(&registry, std::make_unique<BrokenPolicy>());
  Status s = orchestrator.Run(&kb);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("broken"), std::string::npos);
}

TEST(FaultInjectorTest, ScheduleIsDeterministicPerSeedAndName) {
  FaultInjector::Options opt;
  opt.seed = 1234;
  opt.fault_rate = 1.0;
  FaultInjector a(opt);
  FaultInjector b(opt);
  for (const std::string& name :
       {std::string("schema_matching"), std::string("fusion"),
        std::string("mapping_generation")}) {
    FaultSpec sa = a.SpecFor(name);
    FaultSpec sb = b.SpecFor(name);
    EXPECT_EQ(sa.kind, sb.kind);
    EXPECT_EQ(sa.count, sb.count);
    EXPECT_EQ(sa.seed, sb.seed);
    EXPECT_NE(sa.kind, FaultKind::kNone);  // fault_rate = 1.0
  }
  opt.seed = 99;
  FaultInjector c(opt);
  // A different seed reshuffles the schedule for at least one name.
  bool any_different = false;
  for (const std::string& name :
       {std::string("schema_matching"), std::string("fusion"),
        std::string("mapping_generation")}) {
    if (c.SpecFor(name).kind != a.SpecFor(name).kind ||
        c.SpecFor(name).seed != a.SpecFor(name).seed) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultInjectorTest, WrapperPreservesTransducerIdentity) {
  auto inner = std::make_unique<VadalogTransducer>(
      "derive", "reasoning", kReadyOnA, "out(X) :- a(X).",
      std::vector<std::string>{"out"});
  const std::string* program_before = inner->vadalog_program();
  ASSERT_NE(program_before, nullptr);
  FaultSpec spec;
  spec.kind = FaultKind::kFailFirstN;
  std::unique_ptr<Transducer> wrapped = WrapWithFault(std::move(inner), spec);
  EXPECT_EQ(wrapped->name(), "derive");
  EXPECT_EQ(wrapped->activity(), "reasoning");
  EXPECT_EQ(wrapped->input_dependency(), kReadyOnA);
  ASSERT_NE(wrapped->vadalog_program(), nullptr);
  EXPECT_EQ(*wrapped->vadalog_program(), "out(X) :- a(X).");
}

}  // namespace
}  // namespace vada
