// Unit tests for the join planner (PlanBodyOrder) and the composite
// index machinery it drives: ordering edge cases — self-joins,
// all-constant atoms, cross products — and index invalidation across
// Insert, copy-on-write detach and WriteGuard rollback (DESIGN.md §5f).
#include "datalog/planner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/snapshot_cache.h"
#include "kb/knowledge_base.h"
#include "kb/write_guard.h"

namespace vada::datalog {
namespace {

Rule ParseRule(const std::string& text) {
  Result<Program> program = Parser::Parse(text);
  EXPECT_TRUE(program.ok()) << program.status().message();
  EXPECT_EQ(program.value().rules.size(), 1u);
  return program.value().rules[0];
}

Database ChainDb(const std::string& predicate, int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.Insert(predicate, Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  return db;
}

// Composite index buckets are keyed on symbol ids (DESIGN.md §5j);
// interning here resolves the same canonical ids the index was built on.
std::vector<SymbolId> IdKey(std::initializer_list<Value> values) {
  std::vector<SymbolId> key;
  for (const Value& v : values) key.push_back(SymbolTable::Global().Intern(v));
  return key;
}

// --------------------------------------------------------------------------
// PlanBodyOrder.
// --------------------------------------------------------------------------

TEST(PlanBodyOrderTest, SmallerRelationGoesFirst) {
  Rule rule = ParseRule("h(X, Z) :- big(X, Y), small(Y, Z).");
  Database db = ChainDb("big", 100);
  for (int i = 0; i < 2; ++i) {
    db.Insert("small", Tuple({Value::Int(i), Value::Int(i)}));
  }
  EXPECT_EQ(PlanBodyOrder(rule, &db, PlannerOptions()),
            (std::vector<size_t>{1, 0}));
  // Legacy mode keeps the declared order (no bound terms anywhere).
  EXPECT_EQ(PlanBodyOrder(rule, &db, PlannerOptions{.reorder = false}),
            (std::vector<size_t>{0, 1}));
}

TEST(PlanBodyOrderTest, AllConstantAtomCostsZeroAndGoesFirst) {
  Rule rule = ParseRule("h(X) :- e(X, Y), e(3, 4).");
  Database db = ChainDb("e", 50);
  // The fully bound atom is a containment check: cost 0, placed first.
  EXPECT_EQ(PlanBodyOrder(rule, &db, PlannerOptions()),
            (std::vector<size_t>{1, 0}));
}

TEST(PlanBodyOrderTest, EmptyRelationGoesFirst) {
  Rule rule = ParseRule("h(X, Z) :- e(X, Y), void(Y, Z).");
  Database db = ChainDb("e", 10);  // `void` has no facts at all
  EXPECT_EQ(PlanBodyOrder(rule, &db, PlannerOptions()),
            (std::vector<size_t>{1, 0}));
}

TEST(PlanBodyOrderTest, SelfJoinTiesFallBackToDeclaredOrder) {
  Rule rule = ParseRule("h(X, Z) :- e(X, Y), e(Y, Z).");
  Database db = ChainDb("e", 20);
  // Equal cardinality: declared order breaks the tie; the second
  // occurrence then joins on its bound Y.
  EXPECT_EQ(PlanBodyOrder(rule, &db, PlannerOptions()),
            (std::vector<size_t>{0, 1}));
}

TEST(PlanBodyOrderTest, CrossProductPicksSmallerSideFirst) {
  Rule rule = ParseRule("h(X, Y) :- a(X), b(Y).");
  Database db;
  for (int i = 0; i < 30; ++i) db.Insert("a", Tuple({Value::Int(i)}));
  for (int i = 0; i < 3; ++i) db.Insert("b", Tuple({Value::Int(i)}));
  EXPECT_EQ(PlanBodyOrder(rule, &db, PlannerOptions()),
            (std::vector<size_t>{1, 0}));
}

TEST(PlanBodyOrderTest, FiltersHoistAsEarlyAsTheirVariablesAllow) {
  Rule rule = ParseRule("h(X, Y) :- a(X), b(Y), X > 2, not c(X).");
  Database db;
  for (int i = 0; i < 5; ++i) db.Insert("a", Tuple({Value::Int(i)}));
  for (int i = 0; i < 50; ++i) db.Insert("b", Tuple({Value::Int(i)}));
  db.Insert("c", Tuple({Value::Int(3)}));
  // a(X) binds X; the comparison and negation run before the expensive
  // b(Y) ever enumerates, in both planning modes.
  EXPECT_EQ(PlanBodyOrder(rule, &db, PlannerOptions()),
            (std::vector<size_t>{0, 2, 3, 1}));
  EXPECT_EQ(PlanBodyOrder(rule, &db, PlannerOptions{.reorder = false}),
            (std::vector<size_t>{0, 2, 3, 1}));
}

TEST(PlanBodyOrderTest, NullDatabaseFallsBackToLegacyHeuristic) {
  Rule rule = ParseRule("h(X, Z) :- big(X, Y), small(Y, Z).");
  // No cardinalities to consult: declared order, as before this planner.
  EXPECT_EQ(PlanBodyOrder(rule, nullptr, PlannerOptions()),
            (std::vector<size_t>{0, 1}));
}

// --------------------------------------------------------------------------
// Composite index probing through evaluation (EvalStats visibility).
// --------------------------------------------------------------------------

EvalStats RunOn(Database* db, const std::string& text, EvalOptions options) {
  Result<Program> program = Parser::Parse(text);
  EXPECT_TRUE(program.ok()) << program.status().message();
  Evaluator eval(program.value(), options);
  EXPECT_TRUE(eval.Prepare().ok());
  EvalStats stats;
  EXPECT_TRUE(eval.Run(db, &stats).ok());
  return stats;
}

EvalOptions TinyIndexGate() {
  EvalOptions options;
  options.planner.min_index_size = 1;
  return options;
}

TEST(PlannerEvalTest, SelfJoinProbesTheCompositeIndex) {
  Database db = ChainDb("e", 64);
  EvalStats stats = RunOn(&db, "t(X, Z) :- e(X, Y), e(Y, Z).",
                          TinyIndexGate());
  EXPECT_EQ(db.FactCount("t"), 63u);
  EXPECT_GT(stats.index_probes, 0u);
  EXPECT_GT(stats.index_builds, 0u);
  // The inner occurrence seeks instead of scanning 64 facts per outer
  // candidate; only the outer scan remains.
  EXPECT_LE(stats.join_probes, 64u);
}

TEST(PlannerEvalTest, AllConstantAtomIsASingleIndexProbe) {
  Database db = ChainDb("e", 40);
  EvalStats stats = RunOn(&db, "hit(X) :- node(X), e(3, 4).\n"
                               "node(X) :- e(X, Y).",
                          TinyIndexGate());
  EXPECT_EQ(db.FactCount("hit"), 40u);
  EXPECT_GT(stats.index_probes, 0u);
}

TEST(PlannerEvalTest, CrossProductStillScans) {
  Database db;
  for (int i = 0; i < 8; ++i) db.Insert("a", Tuple({Value::Int(i)}));
  for (int i = 0; i < 8; ++i) db.Insert("b", Tuple({Value::Int(i)}));
  EvalStats stats = RunOn(&db, "c(X, Y) :- a(X), b(Y).", TinyIndexGate());
  EXPECT_EQ(db.FactCount("c"), 64u);
  // Neither atom has a bound prefix: no index is ever built or probed.
  EXPECT_EQ(stats.index_probes, 0u);
  EXPECT_EQ(stats.index_builds, 0u);
  EXPECT_EQ(stats.join_probes, 8u + 64u);
}

TEST(PlannerEvalTest, SmallRelationsUseTheSingleColumnFallback) {
  Database db = ChainDb("e", 8);  // below the default min_index_size of 32
  EvalStats stats = RunOn(&db, "t(X, Z) :- e(X, Y), e(Y, Z).", EvalOptions());
  EXPECT_EQ(db.FactCount("t"), 7u);
  EXPECT_EQ(stats.index_probes, 0u);
  EXPECT_EQ(stats.index_builds, 0u);
  EXPECT_GT(stats.join_probes, 0u);
}

// --------------------------------------------------------------------------
// Index build / invalidation lifecycle.
// --------------------------------------------------------------------------

TEST(BoundIndexTest, BuiltOncePerPositionSetUntilInvalidated) {
  Database db = ChainDb("e", 4);
  size_t built = 0;
  const BoundIndex* first = db.EnsureBoundIndex("e", {0}, &built);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(built, 1u);
  EXPECT_EQ(db.EnsureBoundIndex("e", {0}, &built), first);
  EXPECT_EQ(built, 1u);  // cached, not rebuilt
  // A different position set is its own index.
  EXPECT_NE(db.EnsureBoundIndex("e", {0, 1}, &built), first);
  EXPECT_EQ(built, 2u);

  // Insert drops the predicate's composite indexes; the rebuilt index
  // sees the new fact.
  ASSERT_TRUE(db.Insert("e", Tuple({Value::Int(99), Value::Int(100)})));
  const BoundIndex* rebuilt = db.EnsureBoundIndex("e", {0}, &built);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(built, 3u);
  EXPECT_EQ(rebuilt->buckets.count(IdKey({Value::Int(99)})), 1u);
}

TEST(BoundIndexTest, InvalidPositionsOrUnknownPredicateReturnNull) {
  Database db = ChainDb("e", 4);
  EXPECT_EQ(db.EnsureBoundIndex("e", {}), nullptr);
  EXPECT_EQ(db.EnsureBoundIndex("e", {2}), nullptr);   // arity is 2
  EXPECT_EQ(db.EnsureBoundIndex("nope", {0}), nullptr);
}

TEST(BoundIndexTest, CopyDoesNotShareIndexes) {
  Database db = ChainDb("e", 4);
  size_t built = 0;
  const BoundIndex* original = db.EnsureBoundIndex("e", {0}, &built);
  ASSERT_NE(original, nullptr);
  Database copy = db;
  size_t copy_built = 0;
  const BoundIndex* copied = copy.EnsureBoundIndex("e", {0}, &copy_built);
  ASSERT_NE(copied, nullptr);
  EXPECT_NE(copied, original);  // rebuilt, not aliased
  EXPECT_EQ(copy_built, 1u);
}

TEST(BoundIndexTest, BorrowersShareTheSnapshotsIndexUntilCowDetach) {
  auto snapshot = std::make_shared<Database>(ChainDb("e", 6));

  Database borrower_a;
  borrower_a.AttachShared(snapshot);
  Database borrower_b;
  borrower_b.AttachShared(snapshot);

  size_t built = 0;
  const BoundIndex* via_a = borrower_a.EnsureBoundIndex("e", {0}, &built);
  ASSERT_NE(via_a, nullptr);
  EXPECT_EQ(built, 1u);
  // The second borrower resolves to the very same index object — it was
  // built on the owning snapshot, not per borrower.
  EXPECT_EQ(borrower_b.EnsureBoundIndex("e", {0}, &built), via_a);
  EXPECT_EQ(built, 1u);

  // Writing detaches borrower_a (copy-on-write); its index is now its
  // own, includes the new fact, and the snapshot's index is untouched.
  ASSERT_TRUE(borrower_a.Insert("e", Tuple({Value::Int(50), Value::Int(51)})));
  const BoundIndex* detached = borrower_a.EnsureBoundIndex("e", {0}, &built);
  ASSERT_NE(detached, nullptr);
  EXPECT_NE(detached, via_a);
  EXPECT_EQ(built, 2u);
  EXPECT_EQ(detached->buckets.count(IdKey({Value::Int(50)})), 1u);
  EXPECT_EQ(via_a->buckets.count(IdKey({Value::Int(50)})), 0u);
  EXPECT_EQ(borrower_b.EnsureBoundIndex("e", {0}, &built), via_a);
}

TEST(BoundIndexTest, WriteGuardRollbackYieldsConsistentSnapshotIndexes) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a", "b"})).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(kb.Assert("r", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  SnapshotCache cache;
  std::shared_ptr<const Database> before = cache.Get(kb, "r");
  ASSERT_NE(before, nullptr);
  size_t built = 0;
  const BoundIndex* index_before = before->EnsureBoundIndex("r", {0}, &built);
  ASSERT_NE(index_before, nullptr);

  {
    WriteGuard guard(&kb);
    ASSERT_TRUE(kb.Assert("r", {Value::Int(77), Value::Int(78)}).ok());
    guard.Rollback();
  }
  cache.Invalidate("r");  // the documented post-rollback courtesy call

  // The re-fetched snapshot reflects the rolled-back contents, and the
  // index built on it never sees the aborted write.
  std::shared_ptr<const Database> after = cache.Get(kb, "r");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->FactCount("r"), 5u);
  const BoundIndex* index_after = after->EnsureBoundIndex("r", {0}, &built);
  ASSERT_NE(index_after, nullptr);
  EXPECT_EQ(index_after->buckets.count(IdKey({Value::Int(77)})), 0u);
  EXPECT_EQ(index_after->buckets.size(), 5u);
}

}  // namespace
}  // namespace vada::datalog
