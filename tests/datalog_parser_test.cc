#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace vada::datalog {
namespace {

TEST(ParserTest, ParsesFact) {
  Result<Rule> r = Parser::ParseRule("p(1, \"a\", true, null, sym).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().IsFact());
  ASSERT_EQ(r.value().head.terms.size(), 5u);
  EXPECT_EQ(r.value().head.terms[0].value(), Value::Int(1));
  EXPECT_EQ(r.value().head.terms[1].value(), Value::String("a"));
  EXPECT_EQ(r.value().head.terms[2].value(), Value::Bool(true));
  EXPECT_EQ(r.value().head.terms[3].value(), Value::Null());
  EXPECT_EQ(r.value().head.terms[4].value(), Value::String("sym"));
}

TEST(ParserTest, ParsesRuleWithBody) {
  Result<Rule> r = Parser::ParseRule("anc(X, Y) :- par(X, Z), anc(Z, Y).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().head.predicate, "anc");
  ASSERT_EQ(r.value().body.size(), 2u);
  EXPECT_EQ(r.value().body[0].kind, Literal::Kind::kAtom);
  EXPECT_EQ(r.value().body[1].atom.predicate, "anc");
}

TEST(ParserTest, ParsesNegation) {
  Result<Rule> r = Parser::ParseRule("p(X) :- q(X), not r(X).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().body[1].kind, Literal::Kind::kNegatedAtom);
}

TEST(ParserTest, ParsesComparisons) {
  Result<Rule> r = Parser::ParseRule("p(X) :- q(X), X > 3, X != 10.");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().body[1].kind, Literal::Kind::kComparison);
  EXPECT_EQ(r.value().body[1].compare_op, CompareOp::kGt);
  EXPECT_EQ(r.value().body[2].compare_op, CompareOp::kNe);
}

TEST(ParserTest, ParsesAssignmentCopyAndArith) {
  Result<Rule> r = Parser::ParseRule("p(X, S) :- q(X, A, B), S = A + B.");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Literal& assign = r.value().body[1];
  EXPECT_EQ(assign.kind, Literal::Kind::kAssignment);
  EXPECT_EQ(assign.assign_var, "S");
  EXPECT_EQ(assign.arith_op, ArithOp::kAdd);

  Result<Rule> r2 = Parser::ParseRule("p(Y) :- q(X), Y = X.");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.value().body[1].kind, Literal::Kind::kAssignment);
  EXPECT_EQ(r2.value().body[1].arith_op, ArithOp::kNone);
}

TEST(ParserTest, ParsesAggregatesInHead) {
  Result<Rule> r = Parser::ParseRule("cnt(S, count<T>) :- res(S, T).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().head.terms.size(), 2u);
  EXPECT_TRUE(r.value().head.terms[1].is_aggregate());
  EXPECT_EQ(r.value().head.terms[1].agg_func(), AggFunc::kCount);
  EXPECT_EQ(r.value().head.terms[1].var(), "T");
  EXPECT_TRUE(r.value().HasAggregates());
}

TEST(ParserTest, AllAggregateFunctions) {
  for (const char* src :
       {"a(sum<X>) :- q(X).", "a(min<X>) :- q(X).", "a(max<X>) :- q(X).",
        "a(avg<X>) :- q(X).", "a(count<X>) :- q(X)."}) {
    EXPECT_TRUE(Parser::ParseRule(src).ok()) << src;
  }
}

TEST(ParserTest, AggregateInBodyRejected) {
  EXPECT_FALSE(Parser::Parse("p(X) :- q(count<X>).").ok());
}

TEST(ParserTest, UnsafeHeadVariableRejected) {
  Result<Rule> r = Parser::ParseRule("p(X, Y) :- q(X).");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Y"), std::string::npos);
}

TEST(ParserTest, UnsafeNegationRejected) {
  EXPECT_FALSE(Parser::ParseRule("p(X) :- q(X), not r(Z).").ok());
}

TEST(ParserTest, UnsafeComparisonRejected) {
  EXPECT_FALSE(Parser::ParseRule("p(X) :- q(X), Z > 3.").ok());
}

TEST(ParserTest, AssignmentChainsAreSafe) {
  // Z is bound through Y which is bound through X.
  EXPECT_TRUE(
      Parser::ParseRule("p(Z) :- q(X), Y = X + 1, Z = Y * 2.").ok());
}

TEST(ParserTest, NonGroundFactRejected) {
  EXPECT_FALSE(Parser::ParseRule("p(X).").ok());
}

TEST(ParserTest, MissingDotRejected) {
  EXPECT_FALSE(Parser::Parse("p(1)").ok());
}

TEST(ParserTest, ZeroArityAtom) {
  Result<Rule> r = Parser::ParseRule("flag() :- q(X).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().head.terms.empty());
}

TEST(ParserTest, ProgramWithMultipleClauses) {
  Result<Program> p = Parser::Parse(
      "edge(1, 2). edge(2, 3).\n"
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p.value().rules.size(), 4u);
  EXPECT_EQ(p.value().HeadPredicates(),
            (std::vector<std::string>{"edge", "tc"}));
}

TEST(ParserTest, ToStringRoundTrips) {
  const std::string src = "p(X, 3) :- q(X, \"a\"), not r(X), X > 1.";
  Result<Rule> r = Parser::ParseRule(src);
  ASSERT_TRUE(r.ok());
  Result<Rule> again = Parser::ParseRule(r.value().ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().ToString(), r.value().ToString());
}

}  // namespace
}  // namespace vada::datalog
