#include <gtest/gtest.h>

#include <set>

#include "extract/open_government.h"
#include "extract/real_estate.h"

namespace vada {
namespace {

TEST(UniverseTest, Deterministic) {
  PropertyUniverseOptions opts;
  opts.seed = 3;
  GroundTruth a = GeneratePropertyUniverse(opts);
  GroundTruth b = GeneratePropertyUniverse(opts);
  EXPECT_EQ(a.properties.SortedRows(), b.properties.SortedRows());
  EXPECT_EQ(a.crime.SortedRows(), b.crime.SortedRows());
}

TEST(UniverseTest, SizesRespectOptions) {
  PropertyUniverseOptions opts;
  opts.num_properties = 77;
  opts.num_postcodes = 13;
  GroundTruth truth = GeneratePropertyUniverse(opts);
  EXPECT_EQ(truth.properties.size(), 77u);
  EXPECT_EQ(truth.postcodes.size(), 13u);
  EXPECT_EQ(truth.crime.size(), 13u);
}

TEST(UniverseTest, StreetDeterminesPostcode) {
  GroundTruth truth = GeneratePropertyUniverse();
  std::map<std::string, std::string> postcode_of;
  for (const Tuple& row : truth.properties.rows()) {
    const std::string& street = row.at(1).string_value();
    const std::string& postcode = row.at(3).string_value();
    auto [it, added] = postcode_of.emplace(street, postcode);
    EXPECT_EQ(it->second, postcode) << "street " << street
                                    << " spans two postcodes";
  }
}

TEST(UniverseTest, CrimeIsPermutationOfRanks) {
  PropertyUniverseOptions opts;
  opts.num_postcodes = 10;
  GroundTruth truth = GeneratePropertyUniverse(opts);
  std::set<int64_t> ranks;
  for (const Tuple& row : truth.crime.rows()) {
    ranks.insert(row.at(1).int_value());
  }
  EXPECT_EQ(ranks.size(), 10u);
  EXPECT_EQ(*ranks.begin(), 1);
  EXPECT_EQ(*ranks.rbegin(), 10);
}

TEST(UniverseTest, PricesCorrelateWithBedrooms) {
  GroundTruth truth = GeneratePropertyUniverse();
  double sum_small = 0.0, sum_large = 0.0;
  size_t n_small = 0, n_large = 0;
  for (const Tuple& row : truth.properties.rows()) {
    int64_t bedrooms = row.at(4).int_value();
    double price = static_cast<double>(row.at(5).int_value());
    if (bedrooms <= 2) {
      sum_small += price;
      ++n_small;
    } else if (bedrooms >= 5) {
      sum_large += price;
      ++n_large;
    }
  }
  ASSERT_GT(n_small, 0u);
  ASSERT_GT(n_large, 0u);
  EXPECT_GT(sum_large / n_large, sum_small / n_small);
}

TEST(ExtractTest, SchemasMatchThePaper) {
  GroundTruth truth = GeneratePropertyUniverse();
  ExtractionErrorOptions opts;
  Relation rm = ExtractRightmove(truth, opts);
  EXPECT_EQ(rm.schema().AttributeNames(),
            (std::vector<std::string>{"price", "street", "postcode",
                                      "bedrooms", "type", "description"}));
  Relation otm = ExtractOnthemarket(truth, opts);
  EXPECT_EQ(otm.schema().AttributeNames(),
            (std::vector<std::string>{"cost", "road", "post_code", "beds",
                                      "category", "details"}));
}

TEST(ExtractTest, CoverageControlsSize) {
  GroundTruth truth = GeneratePropertyUniverse();
  ExtractionErrorOptions low;
  low.coverage = 0.2;
  low.seed = 4;
  ExtractionErrorOptions high;
  high.coverage = 0.9;
  high.seed = 4;
  EXPECT_LT(ExtractRightmove(truth, low).size(),
            ExtractRightmove(truth, high).size());
}

TEST(ExtractTest, BedroomAreaErrorRateRoughlyRespected) {
  PropertyUniverseOptions uopts;
  uopts.num_properties = 2000;
  GroundTruth truth = GeneratePropertyUniverse(uopts);
  ExtractionErrorOptions opts;
  opts.coverage = 1.0;
  opts.missing_rate = 0.0;
  opts.bedrooms_area_rate = 0.2;
  Relation rm = ExtractRightmove(truth, opts);
  size_t implausible = CountImplausibleBedrooms(rm, "bedrooms");
  double rate = static_cast<double>(implausible) / rm.size();
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(ExtractTest, ZeroErrorRatesGiveCleanExtraction) {
  GroundTruth truth = GeneratePropertyUniverse();
  ExtractionErrorOptions opts;
  opts.coverage = 1.0;
  opts.missing_rate = 0.0;
  opts.bedrooms_area_rate = 0.0;
  opts.postcode_typo_rate = 0.0;
  opts.type_vocabulary_rate = 0.0;
  opts.price_noise = 0.0;
  Relation rm = ExtractRightmove(truth, opts);
  EXPECT_EQ(CountImplausibleBedrooms(rm, "bedrooms"), 0u);
  // Every postcode valid.
  std::set<std::string> valid(truth.postcodes.begin(), truth.postcodes.end());
  size_t idx = *rm.schema().AttributeIndex("postcode");
  for (const Tuple& row : rm.rows()) {
    EXPECT_TRUE(valid.count(row.at(idx).string_value()) > 0);
  }
}

TEST(ExtractTest, MissingRateProducesNulls) {
  GroundTruth truth = GeneratePropertyUniverse();
  ExtractionErrorOptions opts;
  opts.missing_rate = 0.3;
  Relation rm = ExtractRightmove(truth, opts);
  double completeness = rm.NonNullFraction("description").value();
  EXPECT_LT(completeness, 0.85);
  EXPECT_GT(completeness, 0.5);
}

TEST(OpenGovernmentTest, AddressReferenceCoversAllStreetsAtFullCoverage) {
  GroundTruth truth = GeneratePropertyUniverse();
  Relation address = GenerateAddressReference(truth);
  std::set<std::string> streets;
  for (const Tuple& row : truth.properties.rows()) {
    streets.insert(row.at(1).string_value());
  }
  EXPECT_EQ(address.size(), streets.size());
}

TEST(OpenGovernmentTest, CoverageFractionRespected) {
  GroundTruth truth = GeneratePropertyUniverse();
  OpenGovernmentOptions opts;
  opts.coverage = 0.5;
  Relation partial = GenerateAddressReference(truth, opts);
  Relation full = GenerateAddressReference(truth);
  EXPECT_LT(partial.size(), full.size());
  EXPECT_GT(partial.size(), full.size() / 4);
}

TEST(OpenGovernmentTest, DeprivationMirrorsCrimeTruth) {
  GroundTruth truth = GeneratePropertyUniverse();
  Relation dep = GenerateDeprivation(truth);
  EXPECT_EQ(dep.SortedRows(), truth.crime.SortedRows());
  EXPECT_EQ(dep.schema().AttributeNames(),
            (std::vector<std::string>{"postcode", "crime"}));
}

TEST(ExtractTest, CountImplausibleBedroomsMissingAttribute) {
  GroundTruth truth = GeneratePropertyUniverse();
  Relation rm = ExtractRightmove(truth, ExtractionErrorOptions());
  EXPECT_EQ(CountImplausibleBedrooms(rm, "not_an_attr"), 0u);
}

}  // namespace
}  // namespace vada
