#include <gtest/gtest.h>

#include "quality/cfd.h"

namespace vada {
namespace {

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<Value>>& rows) {
  Relation rel(Schema::Untyped(name, attrs));
  for (const std::vector<Value>& row : rows) {
    EXPECT_TRUE(rel.InsertUnchecked(Tuple(row)).ok());
  }
  return rel;
}

/// Clean address data: street determines postcode and city. A distinct
/// house number keeps rows unique under set semantics while giving each
/// street group two tuples of evidence.
Relation CleanAddresses() {
  return MakeRelation(
      "address", {"house", "street", "city", "postcode"},
      {
          {Value::Int(1), Value::String("High St"), Value::String("Leeds"),
           Value::String("LS1")},
          {Value::Int(2), Value::String("High St"), Value::String("Leeds"),
           Value::String("LS1")},
          {Value::Int(3), Value::String("Park Rd"), Value::String("Leeds"),
           Value::String("LS2")},
          {Value::Int(4), Value::String("Park Rd"), Value::String("Leeds"),
           Value::String("LS2")},
          {Value::Int(5), Value::String("Mill Ln"), Value::String("York"),
           Value::String("YO1")},
          {Value::Int(6), Value::String("Mill Ln"), Value::String("York"),
           Value::String("YO1")},
          {Value::Int(7), Value::String("Gate Way"), Value::String("York"),
           Value::String("YO2")},
          {Value::Int(8), Value::String("Gate Way"), Value::String("York"),
           Value::String("YO2")},
      });
}

TEST(PatternValueTest, Matching) {
  EXPECT_TRUE(PatternValue::Wildcard().Matches(Value::Int(1)));
  EXPECT_FALSE(PatternValue::Wildcard().Matches(Value::Null()));
  EXPECT_TRUE(PatternValue::Constant(Value::Int(1)).Matches(Value::Int(1)));
  EXPECT_FALSE(PatternValue::Constant(Value::Int(1)).Matches(Value::Int(2)));
}

TEST(CfdLearnerTest, LearnsStreetToPostcodeFd) {
  CfdLearnerOptions opts;
  opts.try_pairs = false;
  opts.min_support_count = 2;
  CfdLearner learner(opts);
  std::vector<Cfd> cfds = learner.Learn(CleanAddresses());
  bool found = false;
  for (const Cfd& c : cfds) {
    if (c.lhs_attributes == std::vector<std::string>{"street"} &&
        c.rhs_attribute == "postcode" && c.is_variable()) {
      found = true;
      EXPECT_DOUBLE_EQ(c.confidence, 1.0);
      EXPECT_DOUBLE_EQ(c.support, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CfdLearnerTest, NoFdBetweenIndependentColumns) {
  // city does not determine street.
  CfdLearnerOptions opts;
  opts.try_pairs = false;
  opts.min_support_count = 2;
  opts.constant_min_group = 100;  // suppress constant CFDs for this test
  CfdLearner learner(opts);
  std::vector<Cfd> cfds = learner.Learn(CleanAddresses());
  for (const Cfd& c : cfds) {
    EXPECT_FALSE(c.lhs_attributes == std::vector<std::string>{"city"} &&
                 c.rhs_attribute == "street")
        << c.ToString();
  }
}

TEST(CfdLearnerTest, ToleratesNoiseBelowConfidenceSlack) {
  Relation data = CleanAddresses();
  // One dirty row: High St with a wrong postcode.
  ASSERT_TRUE(data.InsertUnchecked(Tuple({Value::Int(9),
                                          Value::String("High St"),
                                          Value::String("Leeds"),
                                          Value::String("XX9")}))
                  .ok());
  CfdLearnerOptions opts;
  opts.try_pairs = false;
  opts.min_support_count = 2;
  opts.min_confidence = 0.85;  // 8/9 agreement still passes
  CfdLearner learner(opts);
  std::vector<Cfd> cfds = learner.Learn(data);
  bool found = false;
  for (const Cfd& c : cfds) {
    if (c.lhs_attributes == std::vector<std::string>{"street"} &&
        c.rhs_attribute == "postcode" && c.is_variable()) {
      found = true;
      EXPECT_LT(c.confidence, 1.0);
      EXPECT_GE(c.confidence, 0.85);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CfdLearnerTest, EmitsConstantCfdsWhenNoGlobalFd) {
  // lhs city -> postcode does not hold globally, but York rows all map to
  // one postcode in this variant: expect a constant CFD for York.
  Relation data = MakeRelation(
      "address", {"city", "postcode"},
      {
          {Value::String("Leeds"), Value::String("LS1")},
          {Value::String("Leeds"), Value::String("LS2")},
          {Value::String("Leeds"), Value::String("LS3")},
          {Value::String("Leeds"), Value::String("LS4")},
          {Value::String("York"), Value::String("YO1")},
      });
  // Make York pure and big enough.
  for (int i = 0; i < 4; ++i) {
    // Need distinct tuples under set semantics; duplicate city rows with
    // the same postcode collapse, so this relies on constant_min_group.
  }
  CfdLearnerOptions opts;
  opts.try_pairs = false;
  opts.min_support_count = 2;
  opts.constant_min_group = 1;
  CfdLearner learner(opts);
  std::vector<Cfd> cfds = learner.Learn(data);
  bool found_constant = false;
  for (const Cfd& c : cfds) {
    if (!c.is_variable() && c.rhs_attribute == "postcode" &&
        c.lhs_pattern.size() == 1 && !c.lhs_pattern[0].is_wildcard() &&
        c.lhs_pattern[0].value() == Value::String("York")) {
      found_constant = true;
      EXPECT_EQ(c.rhs_pattern.value(), Value::String("YO1"));
    }
  }
  EXPECT_TRUE(found_constant);
}

TEST(CfdLearnerTest, PairLhsSubsumedBySingles) {
  CfdLearnerOptions opts;
  opts.try_pairs = true;
  opts.min_support_count = 2;
  CfdLearner learner(opts);
  std::vector<Cfd> cfds = learner.Learn(CleanAddresses());
  for (const Cfd& c : cfds) {
    if (c.is_variable() && c.rhs_attribute == "postcode") {
      // street->postcode exists, so {street,city}->postcode must be
      // filtered out as subsumed.
      EXPECT_EQ(c.lhs_attributes.size(), 1u) << c.ToString();
    }
  }
}

TEST(CfdCheckerTest, DetectsViolationsAgainstEvidence) {
  Relation evidence = CleanAddresses();
  CfdLearnerOptions opts;
  opts.try_pairs = false;
  opts.min_support_count = 2;
  std::vector<Cfd> cfds = CfdLearner(opts).Learn(evidence);

  Relation dirty = MakeRelation(
      "result", {"street", "city", "postcode"},
      {
          {Value::String("High St"), Value::String("Leeds"), Value::String("LS1")},
          {Value::String("High St"), Value::String("Leeds"), Value::String("BAD")},
          {Value::String("Mill Ln"), Value::String("York"), Value::Null()},
      });
  CfdChecker checker(cfds, &evidence);
  std::vector<CfdViolation> violations = checker.FindViolations(dirty);
  bool found = false;
  for (const CfdViolation& v : violations) {
    if (v.row_index == 1 && v.cfd->rhs_attribute == "postcode") {
      found = true;
      EXPECT_EQ(v.expected, Value::String("LS1"));
    }
    EXPECT_NE(v.row_index, 2u) << "null rhs must not violate";
  }
  EXPECT_TRUE(found);
  EXPECT_LT(checker.ConsistencyScore(dirty), 1.0);
  EXPECT_GT(checker.ConsistencyScore(dirty), 0.0);
}

TEST(CfdCheckerTest, RepairFixesViolations) {
  Relation evidence = CleanAddresses();
  CfdLearnerOptions opts;
  opts.try_pairs = false;
  opts.min_support_count = 2;
  std::vector<Cfd> cfds = CfdLearner(opts).Learn(evidence);

  Relation dirty = MakeRelation(
      "result", {"street", "city", "postcode"},
      {
          {Value::String("High St"), Value::String("Leeds"), Value::String("BAD")},
          {Value::String("Park Rd"), Value::String("Leeds"), Value::String("LS2")},
      });
  CfdChecker checker(cfds, &evidence);
  Result<size_t> repaired = checker.Repair(&dirty);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_GE(repaired.value(), 1u);
  EXPECT_DOUBLE_EQ(checker.ConsistencyScore(dirty), 1.0);
  // The bad postcode was corrected to the evidence value.
  bool corrected = false;
  for (const Tuple& row : dirty.rows()) {
    if (row.at(0) == Value::String("High St")) {
      EXPECT_EQ(row.at(2), Value::String("LS1"));
      corrected = true;
    }
  }
  EXPECT_TRUE(corrected);
}

TEST(CfdCheckerTest, RepairIsIdempotent) {
  Relation evidence = CleanAddresses();
  CfdLearnerOptions opts;
  opts.try_pairs = false;
  opts.min_support_count = 2;
  std::vector<Cfd> cfds = CfdLearner(opts).Learn(evidence);
  Relation dirty = MakeRelation(
      "result", {"street", "city", "postcode"},
      {{Value::String("High St"), Value::String("Leeds"), Value::String("BAD")}});
  CfdChecker checker(cfds, &evidence);
  ASSERT_TRUE(checker.Repair(&dirty).ok());
  Result<size_t> second = checker.Repair(&dirty);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 0u);
}

TEST(CfdSerializationTest, RoundTrip) {
  Cfd c;
  c.lhs_attributes = {"street", "city"};
  c.lhs_pattern = {PatternValue::Wildcard(),
                   PatternValue::Constant(Value::String("Leeds"))};
  c.rhs_attribute = "postcode";
  c.rhs_pattern = PatternValue::Wildcard();
  c.support = 0.5;
  c.confidence = 0.97;
  Relation rel = CfdsToRelation({c});
  Result<std::vector<Cfd>> back = CfdsFromRelation(rel);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), 1u);
  const Cfd& b = back.value()[0];
  EXPECT_EQ(b.lhs_attributes, c.lhs_attributes);
  EXPECT_TRUE(b.lhs_pattern[0].is_wildcard());
  EXPECT_EQ(b.lhs_pattern[1].value(), Value::String("Leeds"));
  EXPECT_EQ(b.rhs_attribute, "postcode");
  EXPECT_TRUE(b.is_variable());
  EXPECT_DOUBLE_EQ(b.support, 0.5);
  EXPECT_DOUBLE_EQ(b.confidence, 0.97);
}

TEST(CfdTest, ToStringIsReadable) {
  Cfd c;
  c.lhs_attributes = {"street"};
  c.lhs_pattern = {PatternValue::Wildcard()};
  c.rhs_attribute = "postcode";
  std::string s = c.ToString();
  EXPECT_NE(s.find("street"), std::string::npos);
  EXPECT_NE(s.find("postcode"), std::string::npos);
}

}  // namespace
}  // namespace vada
