#include <gtest/gtest.h>

#include "extract/open_government.h"
#include "extract/real_estate.h"
#include "wrangler/etl_baseline.h"
#include "wrangler/evaluation.h"
#include "wrangler/session.h"

namespace vada {
namespace {

Schema TargetSchema() {
  return Schema::Untyped("target", {"type", "description", "street",
                                    "postcode", "bedrooms", "price",
                                    "crimerank"});
}

class EtlBaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyUniverseOptions uopts;
    uopts.num_properties = 100;
    uopts.num_postcodes = 15;
    uopts.seed = 9;
    truth_ = GeneratePropertyUniverse(uopts);
    ExtractionErrorOptions rm;
    rm.seed = 21;
    sources_.push_back(ExtractRightmove(truth_, rm));
    ExtractionErrorOptions otm;
    otm.seed = 22;
    sources_.push_back(ExtractOnthemarket(truth_, otm));
    sources_.push_back(GenerateDeprivation(truth_));
  }

  GroundTruth truth_;
  std::vector<Relation> sources_;
};

TEST_F(EtlBaselineTest, ProducesResult) {
  EtlPipeline pipeline;
  EtlReport report;
  Result<Relation> result = pipeline.Run(TargetSchema(), sources_, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().size(), 0u);
  EXPECT_EQ(report.component_runs, 5u);
  EXPECT_GT(report.mappings_generated, 0u);
  EXPECT_EQ(report.result_rows, result.value().size());
}

TEST_F(EtlBaselineTest, ResultHasTargetSchema) {
  EtlPipeline pipeline;
  Result<Relation> result = pipeline.Run(TargetSchema(), sources_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().schema().AttributeNames(),
            TargetSchema().AttributeNames());
}

TEST_F(EtlBaselineTest, DeterministicAcrossRuns) {
  EtlPipeline pipeline;
  Result<Relation> a = pipeline.Run(TargetSchema(), sources_);
  Result<Relation> b = pipeline.Run(TargetSchema(), sources_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().SortedRows(), b.value().SortedRows());
}

TEST_F(EtlBaselineTest, VadaWithFullContextBeatsEtlOverall) {
  EtlPipeline pipeline;
  Result<Relation> etl = pipeline.Run(TargetSchema(), sources_);
  ASSERT_TRUE(etl.ok());
  ScenarioEvaluation etl_eval = EvaluateScenario(etl.value(), truth_);

  WranglingSession session;
  ASSERT_TRUE(session.SetTargetSchema(TargetSchema()).ok());
  for (const Relation& src : sources_) {
    ASSERT_TRUE(session.AddSource(src).ok());
  }
  ASSERT_TRUE(session
                  .AddDataContext(GenerateAddressReference(truth_),
                                  RelationRole::kReference,
                                  {{"street", "street"},
                                   {"postcode", "postcode"}})
                  .ok());
  ASSERT_TRUE(session.Run().ok());
  ScenarioEvaluation vada_eval = EvaluateScenario(*session.result(), truth_);

  // The headline shape: VADA with data context is at least as good as the
  // static ETL pipeline (repair + selection must not hurt).
  EXPECT_GE(vada_eval.overall, etl_eval.overall);
}

TEST(EvaluationTest, EmptyResultScoresZero) {
  GroundTruth truth = GeneratePropertyUniverse();
  Relation empty(Schema::Untyped("r", {"bedrooms"}));
  ScenarioEvaluation eval = EvaluateScenario(empty, truth);
  EXPECT_EQ(eval.rows, 0u);
  EXPECT_DOUBLE_EQ(eval.overall, 0.0);
}

TEST(EvaluationTest, MissingAttributesScoreZero) {
  GroundTruth truth = GeneratePropertyUniverse();
  Relation rel(Schema::Untyped("r", {"other"}));
  ASSERT_TRUE(rel.InsertUnchecked(Tuple({Value::Int(1)})).ok());
  ScenarioEvaluation eval = EvaluateScenario(rel, truth);
  EXPECT_DOUBLE_EQ(eval.crimerank_completeness, 0.0);
  EXPECT_DOUBLE_EQ(eval.bedrooms_plausible_rate, 0.0);
}

TEST(EvaluationTest, PerfectSyntheticResult) {
  PropertyUniverseOptions opts;
  opts.num_properties = 50;
  GroundTruth truth = GeneratePropertyUniverse(opts);
  // Build a result directly from the truth (plus crimerank).
  std::map<std::string, int64_t> crime;
  for (const Tuple& row : truth.crime.rows()) {
    crime[row.at(0).string_value()] = row.at(1).int_value();
  }
  Relation result(Schema::Untyped(
      "r", {"street", "postcode", "bedrooms", "crimerank"}));
  for (const Tuple& row : truth.properties.rows()) {
    ASSERT_TRUE(
        result
            .InsertUnchecked(Tuple(
                {row.at(1), row.at(3), row.at(4),
                 Value::Int(crime[row.at(3).string_value()])}))
            .ok());
  }
  ScenarioEvaluation eval = EvaluateScenario(result, truth);
  EXPECT_DOUBLE_EQ(eval.crimerank_completeness, 1.0);
  EXPECT_DOUBLE_EQ(eval.bedrooms_plausible_rate, 1.0);
  EXPECT_DOUBLE_EQ(eval.postcode_valid_rate, 1.0);
  EXPECT_DOUBLE_EQ(eval.street_valid_rate, 1.0);
  EXPECT_GT(eval.coverage, 0.5);
}

}  // namespace
}  // namespace vada
