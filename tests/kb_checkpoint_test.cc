#include "kb/checkpoint.h"

#include <gtest/gtest.h>

#include "kb/durability.h"
#include "kb/fs_util.h"
#include "kb/wal.h"
#include "kb/write_guard.h"
#include "kb_digest_test_util.h"

namespace vada {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/vada_ckpt_" + name;
  EXPECT_TRUE(RemoveRecursively(dir).ok());
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

KnowledgeBase SampleKb() {
  KnowledgeBase kb;
  EXPECT_TRUE(kb.CreateRelation(Schema("listing", {{"street", AttributeType::kString},
                                                   {"price", AttributeType::kInt}}))
                  .ok());
  EXPECT_TRUE(kb.Assert("listing", {Value::String("High St"), Value::Int(100)}).ok());
  EXPECT_TRUE(kb.Assert("listing", {Value::String("Low \"St\""), Value::Int(-3)}).ok());
  EXPECT_TRUE(kb.CreateRelation(Schema::Untyped("ref_prices", {"price"})).ok());
  EXPECT_TRUE(kb.Assert("ref_prices", {Value::Double(1.5)}).ok());
  kb.catalog().SetRole("listing", RelationRole::kSource);
  kb.catalog().SetRole("ref_prices", RelationRole::kReference);
  return kb;
}

TEST(CheckpointTest, WriteReadLoadRoundTrip) {
  std::string root = TempDir("roundtrip");
  KnowledgeBase kb = SampleKb();
  WalPosition start{3, 0};
  Result<CheckpointInfo> written = WriteCheckpoint(kb, root, 7, start);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written.value().id, 7u);
  EXPECT_EQ(written.value().wal_start, start);

  EXPECT_EQ(ListCheckpoints(root), std::vector<uint64_t>{7});

  Result<CheckpointInfo> info = ReadCheckpointInfo(root, 7);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().wal_start, start);

  Result<KnowledgeBase> loaded = LoadCheckpoint(root, 7);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(KbDigest(loaded.value()), KbDigest(kb));
  EXPECT_GT(CheckpointBytes(root, 7), 0u);
}

TEST(CheckpointTest, RefusesToOverwriteExistingId) {
  std::string root = TempDir("overwrite");
  KnowledgeBase kb = SampleKb();
  ASSERT_TRUE(WriteCheckpoint(kb, root, 1, {1, 0}).ok());
  Result<CheckpointInfo> again = WriteCheckpoint(kb, root, 1, {2, 0});
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(CheckpointTest, StaleTmpDirectoriesAreIgnoredAndSwept) {
  std::string root = TempDir("tmp");
  ASSERT_TRUE(EnsureDirectory(root + "/" + CheckpointDirName(9) + ".tmp").ok());
  ASSERT_TRUE(WriteFileText(root + "/" + CheckpointDirName(9) + ".tmp/junk", "x").ok());
  // A crash inside SaveKnowledgeBase's staging strands this sibling of
  // the checkpoint tmp dir; it must be swept too, not leak forever.
  std::string save_stage = root + "/" + CheckpointDirName(7) + ".tmp.tmp-save";
  ASSERT_TRUE(EnsureDirectory(save_stage).ok());
  ASSERT_TRUE(WriteFileText(save_stage + "/junk", "x").ok());
  EXPECT_TRUE(ListCheckpoints(root).empty());
  ASSERT_TRUE(RemoveStaleCheckpointTmp(root).ok());
  EXPECT_FALSE(PathExists(root + "/" + CheckpointDirName(9) + ".tmp"));
  EXPECT_FALSE(PathExists(save_stage));
}

TEST(CheckpointTest, BitFlipIsDataLoss) {
  std::string root = TempDir("bitflip");
  KnowledgeBase kb = SampleKb();
  ASSERT_TRUE(WriteCheckpoint(kb, root, 1, {1, 0}).ok());
  std::string csv = root + "/" + CheckpointDirName(1) + "/listing.csv";
  Result<std::string> data = ReadFileText(csv);
  ASSERT_TRUE(data.ok());
  std::string flipped = data.value();
  flipped[flipped.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileText(csv, flipped).ok());

  Result<KnowledgeBase> loaded = LoadCheckpoint(root, 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, MissingFileIsDataLoss) {
  std::string root = TempDir("missing");
  KnowledgeBase kb = SampleKb();
  ASSERT_TRUE(WriteCheckpoint(kb, root, 1, {1, 0}).ok());
  ASSERT_TRUE(
      RemoveRecursively(root + "/" + CheckpointDirName(1) + "/listing.csv").ok());
  Result<KnowledgeBase> loaded = LoadCheckpoint(root, 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, CrashMidWriteLeavesNoFinalCheckpoint) {
  std::string root = TempDir("crash");
  KnowledgeBase kb = SampleKb();
  // Count a clean write's physical ops, then kill at every single one.
  uint64_t clean_ops;
  {
    CrashInjector counter;
    ASSERT_TRUE(WriteCheckpoint(kb, root, 1, {1, 0}, &counter).ok());
    clean_ops = counter.ops();
    ASSERT_TRUE(RemoveCheckpoint(root, 1).ok());
  }
  ASSERT_GT(clean_ops, 2u);
  for (uint64_t kill = 1; kill <= clean_ops; ++kill) {
    CrashInjector::Schedule schedule;
    schedule.kill_after_ops = kill;
    CrashInjector crash(schedule);
    Result<CheckpointInfo> written = WriteCheckpoint(kb, root, 1, {1, 0}, &crash);
    if (!written.ok()) {
      EXPECT_EQ(written.status().code(), StatusCode::kDataLoss);
      // Atomicity: either the crash hit before the rename and no final
      // directory exists (only possibly a .tmp staging dir), or it hit
      // after (the post-rename root fsync) and the checkpoint is
      // complete — in which case it must verify. Never a torn final dir.
      if (!ListCheckpoints(root).empty()) {
        EXPECT_TRUE(LoadCheckpoint(root, 1).ok()) << "kill at op " << kill;
        ASSERT_TRUE(RemoveCheckpoint(root, 1).ok());
      }
      ASSERT_TRUE(RemoveStaleCheckpointTmp(root).ok());
    } else {
      // The kill point fell after the rename: the checkpoint is complete
      // and must verify.
      EXPECT_TRUE(LoadCheckpoint(root, 1).ok());
      ASSERT_TRUE(RemoveCheckpoint(root, 1).ok());
    }
  }
}

TEST(DurabilityManagerTest, FreshOpenRecoversNothing) {
  std::string root = TempDir("fresh");
  DurabilityOptions options;
  options.enabled = true;
  options.directory = root;
  options.fsync = FsyncPolicy::kNone;
  KnowledgeBase kb;
  Result<std::unique_ptr<DurabilityManager>> mgr =
      DurabilityManager::Open(options, &kb);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_FALSE(mgr.value()->recovery().recovered);
  EXPECT_TRUE(mgr.value()->status().ok());
  EXPECT_EQ(kb.durability(), mgr.value().get());
}

TEST(DurabilityManagerTest, ReopenReplaysWal) {
  std::string root = TempDir("replay");
  DurabilityOptions options;
  options.enabled = true;
  options.directory = root;
  options.fsync = FsyncPolicy::kNone;
  std::string digest;
  {
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(options, &kb);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE(kb.CreateRelation(Schema("listing",
                                         {{"street", AttributeType::kString},
                                          {"price", AttributeType::kInt}}))
                    .ok());
    ASSERT_TRUE(
        kb.Assert("listing", {Value::String("High St"), Value::Int(100)}).ok());
    kb.catalog().SetRole("listing", RelationRole::kSource);
    ASSERT_TRUE(kb.Retract("listing",
                           Tuple({Value::String("High St"), Value::Int(100)}))
                    .ok());
    ASSERT_TRUE(
        kb.Assert("listing", {Value::String("Low St"), Value::Int(5)}).ok());
    ASSERT_TRUE(mgr.value()->status().ok()) << mgr.value()->status().ToString();
    digest = KbDigest(kb);
  }
  {
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(options, &kb);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    EXPECT_TRUE(mgr.value()->recovery().recovered);
    EXPECT_GT(mgr.value()->recovery().replayed_records, 0u);
    EXPECT_EQ(KbDigest(kb), digest);
  }
}

TEST(DurabilityManagerTest, CommittedGuardReplaysRolledBackGuardDoesNot) {
  std::string root = TempDir("txn");
  DurabilityOptions options;
  options.enabled = true;
  options.directory = root;
  options.fsync = FsyncPolicy::kNone;
  std::string digest;
  {
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(options, &kb);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
    {
      WriteGuard guard(&kb);
      ASSERT_TRUE(kb.Assert("r", {Value::Int(1)}).ok());
      guard.Commit();
    }
    {
      WriteGuard guard(&kb);
      ASSERT_TRUE(kb.Assert("r", {Value::Int(2)}).ok());
      // destructor rolls back
    }
    {
      WriteGuard read_only(&kb);
      read_only.Commit();  // record-less: must leave no WAL trace
    }
    digest = KbDigest(kb);
    EXPECT_EQ(kb.FindRelation("r")->size(), 1u);
  }
  {
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(options, &kb);
    ASSERT_TRUE(mgr.ok());
    EXPECT_EQ(KbDigest(kb), digest);
    ASSERT_NE(kb.FindRelation("r"), nullptr);
    EXPECT_EQ(kb.FindRelation("r")->size(), 1u);
  }
}

TEST(DurabilityManagerTest, TrailingUncommittedTxnIsDiscarded) {
  std::string root = TempDir("trailing");
  // Hand-build a WAL whose tail is an unfinished transaction.
  {
    WalOptions wal_options;
    wal_options.directory = root;
    wal_options.fsync = FsyncPolicy::kNone;
    Result<std::unique_ptr<WalWriter>> wal = WalWriter::Open(wal_options, 1);
    ASSERT_TRUE(wal.ok());
    WalRecord create;
    create.type = WalRecordType::kCreateRelation;
    create.schema = Schema::Untyped("r", {"a"});
    ASSERT_TRUE(wal.value()->Append(create).ok());
    WalRecord insert;
    insert.type = WalRecordType::kInsert;
    insert.relation = "r";
    insert.tuple = Tuple({Value::Int(1)});
    ASSERT_TRUE(wal.value()->Append(insert).ok());
    WalRecord begin;
    begin.type = WalRecordType::kTxnBegin;
    begin.txn_id = 5;
    ASSERT_TRUE(wal.value()->Append(begin).ok());
    insert.txn_id = 5;
    insert.tuple = Tuple({Value::Int(2)});
    ASSERT_TRUE(wal.value()->Append(insert).ok());
    // no commit: the process "died" here
  }
  DurabilityOptions options;
  options.enabled = true;
  options.directory = root;
  options.fsync = FsyncPolicy::kNone;
  KnowledgeBase kb;
  Result<std::unique_ptr<DurabilityManager>> mgr =
      DurabilityManager::Open(options, &kb);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ(mgr.value()->recovery().discarded_records, 2u);  // begin + insert
  ASSERT_NE(kb.FindRelation("r"), nullptr);
  EXPECT_EQ(kb.FindRelation("r")->size(), 1u);
  EXPECT_TRUE(kb.FindRelation("r")->Contains(Tuple({Value::Int(1)})));
}

TEST(DurabilityManagerTest, CheckpointTruncatesWalAndRetainsTwo) {
  std::string root = TempDir("retention");
  DurabilityOptions options;
  options.enabled = true;
  options.directory = root;
  options.fsync = FsyncPolicy::kNone;
  options.checkpoints_to_keep = 2;
  std::string digest;
  {
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(options, &kb);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
    for (int round = 0; round < 4; ++round) {
      ASSERT_TRUE(kb.Assert("r", {Value::Int(round)}).ok());
      ASSERT_TRUE(mgr.value()->Checkpoint().ok())
          << mgr.value()->status().ToString();
    }
    EXPECT_EQ(mgr.value()->last_checkpoint_id(), 4u);
    // Retention: exactly the last two checkpoints remain.
    EXPECT_EQ(ListCheckpoints(root), (std::vector<uint64_t>{3, 4}));
    // WAL segments before the oldest kept checkpoint are gone.
    Result<CheckpointInfo> oldest = ReadCheckpointInfo(root, 3);
    ASSERT_TRUE(oldest.ok());
    std::vector<uint64_t> segments = ListWalSegments(root);
    ASSERT_FALSE(segments.empty());
    EXPECT_GE(segments.front(), oldest.value().wal_start.segment);
    ASSERT_TRUE(kb.Assert("r", {Value::Int(99)}).ok());
    digest = KbDigest(kb);
  }
  {
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(options, &kb);
    ASSERT_TRUE(mgr.ok());
    EXPECT_EQ(mgr.value()->recovery().checkpoint_id, 4u);
    EXPECT_EQ(KbDigest(kb), digest);
  }
}

TEST(DurabilityManagerTest, CheckpointRefusedWhileGuardActive) {
  std::string root = TempDir("guarded");
  DurabilityOptions options;
  options.enabled = true;
  options.directory = root;
  options.fsync = FsyncPolicy::kNone;
  KnowledgeBase kb;
  Result<std::unique_ptr<DurabilityManager>> mgr =
      DurabilityManager::Open(options, &kb);
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
  WriteGuard guard(&kb);
  Status refused = mgr.value()->Checkpoint();
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(mgr.value()->status().ok());  // refusal does not poison
  guard.Commit();
  EXPECT_TRUE(mgr.value()->Checkpoint().ok());
}

TEST(DurabilityManagerTest, FallsBackToOlderCheckpointOnCorruption) {
  std::string root = TempDir("fallback");
  DurabilityOptions options;
  options.enabled = true;
  options.directory = root;
  options.fsync = FsyncPolicy::kNone;
  std::string digest_at_first_checkpoint;
  {
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(options, &kb);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
    ASSERT_TRUE(kb.Assert("r", {Value::Int(1)}).ok());
    ASSERT_TRUE(mgr.value()->Checkpoint().ok());
    digest_at_first_checkpoint = KbDigest(kb);
    ASSERT_TRUE(kb.Assert("r", {Value::Int(2)}).ok());
    ASSERT_TRUE(mgr.value()->Checkpoint().ok());
  }
  // Corrupt the newest checkpoint.
  {
    std::string manifest = root + "/" + CheckpointDirName(2) + "/manifest.tsv";
    Result<std::string> data = ReadFileText(manifest);
    ASSERT_TRUE(data.ok());
    std::string flipped = data.value();
    flipped[0] ^= 0x02;
    ASSERT_TRUE(WriteFileText(manifest, flipped).ok());
  }
  std::string digest_after_fallback;
  {
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(options, &kb);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    EXPECT_TRUE(mgr.value()->recovery().checkpoint_fallback);
    EXPECT_EQ(mgr.value()->recovery().checkpoint_id, 1u);
    // Replay from checkpoint 1's WAL start reconstructs the Int(2) insert
    // that checkpoint 2 had absorbed.
    ASSERT_NE(kb.FindRelation("r"), nullptr);
    EXPECT_EQ(kb.FindRelation("r")->size(), 2u);
    // The corrupt checkpoint 2 was discarded during recovery, so a new
    // checkpoint (which reuses id 2) must not collide with its remains.
    EXPECT_EQ(ListCheckpoints(root), (std::vector<uint64_t>{1}));
    ASSERT_TRUE(kb.Assert("r", {Value::Int(3)}).ok());
    ASSERT_TRUE(mgr.value()->Checkpoint().ok())
        << mgr.value()->status().ToString();
    EXPECT_EQ(mgr.value()->last_checkpoint_id(), 2u);
    ASSERT_TRUE(kb.Assert("r", {Value::Int(4)}).ok());
    EXPECT_TRUE(mgr.value()->status().ok());  // WAL still logging
    digest_after_fallback = KbDigest(kb);
  }
  {
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(options, &kb);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    EXPECT_FALSE(mgr.value()->recovery().checkpoint_fallback);
    EXPECT_EQ(mgr.value()->recovery().checkpoint_id, 2u);
    EXPECT_EQ(KbDigest(kb), digest_after_fallback);
  }
}

TEST(DurabilityManagerTest, AllCheckpointsCorruptAndNoWalCoverageIsFatal) {
  std::string root = TempDir("fatal");
  DurabilityOptions options;
  options.enabled = true;
  options.directory = root;
  options.fsync = FsyncPolicy::kNone;
  options.checkpoints_to_keep = 1;  // WAL truncated up to the only checkpoint
  {
    KnowledgeBase kb;
    Result<std::unique_ptr<DurabilityManager>> mgr =
        DurabilityManager::Open(options, &kb);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
    ASSERT_TRUE(kb.Assert("r", {Value::Int(1)}).ok());
    ASSERT_TRUE(mgr.value()->Checkpoint().ok());
  }
  std::string checksums = root + "/" + CheckpointDirName(1) + "/checksums";
  ASSERT_TRUE(WriteFileText(checksums, "0\tmanifest.tsv\n").ok());
  KnowledgeBase kb;
  Result<std::unique_ptr<DurabilityManager>> mgr =
      DurabilityManager::Open(options, &kb);
  ASSERT_FALSE(mgr.ok());
  EXPECT_EQ(mgr.status().code(), StatusCode::kDataLoss);
}

TEST(DurabilityManagerTest, AutoCheckpointTriggersOnByteThreshold) {
  std::string root = TempDir("auto");
  DurabilityOptions options;
  options.enabled = true;
  options.directory = root;
  options.fsync = FsyncPolicy::kNone;
  options.checkpoint_every_bytes = 512;
  KnowledgeBase kb;
  Result<std::unique_ptr<DurabilityManager>> mgr =
      DurabilityManager::Open(options, &kb);
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a", "b"})).ok());
  for (int i = 0; i < 200 && mgr.value()->last_checkpoint_id() == 0; ++i) {
    ASSERT_TRUE(
        kb.Assert("r", {Value::Int(i), Value::String("padding-padding")}).ok());
  }
  EXPECT_GT(mgr.value()->last_checkpoint_id(), 0u);
  EXPECT_FALSE(ListCheckpoints(root).empty());
}

TEST(DurabilityManagerTest, StickyFailureKeepsKbUsable) {
  std::string root = TempDir("sticky");
  CrashInjector::Schedule schedule;
  schedule.kill_after_ops = 6;
  CrashInjector crash(schedule);
  DurabilityOptions options;
  options.enabled = true;
  options.directory = root;
  options.fsync = FsyncPolicy::kNone;
  options.crash = &crash;
  KnowledgeBase kb;
  Result<std::unique_ptr<DurabilityManager>> mgr =
      DurabilityManager::Open(options, &kb);
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE(kb.CreateRelation(Schema::Untyped("r", {"a"})).ok());
  int i = 0;
  while (mgr.value()->status().ok()) {
    ASSERT_TRUE(kb.Assert("r", {Value::Int(i++)}).ok());
    ASSERT_LT(i, 100);
  }
  EXPECT_EQ(mgr.value()->status().code(), StatusCode::kDataLoss);
  // The in-memory KB keeps accepting mutations after the durable trail
  // ended; the sticky status is the only signal.
  EXPECT_TRUE(kb.Assert("r", {Value::Int(1000)}).ok());
  EXPECT_TRUE(kb.FindRelation("r")->Contains(Tuple({Value::Int(1000)})));
  EXPECT_EQ(mgr.value()->status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace vada
