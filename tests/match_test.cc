#include <gtest/gtest.h>

#include "match/combiner.h"
#include "match/instance_matcher.h"
#include "match/match_types.h"
#include "match/schema_matcher.h"

namespace vada {
namespace {

Schema RightmoveSchema() {
  return Schema::Untyped("rightmove", {"price", "street", "postcode",
                                       "bedrooms", "type", "description"});
}

Schema OnthemarketSchema() {
  return Schema::Untyped(
      "onthemarket", {"cost", "road", "post_code", "beds", "category",
                      "details"});
}

Schema TargetSchema() {
  return Schema::Untyped("target", {"type", "description", "street",
                                    "postcode", "bedrooms", "price",
                                    "crimerank"});
}

TEST(SchemaMatcherTest, IdenticalNamesScoreHigh) {
  SchemaMatcher matcher;
  EXPECT_GE(matcher.NameScore("price", "price"), 0.95);
  EXPECT_GE(matcher.NameScore("Price", "price"), 0.95);
}

TEST(SchemaMatcherTest, SynonymsScoreHigh) {
  SchemaMatcher matcher;
  EXPECT_GE(matcher.NameScore("cost", "price"), 0.9);
  EXPECT_GE(matcher.NameScore("zip", "postcode"), 0.9);
  EXPECT_GE(matcher.NameScore("beds", "bedrooms"), 0.9);
  EXPECT_GE(matcher.NameScore("road", "street"), 0.9);
}

TEST(SchemaMatcherTest, UnrelatedNamesScoreLow) {
  SchemaMatcher matcher;
  EXPECT_LT(matcher.NameScore("price", "description"), 0.4);
  EXPECT_LT(matcher.NameScore("crimerank", "bedrooms"), 0.4);
}

TEST(SchemaMatcherTest, TokenizedCompoundNames) {
  SchemaMatcher matcher;
  EXPECT_GT(matcher.NameScore("post_code", "postcode"), 0.5);
  EXPECT_GT(matcher.NameScore("numberOfBedrooms", "bedrooms"), 0.3);
}

TEST(SchemaMatcherTest, SynonymsCanBeDisabled) {
  SchemaMatcherOptions opts;
  opts.use_builtin_synonyms = false;
  SchemaMatcher without(opts);
  SchemaMatcher with;
  EXPECT_LT(without.NameScore("cost", "price"), with.NameScore("cost", "price"));
}

TEST(SchemaMatcherTest, ExtraSynonymGroups) {
  SchemaMatcherOptions opts;
  opts.extra_synonyms = {{"crimerank", "dep_index"}};
  SchemaMatcher matcher(opts);
  EXPECT_GE(matcher.NameScore("dep_index", "crimerank"), 0.9);
}

TEST(SchemaMatcherTest, RightmoveMatchesAllSharedAttributes) {
  SchemaMatcher matcher;
  std::vector<MatchCandidate> matches =
      matcher.Match(RightmoveSchema(), TargetSchema());
  std::set<std::string> matched_targets;
  for (const MatchCandidate& m : matches) {
    if (m.source_attribute == m.target_attribute && m.score >= 0.9) {
      matched_targets.insert(m.target_attribute);
    }
  }
  for (const char* attr :
       {"price", "street", "postcode", "bedrooms", "type", "description"}) {
    EXPECT_TRUE(matched_targets.count(attr) > 0) << attr;
  }
}

TEST(SchemaMatcherTest, OnthemarketRenamedAttributesStillMatch) {
  SchemaMatcher matcher;
  std::vector<MatchCandidate> matches =
      matcher.Match(OnthemarketSchema(), TargetSchema());
  std::map<std::string, std::string> best;  // target -> source
  std::map<std::string, double> best_score;
  for (const MatchCandidate& m : matches) {
    if (m.score > best_score[m.target_attribute]) {
      best_score[m.target_attribute] = m.score;
      best[m.target_attribute] = m.source_attribute;
    }
  }
  EXPECT_EQ(best["price"], "cost");
  EXPECT_EQ(best["street"], "road");
  EXPECT_EQ(best["postcode"], "post_code");
  EXPECT_EQ(best["bedrooms"], "beds");
  EXPECT_EQ(best["description"], "details");
}

TEST(MatchTypesTest, RelationRoundTrip) {
  std::vector<MatchCandidate> matches = {
      {"src", "a", "tgt", "x", 0.8, "schema_name"},
      {"src", "b", "tgt", "y", 0.5, "instance"},
  };
  Relation rel = MatchesToRelation(matches);
  Result<std::vector<MatchCandidate>> back = MatchesFromRelation(rel);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), 2u);
  // Relation rows are unordered vs input; check contents.
  bool found = false;
  for (const MatchCandidate& m : back.value()) {
    if (m.source_attribute == "a") {
      EXPECT_DOUBLE_EQ(m.score, 0.8);
      EXPECT_EQ(m.matcher, "schema_name");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MatchTypesTest, BestPerPairKeepsMaximum) {
  std::vector<MatchCandidate> matches = {
      {"s", "a", "t", "x", 0.5, "m1"},
      {"s", "a", "t", "x", 0.9, "m2"},
      {"s", "a", "t", "y", 0.4, "m1"},
  };
  std::vector<MatchCandidate> best = BestPerPair(matches);
  ASSERT_EQ(best.size(), 2u);
  for (const MatchCandidate& m : best) {
    if (m.target_attribute == "x") EXPECT_DOUBLE_EQ(m.score, 0.9);
  }
}

TEST(MatchTypesTest, GreedyOneToOneEnforcesAssignment) {
  std::vector<MatchCandidate> matches = {
      {"s", "a", "t", "x", 0.9, "m"},
      {"s", "a", "t", "y", 0.8, "m"},  // source attr a already used
      {"s", "b", "t", "x", 0.7, "m"},  // target attr x already used
      {"s", "b", "t", "y", 0.6, "m"},
      {"s", "c", "t", "z", 0.1, "m"},  // below threshold
  };
  std::vector<MatchCandidate> assigned = GreedyOneToOne(matches, 0.5);
  ASSERT_EQ(assigned.size(), 2u);
  EXPECT_EQ(assigned[0].source_attribute, "a");
  EXPECT_EQ(assigned[0].target_attribute, "x");
  EXPECT_EQ(assigned[1].source_attribute, "b");
  EXPECT_EQ(assigned[1].target_attribute, "y");
}

TEST(MatchTypesTest, OneToOnePerSourceRelation) {
  // Two different sources may both fill target attribute x.
  std::vector<MatchCandidate> matches = {
      {"s1", "a", "t", "x", 0.9, "m"},
      {"s2", "b", "t", "x", 0.8, "m"},
  };
  std::vector<MatchCandidate> assigned = GreedyOneToOne(matches, 0.5);
  EXPECT_EQ(assigned.size(), 2u);
}

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<Value>>& rows) {
  Relation rel(Schema::Untyped(name, attrs));
  for (const std::vector<Value>& row : rows) {
    EXPECT_TRUE(rel.InsertUnchecked(Tuple(row)).ok());
  }
  return rel;
}

TEST(InstanceMatcherTest, ValueOverlapFindsCorrespondence) {
  Relation source = MakeRelation(
      "src", {"colA", "colB"},
      {{Value::String("SW1A 1AA"), Value::Int(3)},
       {Value::String("M1 2AB"), Value::Int(2)},
       {Value::String("OL5 3XY"), Value::Int(4)}});
  Relation reference = MakeRelation(
      "ref", {"pc"},
      {{Value::String("SW1A 1AA")}, {Value::String("M1 2AB")},
       {Value::String("OL5 3XY")}, {Value::String("BL1 9ZZ")}});
  InstanceMatcher matcher;
  double score = matcher.ColumnScore(source, "colA", reference, "pc");
  EXPECT_GT(score, 0.5);
  EXPECT_LT(matcher.ColumnScore(source, "colB", reference, "pc"), 0.1);
}

TEST(InstanceMatcherTest, MatchRenamesToTargetAttributes) {
  Relation source = MakeRelation("src", {"colA"},
                                 {{Value::String("x")}, {Value::String("y")}});
  Relation reference =
      MakeRelation("ref", {"pc"}, {{Value::String("x")}, {Value::String("y")}});
  InstanceMatcher matcher;
  std::vector<MatchCandidate> matches =
      matcher.Match(source, reference, "target", {{"pc", "postcode"}});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].target_attribute, "postcode");
  EXPECT_EQ(matches[0].target_relation, "target");
  EXPECT_EQ(matches[0].matcher, "instance");
}

TEST(InstanceMatcherTest, NumericProfileSimilarity) {
  std::vector<std::vector<Value>> src_rows;
  std::vector<std::vector<Value>> ref_rows;
  for (int i = 0; i < 50; ++i) {
    src_rows.push_back({Value::Int(100000 + i * 1000)});
    ref_rows.push_back({Value::Int(101000 + i * 1000)});
  }
  Relation source = MakeRelation("src", {"p"}, src_rows);
  Relation reference = MakeRelation("ref", {"q"}, ref_rows);
  InstanceMatcher matcher;
  // Values barely overlap but the distributions are nearly identical.
  EXPECT_GT(matcher.ColumnScore(source, "p", reference, "q"), 0.2);
}

TEST(CombinerTest, MergesEvidenceAcrossMatchers) {
  std::vector<MatchCandidate> candidates = {
      {"s", "a", "t", "x", 0.6, "schema_name"},
      {"s", "a", "t", "x", 0.9, "instance"},
  };
  std::vector<MatchCandidate> combined = CombineMatches(candidates);
  ASSERT_EQ(combined.size(), 1u);
  // Weighted mean with instance weight 1.2 > plain mean 0.75.
  EXPECT_GT(combined[0].score, 0.74);
  EXPECT_LT(combined[0].score, 0.9);
  EXPECT_EQ(combined[0].matcher, "combined");
}

TEST(CombinerTest, ThresholdDropsWeakCandidates) {
  CombinerOptions opts;
  opts.threshold = 0.7;
  std::vector<MatchCandidate> combined =
      CombineMatches({{"s", "a", "t", "x", 0.5, "schema_name"}}, opts);
  EXPECT_TRUE(combined.empty());
}

}  // namespace
}  // namespace vada
