#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datalog/analysis/analyzer.h"
#include "datalog/parser.h"

namespace vada::datalog::analysis {
namespace {

AnalysisReport Analyze(const std::string& src,
                       AnalyzerOptions options = AnalyzerOptions(),
                       const PredicateCatalog* catalog = nullptr) {
  return ProgramAnalyzer(options).AnalyzeSource(src, catalog);
}

bool Has(const AnalysisReport& report, const std::string& check_id) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.check_id == check_id; });
}

const Diagnostic& First(const AnalysisReport& report,
                        const std::string& check_id) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.check_id == check_id) return d;
  }
  ADD_FAILURE() << "no diagnostic " << check_id << " in:\n"
                << report.ToString();
  static Diagnostic none;
  return none;
}

// ---------------------------------------------------------------------
// Parsing and position anchoring.
// ---------------------------------------------------------------------

TEST(AnalyzerTest, ParseErrorBecomesDiagnostic) {
  AnalysisReport report = Analyze("p(X :- q(X).");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].check_id, "parse/error");
  EXPECT_EQ(report.diagnostics[0].severity, Severity::kError);
  EXPECT_FALSE(report.ok());
}

TEST(AnalyzerTest, DiagnosticsAnchorToLineAndColumn) {
  AnalysisReport report = Analyze("p(X) :- q(Y).");
  const Diagnostic& head = First(report, "safety/unbound-head-variable");
  EXPECT_EQ(head.pos.line, 1);
  EXPECT_EQ(head.pos.col, 3);  // the X in p(X)
  const Diagnostic& singleton = First(report, "lint/singleton-variable");
  EXPECT_EQ(singleton.pos.line, 1);
}

TEST(AnalyzerTest, SecondLineDiagnosticsReportLineTwo) {
  AnalysisReport report = Analyze(
      "ok(X) :- base(X).\n"
      "bad(Z) :- base(X).\n");
  const Diagnostic& d = First(report, "safety/unbound-head-variable");
  EXPECT_EQ(d.pos.line, 2);
  EXPECT_EQ(d.rule_index, 1);
  EXPECT_NE(d.message.find("Z"), std::string::npos);
}

// ---------------------------------------------------------------------
// safety/*
// ---------------------------------------------------------------------

TEST(AnalyzerTest, UnboundHeadVariable) {
  AnalysisReport report = Analyze("p(X, Y) :- q(X).");
  const Diagnostic& d = First(report, "safety/unbound-head-variable");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.fix_hint.find("Y"), std::string::npos);
}

TEST(AnalyzerTest, AssignmentBindsHeadVariable) {
  AnalysisReport report = Analyze("p(X, Y) :- q(X), Y = X + 1.");
  EXPECT_FALSE(Has(report, "safety/unbound-head-variable"));
}

TEST(AnalyzerTest, UnboundNegatedVariable) {
  AnalysisReport report = Analyze("p(X) :- q(X), not r(X, Z).");
  const Diagnostic& d = First(report, "safety/unbound-negated-variable");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("Z"), std::string::npos);
}

TEST(AnalyzerTest, UnboundComparisonVariable) {
  AnalysisReport report = Analyze("p(X) :- q(X), Z < 3.");
  EXPECT_TRUE(Has(report, "safety/unbound-comparison-variable"));
}

TEST(AnalyzerTest, UnboundAssignmentOperand) {
  AnalysisReport report = Analyze("p(X, Y) :- q(X), Y = W + 1.");
  const Diagnostic& d = First(report, "safety/unbound-assignment-operand");
  EXPECT_NE(d.message.find("W"), std::string::npos);
}

TEST(AnalyzerTest, NongroundFact) {
  AnalysisReport report = Analyze("p(X).");
  EXPECT_TRUE(Has(report, "safety/nonground-fact"));
  // The fact path must not double-report the head variable.
  EXPECT_FALSE(Has(report, "safety/unbound-head-variable"));
}

TEST(AnalyzerTest, AggregateInBody) {
  // The grammar keeps aggregates out of bodies, so this state is only
  // reachable through a programmatically built AST.
  Rule rule;
  rule.head.predicate = "p";
  rule.head.terms.push_back(Term::Variable("X"));
  Atom body_atom;
  body_atom.predicate = "q";
  body_atom.terms.push_back(Term::Variable("X"));
  body_atom.terms.push_back(Term::Aggregate(AggFunc::kCount, "Y"));
  rule.body.push_back(Literal::Positive(std::move(body_atom)));
  Program program;
  program.rules.push_back(std::move(rule));

  AnalysisReport report = ProgramAnalyzer().Analyze(program);
  EXPECT_TRUE(Has(report, "safety/aggregate-in-body")) << report.ToString();
}

TEST(AnalyzerTest, SafePrgramHasNoSafetyErrors) {
  AnalysisReport report = Analyze(
      "p(X, S) :- q(X, Y), r(Y), S = X + Y, X < 10, not bad(X).\n");
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
}

// ---------------------------------------------------------------------
// stratification/*
// ---------------------------------------------------------------------

TEST(AnalyzerTest, NegativeCycleReportsPredicatePath) {
  AnalysisReport report = Analyze(
      "p(X) :- q(X), not r(X).\n"
      "r(X) :- q(X), not p(X).\n");
  const Diagnostic& d = First(report, "stratification/negative-cycle");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("->"), std::string::npos);
  EXPECT_NE(d.message.find("p"), std::string::npos);
  EXPECT_NE(d.message.find("r"), std::string::npos);
  // Anchored at a negated literal inside the cycle.
  EXPECT_TRUE(d.pos.known());
  EXPECT_GE(d.rule_index, 0);
}

TEST(AnalyzerTest, AggregateRecursionIsNegativeCycle) {
  AnalysisReport report = Analyze("p(X, count<Y>) :- p(X, Y).");
  EXPECT_TRUE(Has(report, "stratification/negative-cycle"));
}

TEST(AnalyzerTest, StratifiedProgramHasNoCycleDiagnostic) {
  AnalysisReport report = Analyze(
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), not reach(X).\n");
  EXPECT_FALSE(Has(report, "stratification/negative-cycle"));
}

// ---------------------------------------------------------------------
// wardedness/*
// ---------------------------------------------------------------------

TEST(AnalyzerTest, PlainProgramIsWarded) {
  AnalysisReport report = Analyze("p(X) :- q(X).");
  EXPECT_EQ(report.warded_class, WardedClass::kWarded);
  // No invented values anywhere: no classification note either.
  EXPECT_FALSE(Has(report, "wardedness/classification"));
}

TEST(AnalyzerTest, InventedValueConfinedToOneAtomStaysWarded) {
  AnalysisReport report = Analyze(
      "a(S) :- src(X), S = X + 1.\n"
      "use(S, Y) :- a(S), src(Y).\n");
  EXPECT_EQ(report.warded_class, WardedClass::kWarded);
  EXPECT_TRUE(Has(report, "wardedness/classification"));
  EXPECT_FALSE(Has(report, "wardedness/dangerous-join"));
}

TEST(AnalyzerTest, DangerousJoinIsFlaggedUnrestricted) {
  AnalysisReport report = Analyze(
      "a(S) :- src(X), S = X + 1.\n"
      "b(S) :- src(X), S = X * 2.\n"
      "j(S) :- a(S), b(S).\n");
  const Diagnostic& d = First(report, "wardedness/dangerous-join");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.rule_index, 2);
  EXPECT_NE(d.message.find("S"), std::string::npos);
  EXPECT_EQ(report.warded_class, WardedClass::kUnrestricted);
}

TEST(AnalyzerTest, DangerousVarsWithoutCommonWardAreShy) {
  AnalysisReport report = Analyze(
      "a(S) :- src(X), S = X + 1.\n"
      "b(T) :- src(X), T = X + 1.\n"
      "j(S, T) :- a(S), b(T).\n");
  EXPECT_TRUE(Has(report, "wardedness/no-single-ward"));
  EXPECT_FALSE(Has(report, "wardedness/dangerous-join"));
  EXPECT_EQ(report.warded_class, WardedClass::kShy);
}

TEST(AnalyzerTest, AggregateOutputIsAnAffectedPosition) {
  AnalysisReport report = Analyze(
      "cnt(X, count<Y>) :- e(X, Y).\n"
      "big(C) :- cnt(_X, C), threshold(C).\n");
  // C is bound at cnt position 1 (affected) and threshold position 0
  // (harmless EDB) -> not dangerous, program stays warded.
  EXPECT_EQ(report.warded_class, WardedClass::kWarded);
  EXPECT_TRUE(Has(report, "wardedness/classification"));
}

// ---------------------------------------------------------------------
// catalog/*
// ---------------------------------------------------------------------

PredicateCatalog PersonCatalog() {
  PredicateCatalog catalog;
  catalog.DeclareSchema(Schema("person", {Attribute{"name", AttributeType::kString},
                                          Attribute{"age", AttributeType::kInt}}));
  return catalog;
}

TEST(AnalyzerTest, ArityMismatchAgainstCatalog) {
  PredicateCatalog catalog = PersonCatalog();
  AnalysisReport report = Analyze("adult(N) :- person(N, A, Z).", {}, &catalog);
  const Diagnostic& d = First(report, "catalog/arity-mismatch");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("arity 3"), std::string::npos);
  EXPECT_NE(d.message.find("arity 2"), std::string::npos);
}

TEST(AnalyzerTest, TypeMismatchOnTypedConstant) {
  PredicateCatalog catalog = PersonCatalog();
  AnalysisReport report =
      Analyze("named(N) :- person(N, \"young\").", {}, &catalog);
  const Diagnostic& d = First(report, "catalog/type-mismatch");
  EXPECT_NE(d.message.find("age"), std::string::npos);
  EXPECT_NE(d.message.find("int"), std::string::npos);
}

TEST(AnalyzerTest, CompatibleUseIsClean) {
  PredicateCatalog catalog = PersonCatalog();
  AnalysisReport report =
      Analyze("adult(N) :- person(N, A), A >= 18.", {}, &catalog);
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
}

TEST(AnalyzerTest, UnknownPredicatePolicyLevels) {
  PredicateCatalog catalog = PersonCatalog();
  const std::string src = "out(N) :- person(N, _A), mystery(N).";

  AnalyzerOptions warn;
  warn.unknown_predicates = UnknownPredicatePolicy::kWarn;
  EXPECT_EQ(First(Analyze(src, warn, &catalog), "catalog/unknown-predicate")
                .severity,
            Severity::kWarning);

  AnalyzerOptions error;
  error.unknown_predicates = UnknownPredicatePolicy::kError;
  EXPECT_EQ(First(Analyze(src, error, &catalog), "catalog/unknown-predicate")
                .severity,
            Severity::kError);

  AnalyzerOptions ignore;
  ignore.unknown_predicates = UnknownPredicatePolicy::kIgnore;
  EXPECT_FALSE(Has(Analyze(src, ignore, &catalog), "catalog/unknown-predicate"));
}

TEST(AnalyzerTest, DerivedPredicatesAreNeverUnknown) {
  PredicateCatalog catalog = PersonCatalog();
  AnalyzerOptions options;
  options.unknown_predicates = UnknownPredicatePolicy::kError;
  AnalysisReport report = Analyze(
      "helper(N) :- person(N, _A).\n"
      "out(N) :- helper(N).\n",
      options, &catalog);
  EXPECT_FALSE(Has(report, "catalog/unknown-predicate")) << report.ToString();
}

TEST(AnalyzerTest, SystemRelationsCatalogChecksControlRelations) {
  PredicateCatalog catalog = PredicateCatalog::SystemRelations();
  AnalysisReport report =
      Analyze("ready() :- sys_relation_nonempty(X, Y).", {}, &catalog);
  EXPECT_TRUE(Has(report, "catalog/arity-mismatch"));
  AnalysisReport typed =
      Analyze("ready() :- sys_relation_nonempty(42).", {}, &catalog);
  EXPECT_TRUE(Has(typed, "catalog/type-mismatch"));
}

// ---------------------------------------------------------------------
// lint/* and goal/*
// ---------------------------------------------------------------------

TEST(AnalyzerTest, SingletonVariableWarnsUnlessUnderscored) {
  AnalysisReport report = Analyze("p(X) :- q(X, Y).");
  const Diagnostic& d = First(report, "lint/singleton-variable");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("Y"), std::string::npos);

  AnalysisReport clean = Analyze("p(X) :- q(X, _Y).");
  EXPECT_FALSE(Has(clean, "lint/singleton-variable"));
}

TEST(AnalyzerTest, DuplicateRule) {
  AnalysisReport report = Analyze(
      "p(X) :- q(X), r(X).\n"
      "p(X) :- q(X), r(X).\n");
  const Diagnostic& d = First(report, "lint/duplicate-rule");
  EXPECT_EQ(d.rule_index, 1);
  EXPECT_NE(d.message.find("rule 0"), std::string::npos);
}

TEST(AnalyzerTest, ShadowedConstant) {
  AnalysisReport report = Analyze(
      "active(X) :- status(X, \"active\"), flag(X).\n"
      "flag(X) :- input(X, flag).\n");
  // Both "active" and the bare identifier `flag` collide with predicates
  // the program derives; pin the bare-identifier case, the likelier typo.
  bool flag_reported = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.check_id == "lint/shadowed-constant" &&
        d.message.find("\"flag\"") != std::string::npos) {
      flag_reported = true;
    }
  }
  EXPECT_TRUE(flag_reported) << report.ToString();
}

TEST(AnalyzerTest, GoalUndefined) {
  AnalyzerOptions options;
  options.goal_predicate = "ready";
  AnalysisReport report = Analyze("go() :- src(_X).", options);
  const Diagnostic& d = First(report, "goal/undefined");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("ready"), std::string::npos);
}

TEST(AnalyzerTest, UnreachableRuleUnderGoal) {
  AnalyzerOptions options;
  options.goal_predicate = "ready";
  AnalysisReport report = Analyze(
      "ready() :- src(_X).\n"
      "stray(X) :- other(X), use(X).\n"
      "use(X) :- other(X).\n",
      options);
  const Diagnostic& d = First(report, "lint/unreachable-rule");
  EXPECT_NE(d.message.find("stray"), std::string::npos);
  // `use` feeds only stray, so it is unreachable too.
  bool use_flagged = false;
  for (const Diagnostic& diag : report.diagnostics) {
    if (diag.check_id == "lint/unreachable-rule" &&
        diag.message.find("use") != std::string::npos) {
      use_flagged = true;
    }
  }
  EXPECT_TRUE(use_flagged) << report.ToString();
}

TEST(AnalyzerTest, UnusedPredicateInfoWithoutGoal) {
  AnalysisReport report = Analyze(
      "helper(X) :- src(X).\n"
      "out(X) :- helper(X).\n"
      "orphan(X) :- src(X), helper(X).\n");
  const Diagnostic& d = First(report, "lint/unused-predicate");
  EXPECT_EQ(d.severity, Severity::kInfo);
  // `out` and `orphan` are both sinks; `helper` is used.
  for (const Diagnostic& diag : report.diagnostics) {
    if (diag.check_id == "lint/unused-predicate") {
      EXPECT_EQ(diag.message.find("helper"), std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------
// Report plumbing.
// ---------------------------------------------------------------------

TEST(AnalyzerTest, ReportToStatusSummarisesErrors) {
  AnalysisReport report = Analyze("p(X) :- q(Y).\nr(Z) :- s(W).\n");
  ASSERT_GE(report.error_count(), 2u);
  Status status = report.ToStatus("dependency of t1");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("dependency of t1"), std::string::npos);
  EXPECT_NE(status.message().find("more error"), std::string::npos);

  AnalysisReport clean = Analyze("p(X) :- q(X), r(X).");
  EXPECT_TRUE(clean.ToStatus("anything").ok());
}

TEST(AnalyzerTest, ReportToStringPutsErrorsFirst) {
  // Singleton warning comes from rule 0, the error from rule 1; rendered
  // output must still lead with the error.
  AnalysisReport report = Analyze(
      "a(X) :- b(X, Y).\n"
      "c(Z) :- b(_U, _V).\n");
  std::string rendered = report.ToString();
  size_t error_at = rendered.find("error [");
  size_t warning_at = rendered.find("warning [");
  ASSERT_NE(error_at, std::string::npos);
  ASSERT_NE(warning_at, std::string::npos);
  EXPECT_LT(error_at, warning_at);
}

TEST(AnalyzerTest, CheckFamiliesCanBeDisabled) {
  AnalyzerOptions options;
  options.check_safety = false;
  options.check_lint = false;
  AnalysisReport report = Analyze("p(X) :- q(Y).", options);
  EXPECT_FALSE(Has(report, "safety/unbound-head-variable"));
  EXPECT_FALSE(Has(report, "lint/singleton-variable"));
}

// ---------------------------------------------------------------------
// Property test: random (frequently ill-formed) programs never crash
// the analyzer, and any program the validating parser rejects for
// safety must carry at least one analyzer error.
// ---------------------------------------------------------------------

std::string RandomProgram(Rng* rng) {
  const std::vector<std::string> preds = {"p", "q", "r", "s", "t"};
  const std::vector<std::string> vars = {"X", "Y", "Z", "W"};
  std::string src;
  const int rules = static_cast<int>(rng->UniformInt(1, 5));
  for (int r = 0; r < rules; ++r) {
    const std::string& head = preds[rng->Index(preds.size())];
    const int head_arity = static_cast<int>(rng->UniformInt(0, 3));
    src += head + "(";
    for (int i = 0; i < head_arity; ++i) {
      if (i > 0) src += ", ";
      if (rng->Bernoulli(0.15)) {
        src += "count<" + vars[rng->Index(vars.size())] + ">";
      } else {
        src += vars[rng->Index(vars.size())];
      }
    }
    src += ")";
    const int body = static_cast<int>(rng->UniformInt(0, 3));
    for (int l = 0; l < body; ++l) {
      src += l == 0 ? " :- " : ", ";
      const double kind = rng->UniformDouble();
      if (kind < 0.55) {
        if (rng->Bernoulli(0.3)) src += "not ";
        src += preds[rng->Index(preds.size())] + "(" +
               vars[rng->Index(vars.size())] + ", " +
               vars[rng->Index(vars.size())] + ")";
      } else if (kind < 0.8) {
        src += vars[rng->Index(vars.size())] + " < " +
               std::to_string(rng->UniformInt(0, 9));
      } else {
        src += vars[rng->Index(vars.size())] + " = " +
               vars[rng->Index(vars.size())] + " + 1";
      }
    }
    src += ".\n";
  }
  return src;
}

TEST(AnalyzerPropertyTest, NeverCrashesAndNeverPassesUnsafePrograms) {
  Rng rng(20260805);
  const PredicateCatalog system = PredicateCatalog::SystemRelations();
  int parsed = 0;
  int unsafe = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const std::string src = RandomProgram(&rng);
    // Must never crash, whatever the input.
    AnalysisReport report =
        ProgramAnalyzer().AnalyzeSource(src, &system);

    Result<Program> unvalidated = Parser::ParseUnvalidated(src);
    if (!unvalidated.ok()) {
      // Grammar-level failure: the analyzer must agree it cannot parse.
      EXPECT_TRUE(Has(report, "parse/error")) << src;
      continue;
    }
    ++parsed;
    // The evaluator's own gate is Program::Validate (what Parser::Parse
    // enforces). Anything it rejects must be an analyzer error too.
    if (!unvalidated.value().Validate().ok()) {
      ++unsafe;
      EXPECT_GT(report.error_count(), 0u)
          << "analyzer passed a program the evaluator rejects:\n"
          << src << unvalidated.value().Validate().ToString();
    }
  }
  // The generator must actually exercise both sides of the contract.
  EXPECT_GT(parsed, 100);
  EXPECT_GT(unsafe, 50);
}

}  // namespace
}  // namespace vada::datalog::analysis
