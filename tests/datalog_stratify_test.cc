#include <gtest/gtest.h>

#include <set>

#include "datalog/parser.h"
#include "datalog/stratify.h"

namespace vada::datalog {
namespace {

Program MustParse(const std::string& src) {
  Result<Program> p = Parser::Parse(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(StratifyTest, SingleRecursivePredicateOneStratum) {
  Program p = MustParse(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n");
  Result<Stratification> s = Stratify(p);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_EQ(s.value().strata.size(), 1u);
  EXPECT_EQ(s.value().strata[0], (std::vector<std::string>{"tc"}));
}

TEST(StratifyTest, NegationForcesHigherStratum) {
  Program p = MustParse(
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), not reach(X).\n");
  Result<Stratification> s = Stratify(p);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_LT(s.value().stratum_of.at("reach"),
            s.value().stratum_of.at("unreach"));
}

TEST(StratifyTest, AggregationForcesHigherStratum) {
  Program p = MustParse(
      "r(X, Y) :- e(X, Y).\n"
      "cnt(X, count<Y>) :- r(X, Y).\n");
  Result<Stratification> s = Stratify(p);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_LT(s.value().stratum_of.at("r"), s.value().stratum_of.at("cnt"));
}

TEST(StratifyTest, NegationInCycleRejected) {
  Program p = MustParse(
      "p(X) :- q(X), not r(X).\n"
      "r(X) :- q(X), not p(X).\n");
  Result<Stratification> s = Stratify(p);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("not stratifiable"), std::string::npos);
}

TEST(StratifyTest, ErrorNamesTheOffendingPredicatesAndPath) {
  Program p = MustParse(
      "p(X) :- q(X), not r(X).\n"
      "r(X) :- q(X), not p(X).\n");
  Result<Stratification> s = Stratify(p);
  ASSERT_FALSE(s.ok());
  const std::string& msg = s.status().message();
  EXPECT_NE(msg.find("p"), std::string::npos) << msg;
  EXPECT_NE(msg.find("r"), std::string::npos) << msg;
  EXPECT_NE(msg.find(" -> "), std::string::npos) << msg;
}

TEST(StratifyTest, NegativeCycleOutParamClosesTheLoop) {
  Program p = MustParse(
      "a(X) :- e(X), not c(X).\n"
      "b(X) :- a(X).\n"
      "c(X) :- b(X).\n");
  std::vector<std::string> cycle;
  Result<Stratification> s = Stratify(p, &cycle);
  ASSERT_FALSE(s.ok());
  // Path visits every cycle member and repeats the start at the end.
  ASSERT_GE(cycle.size(), 2u);
  EXPECT_EQ(cycle.front(), cycle.back());
  std::set<std::string> members(cycle.begin(), cycle.end());
  EXPECT_EQ(members, (std::set<std::string>{"a", "b", "c"}));
}

TEST(StratifyTest, SelfNegationCycleHasLengthTwoPath) {
  Program p = MustParse("p(X) :- q(X), not p(X).\n");
  std::vector<std::string> cycle;
  Result<Stratification> s = Stratify(p, &cycle);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(cycle, (std::vector<std::string>{"p", "p"}));
}

TEST(StratifyTest, CycleOutParamUntouchedOnSuccess) {
  Program p = MustParse("p(X) :- q(X).\n");
  std::vector<std::string> cycle = {"sentinel"};
  ASSERT_TRUE(Stratify(p, &cycle).ok());
  EXPECT_EQ(cycle, (std::vector<std::string>{"sentinel"}));
}

TEST(StratifyTest, AggregateInCycleRejected) {
  Program p = MustParse("p(X, count<Y>) :- p(X, Y).\n");
  EXPECT_FALSE(Stratify(p).ok());
}

TEST(StratifyTest, MutualRecursionSharesStratum) {
  Program p = MustParse(
      "even(X) :- zero(X).\n"
      "even(Y) :- odd(X), succ(X, Y).\n"
      "odd(Y) :- even(X), succ(X, Y).\n");
  Result<Stratification> s = Stratify(p);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s.value().stratum_of.at("even"), s.value().stratum_of.at("odd"));
}

TEST(StratifyTest, TopologicalOrderAcrossStrata) {
  Program p = MustParse(
      "a(X) :- e(X).\n"
      "b(X) :- a(X).\n"
      "c(X) :- b(X), not a(X).\n");
  Result<Stratification> s = Stratify(p);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  // a before b before c.
  EXPECT_LT(s.value().stratum_of.at("a"), s.value().stratum_of.at("b"));
  EXPECT_LT(s.value().stratum_of.at("b"), s.value().stratum_of.at("c"));
}

TEST(StratifyTest, EdbOnlyProgramHasNoStrataForEdb) {
  Program p = MustParse("p(X) :- q(X).\n");
  Result<Stratification> s = Stratify(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().stratum_of.count("q"), 0u);
  EXPECT_EQ(s.value().stratum_of.count("p"), 1u);
}

TEST(StratifyTest, DoubleNegationChainGetsThreeLevels) {
  Program p = MustParse(
      "a(X) :- e(X).\n"
      "b(X) :- e(X), not a(X).\n"
      "c(X) :- e(X), not b(X).\n");
  Result<Stratification> s = Stratify(p);
  ASSERT_TRUE(s.ok());
  EXPECT_LT(s.value().stratum_of.at("a"), s.value().stratum_of.at("b"));
  EXPECT_LT(s.value().stratum_of.at("b"), s.value().stratum_of.at("c"));
}

}  // namespace
}  // namespace vada::datalog
