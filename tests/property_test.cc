#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "context/ahp.h"
#include "fusion/dedup.h"
#include "fusion/fuser.h"
#include "kb/csv.h"
#include "kb/persistence.h"
#include "quality/cfd.h"

namespace vada {
namespace {

/// Property: AHP recovers the generating weights from any perfectly
/// consistent matrix (a_ij = w_i / w_j), for random weights and sizes.
class AhpRecovery : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, AhpRecovery, ::testing::Range(0, 10));

TEST_P(AhpRecovery, ConsistentMatrixRecoversWeights) {
  Rng rng(GetParam());
  size_t n = static_cast<size_t>(rng.UniformInt(2, 8));
  std::vector<double> w(n);
  double sum = 0.0;
  for (double& v : w) {
    v = 0.05 + rng.UniformDouble();
    sum += v;
  }
  for (double& v : w) v /= sum;
  std::vector<std::vector<double>> m(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m[i][j] = w[i] / w[j];
  }
  Result<AhpResult> r = ComputeAhp(m);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r.value().weights[i], w[i], 1e-6) << "seed " << GetParam();
  }
  EXPECT_NEAR(r.value().consistency_ratio, 0.0, 1e-6);
}

/// Property: perturbing a consistent matrix raises lambda_max (and thus
/// the consistency ratio) — CR is a genuine inconsistency detector.
TEST(AhpPropertyTest, PerturbationRaisesConsistencyRatio) {
  std::vector<std::vector<double>> m = {
      {1.0, 2.0, 4.0}, {0.5, 1.0, 2.0}, {0.25, 0.5, 1.0}};
  double base_cr = ComputeAhp(m).value().consistency_ratio;
  m[0][2] = 9.0;  // now inconsistent with m[0][1] * m[1][2] = 4
  m[2][0] = 1.0 / 9.0;
  double perturbed_cr = ComputeAhp(m).value().consistency_ratio;
  EXPECT_GT(perturbed_cr, base_cr + 0.01);
}

/// Property: CSV round-trip preserves every relation built from random
/// typed values (via the typed persistence codec, which is lossless).
class PersistenceFuzz : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceFuzz, ::testing::Range(0, 8));

Value RandomValue(Rng* rng) {
  switch (rng->UniformInt(0, 4)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng->Bernoulli(0.5));
    case 2:
      return Value::Int(rng->UniformInt(-1000000, 1000000));
    case 3:
      return Value::Double(rng->Gaussian(0, 100.0));
    default: {
      std::string s;
      size_t len = rng->Index(12);
      for (size_t i = 0; i < len; ++i) {
        // Hostile alphabet: quotes, commas, newlines, digits, backslash.
        const char alphabet[] = "ab\"\\,\n\r 0123456789.eE-";
        s += alphabet[rng->Index(sizeof(alphabet) - 1)];
      }
      return Value::String(std::move(s));
    }
  }
}

TEST_P(PersistenceFuzz, RandomKbRoundTrips) {
  Rng rng(1000 + GetParam());
  KnowledgeBase kb;
  size_t num_relations = 1 + rng.Index(3);
  for (size_t r = 0; r < num_relations; ++r) {
    std::string name = "rel" + std::to_string(r);
    size_t arity = 1 + rng.Index(4);
    std::vector<std::string> attrs;
    for (size_t a = 0; a < arity; ++a) {
      attrs.push_back("a" + std::to_string(a));
    }
    ASSERT_TRUE(kb.CreateRelation(Schema::Untyped(name, attrs)).ok());
    size_t rows = rng.Index(20);
    for (size_t i = 0; i < rows; ++i) {
      std::vector<Value> cells;
      for (size_t a = 0; a < arity; ++a) cells.push_back(RandomValue(&rng));
      ASSERT_TRUE(kb.Insert(name, Tuple(std::move(cells))).ok());
    }
  }
  std::string dir = testing::TempDir() + "/vada_fuzz_" +
                    std::to_string(GetParam());
  ASSERT_TRUE(SaveKnowledgeBase(kb, dir).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const std::string& name : kb.RelationNames()) {
    EXPECT_EQ(loaded.value().FindRelation(name)->SortedRows(),
              kb.FindRelation(name)->SortedRows())
        << name << " seed " << GetParam();
  }
}

/// Property: fusion never invents values — every non-null fused cell
/// appears in some member of its cluster.
class FusionConservatism : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FusionConservatism, ::testing::Range(0, 8));

TEST_P(FusionConservatism, FusedValuesComeFromInputs) {
  Rng rng(77 + GetParam());
  Relation rel(Schema::Untyped("r", {"a", "b", "c"}));
  for (int i = 0; i < 40; ++i) {
    std::vector<Value> cells;
    for (int c = 0; c < 3; ++c) {
      cells.push_back(rng.Bernoulli(0.2)
                          ? Value::Null()
                          : Value::Int(rng.UniformInt(0, 5)));
    }
    rel.InsertUnchecked(Tuple(std::move(cells)));
  }
  // Random clustering.
  DuplicateClusters clusters;
  clusters.num_clusters = 5;
  for (size_t r = 0; r < rel.size(); ++r) {
    clusters.cluster_of.push_back(rng.Index(5));
  }
  std::set<size_t> used(clusters.cluster_of.begin(),
                        clusters.cluster_of.end());
  // Densify cluster ids (Fuse expects ids < num_clusters, which holds).
  Fuser fuser;
  Result<Relation> fused = fuser.Fuse(rel, clusters, "out");
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ(fused.value().size(), used.size());
  // Every fused value exists somewhere in the inputs of its column.
  for (const Tuple& row : fused.value().rows()) {
    for (size_t c = 0; c < 3; ++c) {
      if (row.at(c).is_null()) continue;
      bool found = false;
      for (const Tuple& in : rel.rows()) {
        if (in.at(c) == row.at(c)) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

/// Property: CFD repair converges in one pass (second repair is a no-op)
/// on random corruptions of FD-clean data.
class RepairConvergence : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RepairConvergence, ::testing::Range(0, 6));

TEST_P(RepairConvergence, SecondRepairIsNoop) {
  Rng rng(31 + GetParam());
  // Clean data: key -> value FD.
  Relation evidence(Schema::Untyped("e", {"id", "key", "value"}));
  for (int i = 0; i < 40; ++i) {
    int key = i % 8;
    evidence.InsertUnchecked(Tuple({Value::Int(i), Value::Int(key),
                                    Value::Int(key * 100)}));
  }
  CfdLearnerOptions opts;
  opts.min_support_count = 2;
  opts.try_pairs = false;
  std::vector<Cfd> cfds = CfdLearner(opts).Learn(evidence);
  ASSERT_FALSE(cfds.empty());

  // Corrupt some values.
  Relation dirty(evidence.schema());
  for (const Tuple& row : evidence.rows()) {
    Tuple copy = row;
    if (rng.Bernoulli(0.25)) copy[2] = Value::Int(rng.UniformInt(0, 9999));
    dirty.InsertUnchecked(std::move(copy));
  }
  CfdChecker checker(cfds, &evidence);
  ASSERT_TRUE(checker.Repair(&dirty).ok());
  Result<size_t> second = checker.Repair(&dirty);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 0u) << "seed " << GetParam();
}

}  // namespace
}  // namespace vada
