#ifndef VADA_BENCH_BENCH_UTIL_H_
#define VADA_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "extract/open_government.h"
#include "extract/real_estate.h"
#include "kb/schema.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"

namespace vada::bench {

/// Milliseconds elapsed while running `fn`.
template <typename Fn>
double TimeMs(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Fixed-width table printer for experiment output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t i = 0; i < headers_.size(); ++i) {
      widths[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    auto print_row = [&widths](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t i = 0; i < widths.size(); ++i) {
        std::printf(" %-*s |", static_cast<int>(widths[i]),
                    i < row.size() ? row[i].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t w : widths) {
      std::printf("%s|", std::string(w + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 3) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Machine-readable bench output: collects named scalar results (wall
/// times, ns/op, counters) and writes them as BENCH_<name>.json so every
/// bench run extends the perf trajectory. Values keep insertion order.
///
///   BenchReport report("orchestration");
///   report.Add("bootstrap_ms", boot_ms);
///   report.AddNsPerOp("step_ns_per_op", boot_ms, stats.steps);
///   report.AddSnapshot(session.MetricsReport().snapshot);
///   report.WriteJson();  // honours $VADA_BENCH_DIR, defaults to cwd
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) {
    entries_.push_back({key, value});
  }

  /// Records `total_ms` over `iterations` as nanoseconds per operation.
  void AddNsPerOp(const std::string& key, double total_ms, size_t iterations) {
    if (iterations == 0) return;
    Add(key, total_ms * 1e6 / static_cast<double>(iterations));
  }

  /// Folds a metrics snapshot in: counters and gauges by name (labels
  /// joined with '/'), histograms as <name>_count.
  void AddSnapshot(const obs::MetricsSnapshot& snapshot) {
    for (const obs::MetricSample& s : snapshot.samples) {
      std::string key = s.name;
      for (const auto& [k, v] : s.labels) key += "/" + v;
      if (s.kind == obs::MetricKind::kHistogram) {
        Add(key + "_count", static_cast<double>(s.count));
      } else {
        Add(key, s.value);
      }
    }
  }

  /// Writes BENCH_<name>.json into $VADA_BENCH_DIR (default: cwd).
  /// Returns false (after a warning) when the file cannot be written —
  /// benches still print their human-readable tables regardless.
  /// Every report is stamped with the run's peak RSS and the machine's
  /// hardware thread count, so perf-trajectory numbers can be compared
  /// across hosts and memory regressions show up next to the timings.
  bool WriteJson() const {
    const char* dir = std::getenv("VADA_BENCH_DIR");
    std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
        "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::vector<std::pair<std::string, double>> entries = entries_;
    entries.emplace_back(
        "peak_rss_bytes",
        static_cast<double>(obs::SampleProcessMemory().peak_rss_bytes));
    entries.emplace_back(
        "hardware_threads",
        static_cast<double>(std::thread::hardware_concurrency()));
    out << "{\"bench\":\"" << obs::JsonEscape(name_) << "\",\"entries\":{";
    bool first = true;
    for (const auto& [key, value] : entries) {
      if (!first) out << ",";
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      out << "\"" << obs::JsonEscape(key) << "\":" << buf;
    }
    out << "}}\n";
    std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> entries_;
};

/// The paper's target schema (Figure 2(b)).
inline Schema PaperTargetSchema() {
  return Schema::Untyped("property", {"type", "description", "street",
                                      "postcode", "bedrooms", "price",
                                      "crimerank"});
}

/// A standard demonstration-scale scenario instance.
struct Scenario {
  GroundTruth truth;
  Relation rightmove{Schema()};
  Relation onthemarket{Schema()};
  Relation deprivation{Schema()};
  Relation address{Schema()};
};

inline Scenario MakeScenario(uint64_t seed, size_t properties = 300,
                             size_t postcodes = 40) {
  Scenario s;
  PropertyUniverseOptions uopts;
  uopts.num_properties = properties;
  uopts.num_postcodes = postcodes;
  uopts.seed = seed;
  s.truth = GeneratePropertyUniverse(uopts);
  // Asymmetric extraction quality: rightmove's wrapper has the paper's
  // bedroom-area bug much more often than onthemarket's. Feedback on
  // wrong bedroom counts can then do its job — shift trust between
  // sources — rather than condemning the attribute everywhere.
  ExtractionErrorOptions rm;
  rm.seed = seed * 31 + 1;
  rm.coverage = 0.75;
  rm.bedrooms_area_rate = 0.18;
  s.rightmove = ExtractRightmove(s.truth, rm);
  ExtractionErrorOptions otm;
  otm.seed = seed * 31 + 2;
  otm.coverage = 0.6;
  otm.bedrooms_area_rate = 0.04;
  s.onthemarket = ExtractOnthemarket(s.truth, otm);
  s.deprivation = GenerateDeprivation(s.truth);
  s.address = GenerateAddressReference(s.truth);
  return s;
}

}  // namespace vada::bench

#endif  // VADA_BENCH_BENCH_UTIL_H_
