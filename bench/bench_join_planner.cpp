// Experiment J1 (extension beyond the paper): join-planner
// effectiveness. Composite hash-index probing plus cost-based literal
// reordering (DESIGN.md §5f) against the full-scan, legacy-order oracle
// ({indexes = false, reorder = false}) on recursive Datalog workloads
// and on the full wrangling scenario.
//
// "Join work" is EvalStats::join_probes + index_probes +
// index_candidates — every candidate fact touched plus every hash
// lookup — so the reduction factor is a machine-independent measure of
// how much of the join space the planner skips.
//
// Expected shape: on multi-way joins the indexed path replaces
// candidate-set scans with exact-match bucket enumeration, cutting join
// work by well over an order of magnitude; wall time follows at the
// larger sizes. The scenario row (the bench_scale workload) must show
// at least a 5x reduction.
#include <algorithm>
#include <string>

#include "bench/bench_util.h"
#include "datalog/analysis/dataflow/optimizer.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "wrangler/session.h"

namespace {

using namespace vada;
using namespace vada::bench;
using datalog::Database;
using datalog::EvalOptions;
using datalog::EvalStats;
using datalog::Evaluator;
using datalog::Parser;
using datalog::PlannerOptions;
using datalog::Program;

Database ChainDb(int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  return db;
}

Database GridDb(int side) {
  Database db;
  auto id = [side](int r, int c) { return Value::Int(r * side + c); };
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      if (c + 1 < side) db.Insert("edge", Tuple({id(r, c), id(r, c + 1)}));
      if (r + 1 < side) db.Insert("edge", Tuple({id(r, c), id(r + 1, c)}));
    }
  }
  return db;
}

/// Triangle counting over a random-ish graph: a three-way self-join
/// whose inner atoms have two bound positions — the case a composite
/// index serves and a single-column seek cannot.
Database TriangleDb(int nodes, int edges) {
  Database db;
  uint64_t state = 42;
  auto next = [&state](int mod) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int64_t>((state >> 33) % mod);
  };
  for (int i = 0; i < edges; ++i) {
    db.Insert("edge", Tuple({Value::Int(next(nodes)), Value::Int(next(nodes))}));
  }
  return db;
}

struct Measured {
  double ms = 0;
  size_t work = 0;     // join_probes + index_probes + index_candidates
  size_t results = 0;
  EvalStats stats;
};

Measured RunProgram(const Program& program, const Database& edb,
                    const PlannerOptions& planner, const char* goal) {
  Measured m;
  Database db = edb;
  EvalOptions opts;
  opts.planner = planner;
  Evaluator eval(program, opts);
  if (!eval.Prepare().ok()) return m;
  m.ms = TimeMs([&] { (void)eval.Run(&db, &m.stats); });
  m.work = m.stats.join_probes + m.stats.index_probes +
           m.stats.index_candidates;
  m.results = db.FactCount(goal);
  return m;
}

size_t SessionJoinWork(const obs::MetricsSnapshot& snapshot) {
  return static_cast<size_t>(
      snapshot.Value("vada_datalog_join_probes") +
      snapshot.Value("vada_datalog_index_probes_total") +
      snapshot.Value("vada_datalog_index_candidates_total"));
}

}  // namespace

int main() {
  std::printf("J1: join planner (composite indexes + reordering) vs "
              "full-scan oracle\n\n");
  BenchReport report("join_planner");
  Table table({"workload", "results", "oracle ms", "planner ms",
               "oracle work", "planner work", "work reduction"});

  const PlannerOptions oracle{.indexes = false, .reorder = false};
  const PlannerOptions planner;  // defaults: indexes + reorder on

  struct Workload {
    std::string name;
    std::string program;
    const char* goal;
    Database db;
  };
  Workload workloads[] = {
      {"tc_chain_256",
       "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).", "tc",
       ChainDb(256)},
      {"tc_grid_12",
       "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).", "tc",
       GridDb(12)},
      {"triangles_400",
       "tri(X, Y, Z) :- edge(X, Y), edge(Y, Z), edge(Z, X).", "tri",
       TriangleDb(60, 400)},
      {"two_col_join",
       "j(X, Y) :- edge(X, Y), edge(X, Z), edge(Z, Y).", "j",
       TriangleDb(80, 600)},
  };
  for (Workload& w : workloads) {
    Result<Program> program = Parser::Parse(w.program);
    if (!program.ok()) {
      std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                   program.status().ToString().c_str());
      continue;
    }
    Measured base = RunProgram(program.value(), w.db, oracle, w.goal);
    Measured fast = RunProgram(program.value(), w.db, planner, w.goal);
    double reduction =
        fast.work > 0 ? static_cast<double>(base.work) / fast.work : 0.0;
    if (base.results != fast.results) {
      std::fprintf(stderr, "%s: RESULT MISMATCH %zu vs %zu\n", w.name.c_str(),
                   base.results, fast.results);
    }
    table.AddRow({w.name, std::to_string(fast.results), Fmt(base.ms, 1),
                  Fmt(fast.ms, 1), std::to_string(base.work),
                  std::to_string(fast.work), Fmt(reduction, 1) + "x"});
    report.Add(w.name + "_oracle_work", static_cast<double>(base.work));
    report.Add(w.name + "_planner_work", static_cast<double>(fast.work));
    report.Add(w.name + "_work_reduction", reduction);
    report.Add(w.name + "_oracle_ms", base.ms);
    report.Add(w.name + "_planner_ms", fast.ms);
    report.Add(w.name + "_index_builds",
               static_cast<double>(fast.stats.index_builds));
  }

  // J2: the goal-directed ProgramOptimizer (DESIGN.md §5h) on bound
  // recursive queries, on top of the default planner. The baseline
  // evaluates the written program; the optimized run evaluates the
  // magic-set rewrite toward the goal (what Query does with
  // PlannerOptions::optimize), so join work only covers the demanded
  // slice of the recursion instead of the full transitive closure.
  std::printf("\nJ2: goal-directed optimizer (magic sets) vs planner alone\n\n");
  Table opt_table({"workload", "results", "planner ms", "optimized ms",
                   "planner work", "optimized work", "work reduction"});
  // Left-recursive tc keeps the bound source in the recursive call, so
  // the magic slice stays a single frontier; right-recursive tc would
  // demand every suffix and win nothing on a chain.
  Workload goal_workloads[] = {
      {"goal_tc_chain_256",
       "tc(X, Y) :- edge(X, Y). tc(X, Y) :- tc(X, Z), edge(Z, Y). "
       "q(Y) :- tc(1, Y).",
       "q", ChainDb(256)},
      {"goal_tc_grid_12",
       "tc(X, Y) :- edge(X, Y). tc(X, Y) :- tc(X, Z), edge(Z, Y). "
       "q(Y) :- tc(0, Y).",
       "q", GridDb(12)},
      {"goal_same_gen_chain_128",
       "sg(X, X) :- edge(X, Y). sg(X, Y) :- edge(A, X), sg(A, B), edge(B, Y). "
       "q(Y) :- sg(4, Y).",
       "q", ChainDb(128)},
  };
  double best_opt_reduction = 0.0;
  for (Workload& w : goal_workloads) {
    Result<Program> program = Parser::Parse(w.program);
    if (!program.ok()) {
      std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                   program.status().ToString().c_str());
      continue;
    }
    Measured base = RunProgram(program.value(), w.db, planner, w.goal);

    namespace dataflow = datalog::dataflow;
    dataflow::EdbSeeds seeds = dataflow::SeedsFromDatabase(w.db);
    dataflow::OptimizeResult optimized =
        dataflow::OptimizeProgram(program.value(), w.goal, seeds);
    Measured fast = RunProgram(optimized.program, w.db, planner, w.goal);
    double reduction =
        fast.work > 0 ? static_cast<double>(base.work) / fast.work : 0.0;
    best_opt_reduction = std::max(best_opt_reduction, reduction);
    if (base.results != fast.results) {
      std::fprintf(stderr, "%s: RESULT MISMATCH %zu vs %zu\n", w.name.c_str(),
                   base.results, fast.results);
    }
    if (!optimized.report.magic_applied) {
      std::fprintf(stderr, "%s: magic sets not applied (%s)\n", w.name.c_str(),
                   optimized.report.magic_fallback.c_str());
    }
    opt_table.AddRow({w.name, std::to_string(fast.results), Fmt(base.ms, 1),
                      Fmt(fast.ms, 1), std::to_string(base.work),
                      std::to_string(fast.work), Fmt(reduction, 1) + "x"});
    report.Add(w.name + "_planner_work", static_cast<double>(base.work));
    report.Add(w.name + "_optimized_work", static_cast<double>(fast.work));
    report.Add(w.name + "_work_reduction", reduction);
    report.Add(w.name + "_planner_ms", base.ms);
    report.Add(w.name + "_optimized_ms", fast.ms);
    report.Add(w.name + "_magic_rules",
               static_cast<double>(optimized.report.magic_rules));
  }
  opt_table.Print();

  // The bench_scale workload end to end: the full wrangling session over
  // the paper's demo scenario at 1000 properties, oracle vs planner.
  // This is the acceptance row: >= 5x join-work reduction.
  auto run_session = [](const PlannerOptions& p, size_t* work, size_t* rows) {
    Scenario sc = MakeScenario(4000, 1000, 100);
    WranglerConfig config;
    config.planner = p;
    WranglingSession session(config);
    Status s = session.SetTargetSchema(PaperTargetSchema());
    if (s.ok()) s = session.AddSource(sc.rightmove);
    if (s.ok()) s = session.AddSource(sc.onthemarket);
    if (s.ok()) s = session.AddSource(sc.deprivation);
    if (s.ok()) {
      s = session.AddDataContext(sc.address, RelationRole::kReference,
                                 {{"street", "street"},
                                  {"postcode", "postcode"}});
    }
    double ms = TimeMs([&] {
      if (s.ok()) s = session.Run();
    });
    if (!s.ok()) {
      std::fprintf(stderr, "scenario: %s\n", s.ToString().c_str());
      return 0.0;
    }
    *work = SessionJoinWork(session.MetricsReport().snapshot);
    *rows = session.result() != nullptr ? session.result()->size() : 0;
    return ms;
  };
  size_t base_work = 0, fast_work = 0, base_rows = 0, fast_rows = 0;
  double base_ms = run_session(oracle, &base_work, &base_rows);
  double fast_ms = run_session(planner, &fast_work, &fast_rows);
  double reduction =
      fast_work > 0 ? static_cast<double>(base_work) / fast_work : 0.0;
  if (base_rows != fast_rows) {
    std::fprintf(stderr, "scenario: RESULT MISMATCH %zu vs %zu\n", base_rows,
                 fast_rows);
  }
  table.AddRow({"scenario_1000", std::to_string(fast_rows), Fmt(base_ms, 0),
                Fmt(fast_ms, 0), std::to_string(base_work),
                std::to_string(fast_work), Fmt(reduction, 1) + "x"});
  report.Add("scenario_1000_oracle_work", static_cast<double>(base_work));
  report.Add("scenario_1000_planner_work", static_cast<double>(fast_work));
  report.Add("scenario_1000_work_reduction", reduction);
  report.Add("scenario_1000_oracle_ms", base_ms);
  report.Add("scenario_1000_planner_ms", fast_ms);

  table.Print();
  std::printf("\nscenario_1000 join-work reduction: %.1fx (target >= 5x)\n",
              reduction);
  std::printf("best optimizer join-work reduction: %.1fx (target >= 2x)\n",
              best_opt_reduction);
  report.WriteJson();
  return (reduction >= 5.0 && best_opt_reduction >= 2.0) ? 0 : 1;
}
