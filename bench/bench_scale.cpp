// Experiment S1 (extension beyond the paper): end-to-end scalability of
// the full wrangle — universe size vs wall time, with the per-activity
// split, so adopters can see where time goes as data grows.
//
// Expected shape: mapping execution (reasoner joins over source
// instances) dominates and grows roughly linearly with rows at these
// scales; orchestration overhead (dependency checks) grows with the
// number of relations, not with data volume.
#include <map>

#include "bench/bench_util.h"
#include "wrangler/session.h"

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("S1: end-to-end scalability\n\n");

  Table table({"properties", "source rows", "result rows", "steps",
               "dep checks", "total ms", "execution ms", "fusion ms"});
  for (size_t properties : {100, 300, 1000, 3000}) {
    Scenario sc = MakeScenario(3000 + properties, properties,
                               std::max<size_t>(12, properties / 10));
    WranglingSession session;
    Status s = session.SetTargetSchema(PaperTargetSchema());
    if (s.ok()) s = session.AddSource(sc.rightmove);
    if (s.ok()) s = session.AddSource(sc.onthemarket);
    if (s.ok()) s = session.AddSource(sc.deprivation);
    if (s.ok()) {
      s = session.AddDataContext(sc.address, RelationRole::kReference,
                                 {{"street", "street"},
                                  {"postcode", "postcode"}});
    }
    OrchestrationStats stats;
    double total_ms = TimeMs([&] {
      if (s.ok()) s = session.Run(&stats);
    });
    if (!s.ok()) {
      std::fprintf(stderr, "properties %zu: %s\n", properties,
                   s.ToString().c_str());
      continue;
    }
    std::map<std::string, double> per_activity;
    for (const TraceEvent& e : session.trace().events()) {
      per_activity[e.activity] += e.duration_ms;
    }
    size_t source_rows =
        sc.rightmove.size() + sc.onthemarket.size() + sc.deprivation.size();
    table.AddRow({std::to_string(properties), std::to_string(source_rows),
                  std::to_string(session.result()->size()),
                  std::to_string(stats.steps),
                  std::to_string(stats.dependency_checks), Fmt(total_ms, 0),
                  Fmt(per_activity["execution"], 0),
                  Fmt(per_activity["fusion"], 0)});
  }
  table.Print();
  return 0;
}
