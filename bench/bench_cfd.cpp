// Experiment E11 — CFD learning and repair ablation (§2.3, Table 1 "CFD
// Learning | Data Examples"): measures learning cost against reference
// size and repair effectiveness against the extraction error rate.
//
// Expected shape: repairs recover most corrupted postcodes whenever the
// reference data pins street -> postcode; repair precision stays high
// because repairs copy evidence values, and effectiveness degrades only
// when corruption also breaks the lhs (street) values.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "quality/cfd.h"

namespace {

using namespace vada;

/// Corrupts the postcode of a fraction of rows.
Relation Corrupt(const Relation& clean, double error_rate, uint64_t seed,
                 size_t* corrupted) {
  Rng rng(seed);
  size_t pc = *clean.schema().AttributeIndex("postcode");
  Relation out(clean.schema());
  *corrupted = 0;
  for (const Tuple& row : clean.rows()) {
    Tuple copy = row;
    if (!copy.at(pc).is_null() && rng.Bernoulli(error_rate)) {
      std::string v = copy.at(pc).ToString();
      v[rng.Index(v.size())] = static_cast<char>('A' + rng.UniformInt(0, 25));
      copy[pc] = Value::String(v);
      ++*corrupted;
    }
    out.InsertUnchecked(std::move(copy));
  }
  return out;
}

}  // namespace

int main() {
  using namespace vada::bench;

  std::printf("E11: CFD learning cost and repair effectiveness\n\n");

  // --- Learning cost vs reference size. ---
  std::printf("learning cost (street/city/postcode reference):\n");
  Table learn_table({"reference rows", "cfds learned", "ms"});
  for (size_t properties : {100, 400, 1600}) {
    Scenario sc = MakeScenario(900 + properties, properties,
                               std::max<size_t>(10, properties / 8));
    CfdLearnerOptions opts;
    opts.min_support_count = 3;
    CfdLearner learner(opts);
    std::vector<Cfd> cfds;
    double ms = TimeMs([&] { cfds = learner.Learn(sc.address); });
    learn_table.AddRow({std::to_string(sc.address.size()),
                        std::to_string(cfds.size()), Fmt(ms, 2)});
  }
  learn_table.Print();

  // --- Repair effectiveness vs error rate. ---
  std::printf("\nrepair effectiveness (street -> postcode violations):\n");
  Table repair_table({"error rate", "corrupted", "repaired", "correct after",
                      "repair precision"});
  Scenario sc = MakeScenario(1234, 600, 60);
  // The "dirty result": the truth's (street, postcode) pairs, corrupted.
  Relation clean = sc.truth.properties
                       .Project({"street", "city", "postcode"}, "result")
                       .value();
  CfdLearnerOptions lopts;
  lopts.min_support_count = 3;
  std::vector<Cfd> cfds = CfdLearner(lopts).Learn(sc.address);
  for (double rate : {0.05, 0.1, 0.2, 0.4}) {
    size_t corrupted = 0;
    Relation dirty = Corrupt(clean, rate, 5000 + static_cast<uint64_t>(
                                                    rate * 100),
                             &corrupted);
    CfdChecker checker(cfds, &sc.address);
    Relation repaired = dirty;
    Result<size_t> repairs = checker.Repair(&repaired);
    if (!repairs.ok()) {
      std::fprintf(stderr, "repair failed: %s\n",
                   repairs.status().ToString().c_str());
      continue;
    }
    // Count rows whose postcode matches the clean original again. Rows
    // are positionally comparable because Corrupt preserves order.
    size_t pc = *clean.schema().AttributeIndex("postcode");
    size_t correct = 0;
    size_t repaired_right = 0;
    size_t repaired_cells = 0;
    for (size_t r = 0; r < clean.size(); ++r) {
      bool was_wrong = !(dirty.rows()[r].at(pc) == clean.rows()[r].at(pc));
      bool now_right = repaired.rows()[r].at(pc) == clean.rows()[r].at(pc);
      if (now_right) ++correct;
      if (was_wrong && !(repaired.rows()[r].at(pc) == dirty.rows()[r].at(pc))) {
        ++repaired_cells;
        if (now_right) ++repaired_right;
      }
    }
    repair_table.AddRow(
        {Fmt(rate, 2), std::to_string(corrupted), std::to_string(*&repairs.value()),
         Fmt(static_cast<double>(correct) / clean.size()),
         repaired_cells == 0
             ? "n/a"
             : Fmt(static_cast<double>(repaired_right) / repaired_cells)});
  }
  repair_table.Print();
  std::printf(
      "\nexpected shape: repair precision ~1.0 at every error rate (the\n"
      "reference pins the expected value); post-repair correctness stays\n"
      "near 1.0 and degrades gently as corruption grows.\n");
  return 0;
}
