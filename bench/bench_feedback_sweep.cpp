// Experiment E6 — impact of feedback (§3 goal ii): sweeps the number of
// attribute-level annotations on wrong bedroom counts and reports the
// plausibility of bedrooms in the final result plus the evidence
// revisions that caused it.
//
// Paper claim (shape): flagging incorrect values "will enable some of the
// previous steps in the wrangling process to be revisited, giving rise to
// a revised result" — more feedback, fewer implausible bedrooms, with
// diminishing returns once the offending match is decisively penalised.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "wrangler/evaluation.h"
#include "wrangler/session.h"

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("E6: feedback sweep (annotations on wrong bedroom counts)\n\n");

  Table table({"annotations", "bedrooms_plausible", "penalized matches",
               "rows", "overall"});
  for (size_t budget : {size_t{0}, size_t{5}, size_t{10}, size_t{20},
                        size_t{40}}) {
    double plausible = 0.0;
    double penalized = 0.0;
    double rows = 0.0;
    double overall = 0.0;
    const int kSeeds = 3;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Scenario sc = MakeScenario(600 + seed, 250, 35);
      WranglingSession session;
      Status s = session.SetTargetSchema(PaperTargetSchema());
      if (s.ok()) s = session.AddSource(sc.rightmove);
      if (s.ok()) s = session.AddSource(sc.onthemarket);
      if (s.ok()) s = session.AddSource(sc.deprivation);
      if (s.ok()) {
        s = session.AddDataContext(sc.address, RelationRole::kReference,
                                   {{"street", "street"},
                                    {"postcode", "postcode"}});
      }
      if (s.ok()) s = session.Run();
      if (!s.ok()) continue;

      // The user inspects the result in arbitrary order (seeded shuffle)
      // and flags implausible bedroom counts, up to the annotation budget.
      const Relation* result = session.result();
      size_t bed = *result->schema().AttributeIndex("bedrooms");
      std::vector<Tuple> review_order = result->rows();
      Rng rng(seed * 13 + 1);
      rng.Shuffle(&review_order);
      size_t flagged = 0;
      for (const Tuple& row : review_order) {
        if (flagged >= budget) break;
        std::optional<double> v = row.at(bed).AsDouble();
        if (v.has_value() && *v > 8.0) {
          session.AddFeedback(
              FeedbackItem{row, "bedrooms", FeedbackPolarity::kIncorrect});
          ++flagged;
        }
      }
      if (flagged > 0) {
        s = session.Run();
        if (!s.ok()) continue;
      }

      ScenarioEvaluation eval = EvaluateScenario(*session.result(), sc.truth);
      plausible += eval.bedrooms_plausible_rate / kSeeds;
      rows += static_cast<double>(eval.rows) / kSeeds;
      overall += eval.overall / kSeeds;
      const Relation* pen = session.kb().FindRelation("match_penalty");
      penalized +=
          (pen == nullptr ? 0.0 : static_cast<double>(pen->size())) / kSeeds;
    }
    table.AddRow({std::to_string(budget), Fmt(plausible), Fmt(penalized, 1),
                  Fmt(rows, 1), Fmt(overall)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: bedrooms_plausible non-decreasing in the "
      "annotation budget; penalties appear as soon as feedback does.\n");
  return 0;
}
