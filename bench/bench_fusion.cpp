// Experiment E12 — duplicate detection + fusion ablation (§2: "a data
// fusion transducer may start to evaluate when duplicates have been
// detected"): measures pairwise dedup quality and fusion's null-filling
// as the overlap between the two portals grows.
//
// Expected shape: dedup recall/precision stay high across overlap rates;
// fused size tracks |union of distinct properties|; conflicts resolved
// and nulls filled grow with overlap.
#include <map>
#include <set>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "fusion/dedup.h"
#include "fusion/fuser.h"

namespace {

using namespace vada;

/// Builds a combined relation from two portal extractions over the same
/// universe, tagging each row with its true property id (kept outside the
/// relation) so dedup decisions can be scored.
struct Combined {
  Relation rel{Schema()};
  std::vector<int64_t> truth_id;  // parallel to rel rows
};

Combined CombinePortals(const GroundTruth& truth, double overlap,
                        uint64_t seed) {
  // Portal A covers `overlap + (1-overlap)/2`; portal B likewise from the
  // other side, so the expected co-listed fraction is `overlap`.
  ExtractionErrorOptions a_opts;
  a_opts.seed = seed;
  a_opts.coverage = 1.0;  // manual coverage below
  ExtractionErrorOptions b_opts;
  b_opts.seed = seed + 1;
  b_opts.coverage = 1.0;
  Relation a = ExtractRightmove(truth, a_opts);
  Relation b = ExtractRightmove(truth, b_opts);  // same schema: easier scoring

  Combined out;
  out.rel = Relation(Schema::Untyped(
      "combined",
      {"price", "street", "postcode", "bedrooms", "type", "description"}));
  Rng rng(seed + 7);
  // Row index in the extraction corresponds to universe order filtered by
  // coverage=1, i.e. property i = row i.
  size_t n = truth.properties.size();
  for (size_t i = 0; i < n && i < a.size() && i < b.size(); ++i) {
    double coin = rng.UniformDouble();
    bool in_a = coin < overlap || (coin >= overlap && coin < overlap +
                                   (1.0 - overlap) / 2.0);
    bool in_b = coin < overlap || coin >= overlap + (1.0 - overlap) / 2.0;
    if (in_a) {
      bool added = false;
      out.rel.InsertUnchecked(a.rows()[i], &added);
      if (added) out.truth_id.push_back(static_cast<int64_t>(i));
    }
    if (in_b) {
      bool added = false;
      out.rel.InsertUnchecked(b.rows()[i], &added);
      if (added) out.truth_id.push_back(static_cast<int64_t>(i));
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace vada::bench;

  std::printf("E12: duplicate detection + fusion vs portal overlap\n\n");

  PropertyUniverseOptions uopts;
  uopts.num_properties = 300;
  uopts.num_postcodes = 40;
  uopts.seed = 404;
  GroundTruth truth = GeneratePropertyUniverse(uopts);

  Table table({"overlap", "input rows", "clusters", "pair precision",
               "pair recall", "nulls filled", "ms"});
  for (double overlap : {0.0, 0.25, 0.5, 0.75}) {
    Combined combined = CombinePortals(truth, overlap, 50);
    DedupOptions opts;
    opts.blocking_attributes = {"postcode"};
    opts.threshold = 0.8;
    DuplicateDetector detector(opts);

    Result<std::vector<DuplicatePair>> pairs(std::vector<DuplicatePair>{});
    Result<DuplicateClusters> clusters(DuplicateClusters{});
    double ms = TimeMs([&] {
      pairs = detector.FindDuplicates(combined.rel);
      clusters = detector.Cluster(combined.rel);
    });
    if (!pairs.ok() || !clusters.ok()) {
      std::fprintf(stderr, "dedup failed\n");
      continue;
    }

    // Score pairs against truth ids.
    size_t tp = 0;
    for (const DuplicatePair& p : pairs.value()) {
      if (combined.truth_id[p.row_a] == combined.truth_id[p.row_b]) ++tp;
    }
    // True duplicate pair count: properties listed twice.
    std::map<int64_t, size_t> listing_count;
    for (int64_t id : combined.truth_id) ++listing_count[id];
    size_t true_pairs = 0;
    for (const auto& [id, count] : listing_count) {
      true_pairs += count * (count - 1) / 2;
    }
    double precision = pairs.value().empty()
                           ? 1.0
                           : static_cast<double>(tp) / pairs.value().size();
    double recall = true_pairs == 0
                        ? 1.0
                        : static_cast<double>(tp) / true_pairs;

    Fuser fuser;
    FusionStats stats;
    Result<Relation> fused =
        fuser.Fuse(combined.rel, clusters.value(), "fused", &stats);
    if (!fused.ok()) continue;

    table.AddRow({Fmt(overlap, 2), std::to_string(combined.rel.size()),
                  std::to_string(clusters.value().num_clusters),
                  Fmt(precision), Fmt(recall),
                  std::to_string(stats.nulls_filled), Fmt(ms, 1)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: at overlap 0.00 no true duplicate exists, so\n"
      "precision is vacuously 0 over a handful of twin-property false\n"
      "positives and recall vacuously 1. Once real duplicates exist,\n"
      "precision sits near 0.8 and recall around 0.6-0.7 — extraction\n"
      "noise both hides duplicates (postcode typos break the blocking\n"
      "key; bedroom-area corruption lowers similarity) and never rises\n"
      "with overlap, while nulls filled grows with overlap as fusion\n"
      "recovers values across portals.\n");
  return 0;
}
