// Experiment C1 (extension beyond the paper): columnar interned-symbol
// storage. The evaluator stores relations as per-column vectors of dense
// uint32 symbol ids over a process-wide dictionary, so join loops compare
// ints instead of variant Values and strings are materialized only at the
// KB/CSV/provenance boundary (DESIGN.md §5j).
//
// Three sections:
//   * scenario_1000 — the full wrangling session end to end (the ROADMAP
//     item-2 acceptance workload), with a per-transducer breakdown;
//   * J1/J2 recursive benches — the bench_join_planner workloads re-run
//     here so BENCH_columnar.json records wall-clock, join work and RSS
//     in one artifact, plus tc_string_chain_256: a string-keyed join,
//     the shape the row engine was slowest at and interning helps most.
#include <algorithm>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "wrangler/session.h"

namespace {

using namespace vada;
using namespace vada::bench;
using datalog::Database;
using datalog::EvalOptions;
using datalog::EvalStats;
using datalog::Evaluator;
using datalog::Parser;
using datalog::PlannerOptions;
using datalog::Program;

Database ChainDb(int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  return db;
}

Database TriangleDb(int nodes, int edges) {
  Database db;
  uint64_t state = 42;
  auto next = [&state](int mod) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int64_t>((state >> 33) % mod);
  };
  for (int i = 0; i < edges; ++i) {
    db.Insert("edge", Tuple({Value::Int(next(nodes)), Value::Int(next(nodes))}));
  }
  return db;
}

/// String-keyed join EDB: the worst case for the row engine (every
/// probe compared heap strings) and the best case for interning.
Database StringJoinDb(int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.Insert("edge", Tuple({Value::String("node_" + std::to_string(i)),
                             Value::String("node_" + std::to_string(i + 1))}));
  }
  return db;
}

struct Measured {
  double ms = 0;
  size_t work = 0;
  size_t results = 0;
};

Measured RunProgram(const Program& program, const Database& edb,
                    const char* goal) {
  Measured m;
  Database db = edb;
  EvalStats stats;
  EvalOptions opts;
  Evaluator eval(program, opts);
  if (!eval.Prepare().ok()) return m;
  m.ms = TimeMs([&] { (void)eval.Run(&db, &stats); });
  m.work = stats.join_probes + stats.index_probes + stats.index_candidates;
  m.results = db.FactCount(goal);
  return m;
}

}  // namespace

int main() {
  std::printf("C1: columnar interned-symbol storage\n\n");
  BenchReport report("columnar");

  // ---------------------------------------------------------------
  // scenario_1000 end to end, with the per-transducer time split.
  // ---------------------------------------------------------------
  size_t join_work = 0;
  size_t result_rows = 0;
  std::map<std::string, double> per_transducer;
  double scenario_ms = 0;
  {
    Scenario sc = MakeScenario(4000, 1000, 100);
    WranglingSession session;
    Status s = session.SetTargetSchema(PaperTargetSchema());
    if (s.ok()) s = session.AddSource(sc.rightmove);
    if (s.ok()) s = session.AddSource(sc.onthemarket);
    if (s.ok()) s = session.AddSource(sc.deprivation);
    if (s.ok()) {
      s = session.AddDataContext(sc.address, RelationRole::kReference,
                                 {{"street", "street"},
                                  {"postcode", "postcode"}});
    }
    scenario_ms = TimeMs([&] {
      if (s.ok()) s = session.Run();
    });
    if (!s.ok()) {
      std::fprintf(stderr, "scenario: %s\n", s.ToString().c_str());
      return 1;
    }
    const obs::MetricsSnapshot snap = session.MetricsReport().snapshot;
    join_work = static_cast<size_t>(
        snap.Value("vada_datalog_join_probes") +
        snap.Value("vada_datalog_index_probes_total") +
        snap.Value("vada_datalog_index_candidates_total"));
    result_rows = session.result() != nullptr ? session.result()->size() : 0;
    for (const TraceEvent& e : session.trace().events()) {
      per_transducer[e.transducer] += e.duration_ms;
    }
  }
  std::printf("scenario_1000: %.0f ms, %zu result rows, %zu join work\n\n",
              scenario_ms, result_rows, join_work);
  Table split({"transducer", "ms"});
  std::vector<std::pair<std::string, double>> sorted(per_transducer.begin(),
                                                     per_transducer.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [name, ms] : sorted) split.AddRow({name, Fmt(ms, 1)});
  split.Print();
  report.Add("scenario_1000_ms", scenario_ms);
  report.Add("scenario_1000_rows", static_cast<double>(result_rows));
  report.Add("scenario_1000_join_work", static_cast<double>(join_work));

  // ---------------------------------------------------------------
  // Recursive benches (the J1/J2 workloads), columnar engine.
  // ---------------------------------------------------------------
  struct Workload {
    std::string name;
    std::string program;
    const char* goal;
    Database db;
  };
  Workload workloads[] = {
      {"tc_chain_256",
       "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).", "tc",
       ChainDb(256)},
      {"triangles_400",
       "tri(X, Y, Z) :- edge(X, Y), edge(Y, Z), edge(Z, X).", "tri",
       TriangleDb(60, 400)},
      {"tc_string_chain_256",
       "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).", "tc",
       StringJoinDb(256)},
  };
  std::printf("\n");
  Table table({"workload", "results", "ms", "join work"});
  for (Workload& w : workloads) {
    Result<Program> program = Parser::Parse(w.program);
    if (!program.ok()) continue;
    Measured m = RunProgram(program.value(), w.db, w.goal);
    table.AddRow({w.name, std::to_string(m.results), Fmt(m.ms, 1),
                  std::to_string(m.work)});
    report.Add(w.name + "_ms", m.ms);
    report.Add(w.name + "_work", static_cast<double>(m.work));
  }
  table.Print();

  report.WriteJson();
  return 0;
}
