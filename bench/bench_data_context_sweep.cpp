// Experiment E5 — impact of data context (§3 goal ii): sweeps the
// coverage of the reference address data from 0% to 100% and reports
// CFDs learned, repairs applied and the resulting postcode validity.
//
// Paper claim (shape): data context "allows various of the steps from
// bootstrapping to be revisited ... and thereby to carry out repairs to
// the mapping results. The result data should now be of better quality."
// More reference coverage => more learned dependencies bite => more
// repairs => higher validity, saturating near full coverage.
#include "bench/bench_util.h"
#include "wrangler/evaluation.h"
#include "wrangler/session.h"

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("E5: data-context coverage sweep (reference addresses)\n\n");

  Table table({"reference coverage", "cfds", "postcode_valid", "overall",
               "rows"});
  for (double coverage : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // Aggregate over seeds for stability.
    double cfds = 0.0;
    double pc_valid = 0.0;
    double overall = 0.0;
    double rows = 0.0;
    const int kSeeds = 3;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Scenario sc = MakeScenario(300 + seed, 200, 30);
      WranglingSession session;
      Status s = session.SetTargetSchema(PaperTargetSchema());
      if (s.ok()) s = session.AddSource(sc.rightmove);
      if (s.ok()) s = session.AddSource(sc.onthemarket);
      if (s.ok()) s = session.AddSource(sc.deprivation);
      if (coverage > 0.0 && s.ok()) {
        OpenGovernmentOptions og;
        og.coverage = coverage;
        og.seed = 40 + seed;
        Relation address = GenerateAddressReference(sc.truth, og);
        if (!address.empty()) {
          s = session.AddDataContext(address, RelationRole::kReference,
                                     {{"street", "street"},
                                      {"postcode", "postcode"}});
        }
      }
      if (s.ok()) s = session.Run();
      if (!s.ok()) {
        std::fprintf(stderr, "coverage %.2f seed %d: %s\n", coverage, seed,
                     s.ToString().c_str());
        continue;
      }
      const Relation* cfd_rel = session.kb().FindRelation("cfd");
      cfds += (cfd_rel == nullptr ? 0.0
                                  : static_cast<double>(cfd_rel->size())) /
              kSeeds;
      ScenarioEvaluation eval = EvaluateScenario(*session.result(), sc.truth);
      pc_valid += eval.postcode_valid_rate / kSeeds;
      overall += eval.overall / kSeeds;
      rows += static_cast<double>(eval.rows) / kSeeds;
    }
    table.AddRow({Fmt(coverage, 2), Fmt(cfds, 1), Fmt(pc_valid), Fmt(overall),
                  Fmt(rows, 1)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: with no data context (coverage 0.00) nothing can\n"
      "be learned — consistency is not even measurable (paper §2.3) — and\n"
      "selection stays on the postcode-filtering joins (trivially valid\n"
      "postcodes, lowest row count). Once reference data exists, wider\n"
      "selection exposes raw extraction typos and repair progressively\n"
      "removes them: postcode_valid rises monotonically with coverage\n"
      "while the result stays larger than the no-context baseline.\n");
  return 0;
}
