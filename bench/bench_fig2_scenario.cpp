// Experiment E2 — Figure 2 (the demonstration scenario): regenerates the
// exact artifacts of the figure — sources (a), target schema (b), data
// context (c), user context (d) — runs the wrangle, and prints rows of
// the resulting Target table as the demo's web UI would show them.
#include "bench/bench_util.h"
#include "wrangler/evaluation.h"
#include "wrangler/session.h"

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("E2: the Figure 2 demonstration scenario\n\n");
  Scenario sc = MakeScenario(2017);

  std::printf("(a) Sources:\n");
  std::printf("  %s  [%zu rows]\n", sc.rightmove.schema().ToString().c_str(),
              sc.rightmove.size());
  std::printf("  %s  [%zu rows]\n",
              sc.onthemarket.schema().ToString().c_str(),
              sc.onthemarket.size());
  std::printf("  %s  [%zu rows]\n",
              sc.deprivation.schema().ToString().c_str(),
              sc.deprivation.size());

  Schema target = PaperTargetSchema();
  std::printf("\n(b) Target schema:\n  %s\n", target.ToString().c_str());

  std::printf("\n(c) Data context:\n  %s  [%zu rows]\n",
              sc.address.schema().ToString().c_str(), sc.address.size());

  UserContext uc;
  uc.AddStatement("completeness", "crimerank", "very strongly", "accuracy",
                  "property.type");
  uc.AddStatement("consistency", "property", "strongly", "completeness",
                  "property.bedrooms");
  uc.AddStatement("completeness", "property.street", "moderately",
                  "completeness", "property.postcode");
  std::printf("\n(d) User context:\n");
  for (const PairwiseStatement& st : uc.statements()) {
    std::printf("  %s %s more important than %s\n",
                st.more_important.Id().c_str(), ImportanceName(st.level),
                st.less_important.Id().c_str());
  }
  Result<CriterionWeights> weights = uc.DeriveWeights();
  if (weights.ok()) {
    std::printf("  derived AHP weights (consistency ratio %.3f):\n",
                weights.value().consistency_ratio);
    for (const auto& [id, w] : weights.value().weight_of) {
      std::printf("    %-36s %.3f\n", id.c_str(), w);
    }
  }

  WranglingSession session;
  Status s = session.SetTargetSchema(target);
  if (s.ok()) s = session.AddSource(sc.rightmove);
  if (s.ok()) s = session.AddSource(sc.onthemarket);
  if (s.ok()) s = session.AddSource(sc.deprivation);
  if (s.ok()) {
    s = session.AddDataContext(sc.address, RelationRole::kReference,
                               {{"street", "street"},
                                {"postcode", "postcode"}});
  }
  if (s.ok()) s = session.SetUserContext(uc);
  double ms = TimeMs([&] {
    if (s.ok()) s = session.Run();
  });
  if (!s.ok()) {
    std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\nWrangled Target table (%.1f ms):\n%s",
              ms, session.result()->ToDebugString(8).c_str());
  ScenarioEvaluation eval = EvaluateScenario(*session.result(), sc.truth);
  std::printf("\nevaluation: %s\n", eval.ToString().c_str());

  BenchReport report("fig2_scenario");
  report.Add("wrangle_ms", ms);
  report.Add("result_rows", static_cast<double>(eval.rows));
  report.Add("overall_quality", eval.overall);
  report.Add("coverage", eval.coverage);
  report.AddSnapshot(session.MetricsReport().snapshot);
  report.WriteJson();
  return 0;
}
