// Experiment D1 — durability cost and recovery speed (DESIGN.md §5i):
// what write-ahead logging charges the commit path under each fsync
// policy, how recovery time scales with log size, and what a durable
// wrangle costs end to end relative to the purely in-memory session.
//
// Acceptance shape: with durability disabled the commit path must be
// indistinguishable from the seed (<1% on the wrangle), and fsync=none
// must stay under 5% end-to-end overhead.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "kb/durability.h"
#include "kb/fs_util.h"
#include "kb/write_guard.h"
#include "wrangler/session.h"

namespace {

using namespace vada;
using namespace vada::bench;

std::string BenchDir(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && *tmp != '\0' ? std::string(tmp)
                                                    : std::string("/tmp")) +
                    "/vada_bench_durability_" + name;
  (void)!RemoveRecursively(dir).ok();
  return dir;
}

// Commits are spread round-robin over this many relations so the
// write-guard's copy-on-write pre-image stays proportional to one
// relation, as in a real wrangle — a single ever-growing relation
// would make the bench quadratic in guard snapshot cost instead of
// measuring the WAL.
constexpr int kRelations = 64;

std::string RelationName(int round) {
  return "events" + std::to_string(round % kRelations);
}

Status CreateRelations(KnowledgeBase* kb) {
  for (int r = 0; r < kRelations; ++r) {
    VADA_RETURN_IF_ERROR(kb->CreateRelation(
        Schema::Untyped(RelationName(r), {"round", "i", "payload"})));
  }
  return Status::OK();
}

/// One committed transaction: a guard wrapping `inserts_per_commit`
/// inserts into the round's relation.
Status CommitOnce(KnowledgeBase* kb, int round, int inserts_per_commit) {
  WriteGuard guard(kb);
  for (int i = 0; i < inserts_per_commit; ++i) {
    VADA_RETURN_IF_ERROR(kb->Insert(
        RelationName(round), Tuple({Value::Int(round), Value::Int(i),
                                    Value::String("payload-payload")})));
  }
  guard.Commit();
  return Status::OK();
}

struct CommitRun {
  double total_ms = 0.0;
  uint64_t wal_bytes = 0;
};

/// `commits` guarded transactions against a fresh KB; durability per
/// `policy` ("off" = no manager attached at all).
Result<CommitRun> RunCommits(const std::string& policy, int commits,
                             int inserts_per_commit) {
  KnowledgeBase kb;
  std::unique_ptr<DurabilityManager> mgr;
  std::string dir;
  if (policy != "off") {
    dir = BenchDir("commit_" + policy);
    DurabilityOptions options;
    options.enabled = true;
    options.directory = dir;
    if (policy == "none") options.fsync = FsyncPolicy::kNone;
    if (policy == "interval") options.fsync = FsyncPolicy::kInterval;
    if (policy == "every_commit") options.fsync = FsyncPolicy::kEveryCommit;
    auto opened = DurabilityManager::Open(options, &kb);
    if (!opened.ok()) return opened.status();
    mgr = std::move(opened).value();
  }
  VADA_RETURN_IF_ERROR(CreateRelations(&kb));
  CommitRun run;
  Status status;
  run.total_ms = TimeMs([&] {
    for (int round = 0; round < commits && status.ok(); ++round) {
      status = CommitOnce(&kb, round, inserts_per_commit);
    }
  });
  if (!status.ok()) return status;
  if (mgr != nullptr) {
    VADA_RETURN_IF_ERROR(mgr->status());
    run.wal_bytes = mgr->wal()->appended_bytes();
  }
  if (!dir.empty()) {
    mgr.reset();
    (void)!RemoveRecursively(dir).ok();
  }
  return run;
}

struct RecoveryRun {
  double open_ms = 0.0;
  uint64_t replayed = 0;
};

/// Writes `commits` transactions into a WAL, then times a cold Open.
Result<RecoveryRun> RunRecovery(int commits, int inserts_per_commit) {
  std::string dir = BenchDir("recovery_" + std::to_string(commits));
  DurabilityOptions options;
  options.enabled = true;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNone;
  {
    KnowledgeBase kb;
    auto opened = DurabilityManager::Open(options, &kb);
    if (!opened.ok()) return opened.status();
    VADA_RETURN_IF_ERROR(CreateRelations(&kb));
    for (int round = 0; round < commits; ++round) {
      VADA_RETURN_IF_ERROR(CommitOnce(&kb, round, inserts_per_commit));
    }
    VADA_RETURN_IF_ERROR(opened.value()->status());
  }
  RecoveryRun run;
  KnowledgeBase recovered;
  Result<std::unique_ptr<DurabilityManager>> reopened =
      Status::Internal("unreached");
  run.open_ms = TimeMs(
      [&] { reopened = DurabilityManager::Open(options, &recovered); });
  if (!reopened.ok()) return reopened.status();
  run.replayed = reopened.value()->recovery().replayed_records;
  reopened.value().reset();
  (void)!RemoveRecursively(dir).ok();
  return run;
}

/// Full wrangle bootstrap wall time under a durability config; best of
/// `reps` to damp filesystem noise.
Result<double> WrangleMs(const Scenario& sc, const WranglerConfig& base,
                         int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WranglerConfig config = base;
    if (config.durability.enabled) {
      config.durability.directory = BenchDir("wrangle");
    }
    WranglingSession session(config);
    VADA_RETURN_IF_ERROR(session.durability_open_status());
    Status s = session.SetTargetSchema(PaperTargetSchema());
    if (s.ok()) s = session.AddSource(sc.rightmove);
    if (s.ok()) s = session.AddSource(sc.onthemarket);
    if (s.ok()) s = session.AddSource(sc.deprivation);
    double ms = TimeMs([&] {
      if (s.ok()) s = session.Run();
    });
    VADA_RETURN_IF_ERROR(s);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  std::printf("D1: durability cost and recovery speed\n\n");

  const int kCommits = 2000;
  const int kInsertsPerCommit = 5;

  // --- Commit throughput per fsync policy. ---
  Table commit_table({"policy", "commits", "wall ms", "commits/s",
                      "us/commit", "wal MB"});
  BenchReport report("durability");
  std::vector<std::pair<std::string, int>> policies = {
      {"off", kCommits},
      {"none", kCommits},
      {"interval", kCommits},
      // fsync-per-commit pays a device flush per transaction; fewer
      // iterations keep the bench fast without changing the per-op cost.
      {"every_commit", 200}};
  double off_us_per_commit = 0.0;
  for (const auto& [policy, commits] : policies) {
    Result<CommitRun> run = RunCommits(policy, commits, kInsertsPerCommit);
    if (!run.ok()) {
      std::fprintf(stderr, "commit bench (%s) failed: %s\n", policy.c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    double per_commit_us = run.value().total_ms * 1e3 / commits;
    if (policy == "off") off_us_per_commit = per_commit_us;
    commit_table.AddRow(
        {policy, std::to_string(commits), Fmt(run.value().total_ms, 1),
         Fmt(commits / (run.value().total_ms / 1e3), 0),
         Fmt(per_commit_us, 1),
         Fmt(static_cast<double>(run.value().wal_bytes) / (1 << 20), 2)});
    report.Add("commit_us_" + policy, per_commit_us);
    report.Add("wal_bytes_" + policy,
               static_cast<double>(run.value().wal_bytes));
  }
  commit_table.Print();
  std::printf("\n");

  // --- Recovery wall time vs log size. ---
  Table recovery_table({"commits in log", "records replayed", "open ms",
                        "records/s"});
  for (int commits : {500, 2000, 8000}) {
    Result<RecoveryRun> run = RunRecovery(commits, kInsertsPerCommit);
    if (!run.ok()) {
      std::fprintf(stderr, "recovery bench (%d) failed: %s\n", commits,
                   run.status().ToString().c_str());
      return 1;
    }
    recovery_table.AddRow(
        {std::to_string(commits), std::to_string(run.value().replayed),
         Fmt(run.value().open_ms, 1),
         Fmt(run.value().replayed / (run.value().open_ms / 1e3), 0)});
    report.Add("recovery_ms_" + std::to_string(commits), run.value().open_ms);
  }
  recovery_table.Print();
  std::printf("\n");

  // --- End-to-end wrangle overhead. ---
  Scenario sc = MakeScenario(11, 300, 40);
  WranglerConfig off_config;
  off_config.obs.enabled = false;
  WranglerConfig none_config = off_config;
  none_config.durability.enabled = true;
  none_config.durability.fsync = FsyncPolicy::kNone;
  WranglerConfig sync_config = none_config;
  sync_config.durability.fsync = FsyncPolicy::kEveryCommit;

  const int kReps = 3;
  Result<double> off_ms = WrangleMs(sc, off_config, kReps);
  Result<double> none_ms =
      off_ms.ok() ? WrangleMs(sc, none_config, kReps) : off_ms;
  Result<double> sync_ms =
      none_ms.ok() ? WrangleMs(sc, sync_config, kReps) : none_ms;
  if (!sync_ms.ok()) {
    std::fprintf(stderr, "wrangle bench failed: %s\n",
                 sync_ms.status().ToString().c_str());
    return 1;
  }
  auto overhead = [&](double ms) {
    return off_ms.value() > 0 ? (ms / off_ms.value() - 1.0) * 100 : 0.0;
  };
  Table wrangle_table({"wrangle config", "wall ms", "overhead"});
  wrangle_table.AddRow({"durability off", Fmt(off_ms.value(), 1), "baseline"});
  wrangle_table.AddRow({"WAL, fsync=none", Fmt(none_ms.value(), 1),
                        Fmt(overhead(none_ms.value()), 1) + "%"});
  wrangle_table.AddRow({"WAL, fsync=every-commit", Fmt(sync_ms.value(), 1),
                        Fmt(overhead(sync_ms.value()), 1) + "%"});
  wrangle_table.Print();

  report.Add("wrangle_off_ms", off_ms.value());
  report.Add("wrangle_fsync_none_ms", none_ms.value());
  report.Add("wrangle_fsync_every_commit_ms", sync_ms.value());
  report.Add("wrangle_overhead_none_pct", overhead(none_ms.value()));
  report.Add("wrangle_overhead_every_commit_pct",
             overhead(sync_ms.value()));
  report.Add("commit_us_off_baseline", off_us_per_commit);
  report.WriteJson();

  std::printf(
      "\nnotes:\n"
      "  * 'off' is the in-memory commit path with no manager attached —\n"
      "    the seed behaviour; the durability hooks compile to a null\n"
      "    check when no WAL is open.\n"
      "  * fsync=none trusts the OS page cache (survives process crash,\n"
      "    not power loss); interval bounds the loss window;\n"
      "    every-commit pays one device flush per transaction.\n"
      "  * recovery replays committed records only; a torn tail and any\n"
      "    trailing uncommitted transaction are discarded (§5i).\n");
  return 0;
}
