// Experiment E9 — cost of fault tolerance (DESIGN.md §5d): what do the
// write-guard, retry machinery and failure bookkeeping cost on the
// fault-free path, and how fast does a wrangle converge when faults are
// actually injected?
//
// Three configurations over the same scenario:
//   1. seed path      — FailurePolicy disabled: no guard, fail-fast
//                       (the pre-fault-tolerance orchestrator);
//   2. guarded        — fault tolerance on, zero faults: the pure
//                       overhead of guarding every Execute();
//   3. under faults   — seeded FaultInjector schedules: convergence time
//                       and retry/rollback volume to the same result.
#include "bench/bench_util.h"
#include "transducer/fault_injection.h"
#include "wrangler/session.h"

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("E9: fault-tolerance overhead and convergence under faults\n\n");

  Scenario sc = MakeScenario(11, 200, 30);
  std::vector<Relation> sources = {sc.rightmove, sc.onthemarket,
                                   sc.deprivation};

  auto bootstrap = [&](WranglingSession* session) {
    Status s = session->SetTargetSchema(PaperTargetSchema());
    for (const Relation& src : sources) {
      if (s.ok()) s = session->AddSource(src);
    }
    if (s.ok()) {
      s = session->AddDataContext(sc.address, RelationRole::kReference,
                                  {{"street", "street"},
                                   {"postcode", "postcode"}});
    }
    return s;
  };

  // --- 1. Seed path: fault tolerance disabled entirely. ---
  WranglerConfig seed_config;
  seed_config.obs.enabled = false;
  seed_config.fault_tolerance.enabled = false;
  WranglingSession seed_session(seed_config);
  Status s = bootstrap(&seed_session);
  OrchestrationStats seed_stats;
  double seed_ms = TimeMs([&] {
    if (s.ok()) s = seed_session.Run(&seed_stats);
  });
  if (!s.ok()) {
    std::fprintf(stderr, "seed-path run failed: %s\n", s.ToString().c_str());
    return 1;
  }
  size_t baseline_rows = seed_session.result()->size();

  // --- 2. Guarded path, fault-free: pure write-guard/retry overhead. ---
  WranglerConfig guarded_config;
  guarded_config.obs.enabled = false;
  WranglingSession guarded_session(guarded_config);
  s = bootstrap(&guarded_session);
  OrchestrationStats guarded_stats;
  double guarded_ms = TimeMs([&] {
    if (s.ok()) s = guarded_session.Run(&guarded_stats);
  });
  if (!s.ok()) {
    std::fprintf(stderr, "guarded run failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- 3. Under injected faults: convergence to the same result. ---
  constexpr uint64_t kSchedules = 10;
  double faulted_total_ms = 0.0;
  size_t faulted_retries = 0;
  size_t faulted_rollbacks = 0;
  size_t converged = 0;
  for (uint64_t seed = 1; seed <= kSchedules; ++seed) {
    FaultInjector::Options fopt;
    fopt.seed = seed;
    fopt.fault_rate = 0.5;
    fopt.max_failures = 2;
    FaultInjector injector(fopt);
    WranglerConfig config;
    config.obs.enabled = false;
    config.fault_tolerance.max_attempts = 4;
    config.fault_tolerance.sleep_ms = [](double) {};  // time work, not sleep
    config.transducer_decorator = injector.Decorator();
    WranglingSession session(config);
    s = bootstrap(&session);
    OrchestrationStats stats;
    faulted_total_ms += TimeMs([&] {
      if (s.ok()) s = session.Run(&stats);
    });
    if (!s.ok()) {
      std::fprintf(stderr, "faulted run (seed %llu) failed: %s\n",
                   static_cast<unsigned long long>(seed),
                   s.ToString().c_str());
      return 1;
    }
    faulted_retries += stats.retries;
    faulted_rollbacks += stats.rollbacks;
    if (session.result()->size() == baseline_rows) ++converged;
  }
  double faulted_ms = faulted_total_ms / kSchedules;

  double overhead_pct =
      seed_ms > 0 ? (guarded_ms / seed_ms - 1.0) * 100.0 : 0.0;
  double fault_slowdown_pct =
      guarded_ms > 0 ? (faulted_ms / guarded_ms - 1.0) * 100.0 : 0.0;

  Table table({"configuration", "steps", "retries", "rollbacks", "wall ms",
               "vs previous"});
  table.AddRow({"seed path (no guard, fail-fast)",
                std::to_string(seed_stats.steps), "0", "0", Fmt(seed_ms, 1),
                "-"});
  table.AddRow({"guarded, fault-free", std::to_string(guarded_stats.steps),
                std::to_string(guarded_stats.retries),
                std::to_string(guarded_stats.rollbacks), Fmt(guarded_ms, 1),
                Fmt(overhead_pct, 1) + "% overhead"});
  table.AddRow({"guarded, injected faults (avg of " +
                    std::to_string(kSchedules) + ")",
                "-", std::to_string(faulted_retries),
                std::to_string(faulted_rollbacks), Fmt(faulted_ms, 1),
                Fmt(fault_slowdown_pct, 1) + "% slower"});
  table.Print();

  std::printf("\nconvergence: %zu/%llu fault schedules reached the "
              "fault-free result (%zu rows)\n",
              converged, static_cast<unsigned long long>(kSchedules),
              baseline_rows);

  BenchReport report("orchestration_faults");
  report.Add("seed_path_ms", seed_ms);
  report.Add("guarded_ms", guarded_ms);
  report.Add("guard_overhead_pct", overhead_pct);
  report.Add("faulted_avg_ms", faulted_ms);
  report.Add("fault_slowdown_pct", fault_slowdown_pct);
  report.Add("faulted_retries", static_cast<double>(faulted_retries));
  report.Add("faulted_rollbacks", static_cast<double>(faulted_rollbacks));
  report.Add("converged_schedules", static_cast<double>(converged));
  report.Add("fault_schedules", static_cast<double>(kSchedules));
  report.Add("baseline_rows", static_cast<double>(baseline_rows));
  report.WriteJson();

  std::printf(
      "\nnotes:\n"
      "  * the guard is copy-on-write per touched relation, so fault-free\n"
      "    overhead is the snapshot cost of relations each step mutates;\n"
      "  * injected runs converge to the identical result because faults\n"
      "    are transient, rollback is exact, and the pipeline is\n"
      "    deterministic (see tests/fault_injection_soak_test.cc).\n");
  return 0;
}
