// Experiment E10 — matching ablation (§2.1: "attribute correspondences
// may need to be derived by schema matchers"; Table 1: instance matching
// needs instances): measures match quality of schema-name matching alone
// vs schema+instance evidence, as source attribute names degrade from
// the paper's portal names to fully cryptic ones.
//
// Expected shape: name-based matching collapses as names degrade;
// instance evidence keeps identifying value-bearing columns, so the
// combined matcher degrades far more gracefully.
#include <map>

#include "bench/bench_util.h"
#include "match/combiner.h"
#include "match/instance_matcher.h"
#include "match/schema_matcher.h"

namespace {

using namespace vada;

/// Ground-truth correspondence for a renamed rightmove-style source.
/// Position i of the source corresponds to kTargetOf[i].
const char* kTargetOf[] = {"price", "street", "postcode",
                           "bedrooms", "type", "description"};

Relation RenameSource(const Relation& src,
                      const std::vector<std::string>& names) {
  Relation out(Schema::Untyped(src.name() + "_renamed", names));
  for (const Tuple& row : src.rows()) out.InsertUnchecked(row);
  return out;
}

struct MatchQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

MatchQuality Evaluate(const std::vector<MatchCandidate>& matches,
                      const Relation& source) {
  std::map<std::string, std::string> predicted;  // source attr -> target
  for (const MatchCandidate& m : matches) {
    predicted[m.source_attribute] = m.target_attribute;
  }
  size_t tp = 0;
  for (size_t i = 0; i < 6; ++i) {
    const std::string& attr = source.schema().attributes()[i].name;
    auto it = predicted.find(attr);
    if (it != predicted.end() && it->second == kTargetOf[i]) ++tp;
  }
  MatchQuality q;
  q.precision = predicted.empty()
                    ? 0.0
                    : static_cast<double>(tp) / predicted.size();
  q.recall = static_cast<double>(tp) / 6.0;
  q.f1 = (q.precision + q.recall) > 0
             ? 2 * q.precision * q.recall / (q.precision + q.recall)
             : 0.0;
  return q;
}

}  // namespace

int main() {
  using namespace vada::bench;

  std::printf("E10: schema-only vs schema+instance matching under "
              "attribute-name degradation\n\n");

  Scenario sc = MakeScenario(77, 250, 35);
  Schema target = PaperTargetSchema();

  struct NameSet {
    const char* label;
    std::vector<std::string> names;
  };
  std::vector<NameSet> name_sets = {
      {"identical", {"price", "street", "postcode", "bedrooms", "type",
                     "description"}},
      {"portal synonyms", {"cost", "road", "post_code", "beds", "category",
                           "details"}},
      {"abbreviated", {"prc", "strt", "pcd", "bdrms", "typ", "descr"}},
      {"cryptic", {"f1", "f2", "f3", "f4", "f5", "f6"}},
  };

  Table table({"source attribute names", "schema-only F1",
               "schema+instance F1"});

  for (const NameSet& ns : name_sets) {
    Relation source = RenameSource(sc.rightmove, ns.names);

    // Schema-only.
    SchemaMatcher schema_matcher;
    std::vector<MatchCandidate> schema_matches =
        schema_matcher.Match(source.schema(), target);
    MatchQuality schema_q =
        Evaluate(CombineMatches(schema_matches), source);

    // Schema + instance evidence against the reference address data (for
    // string columns) and the deprivation/postcode universe.
    InstanceMatcher instance_matcher;
    std::vector<MatchCandidate> all = schema_matches;
    std::vector<MatchCandidate> inst = instance_matcher.Match(
        source, sc.address, target.relation_name(),
        {{"street", "street"}, {"postcode", "postcode"}, {"city", "city"}});
    for (MatchCandidate& m : inst) {
      if (target.AttributeIndex(m.target_attribute).has_value()) {
        all.push_back(m);
      }
    }
    MatchQuality combined_q = Evaluate(CombineMatches(all), source);

    table.AddRow({ns.label, Fmt(schema_q.f1), Fmt(combined_q.f1)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: schema-only F1 decays with name degradation; "
      "instance evidence holds up the value-bearing columns "
      "(street/postcode), so the combined column dominates schema-only "
      "everywhere and especially at 'cryptic'.\n");
  return 0;
}
