// Experiment E4 — the paper's evaluation: the demonstration protocol
// (§3 steps 1-4) as a measurable pay-as-you-go curve. For each step we
// report result size and truth-based quality, averaged over seeds.
//
// Paper claim (shape): "a pay-as-you-go approach ... in which the more
// information is provided by the user, the better the outcome", with
// the individual inputs acting where the narrative says they act —
// data context widens coverage and enables repair, feedback fixes the
// flagged attribute (bedrooms), user context steers selection toward the
// user's priorities (crimerank completeness).
#include "bench/bench_util.h"
#include "common/rng.h"
#include "wrangler/evaluation.h"
#include "wrangler/session.h"

namespace vada::bench {
namespace {

struct StepResult {
  ScenarioEvaluation eval;
  size_t selected = 0;
};

struct RunResults {
  StepResult step[4];
};

RunResults RunProtocol(uint64_t seed) {
  Scenario sc = MakeScenario(seed);
  WranglingSession session;
  Status s = session.SetTargetSchema(PaperTargetSchema());
  if (s.ok()) s = session.AddSource(sc.rightmove);
  if (s.ok()) s = session.AddSource(sc.onthemarket);
  if (s.ok()) s = session.AddSource(sc.deprivation);
  RunResults out;

  auto record = [&](int step) {
    out.step[step].eval = EvaluateScenario(*session.result(), sc.truth);
    out.step[step].selected = session.selected_mappings().size();
  };

  // Step 1: bootstrap.
  if (s.ok()) s = session.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "seed %llu step1: %s\n",
                 static_cast<unsigned long long>(seed), s.ToString().c_str());
    return out;
  }
  record(0);

  // Step 2: + data context.
  s = session.AddDataContext(sc.address, RelationRole::kReference,
                             {{"street", "street"}, {"postcode", "postcode"}});
  if (s.ok()) s = session.Run();
  if (!s.ok()) return out;
  record(1);

  // Step 3: + feedback on implausible bedrooms. The user reviews rows in
  // arbitrary order (seeded shuffle), not in the result's union order —
  // otherwise the annotations would be biased toward whichever mapping's
  // rows happen to come first.
  {
    const Relation* result = session.result();
    size_t bed = *result->schema().AttributeIndex("bedrooms");
    std::vector<Tuple> rows = result->rows();
    Rng rng(seed * 7 + 3);
    rng.Shuffle(&rows);
    size_t flagged = 0;
    for (const Tuple& row : rows) {
      std::optional<double> v = row.at(bed).AsDouble();
      if (v.has_value() && *v > 8.0) {
        session.AddFeedback(
            FeedbackItem{row, "bedrooms", FeedbackPolarity::kIncorrect});
        if (++flagged >= 20) break;
      }
    }
  }
  s = session.Run();
  if (!s.ok()) return out;
  record(2);

  // Step 4: + user context (Figure 2(d) priorities).
  UserContext uc;
  uc.AddStatement("completeness", "crimerank", "very strongly", "accuracy",
                  "property.type");
  uc.AddStatement("consistency", "property", "strongly", "completeness",
                  "property.bedrooms");
  uc.AddStatement("completeness", "property.street", "moderately",
                  "completeness", "property.postcode");
  s = session.SetUserContext(uc);
  if (s.ok()) s = session.Run();
  if (!s.ok()) return out;
  record(3);
  return out;
}

}  // namespace
}  // namespace vada::bench

int main() {
  using namespace vada::bench;
  std::printf("E4: pay-as-you-go demonstration protocol (paper §3)\n");
  std::printf("averaged over 5 seeds, 300 properties, 40 postcodes\n\n");

  const char* kStepNames[] = {"1 bootstrap", "2 +data context", "3 +feedback",
                              "4 +user context"};
  const int kSeeds = 5;
  double rows[4] = {0};
  double crime[4] = {0};
  double beds[4] = {0};
  double pc[4] = {0};
  double cover[4] = {0};
  double overall[4] = {0};
  double selected[4] = {0};
  for (int seed = 0; seed < kSeeds; ++seed) {
    RunResults r = RunProtocol(1000 + seed);
    for (int st = 0; st < 4; ++st) {
      rows[st] += static_cast<double>(r.step[st].eval.rows) / kSeeds;
      crime[st] += r.step[st].eval.crimerank_completeness / kSeeds;
      beds[st] += r.step[st].eval.bedrooms_plausible_rate / kSeeds;
      pc[st] += r.step[st].eval.postcode_valid_rate / kSeeds;
      cover[st] += r.step[st].eval.coverage / kSeeds;
      overall[st] += r.step[st].eval.overall / kSeeds;
      selected[st] += static_cast<double>(r.step[st].selected) / kSeeds;
    }
  }

  Table table({"step", "rows", "selected", "crimerank_compl",
               "bedrooms_plaus", "postcode_valid", "coverage", "overall"});
  for (int st = 0; st < 4; ++st) {
    table.AddRow({kStepNames[st], Fmt(rows[st], 1), Fmt(selected[st], 1),
                  Fmt(crime[st]), Fmt(beds[st]), Fmt(pc[st]), Fmt(cover[st]),
                  Fmt(overall[st])});
  }
  table.Print();

  std::printf(
      "\nshape checks vs paper narrative:\n"
      "  data context widens coverage:        %s (%.3f -> %.3f)\n"
      "  feedback lifts bedroom plausibility: %s (%.3f -> %.3f)\n"
      "  user context lifts crimerank compl.: %s (%.3f -> %.3f)\n",
      cover[1] > cover[0] ? "OK" : "MISS", cover[0], cover[1],
      beds[2] > beds[1] ? "OK" : "MISS", beds[1], beds[2],
      crime[3] >= crime[2] ? "OK" : "MISS", crime[2], crime[3]);

  BenchReport report("payg_steps");
  const char* kStepKeys[] = {"step1", "step2", "step3", "step4"};
  for (int st = 0; st < 4; ++st) {
    report.Add(std::string(kStepKeys[st]) + "_rows", rows[st]);
    report.Add(std::string(kStepKeys[st]) + "_coverage", cover[st]);
    report.Add(std::string(kStepKeys[st]) + "_overall", overall[st]);
  }
  report.WriteJson();
  return 0;
}
