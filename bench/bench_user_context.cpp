// Experiment E7 — impact of user context (§2.2, §3 step 4): runs the same
// wrangle under different pairwise-priority sets and shows that mapping
// selection — and therefore the delivered result profile — follows the
// user's stated trade-offs.
//
// Paper claim (shape): "different uses of the same data set may give rise
// to different user contexts" — prioritising crimerank completeness keeps
// the deprivation joins on top; prioritising bedrooms completeness (the
// paper's property-size analysis) admits wider-coverage mappings instead.
#include "bench/bench_util.h"
#include "wrangler/evaluation.h"
#include "wrangler/session.h"

namespace {

vada::UserContext CrimeFirst() {
  vada::UserContext uc;
  uc.AddStatement("completeness", "crimerank", "very strongly",
                  "completeness", "property.bedrooms");
  uc.AddStatement("completeness", "crimerank", "strongly", "accuracy",
                  "property.type");
  return uc;
}

vada::UserContext BedroomsFirst() {
  vada::UserContext uc;
  uc.AddStatement("completeness", "property.bedrooms", "very strongly",
                  "completeness", "crimerank");
  uc.AddStatement("completeness", "property.price", "moderately",
                  "completeness", "crimerank");
  return uc;
}

}  // namespace

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("E7: user-context trade-offs in mapping selection\n\n");

  struct Variant {
    const char* name;
    bool has_context;
    UserContext context;
  };
  std::vector<Variant> variants = {
      {"no user context", false, UserContext()},
      {"crimerank priority", true, CrimeFirst()},
      {"bedrooms priority", true, BedroomsFirst()},
  };

  Table table({"user context", "selected mappings", "crimerank_compl",
               "bedrooms_compl", "coverage", "overall"});
  for (const Variant& v : variants) {
    Scenario sc = MakeScenario(42, 250, 35);
    WranglingSession session;
    Status s = session.SetTargetSchema(PaperTargetSchema());
    if (s.ok()) s = session.AddSource(sc.rightmove);
    if (s.ok()) s = session.AddSource(sc.onthemarket);
    if (s.ok()) s = session.AddSource(sc.deprivation);
    if (s.ok()) {
      s = session.AddDataContext(sc.address, RelationRole::kReference,
                                 {{"street", "street"},
                                  {"postcode", "postcode"}});
    }
    if (v.has_context && s.ok()) s = session.SetUserContext(v.context);
    if (s.ok()) s = session.Run();
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", v.name, s.ToString().c_str());
      continue;
    }
    ScenarioEvaluation eval = EvaluateScenario(*session.result(), sc.truth);
    // Bedrooms completeness of the delivered result.
    double bed_compl =
        session.result()->NonNullFraction("bedrooms").value();
    std::string selected;
    for (const std::string& id : session.selected_mappings()) {
      if (!selected.empty()) selected += " ";
      selected += id;
    }
    table.AddRow({v.name, selected, Fmt(eval.crimerank_completeness),
                  Fmt(bed_compl), Fmt(eval.coverage), Fmt(eval.overall)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: the crimerank-priority context concentrates "
      "selection on deprivation joins (crimerank_compl -> 1.0); the "
      "bedrooms-priority context favours coverage of the bedrooms "
      "attribute instead.\n");
  return 0;
}
