// Experiment E8 — dynamic orchestration vs. static ETL (§1, §3 goal iii):
// quantifies what the dynamic network transducer costs and buys relative
// to the fixed pre-configured pipeline the paper positions itself
// against.
//
// Paper claim (shape): comparable scope to ETL with less configuration;
// dynamic orchestration additionally reacts to *incremental* inputs —
// re-running only what new information enables — where an ETL pipeline
// must re-run from scratch.
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "wrangler/etl_baseline.h"
#include "wrangler/evaluation.h"
#include "wrangler/session.h"

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("E8: dynamic orchestration vs static ETL pipeline\n\n");

  Scenario sc = MakeScenario(11, 300, 40);
  std::vector<Relation> sources = {sc.rightmove, sc.onthemarket,
                                   sc.deprivation};

  // --- Static ETL: one fixed-order pass. ---
  EtlPipeline etl;
  EtlReport etl_report;
  Result<Relation> etl_result(Relation{});
  double etl_ms = TimeMs([&] {
    etl_result = etl.Run(PaperTargetSchema(), sources, &etl_report);
  });
  if (!etl_result.ok()) {
    std::fprintf(stderr, "etl failed: %s\n", etl_result.status().ToString().c_str());
    return 1;
  }
  ScenarioEvaluation etl_eval = EvaluateScenario(etl_result.value(), sc.truth);

  // --- Dynamic VADA: bootstrap. Observability off: this bench is the
  // pay-for-what-you-use check — instrumentation must cost nothing when
  // disabled (the enabled run below quantifies what it costs when on). ---
  WranglerConfig config;
  config.obs.enabled = false;
  WranglingSession session(config);
  Status s = session.SetTargetSchema(PaperTargetSchema());
  for (const Relation& src : sources) {
    if (s.ok()) s = session.AddSource(src);
  }
  OrchestrationStats boot_stats;
  double boot_ms = TimeMs([&] {
    if (s.ok()) s = session.Run(&boot_stats);
  });
  if (!s.ok()) {
    std::fprintf(stderr, "vada bootstrap failed: %s\n", s.ToString().c_str());
    return 1;
  }
  ScenarioEvaluation boot_eval = EvaluateScenario(*session.result(), sc.truth);

  // --- Incremental input: the data context arrives later. Dynamic
  // orchestration re-runs only the newly enabled/invalidated steps. ---
  OrchestrationStats incr_stats;
  double incr_ms = 0.0;
  {
    s = session.AddDataContext(sc.address, RelationRole::kReference,
                               {{"street", "street"},
                                {"postcode", "postcode"}});
    incr_ms = TimeMs([&] {
      if (s.ok()) s = session.Run(&incr_stats);
    });
    if (!s.ok()) {
      std::fprintf(stderr, "vada incremental failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  ScenarioEvaluation incr_eval = EvaluateScenario(*session.result(), sc.truth);

  // An ETL deployment handling the same late-arriving reference data would
  // re-run the full pipeline (after someone reconfigures it); charge it a
  // second full pass as the best case.
  double etl_rerun_ms = TimeMs([&] {
    EtlReport ignored;
    etl.Run(PaperTargetSchema(), sources, &ignored);
  });

  // --- Same bootstrap with observability ON: metrics + spans overhead. ---
  WranglingSession obs_session;  // default config: obs enabled
  OrchestrationStats obs_stats;
  s = obs_session.SetTargetSchema(PaperTargetSchema());
  for (const Relation& src : sources) {
    if (s.ok()) s = obs_session.AddSource(src);
  }
  double obs_boot_ms = TimeMs([&] {
    if (s.ok()) s = obs_session.Run(&obs_stats);
  });
  if (!s.ok()) {
    std::fprintf(stderr, "instrumented bootstrap failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  SessionMetricsReport metrics_report = obs_session.MetricsReport();

  // --- Parallel & incremental evaluation (DESIGN.md §5e): the same
  // bootstrap with 4 threads and the version-keyed snapshot cache.
  // Output is bit-identical by construction; only wall time may change.
  // On a single-core host the pool is ~neutral and the cache carries the
  // speedup (it removes per-scan relation copying entirely). ---
  auto timed_bootstrap = [&](const WranglerConfig& cfg, double* out_ms) {
    auto par_session = std::make_unique<WranglingSession>(cfg);
    Status ps = par_session->SetTargetSchema(PaperTargetSchema());
    for (const Relation& src : sources) {
      if (ps.ok()) ps = par_session->AddSource(src);
    }
    *out_ms = TimeMs([&] {
      if (ps.ok()) ps = par_session->Run();
    });
    return ps;
  };
  WranglerConfig seq_config;
  seq_config.obs.enabled = false;
  double seq_ms = 0.0;
  s = timed_bootstrap(seq_config, &seq_ms);
  WranglerConfig par_config = seq_config;
  par_config.parallelism.threads = 4;
  par_config.parallelism.snapshot_cache = true;
  double par_ms = 0.0;
  if (s.ok()) s = timed_bootstrap(par_config, &par_ms);
  if (!s.ok()) {
    std::fprintf(stderr, "parallel bootstrap failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  double parallel_speedup = par_ms > 0 ? seq_ms / par_ms : 0.0;

  Table table({"system / phase", "component runs", "dep checks", "wall ms",
               "rows", "overall quality"});
  table.AddRow({"ETL (single pass)", std::to_string(etl_report.component_runs),
                "0", Fmt(etl_ms, 1), std::to_string(etl_eval.rows),
                Fmt(etl_eval.overall)});
  table.AddRow({"VADA bootstrap", std::to_string(boot_stats.steps),
                std::to_string(boot_stats.dependency_checks), Fmt(boot_ms, 1),
                std::to_string(boot_eval.rows), Fmt(boot_eval.overall)});
  table.AddRow({"VADA +data context (incremental)",
                std::to_string(incr_stats.steps),
                std::to_string(incr_stats.dependency_checks), Fmt(incr_ms, 1),
                std::to_string(incr_eval.rows), Fmt(incr_eval.overall)});
  table.AddRow({"ETL re-run (same new input)",
                std::to_string(etl_report.component_runs), "0",
                Fmt(etl_rerun_ms, 1), std::to_string(etl_eval.rows),
                Fmt(etl_eval.overall) + " (no repair/selection)"});
  table.AddRow({"VADA bootstrap (obs enabled)",
                std::to_string(obs_stats.steps),
                std::to_string(obs_stats.dependency_checks),
                Fmt(obs_boot_ms, 1), "-",
                "overhead " +
                    Fmt(boot_ms > 0 ? (obs_boot_ms / boot_ms - 1.0) * 100 : 0,
                        1) +
                    "%"});
  table.AddRow({"VADA bootstrap (threads=1)", "-", "-", Fmt(seq_ms, 1), "-",
                "-"});
  table.AddRow({"VADA bootstrap (threads=4 + snapshot cache)", "-", "-",
                Fmt(par_ms, 1), "-",
                "speedup " + Fmt(parallel_speedup, 2) + "x"});
  table.Print();

  std::printf(
      "\nobservability: instrumented bootstrap recorded %zu metric "
      "samples;\n  vada_datalog_rules_fired=%.0f "
      "vada_orchestrator_steps=%.0f\n",
      metrics_report.snapshot.samples.size(),
      metrics_report.snapshot.Value("vada_datalog_rules_fired"),
      metrics_report.snapshot.Value("vada_orchestrator_steps"));

  BenchReport report("orchestration");
  report.Add("etl_ms", etl_ms);
  report.Add("vada_bootstrap_ms", boot_ms);
  report.Add("vada_incremental_ms", incr_ms);
  report.Add("etl_rerun_ms", etl_rerun_ms);
  report.Add("vada_bootstrap_obs_enabled_ms", obs_boot_ms);
  report.AddNsPerOp("bootstrap_step_ns", boot_ms, boot_stats.steps);
  report.AddNsPerOp("dependency_check_ns", boot_ms,
                    boot_stats.dependency_checks);
  report.Add("bootstrap_steps", static_cast<double>(boot_stats.steps));
  report.Add("bootstrap_dep_checks",
             static_cast<double>(boot_stats.dependency_checks));
  report.Add("result_rows", static_cast<double>(incr_eval.rows));
  report.Add("overall_quality", incr_eval.overall);
  report.Add("datalog_rules_fired",
             metrics_report.snapshot.Value("vada_datalog_rules_fired"));
  report.Add("datalog_join_probes",
             metrics_report.snapshot.Value("vada_datalog_join_probes"));
  report.Add("bootstrap_threads1_ms", seq_ms);
  report.Add("bootstrap_threads4_cache_ms", par_ms);
  report.Add("parallel_speedup", parallel_speedup);
  report.Add("hardware_threads",
             static_cast<double>(std::thread::hardware_concurrency()));
  report.WriteJson();

  std::printf(
      "\nnotes:\n"
      "  * dependency checks are the overhead of declarative dynamic\n"
      "    orchestration (Datalog queries over control relations);\n"
      "  * the ETL pipeline cannot exploit the reference data at all —\n"
      "    no instance matching, no CFD repair, no quality-driven\n"
      "    selection — so its quality is frozen at the single-pass level\n"
      "    while VADA's improves with each input (E4/E5/E6).\n");
  return 0;
}
