// Experiment E13 — parallel & incremental evaluation (DESIGN.md §5e):
// quantifies the three PR-4 mechanisms on the demonstration scenario:
//
//  1. the version-keyed snapshot cache (eligibility scans stop
//     re-copying relations whose version did not move);
//  2. pool-parallel eligibility scans (dependency queries of one scan
//     evaluated concurrently over the immutable KB);
//  3. pool-parallel per-stratum rule evaluation in the reasoner.
//
// All three are bit-identity-preserving — every configuration below
// produces the same result rows in the same order — so this bench only
// measures wall time and cache effectiveness. Thread speedups track the
// host's real core count (recorded as hardware_threads): on a 1-core
// container the pool rows are ~1.0x and the snapshot cache carries the
// win, since it removes copying work outright rather than overlapping it.
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "transducer/network.h"
#include "transducer/transducer.h"
#include "wrangler/session.h"

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("E13: parallel & incremental evaluation\n\n");

  Scenario sc = MakeScenario(23, 300, 40);
  std::vector<Relation> sources = {sc.rightmove, sc.onthemarket,
                                   sc.deprivation};

  // One bootstrap per configuration; fresh session each time so no state
  // carries over. Returns wall ms; captures cache stats when enabled.
  struct RunOutcome {
    double ms = 0.0;
    size_t result_rows = 0;
    datalog::SnapshotCache::Stats cache;
  };
  auto bootstrap = [&](size_t threads, bool cache) {
    WranglerConfig config;
    config.obs.enabled = false;
    config.parallelism.threads = threads;
    config.parallelism.snapshot_cache = cache;
    auto session = std::make_unique<WranglingSession>(config);
    Status s = session->SetTargetSchema(PaperTargetSchema());
    for (const Relation& src : sources) {
      if (s.ok()) s = session->AddSource(src);
    }
    if (s.ok()) s = session->AddDataContext(sc.address,
                                            RelationRole::kReference,
                                            {{"street", "street"},
                                             {"postcode", "postcode"}});
    RunOutcome out;
    out.ms = TimeMs([&] {
      if (s.ok()) s = session->Run();
    });
    if (!s.ok()) {
      std::fprintf(stderr, "bootstrap(threads=%zu, cache=%d) failed: %s\n",
                   threads, cache ? 1 : 0, s.ToString().c_str());
      std::exit(1);
    }
    if (session->result() != nullptr) {
      out.result_rows = session->result()->size();
    }
    if (session->snapshot_cache() != nullptr) {
      out.cache = session->snapshot_cache()->stats();
    }
    return out;
  };

  // Warm-up run so first-touch allocation noise does not land on the
  // sequential baseline.
  (void)bootstrap(1, false);

  RunOutcome seq = bootstrap(1, false);
  RunOutcome cached = bootstrap(1, true);
  RunOutcome pooled = bootstrap(4, false);
  RunOutcome both = bootstrap(4, true);

  double cache_hit_rate =
      cached.cache.hits + cached.cache.misses > 0
          ? static_cast<double>(cached.cache.hits) /
                static_cast<double>(cached.cache.hits + cached.cache.misses)
          : 0.0;

  Table table({"configuration", "wall ms", "speedup vs sequential",
               "cache hits", "cache misses", "result rows"});
  auto speedup = [&](const RunOutcome& r) {
    return r.ms > 0 ? seq.ms / r.ms : 0.0;
  };
  table.AddRow({"threads=1 (sequential escape hatch)", Fmt(seq.ms, 1),
                "1.00", "-", "-", std::to_string(seq.result_rows)});
  table.AddRow({"threads=1 + snapshot cache", Fmt(cached.ms, 1),
                Fmt(speedup(cached), 2), std::to_string(cached.cache.hits),
                std::to_string(cached.cache.misses),
                std::to_string(cached.result_rows)});
  table.AddRow({"threads=4", Fmt(pooled.ms, 1), Fmt(speedup(pooled), 2), "-",
                "-", std::to_string(pooled.result_rows)});
  table.AddRow({"threads=4 + snapshot cache", Fmt(both.ms, 1),
                Fmt(speedup(both), 2), std::to_string(both.cache.hits),
                std::to_string(both.cache.misses),
                std::to_string(both.result_rows)});
  table.Print();

  // Standalone reasoner: grid transitive closure with and without the
  // pool, production chunking threshold.
  datalog::Program tc =
      datalog::Parser::Parse(
          "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).")
          .value();
  auto grid_db = [] {
    datalog::Database db;
    constexpr int side = 14;
    auto id = [](int r, int c) { return Value::Int(r * side + c); };
    for (int r = 0; r < side; ++r) {
      for (int c = 0; c < side; ++c) {
        if (c + 1 < side) {
          db.Insert("edge", Tuple({id(r, c), id(r, c + 1)}));
        }
        if (r + 1 < side) {
          db.Insert("edge", Tuple({id(r, c), id(r + 1, c)}));
        }
      }
    }
    return db;
  };
  auto eval_tc = [&](ThreadPool* pool) {
    datalog::Database db = grid_db();
    datalog::EvalOptions opts;
    opts.pool = pool;
    opts.parallel_chunk_threshold = 64;
    datalog::Evaluator eval(tc, opts);
    double ms = 0.0;
    if (eval.Prepare().ok()) {
      ms = TimeMs([&] { (void)eval.Run(&db); });
    }
    return ms;
  };
  double eval_seq_ms = eval_tc(nullptr);
  ThreadPool eval_pool(3);
  double eval_par_ms = eval_tc(&eval_pool);

  std::printf("\nreasoner grid TC 14x14: threads=1 %.1f ms, threads=4 %.1f ms"
              " (%.2fx)\n",
              eval_seq_ms, eval_par_ms,
              eval_par_ms > 0 ? eval_seq_ms / eval_par_ms : 0.0);

  // Scan-dominated scale scenario: the configuration the cache is built
  // for. Many registered transducers whose input dependencies read large
  // relations — every orchestration step re-evaluates every dependency,
  // so without the cache each scan re-copies hundreds of thousands of
  // rows that did not change. Transducer bodies are trivial on purpose:
  // this isolates the orchestration overhead itself (the paper's
  // cost-effectiveness argument is about exactly this bookkeeping).
  auto scan_scenario = [&](bool use_cache) {
    KnowledgeBase kb;
    constexpr int kRelations = 8;
    constexpr int kRowsPerRelation = 20000;
    for (int r = 0; r < kRelations; ++r) {
      std::string name = "big" + std::to_string(r);
      Status cs = kb.CreateRelation(Schema::Untyped(name, {"k", "v"}));
      for (int i = 0; cs.ok() && i < kRowsPerRelation; ++i) {
        cs = kb.Insert(name, Tuple({Value::Int(i % 64), Value::Int(i)}));
      }
      if (!cs.ok()) {
        std::fprintf(stderr, "scan scenario setup failed: %s\n",
                     cs.ToString().c_str());
        std::exit(1);
      }
    }
    TransducerRegistry registry;
    for (int r = 0; r < kRelations; ++r) {
      std::string big = "big" + std::to_string(r);
      std::string mark = "mark" + std::to_string(r);
      Status as = registry.Add(std::make_unique<FunctionTransducer>(
          "t" + std::to_string(r), "scan",
          "ready() :- " + big + "(0, V).",
          [mark](KnowledgeBase* kb) -> Status {
            Relation out(Schema::Untyped(mark, {"x"}));
            VADA_RETURN_IF_ERROR(out.Insert(Tuple({Value::Int(1)})));
            return kb->ReplaceRelationIfChanged(out);
          }));
      if (!as.ok()) std::exit(1);
    }
    OrchestratorOptions options;
    datalog::SnapshotCache cache;
    if (use_cache) options.snapshot_cache = &cache;
    NetworkTransducer orchestrator(&registry,
                                   std::make_unique<FifoPolicy>(), options);
    OrchestrationStats stats;
    double ms = TimeMs([&] {
      Status rs = orchestrator.Run(&kb, &stats);
      if (!rs.ok()) {
        std::fprintf(stderr, "scan scenario run failed: %s\n",
                     rs.ToString().c_str());
        std::exit(1);
      }
    });
    return std::make_pair(ms, stats.dependency_checks);
  };
  (void)scan_scenario(false);  // warm-up
  auto [scan_seq_ms, scan_checks] = scan_scenario(false);
  auto [scan_cache_ms, scan_cache_checks] = scan_scenario(true);
  (void)scan_cache_checks;
  double scan_speedup =
      scan_cache_ms > 0 ? scan_seq_ms / scan_cache_ms : 0.0;
  std::printf("\nscan-dominated orchestration (8 transducers x 20k-row "
              "dependencies, %zu dep checks):\n"
              "  no cache %.1f ms, snapshot cache %.1f ms (%.2fx)\n",
              scan_checks, scan_seq_ms, scan_cache_ms, scan_speedup);

  BenchReport report("parallel_eval");
  report.Add("bootstrap_threads1_ms", seq.ms);
  report.Add("bootstrap_threads1_cache_ms", cached.ms);
  report.Add("bootstrap_threads4_ms", pooled.ms);
  report.Add("bootstrap_threads4_cache_ms", both.ms);
  report.Add("cache_speedup", speedup(cached));
  report.Add("pool_speedup", speedup(pooled));
  report.Add("combined_speedup", speedup(both));
  report.Add("snapshot_cache_hits", static_cast<double>(cached.cache.hits));
  report.Add("snapshot_cache_misses",
             static_cast<double>(cached.cache.misses));
  report.Add("snapshot_cache_hit_rate", cache_hit_rate);
  report.Add("eval_grid_tc_threads1_ms", eval_seq_ms);
  report.Add("eval_grid_tc_threads4_ms", eval_par_ms);
  report.Add("eval_grid_tc_speedup",
             eval_par_ms > 0 ? eval_seq_ms / eval_par_ms : 0.0);
  report.Add("scan_scenario_no_cache_ms", scan_seq_ms);
  report.Add("scan_scenario_cache_ms", scan_cache_ms);
  report.Add("scan_scenario_speedup", scan_speedup);
  report.Add("scan_scenario_dep_checks", static_cast<double>(scan_checks));
  report.Add("result_rows", static_cast<double>(seq.result_rows));
  report.Add("hardware_threads",
             static_cast<double>(std::thread::hardware_concurrency()));
  report.WriteJson();

  std::printf(
      "\nnotes:\n"
      "  * every configuration produces identical result rows in\n"
      "    identical order (enforced by parallel_eval_test);\n"
      "  * the snapshot cache converts per-scan relation copies into\n"
      "    version checks, so it helps regardless of core count;\n"
      "  * pool speedups require real cores — compare against the\n"
      "    hardware_threads entry before reading anything into them.\n");
  return 0;
}
