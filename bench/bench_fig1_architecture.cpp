// Experiment E1 — Figure 1 (the VADA architecture): demonstrates that
// every architectural component participates in an end-to-end run and
// measures where the time goes. The "figure" is reproduced as the set of
// components exercised plus their interactions (the orchestration trace).
#include <map>

#include "bench/bench_util.h"
#include "wrangler/session.h"

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("E1: architecture liveness + component timing (Figure 1)\n\n");
  Scenario sc = MakeScenario(7);

  WranglingSession session;
  Status s = session.SetTargetSchema(PaperTargetSchema());
  if (s.ok()) s = session.AddSource(sc.rightmove);
  if (s.ok()) s = session.AddSource(sc.onthemarket);
  if (s.ok()) s = session.AddSource(sc.deprivation);
  if (s.ok()) {
    s = session.AddDataContext(sc.address, RelationRole::kReference,
                               {{"street", "street"},
                                {"postcode", "postcode"}});
  }
  UserContext uc;
  uc.AddStatement("completeness", "crimerank", "strongly", "accuracy",
                  "property.type");
  if (s.ok()) s = session.SetUserContext(uc);

  OrchestrationStats stats;
  double total_ms = TimeMs([&] {
    if (s.ok()) s = session.Run(&stats);
  });
  if (!s.ok()) {
    std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Aggregate per-transducer timing from the trace.
  std::map<std::string, std::pair<size_t, double>> per_transducer;
  std::map<std::string, double> per_activity;
  for (const TraceEvent& e : session.trace().events()) {
    per_transducer[e.transducer].first += 1;
    per_transducer[e.transducer].second += e.duration_ms;
    per_activity[e.activity] += e.duration_ms;
  }

  Table table({"component (transducer)", "activity", "executions",
               "total ms"});
  for (const auto& [name, stat] : per_transducer) {
    std::string activity;
    for (const TraceEvent& e : session.trace().events()) {
      if (e.transducer == name) {
        activity = e.activity;
        break;
      }
    }
    table.AddRow({name, activity, std::to_string(stat.first),
                  Fmt(stat.second, 2)});
  }
  table.Print();

  std::printf("\norchestration: %zu steps (%zu effective), "
              "%zu dependency checks, %.1f ms wall\n",
              stats.steps, stats.effective_steps, stats.dependency_checks,
              total_ms);
  std::printf("knowledge base relations after run: %zu\n",
              session.kb().RelationNames().size());
  std::printf("result rows: %zu\n",
              session.result() == nullptr ? 0 : session.result()->size());

  std::printf("\nFigure 1 component checklist:\n");
  auto check = [&](const char* label, bool ok) {
    std::printf("  [%s] %s\n", ok ? "x" : " ", label);
  };
  check("Transducers (all standard components executed)",
        per_transducer.size() >= 8);
  check("Knowledge Base (holds data + metadata + control relations)",
        session.kb().HasRelation("match") && session.kb().HasRelation(
            "quality_metric"));
  check("Vadalog Reasoner (dependencies + mappings evaluated as Datalog)",
        session.kb().HasRelation("mapping"));
  check("User Context (pairwise priorities drove selection)",
        session.kb().HasRelation("user_context"));
  check("Data Context (reference data registered)",
        session.kb().HasRelation("data_context"));
  check("Dynamic orchestration trace (browsable)",
        session.trace().size() > 0);
  return 0;
}
