// Experiment E3 — Table 1 (transducer input dependencies): reproduces the
// table's rows as live dependency checks against the knowledge base, and
// shows the defining behaviour — a transducer "becomes available for
// execution when that data is available in the knowledge base" — by
// re-checking the dependencies as each kind of input arrives. Also
// measures the cost of dependency evaluation (the price of declarative
// orchestration quantified in E8).
#include "bench/bench_util.h"
#include "transducer/network.h"
#include "wrangler/session.h"

namespace {

const char* kTable1Rows[][2] = {
    // activity, transducer (the paper's Table 1 plus the full suite)
    {"Matching", "schema_matching"},
    {"Matching", "instance_matching"},
    {"Matching", "match_combination"},
    {"Mapping", "mapping_generation"},
    {"Mapping", "mapping_selection"},
    {"Quality", "cfd_learning"},
    {"Quality", "quality_metrics"},
    {"Execution", "mapping_execution"},
    {"Repair", "mapping_repair"},
    {"Fusion", "fusion"},
    {"Feedback", "feedback_propagation"},
};

}  // namespace

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("E3: Table 1 — transducer input dependencies\n\n");
  Scenario sc = MakeScenario(5, /*properties=*/150, /*postcodes=*/25);

  // A session provides the registered standard transducers; we drive the
  // satisfaction checks manually, stage by stage.
  WranglingSession session;
  Status s = session.SetTargetSchema(PaperTargetSchema());
  if (!s.ok()) return 1;

  // A scratch orchestrator for IsSatisfied (no execution here).
  TransducerRegistry probe_registry;
  auto state = std::make_unique<WranglingState>();
  state->target_relation = "property";
  if (!RegisterStandardTransducers(&probe_registry, state.get()).ok()) {
    return 1;
  }
  NetworkTransducer probe(&probe_registry, std::make_unique<FifoPolicy>());

  auto snapshot = [&](const char* stage) {
    std::printf("stage: %s\n", stage);
    Table table({"activity", "transducer", "input dependency satisfied?"});
    for (const auto& row : kTable1Rows) {
      Transducer* t = probe_registry.Find(row[1]);
      if (t == nullptr) continue;
      Result<bool> ready = probe.IsSatisfied(*t, &session.kb());
      table.AddRow({row[0], row[1],
                    ready.ok() ? (ready.value() ? "yes" : "no") : "error"});
    }
    table.Print();
    std::printf("\n");
  };

  snapshot("target schema only");

  session.AddSource(sc.rightmove);
  session.AddSource(sc.onthemarket);
  session.AddSource(sc.deprivation);
  snapshot("+ sources (Src/Target schemas + instances exist)");

  session.Run();
  snapshot("+ bootstrap run (matches, mappings, metrics exist)");

  session.AddDataContext(sc.address, RelationRole::kReference,
                         {{"street", "street"}, {"postcode", "postcode"}});
  snapshot("+ data context (enables instance matching, CFD learning)");

  const Relation* result = session.result();
  if (result != nullptr && !result->empty()) {
    session.AddFeedback(FeedbackItem{result->rows()[0], "bedrooms",
                                     FeedbackPolarity::kIncorrect});
  }
  snapshot("+ feedback (enables feedback propagation)");

  // Dependency-evaluation cost: how expensive is the declarative check?
  std::printf("dependency evaluation latency (200 checks each):\n");
  Table timing({"transducer", "microseconds/check"});
  for (const auto& row : kTable1Rows) {
    Transducer* t = probe_registry.Find(row[1]);
    if (t == nullptr) continue;
    const int kChecks = 200;
    double ms = TimeMs([&] {
      for (int i = 0; i < kChecks; ++i) {
        probe.IsSatisfied(*t, &session.kb());
      }
    });
    timing.AddRow({row[1], Fmt(ms * 1000.0 / kChecks, 1)});
  }
  timing.Print();
  return 0;
}
