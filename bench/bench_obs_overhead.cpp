// Experiment O1 — observability overhead (DESIGN.md §5g): what does the
// introspection layer cost when it is off, on, and actively scraped?
//
// Four configurations bootstrap the demonstration scenario:
//
//  1. obs disabled          — ObsOptions{enabled = false}; every
//     instrumentation site reduces to a null-pointer check. This is the
//     zero-cost contract: it must stay within noise (<1%) of...
//  2. obs enabled, no HTTP  — metrics + spans recorded in-process,
//     http_port unset (the default -1), no exposition thread.
//  3. obs enabled + HTTP    — introspection server on an ephemeral port,
//     idle (bound and listening, never scraped).
//  4. obs enabled + scrapes — same, with a /metrics GET after every
//     session Run, the worst realistic scrape cadence.
//
// A fifth row times EXPLAIN ANALYZE of a transitive-closure program
// against plain evaluation of the same program, bounding the cost of
// per-literal attribution (only paid when Explain is called; Run never
// materializes explain structures).
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/explain.h"
#include "datalog/parser.h"
#include "obs/http_server.h"
#include "wrangler/session.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

// Minimal blocking GET against 127.0.0.1:port; returns the raw response
// (empty on any socket failure). Enough to exercise the scrape path.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::string response;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
      ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      response.append(buf, static_cast<size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

}  // namespace

int main() {
  using namespace vada;
  using namespace vada::bench;

  std::printf("O1: observability overhead\n\n");

  Scenario sc = MakeScenario(41, 300, 40);
  std::vector<Relation> sources = {sc.rightmove, sc.onthemarket,
                                   sc.deprivation};

  // One full bootstrap per configuration, `reps` times; fresh session
  // each rep. `scrape` GETs /metrics after each Run.
  auto bootstrap_ms = [&](const obs::ObsOptions& obs, bool scrape,
                          size_t reps) {
    double total = 0.0;
    for (size_t rep = 0; rep < reps; ++rep) {
      WranglerConfig config;
      config.obs = obs;
      auto session = std::make_unique<WranglingSession>(config);
      Status s = session->SetTargetSchema(PaperTargetSchema());
      for (const Relation& src : sources) {
        if (s.ok()) s = session->AddSource(src);
      }
      total += TimeMs([&] {
        if (s.ok()) s = session->Run();
        if (scrape && session->obs().http_server() != nullptr) {
          std::string r = HttpGet(session->obs().http_port(), "/metrics");
          if (r.find("vada_") == std::string::npos) {
            std::fprintf(stderr, "scrape returned no metrics\n");
            std::exit(1);
          }
        }
      });
      if (!s.ok()) {
        std::fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
    return total / static_cast<double>(reps);
  };

  const size_t kReps = 5;
  obs::ObsOptions disabled;
  disabled.enabled = false;
  obs::ObsOptions enabled;  // defaults: metrics + spans, no HTTP
  obs::ObsOptions with_http = enabled;
  with_http.http_port = 0;  // ephemeral

  // Warm-up so first-touch allocation noise does not land on a row.
  (void)bootstrap_ms(disabled, false, 1);

  double off_ms = bootstrap_ms(disabled, false, kReps);
  double on_ms = bootstrap_ms(enabled, false, kReps);
  double http_idle_ms = bootstrap_ms(with_http, false, kReps);
  double http_scrape_ms = bootstrap_ms(with_http, true, kReps);

  // EXPLAIN ANALYZE attribution cost vs plain Run of the same program.
  const std::string kProgram =
      "tc(X,Y) :- edge(X,Y).\n"
      "tc(X,Z) :- edge(X,Y), tc(Y,Z).\n";
  Relation edges(Schema::Untyped("edge", {"src", "dst"}));
  for (int i = 0; i < 400; ++i) {
    (void)edges.Insert(Tuple{Value::Int(i), Value::Int((i + 1) % 400)});
  }
  auto eval_ms = [&](bool analyze) {
    return TimeMs([&] {
      Result<datalog::Program> program = datalog::Parser::Parse(kProgram);
      datalog::Database db;
      db.LoadRelation(edges);
      datalog::Evaluator eval(std::move(program).value());
      Status s = eval.Prepare();
      if (s.ok()) {
        if (analyze) {
          datalog::PlanExplain plan;
          s = eval.Explain(&db, &plan, /*analyze=*/true);
        } else {
          s = eval.Run(&db);
        }
      }
      if (!s.ok()) {
        std::fprintf(stderr, "eval failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    });
  };
  (void)eval_ms(false);  // warm-up
  double run_ms = eval_ms(false);
  double explain_ms = eval_ms(true);

  auto pct = [](double base, double v) {
    return base > 0.0 ? (v - base) / base * 100.0 : 0.0;
  };

  Table table({"configuration", "bootstrap ms", "vs disabled"});
  table.AddRow({"obs disabled", Fmt(off_ms), "--"});
  table.AddRow({"obs enabled, no http", Fmt(on_ms),
                Fmt(pct(off_ms, on_ms), 1) + "%"});
  table.AddRow({"obs + http idle", Fmt(http_idle_ms),
                Fmt(pct(off_ms, http_idle_ms), 1) + "%"});
  table.AddRow({"obs + /metrics scrape", Fmt(http_scrape_ms),
                Fmt(pct(off_ms, http_scrape_ms), 1) + "%"});
  table.Print();

  std::printf("\nEXPLAIN ANALYZE attribution: run=%sms analyze=%sms (%s%%)\n",
              Fmt(run_ms).c_str(), Fmt(explain_ms).c_str(),
              Fmt(pct(run_ms, explain_ms), 1).c_str());

  BenchReport report("obs_overhead");
  report.Add("disabled_ms", off_ms);
  report.Add("enabled_ms", on_ms);
  report.Add("http_idle_ms", http_idle_ms);
  report.Add("http_scrape_ms", http_scrape_ms);
  report.Add("enabled_overhead_pct", pct(off_ms, on_ms));
  report.Add("run_ms", run_ms);
  report.Add("explain_analyze_ms", explain_ms);
  report.WriteJson();
  return 0;
}
