// Experiment E9 — reasoner ablation: semi-naive vs naive evaluation on
// recursive workloads, plus parser and join micro-benchmarks. This backs
// the architecture's reliance on a Datalog reasoner for orchestration
// and mappings: dependency checks and mapping execution must be cheap.
//
// Expected shape: semi-naive dominates naive increasingly with input
// size (naive re-derives the full closure each round).
#include <benchmark/benchmark.h>

#include <thread>

#include "common/thread_pool.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace vada::datalog {
namespace {

Program TcProgram() {
  return Parser::Parse(
             "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).")
      .value();
}

Database ChainDb(int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  return db;
}

Database GridDb(int side) {
  Database db;
  auto id = [side](int r, int c) { return Value::Int(r * side + c); };
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      if (c + 1 < side) db.Insert("edge", Tuple({id(r, c), id(r, c + 1)}));
      if (r + 1 < side) db.Insert("edge", Tuple({id(r, c), id(r + 1, c)}));
    }
  }
  return db;
}

void BM_TransitiveClosureChain(benchmark::State& state) {
  bool semi_naive = state.range(1) == 1;
  int n = static_cast<int>(state.range(0));
  Program program = TcProgram();
  for (auto _ : state) {
    Database db = ChainDb(n);
    EvalOptions opts;
    opts.semi_naive = semi_naive;
    Evaluator eval(program, opts);
    if (!eval.Prepare().ok()) state.SkipWithError("prepare failed");
    if (!eval.Run(&db).ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(db.FactCount("tc"));
  }
  state.SetLabel(semi_naive ? "semi_naive" : "naive");
  state.counters["facts"] = static_cast<double>(n) * (n + 1) / 2;
}
BENCHMARK(BM_TransitiveClosureChain)
    ->Args({64, 1})
    ->Args({64, 0})
    ->Args({128, 1})
    ->Args({128, 0})
    ->Args({256, 1})
    ->Args({256, 0})
    ->Unit(benchmark::kMillisecond);

void BM_TransitiveClosureGrid(benchmark::State& state) {
  bool semi_naive = state.range(1) == 1;
  int side = static_cast<int>(state.range(0));
  Program program = TcProgram();
  for (auto _ : state) {
    Database db = GridDb(side);
    EvalOptions opts;
    opts.semi_naive = semi_naive;
    Evaluator eval(program, opts);
    if (!eval.Prepare().ok()) state.SkipWithError("prepare failed");
    if (!eval.Run(&db).ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(db.FactCount("tc"));
  }
  state.SetLabel(semi_naive ? "semi_naive" : "naive");
}
BENCHMARK(BM_TransitiveClosureGrid)
    ->Args({8, 1})
    ->Args({8, 0})
    ->Args({12, 1})
    ->Args({12, 0})
    ->Unit(benchmark::kMillisecond);

/// Join-planner ablation on a triangle query: full-scan oracle vs
/// composite-index + reordered evaluation (DESIGN.md §5f). The wider
/// comparison (work counters, scenario run) lives in bench_join_planner.
void BM_JoinPlannerTriangles(benchmark::State& state) {
  bool planner_on = state.range(1) == 1;
  int edges = static_cast<int>(state.range(0));
  Program program =
      Parser::Parse("tri(X, Y, Z) :- edge(X, Y), edge(Y, Z), edge(Z, X).")
          .value();
  Database edb;
  uint64_t s = 42;
  for (int i = 0; i < edges; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    int64_t a = static_cast<int64_t>((s >> 33) % 60);
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    int64_t b = static_cast<int64_t>((s >> 33) % 60);
    edb.Insert("edge", Tuple({Value::Int(a), Value::Int(b)}));
  }
  for (auto _ : state) {
    Database db = edb;
    EvalOptions opts;
    if (!planner_on) {
      opts.planner = PlannerOptions{.indexes = false, .reorder = false};
    }
    Evaluator eval(program, opts);
    if (!eval.Prepare().ok()) state.SkipWithError("prepare failed");
    if (!eval.Run(&db).ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(db.FactCount("tri"));
  }
  state.SetLabel(planner_on ? "indexed+reordered" : "full-scan oracle");
}
BENCHMARK(BM_JoinPlannerTriangles)
    ->Args({200, 1})
    ->Args({200, 0})
    ->Args({400, 1})
    ->Args({400, 0})
    ->Unit(benchmark::kMillisecond);

void BM_StratifiedNegation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Program program = Parser::Parse(
                        "reach(X) :- src(X).\n"
                        "reach(Y) :- reach(X), edge(X, Y).\n"
                        "unreach(X) :- node(X), not reach(X).\n")
                        .value();
  for (auto _ : state) {
    Database db = ChainDb(n);
    db.Insert("src", Tuple({Value::Int(0)}));
    for (int i = 0; i <= n; ++i) db.Insert("node", Tuple({Value::Int(i)}));
    Evaluator eval(program);
    if (!eval.Prepare().ok()) state.SkipWithError("prepare failed");
    if (!eval.Run(&db).ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(db.FactCount("unreach"));
  }
}
BENCHMARK(BM_StratifiedNegation)->Arg(128)->Arg(512)->Unit(
    benchmark::kMillisecond);

void BM_Aggregation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Program program =
      Parser::Parse("stats(G, count<V>, sum<V>) :- m(G, V).").value();
  for (auto _ : state) {
    Database db;
    for (int i = 0; i < n; ++i) {
      db.Insert("m", Tuple({Value::Int(i % 50), Value::Int(i)}));
    }
    Evaluator eval(program);
    if (!eval.Prepare().ok()) state.SkipWithError("prepare failed");
    if (!eval.Run(&db).ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(db.FactCount("stats"));
  }
}
BENCHMARK(BM_Aggregation)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

void BM_Parser(benchmark::State& state) {
  std::string source;
  for (int i = 0; i < 100; ++i) {
    source += "p" + std::to_string(i) + "(X, Y) :- q(X, Z), r(Z, Y), X < Y, "
              "not s(X), W = X + 1.\n";
  }
  for (auto _ : state) {
    Result<Program> p = Parser::Parse(source);
    if (!p.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(p.value().rules.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(source.size()));
}
BENCHMARK(BM_Parser);

void BM_IndexedJoin(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Program program =
      Parser::Parse("j(A, C) :- r(A, B), s(B, C).").value();
  for (auto _ : state) {
    Database db;
    for (int i = 0; i < n; ++i) {
      db.Insert("r", Tuple({Value::Int(i), Value::Int(i % 100)}));
      db.Insert("s", Tuple({Value::Int(i % 100), Value::Int(i)}));
    }
    Evaluator eval(program);
    if (!eval.Prepare().ok()) state.SkipWithError("prepare failed");
    if (!eval.Run(&db).ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(db.FactCount("j"));
  }
}
BENCHMARK(BM_IndexedJoin)->Arg(1000)->Arg(5000)->Unit(
    benchmark::kMillisecond);

// Parallel per-stratum evaluation (DESIGN.md §5e): the same workloads
// with a worker pool. range(0) is the *total* thread count — the caller
// participates, so threads=T means a pool of T-1 workers. threads=1 is
// the sequential escape hatch; outputs are bit-identical at any setting,
// only wall time changes. Speedups track the host's true core count
// (hardware_threads counter) — a single-core container shows ~1.0x.
void BM_ParallelIndexedJoin(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  Program program = Parser::Parse("j(A, C) :- r(A, B), s(B, C).").value();
  ThreadPool pool(static_cast<size_t>(threads - 1));
  for (auto _ : state) {
    Database db;
    for (int i = 0; i < n; ++i) {
      db.Insert("r", Tuple({Value::Int(i), Value::Int(i % 100)}));
      db.Insert("s", Tuple({Value::Int(i % 100), Value::Int(i)}));
    }
    EvalOptions opts;
    if (threads > 1) opts.pool = &pool;
    Evaluator eval(program, opts);
    if (!eval.Prepare().ok()) state.SkipWithError("prepare failed");
    if (!eval.Run(&db).ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(db.FactCount("j"));
  }
  state.SetLabel("threads=" + std::to_string(threads));
  state.counters["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ParallelIndexedJoin)
    ->Args({1, 5000})
    ->Args({4, 5000})
    ->Unit(benchmark::kMillisecond);

void BM_ParallelTransitiveClosureGrid(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  int side = static_cast<int>(state.range(1));
  Program program = TcProgram();
  ThreadPool pool(static_cast<size_t>(threads - 1));
  for (auto _ : state) {
    Database db = GridDb(side);
    EvalOptions opts;
    if (threads > 1) opts.pool = &pool;
    opts.parallel_chunk_threshold = 64;
    Evaluator eval(program, opts);
    if (!eval.Prepare().ok()) state.SkipWithError("prepare failed");
    if (!eval.Run(&db).ok()) state.SkipWithError("run failed");
    benchmark::DoNotOptimize(db.FactCount("tc"));
  }
  state.SetLabel("threads=" + std::to_string(threads));
  state.counters["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ParallelTransitiveClosureGrid)
    ->Args({1, 12})
    ->Args({4, 12})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vada::datalog

BENCHMARK_MAIN();
