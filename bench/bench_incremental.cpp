// Experiment I1 (extension beyond the paper): delta-driven differential
// maintenance (DESIGN.md §5k) against from-scratch re-evaluation on
// streaming update workloads.
//
// I1a is the acceptance row: a mapping-shaped join over ~2.5k source
// rows absorbs a stream of 10,000 feedback-sized events (single-row
// inserts, occasional retracts, periodic 50-row bursts). The
// incremental engine must do at least 10x less join work (join_probes +
// index_probes + index_candidates, the machine-independent measure
// bench_join_planner established) than re-running the evaluation per
// event. Exit status enforces the gate.
//
// I1b streams insert-only edges into a recursive reachability program —
// the monotone continuation path. I1c replays source-batch events
// through two full WranglingSessions, incremental on vs off, reporting
// end-to-end wall time and the vada_delta_* gauge totals
// (informational, no gate: the session also spends time in
// matching/fusion, which deltas do not touch).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datalog/differential.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "wrangler/session.h"

namespace {

using namespace vada;
using namespace vada::bench;
using datalog::Database;
using datalog::DeltaStats;
using datalog::DifferentialEvaluator;
using datalog::DifferentialOptions;
using datalog::EvalOptions;
using datalog::EvalStats;
using datalog::Evaluator;
using datalog::Parser;
using datalog::Program;
using datalog::RelationDelta;

size_t Work(const EvalStats& s) {
  return s.join_probes + s.index_probes + s.index_candidates;
}

Tuple Listing(int64_t id, int64_t n, int64_t p) {
  return Tuple({Value::Int(id), Value::Int(n), Value::Int(p)});
}

/// One full from-scratch evaluation of `program` over `base`; returns
/// join work, adds wall time to *ms.
size_t FullRun(const Program& program, const Database& base, double* ms) {
  Database db = base;
  Evaluator eval(program);
  if (!eval.Prepare().ok()) return 0;
  EvalStats stats;
  *ms += TimeMs([&] { (void)eval.Run(&db, &stats); });
  return Work(stats);
}

}  // namespace

int main() {
  std::printf("I1: differential maintenance vs from-scratch re-evaluation\n\n");
  BenchReport report("incremental");
  Table table({"workload", "events", "full work", "delta work",
               "work reduction", "full ms", "delta ms"});

  // ---------------------------------------------------------------
  // I1a (gate >= 10x): mapping-shaped join, 10k-event update stream.
  // ---------------------------------------------------------------
  const int kEvents = 10000;
  Result<Program> join_program = Parser::Parse(
      "result(N, P, C) :- listing(Id, N, P), crime(N, C).");
  if (!join_program.ok()) {
    std::fprintf(stderr, "parse: %s\n",
                 join_program.status().ToString().c_str());
    return 1;
  }
  Rng rng(7);
  Database base;
  std::vector<Tuple> live;
  for (int i = 0; i < 2000; ++i) {
    Tuple t = Listing(i, rng.UniformInt(0, 400), rng.UniformInt(50, 900));
    base.Insert("listing", t);
    live.push_back(t);
  }
  for (int n = 0; n <= 400; ++n) {
    base.Insert("crime", Tuple({Value::Int(n), Value::Int(rng.UniformInt(1, 10))}));
  }

  // Pre-generate the event stream so both paths replay the identical
  // updates: mostly single inserts, 10% retracts of live rows, a 50-row
  // burst every 500 events (still under the fallback threshold).
  std::vector<RelationDelta> events;
  events.reserve(kEvents);
  int64_t next_id = 1'000'000;
  {
    std::vector<Tuple> shadow = live;
    for (int e = 0; e < kEvents; ++e) {
      RelationDelta delta;
      datalog::DeltaRows& rows = delta["listing"];
      if (e > 0 && e % 500 == 0) {
        for (int i = 0; i < 50; ++i) {
          Tuple t = Listing(next_id++, rng.UniformInt(0, 400),
                            rng.UniformInt(50, 900));
          rows.inserts.push_back(t);
          shadow.push_back(t);
        }
      } else if (!shadow.empty() && rng.Bernoulli(0.1)) {
        size_t idx = rng.UniformInt(0, shadow.size() - 1);
        rows.retracts.push_back(shadow[idx]);
        shadow[idx] = shadow.back();
        shadow.pop_back();
      } else {
        Tuple t = Listing(next_id++, rng.UniformInt(0, 400),
                          rng.UniformInt(50, 900));
        rows.inserts.push_back(t);
        shadow.push_back(t);
      }
      events.push_back(std::move(delta));
    }
  }

  DifferentialEvaluator diff(join_program.value());
  if (!diff.Prepare().ok() || !diff.Initialize(base).ok()) {
    std::fprintf(stderr, "differential init failed\n");
    return 1;
  }
  size_t delta_work = 0;
  double delta_ms = 0;
  size_t full_work = 0;
  double full_ms = 0;
  {
    // Replay, keeping `base` equal to the post-event database for the
    // from-scratch path. Database has no retract, so retract events
    // rebuild it from the mirrored listing rows (rebuild cost is not
    // part of either engine's measured work).
    std::vector<Tuple> listings = live;
    Database crime_only;
    for (const Tuple& t : base.facts("crime")) crime_only.Insert("crime", t);
    for (const RelationDelta& delta : events) {
      DeltaStats st;
      double ms = TimeMs([&] { (void)diff.ApplyDelta(delta, &st); });
      delta_ms += ms;
      delta_work += Work(st.eval);
      bool retracted = false;
      for (const auto& [pred, rows] : delta) {
        for (const Tuple& t : rows.inserts) {
          listings.push_back(t);
          base.Insert(pred, t);
        }
        for (const Tuple& t : rows.retracts) {
          retracted = true;
          listings.erase(std::find(listings.begin(), listings.end(), t));
        }
      }
      if (retracted) {
        base = crime_only;
        for (const Tuple& t : listings) base.Insert("listing", t);
      }
      full_work += FullRun(join_program.value(), base, &full_ms);
    }
  }
  double reduction =
      delta_work > 0 ? static_cast<double>(full_work) / delta_work : 0.0;
  size_t diff_rows = diff.database().FactCount("result");
  Database check = base;
  Evaluator check_eval(join_program.value());
  (void)check_eval.Prepare();
  (void)check_eval.Run(&check);
  if (check.FactCount("result") != diff_rows) {
    std::fprintf(stderr, "I1a: RESULT MISMATCH %zu vs %zu\n",
                 check.FactCount("result"), diff_rows);
    return 1;
  }
  table.AddRow({"mapping_join_10k", std::to_string(kEvents),
                std::to_string(full_work), std::to_string(delta_work),
                Fmt(reduction, 1) + "x", Fmt(full_ms, 0), Fmt(delta_ms, 0)});
  report.Add("mapping_join_10k_events", kEvents);
  report.Add("mapping_join_10k_full_work", static_cast<double>(full_work));
  report.Add("mapping_join_10k_delta_work", static_cast<double>(delta_work));
  report.Add("mapping_join_10k_work_reduction", reduction);
  report.Add("mapping_join_10k_full_ms", full_ms);
  report.Add("mapping_join_10k_delta_ms", delta_ms);
  report.Add("mapping_join_10k_full_fallbacks",
             static_cast<double>(diff.lifetime_stats().full_fallbacks));

  // ---------------------------------------------------------------
  // I1b: recursive reachability, insert-only stream (monotone path).
  // ---------------------------------------------------------------
  Result<Program> reach_program = Parser::Parse(
      "reach(X) :- src(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n");
  if (!reach_program.ok()) return 1;
  Database rbase;
  rbase.Insert("src", Tuple({Value::Int(0)}));
  for (int i = 0; i < 1000; ++i) {
    rbase.Insert("edge", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  DifferentialEvaluator rdiff(reach_program.value());
  (void)rdiff.Prepare();
  (void)rdiff.Initialize(rbase);
  size_t rdelta_work = 0, rfull_work = 0;
  double rdelta_ms = 0, rfull_ms = 0;
  const int kEdgeEvents = 1000;
  for (int e = 0; e < kEdgeEvents; ++e) {
    RelationDelta delta;
    delta["edge"].inserts.push_back(
        Tuple({Value::Int(1000 + e), Value::Int(1001 + e)}));
    DeltaStats st;
    rdelta_ms += TimeMs([&] { (void)rdiff.ApplyDelta(delta, &st); });
    rdelta_work += Work(st.eval);
    rbase.Insert("edge", Tuple({Value::Int(1000 + e), Value::Int(1001 + e)}));
    rfull_work += FullRun(reach_program.value(), rbase, &rfull_ms);
  }
  double rreduction =
      rdelta_work > 0 ? static_cast<double>(rfull_work) / rdelta_work : 0.0;
  table.AddRow({"reach_chain_1k", std::to_string(kEdgeEvents),
                std::to_string(rfull_work), std::to_string(rdelta_work),
                Fmt(rreduction, 1) + "x", Fmt(rfull_ms, 0),
                Fmt(rdelta_ms, 0)});
  report.Add("reach_chain_1k_full_work", static_cast<double>(rfull_work));
  report.Add("reach_chain_1k_delta_work", static_cast<double>(rdelta_work));
  report.Add("reach_chain_1k_work_reduction", rreduction);

  // ---------------------------------------------------------------
  // I1c (informational): full sessions, source batches trickling in.
  // The session's vada_datalog_* families only count the wrangle
  // pipeline's own programs (mapping execution reports no EvalStats on
  // either path), so this row compares wall time and reports the
  // incremental session's vada_delta_* gauges.
  // ---------------------------------------------------------------
  size_t sdelta_applies = 0, sdelta_reinits = 0;
  size_t sfull_rows = 0, sdelta_rows = 0;
  auto run_session = [&](bool incremental, size_t* rows) {
    Scenario sc = MakeScenario(4000, 300, 40);
    WranglerConfig config;
    config.incremental.enabled = incremental;
    WranglingSession session(config);
    Status s = session.SetTargetSchema(PaperTargetSchema());
    if (s.ok()) s = session.AddSource(sc.rightmove);
    if (s.ok()) s = session.AddSource(sc.onthemarket);
    if (s.ok()) s = session.AddSource(sc.deprivation);
    if (s.ok()) {
      s = session.AddDataContext(sc.address, RelationRole::kReference,
                                 {{"street", "street"},
                                  {"postcode", "postcode"}});
    }
    double ms = TimeMs([&] {
      if (s.ok()) s = session.Run();
      for (uint64_t e = 0; s.ok() && e < 30; ++e) {
        Scenario more = MakeScenario(5000 + e, 2, 2);
        s = session.AddSource(more.rightmove);
        if (s.ok()) s = session.Run();
      }
    });
    if (!s.ok()) {
      std::fprintf(stderr, "session: %s\n", s.ToString().c_str());
      return 0.0;
    }
    if (incremental) {
      obs::MetricsSnapshot snap = session.MetricsReport().snapshot;
      sdelta_applies = static_cast<size_t>(snap.Value("vada_delta_applies"));
      sdelta_reinits =
          static_cast<size_t>(snap.Value("vada_delta_full_reinits"));
    }
    *rows = session.result() != nullptr ? session.result()->size() : 0;
    return ms;
  };
  double sfull_ms = run_session(false, &sfull_rows);
  double sdelta_ms = run_session(true, &sdelta_rows);
  if (sfull_rows != sdelta_rows) {
    std::fprintf(stderr, "I1c: RESULT MISMATCH %zu vs %zu rows\n", sfull_rows,
                 sdelta_rows);
    return 1;
  }
  table.AddRow({"session_30_batches", "30", "-", "-", "-", Fmt(sfull_ms, 0),
                Fmt(sdelta_ms, 0)});
  report.Add("session_30_batches_full_ms", sfull_ms);
  report.Add("session_30_batches_delta_ms", sdelta_ms);
  report.Add("session_30_batches_delta_applies",
             static_cast<double>(sdelta_applies));
  report.Add("session_30_batches_full_reinits",
             static_cast<double>(sdelta_reinits));

  table.Print();
  std::printf("\nsession_30_batches: %zu delta applies, %zu full re-inits "
              "across 31 incremental runs\n",
              sdelta_applies, sdelta_reinits);
  std::printf("mapping_join_10k join-work reduction: %.1fx "
              "(target >= 10x)\n",
              reduction);
  report.WriteJson();
  return reduction >= 10.0 ? 0 : 1;
}
