// vada_waldump: inspect and verify VADA knowledge-base durability state.
//
//   vada_waldump [options] <durability-dir>
//
// Walks the write-ahead log (and checkpoint inventory) of a durability
// directory produced by a session running with durability enabled
// (DESIGN.md §5i). By default prints one human-readable line per WAL
// record plus a trailer with totals; --json emits one machine-readable
// document instead. --verify prints only the trailer and exits nonzero
// when the log has a torn tail or a checkpoint fails its checksums —
// suitable for backup validation cron jobs.

#include <cinttypes>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "kb/checkpoint.h"
#include "kb/fs_util.h"
#include "kb/wal.h"

namespace {

using vada::CheckpointInfo;
using vada::ListCheckpoints;
using vada::ListWalSegments;
using vada::ReadCheckpointInfo;
using vada::ScanWal;
using vada::Status;
using vada::WalPosition;
using vada::WalReadStats;
using vada::WalRecord;
using vada::WalRecordType;
using vada::WalRecordTypeName;

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] <durability-dir>\n"
      << "\n"
      << "Dump and verify a VADA knowledge-base WAL + checkpoint directory.\n"
      << "\n"
      << "options:\n"
      << "  --verify   no record listing; verify every checkpoint's\n"
      << "             checksums and the whole WAL, exit 1 on corruption\n"
      << "             (a torn tail, which recovery tolerates, exits 1 so\n"
      << "             operators notice; everything intact exits 0)\n"
      << "  --json     one JSON document: checkpoints, records, trailer\n"
      << "  -h, --help this message\n";
  return 2;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RecordJson(const WalRecord& r, const WalPosition& at) {
  std::string out = "{\"segment\":" + std::to_string(at.segment) +
                    ",\"end_offset\":" + std::to_string(at.offset) +
                    ",\"type\":\"" + WalRecordTypeName(r.type) +
                    "\",\"txn\":" + std::to_string(r.txn_id);
  switch (r.type) {
    case WalRecordType::kTxnBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kCreateRelation:
      out += ",\"schema\":\"" + JsonEscape(r.schema.ToString()) + "\"";
      break;
    case WalRecordType::kInsert:
    case WalRecordType::kRetract:
      out += ",\"relation\":\"" + JsonEscape(r.relation) +
             "\",\"tuple\":\"" + JsonEscape(r.tuple.ToString()) + "\"";
      break;
    case WalRecordType::kClear:
    case WalRecordType::kDrop:
      out += ",\"relation\":\"" + JsonEscape(r.relation) + "\"";
      break;
    case WalRecordType::kCatalogRole:
      out += ",\"relation\":\"" + JsonEscape(r.relation) + "\",\"role\":\"";
      out += r.role_removed ? "(removed)" : vada::RelationRoleName(r.role);
      out += "\"";
      break;
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  bool json = false;
  std::string directory;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      return Usage(argv[0]);
    } else if (argv[i][0] == '-') {
      std::cerr << "unknown option: " << argv[i] << "\n";
      return Usage(argv[0]);
    } else if (directory.empty()) {
      directory = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (directory.empty()) return Usage(argv[0]);
  if (!vada::IsDirectory(directory)) {
    std::cerr << argv[0] << ": " << directory << " is not a directory\n";
    return 2;
  }

  bool corrupt = false;

  // Checkpoints first: id, WAL start and checksum verdict for each.
  struct CheckpointLine {
    uint64_t id;
    bool ok;
    std::string detail;  // wal start or failure reason
  };
  std::vector<CheckpointLine> checkpoints;
  for (uint64_t id : ListCheckpoints(directory)) {
    vada::Result<CheckpointInfo> info = ReadCheckpointInfo(directory, id);
    if (info.ok()) {
      checkpoints.push_back(
          {id, true, "wal start " + info.value().wal_start.ToString()});
    } else {
      corrupt = true;
      checkpoints.push_back({id, false, info.status().message()});
    }
  }

  std::string records_json;
  WalReadStats stats;
  WalPosition from{0, 0};
  std::vector<uint64_t> segments = ListWalSegments(directory);
  if (!segments.empty()) from.segment = segments.front();
  Status scan = ScanWal(
      directory, from,
      [&](const WalRecord& r, const WalPosition& at) -> Status {
        if (!verify) {
          if (json) {
            if (!records_json.empty()) records_json += ",\n  ";
            records_json += RecordJson(r, at);
          } else {
            std::printf("%010" PRIu64 ":%08" PRIu64 " %s\n", at.segment,
                        at.offset, r.ToString().c_str());
          }
        }
        return Status::OK();
      },
      &stats);
  if (!scan.ok()) {
    std::cerr << argv[0] << ": " << scan.ToString() << "\n";
    return 2;
  }
  if (stats.torn_tail) corrupt = true;

  if (json) {
    std::string out = "{\n  \"directory\": \"" + JsonEscape(directory) +
                      "\",\n  \"checkpoints\": [";
    for (size_t i = 0; i < checkpoints.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"id\":" + std::to_string(checkpoints[i].id) +
             ",\"valid\":" + (checkpoints[i].ok ? "true" : "false") +
             ",\"detail\":\"" + JsonEscape(checkpoints[i].detail) + "\"}";
    }
    out += "],\n  \"records\": [";
    if (!records_json.empty()) out += "\n  " + records_json + "\n  ";
    out += "],\n";
    out += "  \"record_count\": " + std::to_string(stats.records) + ",\n";
    out += "  \"commits\": " + std::to_string(stats.commits) + ",\n";
    out += "  \"aborts\": " + std::to_string(stats.aborts) + ",\n";
    out += "  \"bytes\": " + std::to_string(stats.bytes) + ",\n";
    out += std::string("  \"torn_tail\": ") +
           (stats.torn_tail ? "true" : "false") + ",\n";
    out += "  \"torn_reason\": \"" + JsonEscape(stats.torn_reason) + "\",\n";
    out += "  \"end\": \"" + stats.end.ToString() + "\"\n}";
    std::cout << out << "\n";
  } else {
    for (const CheckpointLine& c : checkpoints) {
      std::printf("checkpoint %" PRIu64 ": %s%s\n", c.id,
                  c.ok ? "" : "CORRUPT: ", c.detail.c_str());
    }
    std::printf(
        "%" PRIu64 " records (%" PRIu64 " commits, %" PRIu64
        " aborts), %" PRIu64 " bytes, end at %s\n",
        stats.records, stats.commits, stats.aborts, stats.bytes,
        stats.end.ToString().c_str());
    if (stats.torn_tail) {
      std::printf("TORN TAIL: %s\n", stats.torn_reason.c_str());
    }
  }
  return corrupt ? 1 : 0;
}
