// vada_explain: EXPLAIN / EXPLAIN ANALYZE for Vadalog-lite programs.
//
//   vada_explain [options] program.dlog
//
// Prints the evaluation plan the cost-based planner chooses for each
// rule — literal order, per-literal cost estimates and index-vs-scan
// decisions (DESIGN.md §5g). With --analyze the program is actually
// evaluated and the plan is annotated with the measured per-literal
// probes, candidates and wall time. EDB relations are loaded from CSV
// files passed as --csv REL=FILE; facts written directly in the program
// work too.

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "datalog/analysis/dataflow/optimizer.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/explain.h"
#include "datalog/parser.h"
#include "kb/csv.h"

namespace {

using vada::Relation;
using vada::Result;
using vada::Status;
using vada::datalog::Database;
using vada::datalog::EvalOptions;
using vada::datalog::Evaluator;
using vada::datalog::Parser;
using vada::datalog::PlanExplain;
using vada::datalog::Program;

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] program.dlog\n"
      << "\n"
      << "EXPLAIN / EXPLAIN ANALYZE for Vadalog-lite programs: the literal\n"
      << "order chosen by the cost-based planner, per-literal cost estimates\n"
      << "and index-vs-scan decisions; with --analyze, the measured probes,\n"
      << "candidates and time per literal.\n"
      << "\n"
      << "options:\n"
      << "  --csv REL=FILE  load FILE (CSV with header row) as EDB relation\n"
      << "                  REL; repeatable\n"
      << "  --analyze       evaluate the program and annotate the plan with\n"
      << "                  actual per-literal work (EXPLAIN ANALYZE)\n"
      << "  --json          print the plan as JSON instead of a text tree\n"
      << "  --no-indexes    plan without composite hash indexes\n"
      << "  --no-reorder    keep the written literal order (no cost-based\n"
      << "                  reordering)\n"
      << "  --goal=PRED     the query goal; enables goal-directed rewrites\n"
      << "                  with --optimize and static cardinality priors\n"
      << "  --optimize      run the dataflow ProgramOptimizer (constant\n"
      << "                  folding, dead/unreachable-rule elimination,\n"
      << "                  magic sets toward --goal) and explain the\n"
      << "                  rewritten program; inferred cardinality bounds\n"
      << "                  show as prior=N next to the estimates\n"
      << "  -h, --help      this message\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool analyze = false;
  bool json = false;
  std::string goal;
  EvalOptions options;
  std::vector<std::pair<std::string, std::string>> csv_inputs;  // rel, path
  std::string program_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      Usage(argv[0]);
      return 0;
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--no-indexes") {
      options.planner.indexes = false;
    } else if (arg == "--no-reorder") {
      options.planner.reorder = false;
    } else if (arg == "--optimize") {
      options.planner.optimize = true;
    } else if (arg.rfind("--goal=", 0) == 0) {
      goal = arg.substr(std::strlen("--goal="));
    } else if (arg == "--csv") {
      if (i + 1 >= argc) {
        std::cerr << "--csv requires REL=FILE\n";
        return Usage(argv[0]);
      }
      const std::string spec = argv[++i];
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::cerr << "--csv expects REL=FILE, got: " << spec << "\n";
        return Usage(argv[0]);
      }
      csv_inputs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg.rfind("--csv=", 0) == 0) {
      const std::string spec = arg.substr(std::strlen("--csv="));
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::cerr << "--csv expects REL=FILE, got: " << spec << "\n";
        return Usage(argv[0]);
      }
      csv_inputs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return Usage(argv[0]);
    } else if (program_file.empty()) {
      program_file = arg;
    } else {
      std::cerr << "more than one program file: " << arg << "\n";
      return Usage(argv[0]);
    }
  }
  if (program_file.empty()) return Usage(argv[0]);

  std::ifstream in(program_file);
  if (!in) {
    std::cerr << program_file << ": cannot open file\n";
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  Result<Program> program = Parser::Parse(source.str());
  if (!program.ok()) {
    std::cerr << program_file << ": " << program.status().ToString() << "\n";
    return 1;
  }

  Database db;
  for (const auto& [rel, path] : csv_inputs) {
    Result<Relation> relation = vada::ReadCsvFile(path, rel);
    if (!relation.ok()) {
      std::cerr << path << ": " << relation.status().ToString() << "\n";
      return 1;
    }
    db.LoadRelation(relation.value());
  }

  Program to_explain = std::move(program).value();
  if (options.planner.optimize) {
    namespace dataflow = vada::datalog::dataflow;
    dataflow::EdbSeeds seeds = dataflow::SeedsFromDatabase(db);
    dataflow::OptimizeResult optimized =
        dataflow::OptimizeProgram(to_explain, goal, seeds);
    if (!json) {
      std::cout << "optimizer: " << optimized.report.Summary() << "\n";
    }
    to_explain = std::move(optimized.program);
    dataflow::DataflowOptions dopt;
    dopt.assume_unknown_nonempty = false;
    dataflow::DataflowResult df =
        dataflow::AnalyzeDataflow(to_explain, seeds, dopt);
    options.planner.priors =
        std::make_shared<const std::map<std::string, size_t>>(
            df.CardinalityPriors());
  }

  Evaluator evaluator(std::move(to_explain), options);
  Status status = evaluator.Prepare();
  if (status.ok()) {
    PlanExplain plan;
    status = evaluator.Explain(&db, &plan, analyze);
    if (status.ok()) {
      std::cout << (json ? plan.ToJson() : plan.ToText());
      if (!json) std::cout.flush();
      else std::cout << "\n";
      return 0;
    }
  }
  std::cerr << program_file << ": " << status.ToString() << "\n";
  return 1;
}
