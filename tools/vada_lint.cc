// vada_lint: static analysis for Vadalog-lite programs.
//
//   vada_lint [options] file.dlog [file2.dlog ...]
//
// Runs the full ProgramAnalyzer pipeline (safety, stratification,
// wardedness, catalog, dataflow, lint) over each file and prints
// gcc-style file:line:col diagnostics (or, with --json, one machine-
// readable JSON document on stdout). Exits 1 when any file has errors
// (or, with --Werror, warnings).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "datalog/analysis/analyzer.h"

namespace {

using vada::datalog::analysis::AnalysisReport;
using vada::datalog::analysis::AnalyzerOptions;
using vada::datalog::analysis::Diagnostic;
using vada::datalog::analysis::PredicateCatalog;
using vada::datalog::analysis::ProgramAnalyzer;
using vada::datalog::analysis::Severity;
using vada::datalog::analysis::SeverityName;
using vada::datalog::analysis::UnknownPredicatePolicy;
using vada::datalog::analysis::WardedClassName;

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] file.dlog [file2.dlog ...]\n"
      << "\n"
      << "Static analysis for Vadalog-lite programs: safety, stratification,\n"
      << "wardedness, catalog consistency, dataflow and lint.\n"
      << "\n"
      << "options:\n"
      << "  --goal=PRED     require PRED to be derivable; rules that cannot\n"
      << "                  contribute to it are flagged unreachable\n"
      << "  --Werror        treat warnings as errors (nonzero exit)\n"
      << "  --closed-world  body predicates that are neither derived nor\n"
      << "                  known system relations become errors\n"
      << "  --json          machine-readable output: one JSON document with\n"
      << "                  every diagnostic (stable check ids, file/line/col)\n"
      << "  --quiet         print errors and warnings only, no info notes\n"
      << "  -h, --help      this message\n";
  return 2;
}

void Print(const std::string& file, const Diagnostic& d) {
  std::cout << file << ":";
  if (d.pos.known()) {
    std::cout << d.pos.line << ":" << d.pos.col << ":";
  } else if (d.rule_index >= 0) {
    std::cout << " rule " << d.rule_index << ":";
  }
  std::cout << " " << SeverityName(d.severity) << " [" << d.check_id
            << "]: " << d.message;
  if (!d.fix_hint.empty()) std::cout << "\n    fix: " << d.fix_hint;
  std::cout << "\n";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One diagnostic as a JSON object. The schema is part of the tool's
/// contract (documented in README.md): check ids are stable across
/// releases, line/col are 1-based and 0 when unknown.
std::string ToJson(const std::string& file, const Diagnostic& d) {
  std::string out = "{";
  out += "\"file\":\"" + JsonEscape(file) + "\"";
  out += ",\"line\":" + std::to_string(d.pos.known() ? d.pos.line : 0);
  out += ",\"col\":" + std::to_string(d.pos.known() ? d.pos.col : 0);
  out += ",\"rule_index\":" + std::to_string(d.rule_index);
  out += ",\"severity\":\"" + std::string(SeverityName(d.severity)) + "\"";
  out += ",\"check_id\":\"" + JsonEscape(d.check_id) + "\"";
  out += ",\"message\":\"" + JsonEscape(d.message) + "\"";
  if (!d.fix_hint.empty()) {
    out += ",\"fix_hint\":\"" + JsonEscape(d.fix_hint) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  AnalyzerOptions options;
  options.unknown_predicates = UnknownPredicatePolicy::kIgnore;
  bool warnings_as_errors = false;
  bool quiet = false;
  bool json = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      Usage(argv[0]);
      return 0;
    } else if (arg.rfind("--goal=", 0) == 0) {
      options.goal_predicate = arg.substr(std::strlen("--goal="));
    } else if (arg == "--Werror") {
      warnings_as_errors = true;
    } else if (arg == "--closed-world") {
      options.unknown_predicates = UnknownPredicatePolicy::kError;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage(argv[0]);

  // Without a knowledge base the only predicates with known shapes are
  // the sys_* control relations the orchestrator materialises.
  const PredicateCatalog catalog = PredicateCatalog::SystemRelations();
  const ProgramAnalyzer analyzer(options);

  size_t total_errors = 0;
  size_t total_warnings = 0;
  std::string json_out = "{\"diagnostics\":[";
  bool json_first = true;
  std::vector<std::string> unreadable;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << file << ": cannot open file\n";
      unreadable.push_back(file);
      ++total_errors;
      continue;
    }
    std::ostringstream source;
    source << in.rdbuf();
    const AnalysisReport report = analyzer.AnalyzeSource(source.str(), &catalog);
    for (const Diagnostic& d : report.diagnostics) {
      if (quiet && d.severity == Severity::kInfo) continue;
      if (json) {
        if (!json_first) json_out += ",";
        json_out += ToJson(file, d);
        json_first = false;
      } else {
        Print(file, d);
      }
    }
    total_errors += report.error_count();
    total_warnings += report.warning_count();
    if (!json && !quiet && report.ok()) {
      std::cout << file << ": ok ("
                << WardedClassName(report.warded_class) << ")\n";
    }
  }

  if (json) {
    json_out += "],\"errors\":" + std::to_string(total_errors);
    json_out += ",\"warnings\":" + std::to_string(total_warnings);
    json_out += ",\"unreadable_files\":[";
    for (size_t i = 0; i < unreadable.size(); ++i) {
      if (i > 0) json_out += ",";
      json_out += "\"" + JsonEscape(unreadable[i]) + "\"";
    }
    json_out += "]}";
    std::cout << json_out << "\n";
  } else if (total_errors > 0 || total_warnings > 0) {
    std::cerr << total_errors << " error(s), " << total_warnings
              << " warning(s)\n";
  }
  if (total_errors > 0) return 1;
  if (warnings_as_errors && total_warnings > 0) return 1;
  return 0;
}
