# Empty dependencies file for vada_extract.
# This may be replaced when dependencies are built.
