file(REMOVE_RECURSE
  "CMakeFiles/vada_extract.dir/open_government.cc.o"
  "CMakeFiles/vada_extract.dir/open_government.cc.o.d"
  "CMakeFiles/vada_extract.dir/real_estate.cc.o"
  "CMakeFiles/vada_extract.dir/real_estate.cc.o.d"
  "libvada_extract.a"
  "libvada_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
