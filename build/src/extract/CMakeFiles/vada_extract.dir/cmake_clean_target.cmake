file(REMOVE_RECURSE
  "libvada_extract.a"
)
