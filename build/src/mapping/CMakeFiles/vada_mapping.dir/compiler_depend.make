# Empty compiler generated dependencies file for vada_mapping.
# This may be replaced when dependencies are built.
