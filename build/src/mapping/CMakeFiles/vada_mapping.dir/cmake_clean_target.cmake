file(REMOVE_RECURSE
  "libvada_mapping.a"
)
