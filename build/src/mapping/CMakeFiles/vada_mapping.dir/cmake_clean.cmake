file(REMOVE_RECURSE
  "CMakeFiles/vada_mapping.dir/executor.cc.o"
  "CMakeFiles/vada_mapping.dir/executor.cc.o.d"
  "CMakeFiles/vada_mapping.dir/generator.cc.o"
  "CMakeFiles/vada_mapping.dir/generator.cc.o.d"
  "CMakeFiles/vada_mapping.dir/mapping.cc.o"
  "CMakeFiles/vada_mapping.dir/mapping.cc.o.d"
  "CMakeFiles/vada_mapping.dir/selector.cc.o"
  "CMakeFiles/vada_mapping.dir/selector.cc.o.d"
  "libvada_mapping.a"
  "libvada_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
