file(REMOVE_RECURSE
  "CMakeFiles/vada_context.dir/ahp.cc.o"
  "CMakeFiles/vada_context.dir/ahp.cc.o.d"
  "CMakeFiles/vada_context.dir/data_context.cc.o"
  "CMakeFiles/vada_context.dir/data_context.cc.o.d"
  "CMakeFiles/vada_context.dir/user_context.cc.o"
  "CMakeFiles/vada_context.dir/user_context.cc.o.d"
  "libvada_context.a"
  "libvada_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
