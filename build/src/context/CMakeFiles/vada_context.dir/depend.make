# Empty dependencies file for vada_context.
# This may be replaced when dependencies are built.
