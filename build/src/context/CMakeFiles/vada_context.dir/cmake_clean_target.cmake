file(REMOVE_RECURSE
  "libvada_context.a"
)
