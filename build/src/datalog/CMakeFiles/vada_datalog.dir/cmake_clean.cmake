file(REMOVE_RECURSE
  "CMakeFiles/vada_datalog.dir/ast.cc.o"
  "CMakeFiles/vada_datalog.dir/ast.cc.o.d"
  "CMakeFiles/vada_datalog.dir/database.cc.o"
  "CMakeFiles/vada_datalog.dir/database.cc.o.d"
  "CMakeFiles/vada_datalog.dir/evaluator.cc.o"
  "CMakeFiles/vada_datalog.dir/evaluator.cc.o.d"
  "CMakeFiles/vada_datalog.dir/kb_adapter.cc.o"
  "CMakeFiles/vada_datalog.dir/kb_adapter.cc.o.d"
  "CMakeFiles/vada_datalog.dir/lexer.cc.o"
  "CMakeFiles/vada_datalog.dir/lexer.cc.o.d"
  "CMakeFiles/vada_datalog.dir/parser.cc.o"
  "CMakeFiles/vada_datalog.dir/parser.cc.o.d"
  "CMakeFiles/vada_datalog.dir/provenance.cc.o"
  "CMakeFiles/vada_datalog.dir/provenance.cc.o.d"
  "CMakeFiles/vada_datalog.dir/stratify.cc.o"
  "CMakeFiles/vada_datalog.dir/stratify.cc.o.d"
  "libvada_datalog.a"
  "libvada_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
