# Empty compiler generated dependencies file for vada_datalog.
# This may be replaced when dependencies are built.
