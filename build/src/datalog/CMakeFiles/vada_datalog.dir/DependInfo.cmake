
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/ast.cc" "src/datalog/CMakeFiles/vada_datalog.dir/ast.cc.o" "gcc" "src/datalog/CMakeFiles/vada_datalog.dir/ast.cc.o.d"
  "/root/repo/src/datalog/database.cc" "src/datalog/CMakeFiles/vada_datalog.dir/database.cc.o" "gcc" "src/datalog/CMakeFiles/vada_datalog.dir/database.cc.o.d"
  "/root/repo/src/datalog/evaluator.cc" "src/datalog/CMakeFiles/vada_datalog.dir/evaluator.cc.o" "gcc" "src/datalog/CMakeFiles/vada_datalog.dir/evaluator.cc.o.d"
  "/root/repo/src/datalog/kb_adapter.cc" "src/datalog/CMakeFiles/vada_datalog.dir/kb_adapter.cc.o" "gcc" "src/datalog/CMakeFiles/vada_datalog.dir/kb_adapter.cc.o.d"
  "/root/repo/src/datalog/lexer.cc" "src/datalog/CMakeFiles/vada_datalog.dir/lexer.cc.o" "gcc" "src/datalog/CMakeFiles/vada_datalog.dir/lexer.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/datalog/CMakeFiles/vada_datalog.dir/parser.cc.o" "gcc" "src/datalog/CMakeFiles/vada_datalog.dir/parser.cc.o.d"
  "/root/repo/src/datalog/provenance.cc" "src/datalog/CMakeFiles/vada_datalog.dir/provenance.cc.o" "gcc" "src/datalog/CMakeFiles/vada_datalog.dir/provenance.cc.o.d"
  "/root/repo/src/datalog/stratify.cc" "src/datalog/CMakeFiles/vada_datalog.dir/stratify.cc.o" "gcc" "src/datalog/CMakeFiles/vada_datalog.dir/stratify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/vada_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
