file(REMOVE_RECURSE
  "libvada_datalog.a"
)
