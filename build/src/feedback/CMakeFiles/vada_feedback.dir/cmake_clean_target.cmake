file(REMOVE_RECURSE
  "libvada_feedback.a"
)
