file(REMOVE_RECURSE
  "CMakeFiles/vada_feedback.dir/feedback.cc.o"
  "CMakeFiles/vada_feedback.dir/feedback.cc.o.d"
  "CMakeFiles/vada_feedback.dir/propagation.cc.o"
  "CMakeFiles/vada_feedback.dir/propagation.cc.o.d"
  "libvada_feedback.a"
  "libvada_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
