# Empty dependencies file for vada_feedback.
# This may be replaced when dependencies are built.
