file(REMOVE_RECURSE
  "libvada_transducer.a"
)
