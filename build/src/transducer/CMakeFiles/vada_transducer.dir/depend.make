# Empty dependencies file for vada_transducer.
# This may be replaced when dependencies are built.
