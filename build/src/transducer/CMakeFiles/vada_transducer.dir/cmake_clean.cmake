file(REMOVE_RECURSE
  "CMakeFiles/vada_transducer.dir/network.cc.o"
  "CMakeFiles/vada_transducer.dir/network.cc.o.d"
  "CMakeFiles/vada_transducer.dir/trace.cc.o"
  "CMakeFiles/vada_transducer.dir/trace.cc.o.d"
  "CMakeFiles/vada_transducer.dir/transducer.cc.o"
  "CMakeFiles/vada_transducer.dir/transducer.cc.o.d"
  "libvada_transducer.a"
  "libvada_transducer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_transducer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
