file(REMOVE_RECURSE
  "libvada_kb.a"
)
