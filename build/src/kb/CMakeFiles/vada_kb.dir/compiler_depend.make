# Empty compiler generated dependencies file for vada_kb.
# This may be replaced when dependencies are built.
