
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/catalog.cc" "src/kb/CMakeFiles/vada_kb.dir/catalog.cc.o" "gcc" "src/kb/CMakeFiles/vada_kb.dir/catalog.cc.o.d"
  "/root/repo/src/kb/csv.cc" "src/kb/CMakeFiles/vada_kb.dir/csv.cc.o" "gcc" "src/kb/CMakeFiles/vada_kb.dir/csv.cc.o.d"
  "/root/repo/src/kb/knowledge_base.cc" "src/kb/CMakeFiles/vada_kb.dir/knowledge_base.cc.o" "gcc" "src/kb/CMakeFiles/vada_kb.dir/knowledge_base.cc.o.d"
  "/root/repo/src/kb/persistence.cc" "src/kb/CMakeFiles/vada_kb.dir/persistence.cc.o" "gcc" "src/kb/CMakeFiles/vada_kb.dir/persistence.cc.o.d"
  "/root/repo/src/kb/relation.cc" "src/kb/CMakeFiles/vada_kb.dir/relation.cc.o" "gcc" "src/kb/CMakeFiles/vada_kb.dir/relation.cc.o.d"
  "/root/repo/src/kb/schema.cc" "src/kb/CMakeFiles/vada_kb.dir/schema.cc.o" "gcc" "src/kb/CMakeFiles/vada_kb.dir/schema.cc.o.d"
  "/root/repo/src/kb/tuple.cc" "src/kb/CMakeFiles/vada_kb.dir/tuple.cc.o" "gcc" "src/kb/CMakeFiles/vada_kb.dir/tuple.cc.o.d"
  "/root/repo/src/kb/value.cc" "src/kb/CMakeFiles/vada_kb.dir/value.cc.o" "gcc" "src/kb/CMakeFiles/vada_kb.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
