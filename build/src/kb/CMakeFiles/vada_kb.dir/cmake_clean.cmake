file(REMOVE_RECURSE
  "CMakeFiles/vada_kb.dir/catalog.cc.o"
  "CMakeFiles/vada_kb.dir/catalog.cc.o.d"
  "CMakeFiles/vada_kb.dir/csv.cc.o"
  "CMakeFiles/vada_kb.dir/csv.cc.o.d"
  "CMakeFiles/vada_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/vada_kb.dir/knowledge_base.cc.o.d"
  "CMakeFiles/vada_kb.dir/persistence.cc.o"
  "CMakeFiles/vada_kb.dir/persistence.cc.o.d"
  "CMakeFiles/vada_kb.dir/relation.cc.o"
  "CMakeFiles/vada_kb.dir/relation.cc.o.d"
  "CMakeFiles/vada_kb.dir/schema.cc.o"
  "CMakeFiles/vada_kb.dir/schema.cc.o.d"
  "CMakeFiles/vada_kb.dir/tuple.cc.o"
  "CMakeFiles/vada_kb.dir/tuple.cc.o.d"
  "CMakeFiles/vada_kb.dir/value.cc.o"
  "CMakeFiles/vada_kb.dir/value.cc.o.d"
  "libvada_kb.a"
  "libvada_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
