file(REMOVE_RECURSE
  "CMakeFiles/vada_match.dir/combiner.cc.o"
  "CMakeFiles/vada_match.dir/combiner.cc.o.d"
  "CMakeFiles/vada_match.dir/instance_matcher.cc.o"
  "CMakeFiles/vada_match.dir/instance_matcher.cc.o.d"
  "CMakeFiles/vada_match.dir/match_types.cc.o"
  "CMakeFiles/vada_match.dir/match_types.cc.o.d"
  "CMakeFiles/vada_match.dir/schema_matcher.cc.o"
  "CMakeFiles/vada_match.dir/schema_matcher.cc.o.d"
  "libvada_match.a"
  "libvada_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
