# Empty compiler generated dependencies file for vada_match.
# This may be replaced when dependencies are built.
