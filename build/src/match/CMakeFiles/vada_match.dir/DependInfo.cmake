
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/combiner.cc" "src/match/CMakeFiles/vada_match.dir/combiner.cc.o" "gcc" "src/match/CMakeFiles/vada_match.dir/combiner.cc.o.d"
  "/root/repo/src/match/instance_matcher.cc" "src/match/CMakeFiles/vada_match.dir/instance_matcher.cc.o" "gcc" "src/match/CMakeFiles/vada_match.dir/instance_matcher.cc.o.d"
  "/root/repo/src/match/match_types.cc" "src/match/CMakeFiles/vada_match.dir/match_types.cc.o" "gcc" "src/match/CMakeFiles/vada_match.dir/match_types.cc.o.d"
  "/root/repo/src/match/schema_matcher.cc" "src/match/CMakeFiles/vada_match.dir/schema_matcher.cc.o" "gcc" "src/match/CMakeFiles/vada_match.dir/schema_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/vada_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
