# Empty dependencies file for vada_match.
# This may be replaced when dependencies are built.
