file(REMOVE_RECURSE
  "libvada_match.a"
)
