file(REMOVE_RECURSE
  "libvada_common.a"
)
