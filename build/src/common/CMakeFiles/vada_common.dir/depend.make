# Empty dependencies file for vada_common.
# This may be replaced when dependencies are built.
