file(REMOVE_RECURSE
  "CMakeFiles/vada_common.dir/logging.cc.o"
  "CMakeFiles/vada_common.dir/logging.cc.o.d"
  "CMakeFiles/vada_common.dir/rng.cc.o"
  "CMakeFiles/vada_common.dir/rng.cc.o.d"
  "CMakeFiles/vada_common.dir/similarity.cc.o"
  "CMakeFiles/vada_common.dir/similarity.cc.o.d"
  "CMakeFiles/vada_common.dir/status.cc.o"
  "CMakeFiles/vada_common.dir/status.cc.o.d"
  "CMakeFiles/vada_common.dir/strings.cc.o"
  "CMakeFiles/vada_common.dir/strings.cc.o.d"
  "libvada_common.a"
  "libvada_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
