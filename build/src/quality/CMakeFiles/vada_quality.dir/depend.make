# Empty dependencies file for vada_quality.
# This may be replaced when dependencies are built.
