file(REMOVE_RECURSE
  "CMakeFiles/vada_quality.dir/cfd.cc.o"
  "CMakeFiles/vada_quality.dir/cfd.cc.o.d"
  "CMakeFiles/vada_quality.dir/metrics.cc.o"
  "CMakeFiles/vada_quality.dir/metrics.cc.o.d"
  "libvada_quality.a"
  "libvada_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
