file(REMOVE_RECURSE
  "libvada_quality.a"
)
