# Empty dependencies file for vada_wrangler.
# This may be replaced when dependencies are built.
