file(REMOVE_RECURSE
  "CMakeFiles/vada_wrangler.dir/etl_baseline.cc.o"
  "CMakeFiles/vada_wrangler.dir/etl_baseline.cc.o.d"
  "CMakeFiles/vada_wrangler.dir/evaluation.cc.o"
  "CMakeFiles/vada_wrangler.dir/evaluation.cc.o.d"
  "CMakeFiles/vada_wrangler.dir/session.cc.o"
  "CMakeFiles/vada_wrangler.dir/session.cc.o.d"
  "CMakeFiles/vada_wrangler.dir/standard_transducers.cc.o"
  "CMakeFiles/vada_wrangler.dir/standard_transducers.cc.o.d"
  "libvada_wrangler.a"
  "libvada_wrangler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_wrangler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
