file(REMOVE_RECURSE
  "libvada_wrangler.a"
)
