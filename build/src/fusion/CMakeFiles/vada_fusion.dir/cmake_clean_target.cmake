file(REMOVE_RECURSE
  "libvada_fusion.a"
)
