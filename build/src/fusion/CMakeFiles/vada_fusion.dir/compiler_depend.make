# Empty compiler generated dependencies file for vada_fusion.
# This may be replaced when dependencies are built.
