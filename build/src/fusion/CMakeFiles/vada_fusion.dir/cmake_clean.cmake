file(REMOVE_RECURSE
  "CMakeFiles/vada_fusion.dir/dedup.cc.o"
  "CMakeFiles/vada_fusion.dir/dedup.cc.o.d"
  "CMakeFiles/vada_fusion.dir/fuser.cc.o"
  "CMakeFiles/vada_fusion.dir/fuser.cc.o.d"
  "libvada_fusion.a"
  "libvada_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vada_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
