# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("kb")
subdirs("datalog")
subdirs("context")
subdirs("match")
subdirs("quality")
subdirs("mapping")
subdirs("fusion")
subdirs("feedback")
subdirs("extract")
subdirs("transducer")
subdirs("wrangler")
