file(REMOVE_RECURSE
  "CMakeFiles/etl_baseline_test.dir/etl_baseline_test.cc.o"
  "CMakeFiles/etl_baseline_test.dir/etl_baseline_test.cc.o.d"
  "etl_baseline_test"
  "etl_baseline_test.pdb"
  "etl_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etl_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
