# Empty compiler generated dependencies file for etl_baseline_test.
# This may be replaced when dependencies are built.
