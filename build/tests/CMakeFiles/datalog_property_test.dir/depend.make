# Empty dependencies file for datalog_property_test.
# This may be replaced when dependencies are built.
