file(REMOVE_RECURSE
  "CMakeFiles/datalog_property_test.dir/datalog_property_test.cc.o"
  "CMakeFiles/datalog_property_test.dir/datalog_property_test.cc.o.d"
  "datalog_property_test"
  "datalog_property_test.pdb"
  "datalog_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
