file(REMOVE_RECURSE
  "CMakeFiles/feedback_test.dir/feedback_test.cc.o"
  "CMakeFiles/feedback_test.dir/feedback_test.cc.o.d"
  "feedback_test"
  "feedback_test.pdb"
  "feedback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
