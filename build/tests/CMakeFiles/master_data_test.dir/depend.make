# Empty dependencies file for master_data_test.
# This may be replaced when dependencies are built.
