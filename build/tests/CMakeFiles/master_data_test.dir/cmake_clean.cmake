file(REMOVE_RECURSE
  "CMakeFiles/master_data_test.dir/master_data_test.cc.o"
  "CMakeFiles/master_data_test.dir/master_data_test.cc.o.d"
  "master_data_test"
  "master_data_test.pdb"
  "master_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
