file(REMOVE_RECURSE
  "CMakeFiles/datalog_stratify_test.dir/datalog_stratify_test.cc.o"
  "CMakeFiles/datalog_stratify_test.dir/datalog_stratify_test.cc.o.d"
  "datalog_stratify_test"
  "datalog_stratify_test.pdb"
  "datalog_stratify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_stratify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
