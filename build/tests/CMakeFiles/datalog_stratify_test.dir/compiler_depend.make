# Empty compiler generated dependencies file for datalog_stratify_test.
# This may be replaced when dependencies are built.
