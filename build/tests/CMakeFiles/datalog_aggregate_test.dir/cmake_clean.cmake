file(REMOVE_RECURSE
  "CMakeFiles/datalog_aggregate_test.dir/datalog_aggregate_test.cc.o"
  "CMakeFiles/datalog_aggregate_test.dir/datalog_aggregate_test.cc.o.d"
  "datalog_aggregate_test"
  "datalog_aggregate_test.pdb"
  "datalog_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
