file(REMOVE_RECURSE
  "CMakeFiles/datalog_adapter_test.dir/datalog_adapter_test.cc.o"
  "CMakeFiles/datalog_adapter_test.dir/datalog_adapter_test.cc.o.d"
  "datalog_adapter_test"
  "datalog_adapter_test.pdb"
  "datalog_adapter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
