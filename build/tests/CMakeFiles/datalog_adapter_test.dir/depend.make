# Empty dependencies file for datalog_adapter_test.
# This may be replaced when dependencies are built.
