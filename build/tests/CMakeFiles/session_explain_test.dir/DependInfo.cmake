
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/session_explain_test.cc" "tests/CMakeFiles/session_explain_test.dir/session_explain_test.cc.o" "gcc" "tests/CMakeFiles/session_explain_test.dir/session_explain_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wrangler/CMakeFiles/vada_wrangler.dir/DependInfo.cmake"
  "/root/repo/build/src/transducer/CMakeFiles/vada_transducer.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/vada_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/feedback/CMakeFiles/vada_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/vada_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/vada_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/vada_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/vada_match.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/vada_context.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/vada_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/vada_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
