file(REMOVE_RECURSE
  "CMakeFiles/session_explain_test.dir/session_explain_test.cc.o"
  "CMakeFiles/session_explain_test.dir/session_explain_test.cc.o.d"
  "session_explain_test"
  "session_explain_test.pdb"
  "session_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
