# Empty dependencies file for session_explain_test.
# This may be replaced when dependencies are built.
