file(REMOVE_RECURSE
  "CMakeFiles/datalog_provenance_test.dir/datalog_provenance_test.cc.o"
  "CMakeFiles/datalog_provenance_test.dir/datalog_provenance_test.cc.o.d"
  "datalog_provenance_test"
  "datalog_provenance_test.pdb"
  "datalog_provenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_provenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
