# Empty dependencies file for datalog_provenance_test.
# This may be replaced when dependencies are built.
