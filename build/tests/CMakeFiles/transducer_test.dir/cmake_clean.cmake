file(REMOVE_RECURSE
  "CMakeFiles/transducer_test.dir/transducer_test.cc.o"
  "CMakeFiles/transducer_test.dir/transducer_test.cc.o.d"
  "transducer_test"
  "transducer_test.pdb"
  "transducer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transducer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
