file(REMOVE_RECURSE
  "CMakeFiles/real_estate.dir/real_estate.cpp.o"
  "CMakeFiles/real_estate.dir/real_estate.cpp.o.d"
  "real_estate"
  "real_estate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_estate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
