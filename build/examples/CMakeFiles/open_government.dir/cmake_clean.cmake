file(REMOVE_RECURSE
  "CMakeFiles/open_government.dir/open_government.cpp.o"
  "CMakeFiles/open_government.dir/open_government.cpp.o.d"
  "open_government"
  "open_government.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_government.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
