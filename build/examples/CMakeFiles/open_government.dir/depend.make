# Empty dependencies file for open_government.
# This may be replaced when dependencies are built.
