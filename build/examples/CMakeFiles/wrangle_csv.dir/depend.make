# Empty dependencies file for wrangle_csv.
# This may be replaced when dependencies are built.
