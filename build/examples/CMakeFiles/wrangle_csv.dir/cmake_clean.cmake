file(REMOVE_RECURSE
  "CMakeFiles/wrangle_csv.dir/wrangle_csv.cpp.o"
  "CMakeFiles/wrangle_csv.dir/wrangle_csv.cpp.o.d"
  "wrangle_csv"
  "wrangle_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrangle_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
