# Empty compiler generated dependencies file for custom_transducer.
# This may be replaced when dependencies are built.
