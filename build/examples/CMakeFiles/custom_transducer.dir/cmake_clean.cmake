file(REMOVE_RECURSE
  "CMakeFiles/custom_transducer.dir/custom_transducer.cpp.o"
  "CMakeFiles/custom_transducer.dir/custom_transducer.cpp.o.d"
  "custom_transducer"
  "custom_transducer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_transducer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
