# Empty compiler generated dependencies file for bench_user_context.
# This may be replaced when dependencies are built.
