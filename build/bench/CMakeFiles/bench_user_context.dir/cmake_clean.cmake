file(REMOVE_RECURSE
  "CMakeFiles/bench_user_context.dir/bench_user_context.cpp.o"
  "CMakeFiles/bench_user_context.dir/bench_user_context.cpp.o.d"
  "bench_user_context"
  "bench_user_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_user_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
