# Empty dependencies file for bench_payg_steps.
# This may be replaced when dependencies are built.
