file(REMOVE_RECURSE
  "CMakeFiles/bench_payg_steps.dir/bench_payg_steps.cpp.o"
  "CMakeFiles/bench_payg_steps.dir/bench_payg_steps.cpp.o.d"
  "bench_payg_steps"
  "bench_payg_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_payg_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
