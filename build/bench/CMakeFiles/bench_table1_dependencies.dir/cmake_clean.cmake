file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dependencies.dir/bench_table1_dependencies.cpp.o"
  "CMakeFiles/bench_table1_dependencies.dir/bench_table1_dependencies.cpp.o.d"
  "bench_table1_dependencies"
  "bench_table1_dependencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dependencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
