file(REMOVE_RECURSE
  "CMakeFiles/bench_cfd.dir/bench_cfd.cpp.o"
  "CMakeFiles/bench_cfd.dir/bench_cfd.cpp.o.d"
  "bench_cfd"
  "bench_cfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
