# Empty dependencies file for bench_cfd.
# This may be replaced when dependencies are built.
