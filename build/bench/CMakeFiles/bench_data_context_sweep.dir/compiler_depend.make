# Empty compiler generated dependencies file for bench_data_context_sweep.
# This may be replaced when dependencies are built.
