file(REMOVE_RECURSE
  "CMakeFiles/bench_data_context_sweep.dir/bench_data_context_sweep.cpp.o"
  "CMakeFiles/bench_data_context_sweep.dir/bench_data_context_sweep.cpp.o.d"
  "bench_data_context_sweep"
  "bench_data_context_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_context_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
