# Empty dependencies file for bench_orchestration.
# This may be replaced when dependencies are built.
