file(REMOVE_RECURSE
  "CMakeFiles/bench_orchestration.dir/bench_orchestration.cpp.o"
  "CMakeFiles/bench_orchestration.dir/bench_orchestration.cpp.o.d"
  "bench_orchestration"
  "bench_orchestration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orchestration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
