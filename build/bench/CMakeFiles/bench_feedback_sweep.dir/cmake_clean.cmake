file(REMOVE_RECURSE
  "CMakeFiles/bench_feedback_sweep.dir/bench_feedback_sweep.cpp.o"
  "CMakeFiles/bench_feedback_sweep.dir/bench_feedback_sweep.cpp.o.d"
  "bench_feedback_sweep"
  "bench_feedback_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feedback_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
