# Empty dependencies file for bench_feedback_sweep.
# This may be replaced when dependencies are built.
