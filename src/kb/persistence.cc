#include "kb/persistence.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>

#include "common/strings.h"
#include "kb/csv.h"

namespace vada {

namespace {

Result<std::string> ReadFileText(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string text;
  char buf[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

Status WriteFileText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot write " + path);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::Internal("short write " + path);
  return Status::OK();
}

Result<AttributeType> AttributeTypeFromName(const std::string& name) {
  if (name == "any") return AttributeType::kAny;
  if (name == "bool") return AttributeType::kBool;
  if (name == "int") return AttributeType::kInt;
  if (name == "double") return AttributeType::kDouble;
  if (name == "string") return AttributeType::kString;
  return Status::ParseError("unknown attribute type " + name);
}

Result<RelationRole> RoleFromName(const std::string& name) {
  for (RelationRole role :
       {RelationRole::kSource, RelationRole::kTarget, RelationRole::kReference,
        RelationRole::kMaster, RelationRole::kExample, RelationRole::kMetadata,
        RelationRole::kResult}) {
    if (name == RelationRoleName(role)) return role;
  }
  return Status::ParseError("unknown relation role " + name);
}

}  // namespace

std::string EncodeCell(const Value& value) {
  // Doubles need round-trip precision (the display form %g, 6 digits,
  // would corrupt them) AND a decimal marker, or whole-valued doubles
  // like 1.0 would decode as integers.
  if (value.type() == ValueType::kDouble) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value.double_value());
    std::string out = buf;
    if (out.find_first_of(".eEnN") == std::string::npos) out += ".0";
    return out;
  }
  return value.ToLiteral();
}

Result<Value> DecodeCell(const std::string& text) {
  if (text.empty()) return Value::Null();
  if (text[0] == '"') {
    // Quoted string literal with backslash escapes.
    std::string out;
    for (size_t i = 1; i < text.size(); ++i) {
      char c = text[i];
      if (c == '\\' && i + 1 < text.size()) {
        out += text[++i];
        continue;
      }
      if (c == '"') {
        if (i + 1 != text.size()) {
          return Status::ParseError("trailing characters after string: " +
                                    text);
        }
        return Value::String(std::move(out));
      }
      out += c;
    }
    return Status::ParseError("unterminated string literal: " + text);
  }
  if (text == "NULL") return Value::Null();
  Value v = Value::FromText(text);
  if (v.type() == ValueType::kString) {
    return Status::ParseError("unquoted non-literal cell: " + text);
  }
  return v;
}

Status SaveKnowledgeBase(const KnowledgeBase& kb,
                         const std::string& directory) {
  if (::mkdir(directory.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create directory " + directory);
  }

  std::string manifest = "vada-kb\tv1\n";
  for (const std::string& name : kb.RelationNames()) {
    const Relation* rel = kb.FindRelation(name);
    if (rel == nullptr) continue;

    std::vector<std::string> attr_specs;
    for (const Attribute& a : rel->schema().attributes()) {
      attr_specs.push_back(a.name + ":" + AttributeTypeName(a.type));
    }
    std::optional<RelationRole> role = kb.catalog().GetRole(name);
    manifest += name + "\t" +
                (role.has_value() ? RelationRoleName(*role) : "-") + "\t" +
                Join(attr_specs, "|") + "\n";

    // Typed-literal cells, then standard CSV escaping.
    Relation encoded(Schema::Untyped(name, rel->schema().AttributeNames()));
    for (const Tuple& row : rel->rows()) {
      std::vector<Value> cells;
      cells.reserve(row.size());
      for (const Value& v : row.values()) {
        cells.push_back(Value::String(EncodeCell(v)));
      }
      VADA_RETURN_IF_ERROR(encoded.InsertUnchecked(Tuple(std::move(cells))));
    }
    VADA_RETURN_IF_ERROR(
        WriteFileText(directory + "/" + name + ".csv", ToCsv(encoded)));
  }
  return WriteFileText(directory + "/manifest.tsv", manifest);
}

Result<KnowledgeBase> LoadKnowledgeBase(const std::string& directory) {
  Result<std::string> manifest = ReadFileText(directory + "/manifest.tsv");
  if (!manifest.ok()) return manifest.status();

  KnowledgeBase kb;
  std::vector<std::string> lines = Split(manifest.value(), '\n');
  if (lines.empty() || !StartsWith(lines[0], "vada-kb")) {
    return Status::ParseError(directory + " is not a vada-kb directory");
  }
  for (size_t li = 1; li < lines.size(); ++li) {
    if (Trim(lines[li]).empty()) continue;
    std::vector<std::string> fields = Split(lines[li], '\t');
    if (fields.size() != 3) {
      return Status::ParseError("bad manifest line: " + lines[li]);
    }
    const std::string& name = fields[0];

    std::vector<Attribute> attrs;
    if (!fields[2].empty()) {
      for (const std::string& spec : Split(fields[2], '|')) {
        size_t colon = spec.rfind(':');
        if (colon == std::string::npos) {
          return Status::ParseError("bad attribute spec: " + spec);
        }
        Result<AttributeType> type =
            AttributeTypeFromName(spec.substr(colon + 1));
        if (!type.ok()) return type.status();
        attrs.push_back(Attribute{spec.substr(0, colon), type.value()});
      }
    }
    VADA_RETURN_IF_ERROR(kb.CreateRelation(Schema(name, attrs)));
    if (fields[1] != "-") {
      Result<RelationRole> role = RoleFromName(fields[1]);
      if (!role.ok()) return role.status();
      kb.catalog().SetRole(name, role.value());
    }

    // Rows: raw (string) CSV cells holding typed literals.
    Result<std::string> text = ReadFileText(directory + "/" + name + ".csv");
    if (!text.ok()) return text.status();
    CsvOptions csv_options;
    csv_options.infer_types = false;
    Result<Relation> encoded = ParseCsv(text.value(), name, csv_options);
    if (!encoded.ok()) return encoded.status();
    for (const Tuple& row : encoded.value().rows()) {
      std::vector<Value> cells;
      cells.reserve(row.size());
      for (const Value& cell : row.values()) {
        Result<Value> decoded =
            DecodeCell(cell.is_null() ? "" : cell.string_value());
        if (!decoded.ok()) return decoded.status();
        cells.push_back(std::move(decoded).value());
      }
      VADA_RETURN_IF_ERROR(kb.Insert(name, Tuple(std::move(cells))));
    }
  }
  return kb;
}

}  // namespace vada
