#include "kb/persistence.h"

#include <cstdio>

#include "common/strings.h"
#include "kb/csv.h"
#include "kb/fs_util.h"

namespace vada {

namespace {

Result<AttributeType> AttributeTypeFromName(const std::string& name) {
  if (name == "any") return AttributeType::kAny;
  if (name == "bool") return AttributeType::kBool;
  if (name == "int") return AttributeType::kInt;
  if (name == "double") return AttributeType::kDouble;
  if (name == "string") return AttributeType::kString;
  return Status::ParseError("unknown attribute type " + name);
}

Result<RelationRole> RoleFromName(const std::string& name) {
  for (RelationRole role :
       {RelationRole::kSource, RelationRole::kTarget, RelationRole::kReference,
        RelationRole::kMaster, RelationRole::kExample, RelationRole::kMetadata,
        RelationRole::kResult}) {
    if (name == RelationRoleName(role)) return role;
  }
  return Status::ParseError("unknown relation role " + name);
}

}  // namespace

std::string EncodeCell(const Value& value) {
  // Doubles need round-trip precision (the display form %g, 6 digits,
  // would corrupt them) AND a decimal marker, or whole-valued doubles
  // like 1.0 would decode as integers.
  if (value.type() == ValueType::kDouble) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value.double_value());
    std::string out = buf;
    if (out.find_first_of(".eEnN") == std::string::npos) out += ".0";
    return out;
  }
  return value.ToLiteral();
}

Result<Value> DecodeCell(const std::string& text) {
  if (text.empty()) return Value::Null();
  if (text[0] == '"') {
    // Quoted string literal with backslash escapes.
    std::string out;
    for (size_t i = 1; i < text.size(); ++i) {
      char c = text[i];
      if (c == '\\' && i + 1 < text.size()) {
        out += text[++i];
        continue;
      }
      if (c == '"') {
        if (i + 1 != text.size()) {
          return Status::ParseError("trailing characters after string: " +
                                    text);
        }
        return Value::String(std::move(out));
      }
      out += c;
    }
    return Status::ParseError("unterminated string literal: " + text);
  }
  if (text == "NULL") return Value::Null();
  Value v = Value::FromText(text);
  if (v.type() == ValueType::kString) {
    return Status::ParseError("unquoted non-literal cell: " + text);
  }
  return v;
}

Status SaveKnowledgeBase(const KnowledgeBase& kb,
                         const std::string& directory) {
  // Stage the whole image in a sibling directory, then swap it into
  // place with renames: a crash mid-save leaves the previous image
  // intact (or, between the two renames, as `<dir>.old`, which
  // LoadKnowledgeBase falls back to). As a bonus the swap cannot leak
  // stale `<relation>.csv` files of since-dropped relations, which
  // overwriting in place did.
  const std::string tmp_dir = directory + ".tmp-save";
  VADA_RETURN_IF_ERROR(RemoveRecursively(tmp_dir));
  VADA_RETURN_IF_ERROR(EnsureDirectory(tmp_dir));

  std::string manifest = "vada-kb\tv1\n";
  for (const std::string& name : kb.RelationNames()) {
    const Relation* rel = kb.FindRelation(name);
    if (rel == nullptr) continue;

    std::vector<std::string> attr_specs;
    for (const Attribute& a : rel->schema().attributes()) {
      attr_specs.push_back(a.name + ":" + AttributeTypeName(a.type));
    }
    std::optional<RelationRole> role = kb.catalog().GetRole(name);
    manifest += name + "\t" +
                (role.has_value() ? RelationRoleName(*role) : "-") + "\t" +
                Join(attr_specs, "|") + "\n";

    // Typed-literal cells, then standard CSV escaping.
    Relation encoded(Schema::Untyped(name, rel->schema().AttributeNames()));
    for (const Tuple& row : rel->rows()) {
      std::vector<Value> cells;
      cells.reserve(row.size());
      for (const Value& v : row.values()) {
        cells.push_back(Value::String(EncodeCell(v)));
      }
      VADA_RETURN_IF_ERROR(encoded.InsertUnchecked(Tuple(std::move(cells))));
    }
    VADA_RETURN_IF_ERROR(
        WriteFileText(tmp_dir + "/" + name + ".csv", ToCsv(encoded)));
  }
  VADA_RETURN_IF_ERROR(WriteFileText(tmp_dir + "/manifest.tsv", manifest));

  if (!PathExists(directory)) return RenamePath(tmp_dir, directory);
  const std::string old_dir = directory + ".old";
  VADA_RETURN_IF_ERROR(RemoveRecursively(old_dir));
  VADA_RETURN_IF_ERROR(RenamePath(directory, old_dir));
  VADA_RETURN_IF_ERROR(RenamePath(tmp_dir, directory));
  return RemoveRecursively(old_dir);
}

Result<KnowledgeBase> LoadKnowledgeBase(const std::string& directory) {
  Result<std::string> manifest = ReadFileText(directory + "/manifest.tsv");
  if (!manifest.ok()) {
    // A crash between SaveKnowledgeBase's two renames leaves the
    // previous (complete) image parked at `<dir>.old`.
    if (!EndsWith(directory, ".old") &&
        PathExists(directory + ".old/manifest.tsv")) {
      return LoadKnowledgeBase(directory + ".old");
    }
    return manifest.status();
  }

  KnowledgeBase kb;
  std::vector<std::string> lines = Split(manifest.value(), '\n');
  if (lines.empty() || !StartsWith(lines[0], "vada-kb")) {
    return Status::ParseError(directory + " is not a vada-kb directory");
  }
  for (size_t li = 1; li < lines.size(); ++li) {
    if (Trim(lines[li]).empty()) continue;
    std::vector<std::string> fields = Split(lines[li], '\t');
    if (fields.size() != 3) {
      return Status::ParseError("bad manifest line: " + lines[li]);
    }
    const std::string& name = fields[0];

    std::vector<Attribute> attrs;
    if (!fields[2].empty()) {
      for (const std::string& spec : Split(fields[2], '|')) {
        size_t colon = spec.rfind(':');
        if (colon == std::string::npos) {
          return Status::ParseError("bad attribute spec: " + spec);
        }
        Result<AttributeType> type =
            AttributeTypeFromName(spec.substr(colon + 1));
        if (!type.ok()) return type.status();
        attrs.push_back(Attribute{spec.substr(0, colon), type.value()});
      }
    }
    VADA_RETURN_IF_ERROR(kb.CreateRelation(Schema(name, attrs)));
    if (fields[1] != "-") {
      Result<RelationRole> role = RoleFromName(fields[1]);
      if (!role.ok()) return role.status();
      kb.catalog().SetRole(name, role.value());
    }

    // Rows: raw (string) CSV cells holding typed literals.
    Result<std::string> text = ReadFileText(directory + "/" + name + ".csv");
    if (!text.ok()) return text.status();
    CsvOptions csv_options;
    csv_options.infer_types = false;
    Result<Relation> encoded = ParseCsv(text.value(), name, csv_options);
    if (!encoded.ok()) return encoded.status();
    for (const Tuple& row : encoded.value().rows()) {
      std::vector<Value> cells;
      cells.reserve(row.size());
      for (const Value& cell : row.values()) {
        Result<Value> decoded =
            DecodeCell(cell.is_null() ? "" : cell.string_value());
        if (!decoded.ok()) return decoded.status();
        cells.push_back(std::move(decoded).value());
      }
      VADA_RETURN_IF_ERROR(kb.Insert(name, Tuple(std::move(cells))));
    }
  }
  return kb;
}

}  // namespace vada
