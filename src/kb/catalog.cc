#include "kb/catalog.h"

namespace vada {

const char* RelationRoleName(RelationRole role) {
  switch (role) {
    case RelationRole::kSource:
      return "source";
    case RelationRole::kTarget:
      return "target";
    case RelationRole::kReference:
      return "reference";
    case RelationRole::kMaster:
      return "master";
    case RelationRole::kExample:
      return "example";
    case RelationRole::kMetadata:
      return "metadata";
    case RelationRole::kResult:
      return "result";
  }
  return "?";
}

void Catalog::SetRole(const std::string& relation_name, RelationRole role) {
  auto it = roles_.find(relation_name);
  if (it != roles_.end() && it->second == role) return;
  roles_[relation_name] = role;
  if (listener_ != nullptr) listener_->OnRoleSet(relation_name, role);
}

std::optional<RelationRole> Catalog::GetRole(
    const std::string& relation_name) const {
  auto it = roles_.find(relation_name);
  if (it == roles_.end()) return std::nullopt;
  return it->second;
}

void Catalog::Remove(const std::string& relation_name) {
  if (roles_.erase(relation_name) == 0) return;
  if (listener_ != nullptr) listener_->OnRoleRemoved(relation_name);
}

std::vector<std::string> Catalog::RelationsWithRole(RelationRole role) const {
  std::vector<std::string> out;
  for (const auto& [name, r] : roles_) {
    if (r == role) out.push_back(name);
  }
  return out;
}

bool Catalog::IsDataContext(const std::string& relation_name) const {
  std::optional<RelationRole> role = GetRole(relation_name);
  return role.has_value() &&
         (*role == RelationRole::kReference || *role == RelationRole::kMaster ||
          *role == RelationRole::kExample);
}

}  // namespace vada
