#include "kb/write_guard.h"

#include <cassert>

#include "kb/delta_log.h"
#include "kb/durability.h"

namespace vada {

WriteGuard::WriteGuard(KnowledgeBase* kb) : kb_(kb) {
  assert(kb_ != nullptr);
  // Guards do not nest: the orchestrator holds at most one per Execute().
  assert(kb_->guard_ == nullptr && "WriteGuard does not nest");
  global_version_ = kb_->global_version_;
  facts_added_ = kb_->facts_added_;
  facts_removed_ = kb_->facts_removed_;
  versions_ = kb_->versions_;
  roles_ = kb_->catalog_.Snapshot();
  kb_->guard_ = this;
  // Guard boundaries are WAL transaction boundaries (kb/durability.h).
  if (kb_->durability_ != nullptr) kb_->durability_->OnTxnBegin();
}

WriteGuard::~WriteGuard() {
  if (!done_) Rollback();
}

void WriteGuard::OnMutation(const std::string& relation) {
  auto it = touched_.find(relation);
  if (it != touched_.end()) return;  // pre-image already saved
  const Relation* rel = kb_->FindRelation(relation);
  if (rel != nullptr) {
    touched_.emplace(relation, *rel);
  } else {
    touched_.emplace(relation, std::nullopt);
  }
}

std::vector<std::string> WriteGuard::TouchedRelationNames() const {
  std::vector<std::string> names;
  names.reserve(touched_.size());
  for (const auto& [name, pre_image] : touched_) names.push_back(name);
  return names;
}

void WriteGuard::Commit() {
  if (done_) return;
  done_ = true;
  kb_->guard_ = nullptr;
  touched_.clear();
  if (kb_->durability_ != nullptr) kb_->durability_->OnTxnCommit();
}

void WriteGuard::Rollback() {
  if (done_) return;
  done_ = true;
  kb_->guard_ = nullptr;
  for (auto& [name, pre_image] : touched_) {
    if (pre_image.has_value()) {
      kb_->relations_.insert_or_assign(name, std::move(*pre_image));
    } else {
      kb_->relations_.erase(name);
    }
  }
  kb_->versions_ = std::move(versions_);
  kb_->global_version_ = global_version_;
  kb_->facts_added_ = facts_added_;
  kb_->facts_removed_ = facts_removed_;
  kb_->catalog_.Restore(std::move(roles_));
  touched_.clear();
  if (kb_->durability_ != nullptr) kb_->durability_->OnTxnAbort();
  // The transaction's delta records describe mutations that no longer
  // happened; rewind to the version saved at construction so the next
  // incremental pass never sees phantom deltas.
  if (kb_->delta_log_ != nullptr) kb_->delta_log_->OnRewind(global_version_);
}

}  // namespace vada
