#ifndef VADA_KB_FS_UTIL_H_
#define VADA_KB_FS_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace vada {

/// Small POSIX filesystem helpers shared by the KB persistence stack
/// (persistence.cc, wal.cc, checkpoint.cc). All paths are plain
/// std::string; errors carry the failing path in the message.

/// Whole-file read; kNotFound when the file cannot be opened.
Result<std::string> ReadFileText(const std::string& path);

/// Whole-file write (truncating). With `sync`, fsyncs before closing so
/// the bytes survive a crash once the call returns.
Status WriteFileText(const std::string& path, const std::string& text,
                     bool sync = false);

/// mkdir -p for one level (parent must exist); EEXIST is success.
Status EnsureDirectory(const std::string& path);

bool PathExists(const std::string& path);
bool IsDirectory(const std::string& path);

/// Size in bytes; 0 when the file does not exist.
uint64_t FileSizeBytes(const std::string& path);

/// Entry names (not paths) of a directory, sorted; "." and ".." omitted.
/// Empty when the directory cannot be read.
std::vector<std::string> ListDirectory(const std::string& path);

/// rm -rf. Succeeds when the path does not exist.
Status RemoveRecursively(const std::string& path);

/// fsync on a file or directory (directory fsync makes renames/creates
/// inside it durable). kNotFound when the path cannot be opened.
Status SyncPath(const std::string& path);

/// rename(2) wrapper with path-carrying error message.
Status RenamePath(const std::string& from, const std::string& to);

}  // namespace vada

#endif  // VADA_KB_FS_UTIL_H_
