#ifndef VADA_KB_DELTA_LOG_H_
#define VADA_KB_DELTA_LOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kb/tuple.h"

namespace vada {

/// Row-level change log of a KnowledgeBase, keyed by the KB's global
/// version counter (DESIGN.md §5k).
///
/// Attached via KnowledgeBase::AttachDeltaLog (the same non-owned
/// listener pattern as the durability manager), the log records one
/// (version, insert|retract, tuple) entry per *effective* row change —
/// replaces are diffed against the previous contents, so a replace that
/// rewrites an unchanged row logs nothing for it. Incremental consumers
/// remember the global version they last observed and later ask
/// `Since(relation, v)` for the net tuple-level delta of versions > v,
/// which drives differential re-evaluation instead of a full re-run.
///
/// The log answers exactly or not at all: `Since` returns nullopt when
/// the requested range is not fully covered — records were evicted past
/// the capacity bound, the relation was dropped (a reset marker), or the
/// range predates attachment — and the consumer falls back to a full
/// reload. `OnRewind` (called by WriteGuard::Rollback with the guard's
/// saved global version) drops every record of the rolled-back
/// transaction so phantom deltas never leak into the next incremental
/// pass, and bumps `rewind_epoch` so consumers holding state derived
/// from rolled-back reads can detect it and re-initialize.
class DeltaLog {
 public:
  /// Net tuple-level changes of one relation over a version range. A
  /// tuple inserted and later retracted within the range nets to
  /// nothing and appears in neither list.
  struct RelationDelta {
    std::vector<Tuple> inserts;
    std::vector<Tuple> retracts;
  };

  static constexpr size_t kDefaultMaxRecords = 1u << 20;

  explicit DeltaLog(size_t max_records = kDefaultMaxRecords);

  // --- KB hooks (called by KnowledgeBase/WriteGuard; version is the
  // --- post-bump global version of the mutation) ---------------------

  void OnInsert(const std::string& relation, const Tuple& tuple,
                uint64_t version);
  void OnRetract(const std::string& relation, const Tuple& tuple,
                 uint64_t version);
  /// The relation's history can no longer be expressed as row deltas
  /// (DropRelation). Consumers with an older base must fully reload.
  void OnReset(const std::string& relation, uint64_t version);
  /// Transaction rollback: drops every record with version > `version`
  /// and bumps rewind_epoch(). Idempotent for a version at-or-above the
  /// newest record.
  void OnRewind(uint64_t version);
  /// Called by AttachDeltaLog: versions at-or-below `version` predate
  /// the log and are never answerable.
  void SetFloor(uint64_t version);

  // --- Consumer API --------------------------------------------------

  /// Net delta of `relation` across versions in (since, +inf); nullopt
  /// when the log cannot answer exactly (eviction, reset, or `since`
  /// below the attach floor).
  std::optional<RelationDelta> Since(const std::string& relation,
                                     uint64_t since) const;

  /// Incremented by every OnRewind. Consumers caching state derived
  /// from the KB snapshot-compare this to invalidate after rollbacks.
  uint64_t rewind_epoch() const { return rewind_epoch_; }

  /// Total records currently retained (inserts + retracts + resets).
  size_t size() const { return total_records_; }
  size_t max_records() const { return max_records_; }
  /// Oldest version any relation can still answer from (max over the
  /// attach floor and eviction floors); diagnostic only.
  uint64_t floor() const { return floor_; }

 private:
  enum class Kind : uint8_t { kInsert, kRetract, kReset };

  struct Record {
    uint64_t version = 0;
    Kind kind = Kind::kInsert;
    Tuple tuple;  // empty for kReset
  };

  struct RelationLog {
    /// Version-ordered appends; OnRewind pops the tail, eviction pops
    /// the front.
    std::deque<Record> records;
    /// Since(since) answers exactly only when since >= evict_floor:
    /// records at-or-below it were evicted.
    uint64_t evict_floor = 0;
  };

  void EvictIfNeeded();

  std::map<std::string, RelationLog> relations_;
  size_t max_records_;
  size_t total_records_ = 0;
  uint64_t floor_ = 0;
  uint64_t rewind_epoch_ = 0;
};

}  // namespace vada

#endif  // VADA_KB_DELTA_LOG_H_
