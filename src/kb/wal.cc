#include "kb/wal.h"

#include <unistd.h>

#include <cassert>
#include <chrono>
#include <cstring>

#include "common/crc32.h"
#include "common/strings.h"
#include "kb/fs_util.h"
#include "obs/metrics.h"

namespace vada {

namespace {

// Segment header: magic (8) + format version (4) + sequence number (8).
constexpr char kMagic[8] = {'V', 'A', 'D', 'A', 'W', 'A', 'L', '\x01'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kSegmentHeaderBytes = sizeof(kMagic) + 4 + 8;
// Frame: payload length (4) + payload crc32 (4).
constexpr size_t kFrameHeaderBytes = 8;
// Anything larger is a corrupt length field, not a real record.
constexpr uint32_t kMaxPayloadBytes = 256u << 20;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->push_back(v.bool_value() ? 1 : 0);
      break;
    case ValueType::kInt:
      PutU64(out, static_cast<uint64_t>(v.int_value()));
      break;
    case ValueType::kDouble: {
      uint64_t bits;
      double d = v.double_value();
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      break;
    }
    case ValueType::kString:
      PutString(out, v.string_value());
      break;
  }
}

/// Bounds-checked little-endian reader over one payload.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool GetString(std::string* v) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    v->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool GetValue(Value* v) {
    uint8_t tag = 0;
    if (!GetU8(&tag)) return false;
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kNull:
        *v = Value::Null();
        return true;
      case ValueType::kBool: {
        uint8_t b = 0;
        if (!GetU8(&b)) return false;
        *v = Value::Bool(b != 0);
        return true;
      }
      case ValueType::kInt: {
        uint64_t bits = 0;
        if (!GetU64(&bits)) return false;
        *v = Value::Int(static_cast<int64_t>(bits));
        return true;
      }
      case ValueType::kDouble: {
        uint64_t bits = 0;
        if (!GetU64(&bits)) return false;
        double d;
        std::memcpy(&d, &bits, 8);
        *v = Value::Double(d);
        return true;
      }
      case ValueType::kString: {
        std::string s;
        if (!GetString(&s)) return false;
        *v = Value::String(std::move(s));
        return true;
      }
    }
    return false;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

std::string SegmentFileName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%010llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string SegmentHeader(uint64_t seq) {
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kFormatVersion);
  PutU64(&header, seq);
  return header;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kEveryCommit:
      return "every_commit";
    case FsyncPolicy::kInterval:
      return "interval";
  }
  return "unknown";
}

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kTxnBegin:
      return "txn_begin";
    case WalRecordType::kCommit:
      return "commit";
    case WalRecordType::kAbort:
      return "abort";
    case WalRecordType::kCreateRelation:
      return "create_relation";
    case WalRecordType::kInsert:
      return "insert";
    case WalRecordType::kRetract:
      return "retract";
    case WalRecordType::kClear:
      return "clear";
    case WalRecordType::kDrop:
      return "drop";
    case WalRecordType::kCatalogRole:
      return "catalog_role";
  }
  return "unknown";
}

std::string WalRecord::ToString() const {
  std::string out = "[txn " + std::to_string(txn_id) + "] ";
  out += WalRecordTypeName(type);
  switch (type) {
    case WalRecordType::kTxnBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kCreateRelation:
      out += " " + schema.ToString();
      break;
    case WalRecordType::kInsert:
    case WalRecordType::kRetract:
      out += " " + relation + " " + tuple.ToString();
      break;
    case WalRecordType::kClear:
    case WalRecordType::kDrop:
      out += " " + relation;
      break;
    case WalRecordType::kCatalogRole:
      out += " " + relation + " -> " +
             (role_removed ? "(removed)" : RelationRoleName(role));
      break;
  }
  return out;
}

std::string WalPosition::ToString() const {
  return "segment " + std::to_string(segment) + " offset " +
         std::to_string(offset);
}

size_t CrashInjector::AdmitWrite(size_t want) {
  if (crashed_) return 0;
  if (++ops_ == schedule_.kill_after_ops) {
    crashed_ = true;
    double f = schedule_.torn_fraction;
    if (f < 0.0) f = 0.0;
    if (f > 1.0) f = 1.0;
    return static_cast<size_t>(static_cast<double>(want) * f);
  }
  return want;
}

bool CrashInjector::AdmitOp() {
  if (crashed_) return false;
  if (++ops_ == schedule_.kill_after_ops) {
    crashed_ = true;
    return false;
  }
  return true;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutU64(&payload, record.txn_id);
  switch (record.type) {
    case WalRecordType::kTxnBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kCreateRelation: {
      PutString(&payload, record.schema.relation_name());
      PutU32(&payload,
             static_cast<uint32_t>(record.schema.attributes().size()));
      for (const Attribute& a : record.schema.attributes()) {
        PutString(&payload, a.name);
        payload.push_back(static_cast<char>(a.type));
      }
      break;
    }
    case WalRecordType::kInsert:
    case WalRecordType::kRetract: {
      PutString(&payload, record.relation);
      PutU32(&payload, static_cast<uint32_t>(record.tuple.size()));
      for (const Value& v : record.tuple.values()) PutValue(&payload, v);
      break;
    }
    case WalRecordType::kClear:
    case WalRecordType::kDrop:
      PutString(&payload, record.relation);
      break;
    case WalRecordType::kCatalogRole:
      PutString(&payload, record.relation);
      payload.push_back(record.role_removed
                            ? '\xFF'
                            : static_cast<char>(record.role));
      break;
  }
  return payload;
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  PayloadReader reader(payload);
  WalRecord record;
  uint8_t type = 0;
  if (!reader.GetU8(&type) || !reader.GetU64(&record.txn_id)) {
    return Status::DataLoss("WAL record payload truncated");
  }
  record.type = static_cast<WalRecordType>(type);
  switch (record.type) {
    case WalRecordType::kTxnBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kCreateRelation: {
      std::string name;
      uint32_t nattrs = 0;
      if (!reader.GetString(&name) || !reader.GetU32(&nattrs)) {
        return Status::DataLoss("WAL create_relation record truncated");
      }
      std::vector<Attribute> attrs;
      attrs.reserve(nattrs);
      for (uint32_t i = 0; i < nattrs; ++i) {
        Attribute a;
        uint8_t attr_type = 0;
        if (!reader.GetString(&a.name) || !reader.GetU8(&attr_type)) {
          return Status::DataLoss("WAL create_relation record truncated");
        }
        a.type = static_cast<AttributeType>(attr_type);
        attrs.push_back(std::move(a));
      }
      record.schema = Schema(std::move(name), std::move(attrs));
      break;
    }
    case WalRecordType::kInsert:
    case WalRecordType::kRetract: {
      uint32_t arity = 0;
      if (!reader.GetString(&record.relation) || !reader.GetU32(&arity)) {
        return Status::DataLoss("WAL tuple record truncated");
      }
      std::vector<Value> values;
      values.reserve(arity);
      for (uint32_t i = 0; i < arity; ++i) {
        Value v;
        if (!reader.GetValue(&v)) {
          return Status::DataLoss("WAL tuple record truncated");
        }
        values.push_back(std::move(v));
      }
      record.tuple = Tuple(std::move(values));
      break;
    }
    case WalRecordType::kClear:
    case WalRecordType::kDrop:
      if (!reader.GetString(&record.relation)) {
        return Status::DataLoss("WAL relation record truncated");
      }
      break;
    case WalRecordType::kCatalogRole: {
      uint8_t role = 0;
      if (!reader.GetString(&record.relation) || !reader.GetU8(&role)) {
        return Status::DataLoss("WAL catalog_role record truncated");
      }
      record.role_removed = role == 0xFF;
      if (!record.role_removed) record.role = static_cast<RelationRole>(role);
      break;
    }
    default:
      return Status::DataLoss("unknown WAL record type " +
                              std::to_string(type));
  }
  if (!reader.exhausted()) {
    return Status::DataLoss("trailing bytes in WAL record payload");
  }
  return record;
}

// ---------------------------------------------------------------------------
// WalWriter

WalWriter::WalWriter(WalOptions options, uint64_t first_segment)
    : options_(std::move(options)),
      segment_seq_(first_segment),
      oldest_segment_(first_segment),
      last_sync_ms_(NowMs()) {
  // Segments surviving from earlier processes still count as live bytes.
  for (uint64_t seq : ListWalSegments(options_.directory)) {
    if (seq < oldest_segment_) oldest_segment_ = seq;
    live_bytes_ +=
        FileSizeBytes(options_.directory + "/" + SegmentFileName(seq));
  }
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(WalOptions options,
                                                   uint64_t first_segment) {
  for (uint64_t seq : ListWalSegments(options.directory)) {
    if (seq >= first_segment) {
      return Status::InvalidArgument(
          "WAL segment " + std::to_string(seq) +
          " already exists at or past requested start segment " +
          std::to_string(first_segment));
    }
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(std::move(options), first_segment));
  VADA_RETURN_IF_ERROR(writer->OpenSegment(first_segment));
  return writer;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    // Best-effort flush; durability of the tail follows the fsync policy.
    (void)CloseSegment();
  }
}

std::string WalWriter::SegmentPath(uint64_t seq) const {
  return options_.directory + "/" + SegmentFileName(seq);
}

Status WalWriter::WriteRaw(const char* data, size_t size) {
  size_t allowed = size;
  if (options_.crash != nullptr) {
    allowed = options_.crash->AdmitWrite(size);
  }
  size_t written =
      allowed == 0 ? 0 : std::fwrite(data, 1, allowed, file_);
  if (written > 0) {
    segment_offset_ += written;
    live_bytes_ += written;
  }
  if (allowed < size) {
    // The simulated process died mid-write; flush what landed so the
    // test's recovery pass sees exactly the torn prefix.
    std::fflush(file_);
    sticky_error_ = Status::DataLoss("simulated crash during WAL write");
    return sticky_error_;
  }
  if (written != size) {
    sticky_error_ = Status::DataLoss("short write to " +
                                     SegmentPath(segment_seq_));
    return sticky_error_;
  }
  return Status::OK();
}

Status WalWriter::OpenSegment(uint64_t seq) {
  if (options_.crash != nullptr && !options_.crash->AdmitOp()) {
    sticky_error_ = Status::DataLoss("simulated crash creating WAL segment");
    return sticky_error_;
  }
  file_ = std::fopen(SegmentPath(seq).c_str(), "wb");
  if (file_ == nullptr) {
    sticky_error_ = Status::Internal("cannot create " + SegmentPath(seq));
    return sticky_error_;
  }
  if (options_.fsync != FsyncPolicy::kNone) {
    // The segment's directory entry must survive power loss too — an
    // fsync'd record in a file the directory forgot is still lost.
    Status synced = SyncPath(options_.directory);
    if (!synced.ok()) {
      sticky_error_ = synced;
      return sticky_error_;
    }
  }
  segment_seq_ = seq;
  segment_offset_ = 0;
  std::string header = SegmentHeader(seq);
  return WriteRaw(header.data(), header.size());
}

Status WalWriter::CloseSegment() {
  if (file_ == nullptr) return Status::OK();
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  VADA_RETURN_IF_ERROR(sticky_error_);
  std::string payload = EncodeWalRecord(record);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame += payload;

  if (segment_offset_ + frame.size() > options_.segment_bytes &&
      segment_offset_ > kSegmentHeaderBytes) {
    Result<WalPosition> rotated = Rotate();
    if (!rotated.ok()) return rotated.status();
  }
  VADA_RETURN_IF_ERROR(WriteRaw(frame.data(), frame.size()));
  ++appended_records_;
  appended_bytes_ += frame.size();
  if (records_metric_ != nullptr) records_metric_->Increment();
  if (bytes_metric_ != nullptr) bytes_metric_->Increment(frame.size());

  if (record.IsCommitBoundary()) {
    switch (options_.fsync) {
      case FsyncPolicy::kNone:
        break;
      case FsyncPolicy::kEveryCommit:
        return Sync();
      case FsyncPolicy::kInterval:
        if (NowMs() - last_sync_ms_ >= options_.fsync_interval_ms) {
          return Sync();
        }
        break;
    }
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  VADA_RETURN_IF_ERROR(sticky_error_);
  if (file_ == nullptr) return Status::OK();
  if (options_.crash != nullptr && !options_.crash->AdmitOp()) {
    sticky_error_ = Status::DataLoss("simulated crash during WAL fsync");
    return sticky_error_;
  }
  double t0 = NowMs();
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    sticky_error_ =
        Status::Internal("fsync failed on " + SegmentPath(segment_seq_));
    return sticky_error_;
  }
  last_sync_ms_ = NowMs();
  if (fsync_metric_ != nullptr) {
    fsync_metric_->Observe((last_sync_ms_ - t0) * 1e-3);
  }
  return Status::OK();
}

Result<WalPosition> WalWriter::Rotate() {
  VADA_RETURN_IF_ERROR(sticky_error_);
  // The outgoing segment must be durable before the log moves past it:
  // a checkpoint manifest may reference the new segment as its replay
  // start, implying everything before it is settled.
  if (options_.fsync != FsyncPolicy::kNone) {
    VADA_RETURN_IF_ERROR(Sync());
  }
  VADA_RETURN_IF_ERROR(CloseSegment());
  VADA_RETURN_IF_ERROR(OpenSegment(segment_seq_ + 1));
  return position();
}

Status WalWriter::DeleteSegmentsBefore(uint64_t segment) {
  VADA_RETURN_IF_ERROR(sticky_error_);
  bool deleted = false;
  for (uint64_t seq : ListWalSegments(options_.directory)) {
    if (seq >= segment || seq == segment_seq_) continue;
    std::string path = SegmentPath(seq);
    uint64_t bytes = FileSizeBytes(path);
    if (options_.crash != nullptr && !options_.crash->AdmitOp()) {
      sticky_error_ =
          Status::DataLoss("simulated crash during WAL truncation");
      return sticky_error_;
    }
    VADA_RETURN_IF_ERROR(RemoveRecursively(path));
    live_bytes_ -= bytes < live_bytes_ ? bytes : live_bytes_;
    deleted = true;
  }
  if (deleted && options_.fsync != FsyncPolicy::kNone) {
    VADA_RETURN_IF_ERROR(SyncPath(options_.directory));
  }
  if (segment > oldest_segment_) oldest_segment_ = segment;
  return Status::OK();
}

void WalWriter::SetMetrics(obs::Counter* records_total,
                           obs::Counter* bytes_total,
                           obs::Histogram* fsync_seconds) {
  records_metric_ = records_total;
  bytes_metric_ = bytes_total;
  fsync_metric_ = fsync_seconds;
}

// ---------------------------------------------------------------------------
// Reading

std::vector<uint64_t> ListWalSegments(const std::string& directory) {
  std::vector<uint64_t> segments;
  for (const std::string& name : ListDirectory(directory)) {
    if (!StartsWith(name, "wal-") || !EndsWith(name, ".log")) continue;
    std::string digits = name.substr(4, name.size() - 8);
    if (digits.empty() || !IsDigits(digits)) continue;
    segments.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

Status ScanWal(const std::string& directory, WalPosition from,
               const std::function<Status(const WalRecord&,
                                          const WalPosition&)>& fn,
               WalReadStats* stats) {
  WalReadStats local;
  WalReadStats* st = stats != nullptr ? stats : &local;
  *st = WalReadStats();
  st->end = from;

  std::vector<uint64_t> segments = ListWalSegments(directory);
  auto torn = [st](std::string reason, WalPosition at) {
    st->torn_tail = true;
    st->torn_reason = std::move(reason);
    st->end = at;
  };

  uint64_t expected_next = from.segment;
  bool first = true;
  for (uint64_t seq : segments) {
    if (seq < from.segment) continue;
    if (first && seq != from.segment && from.offset > 0) {
      // A non-zero start offset is a checkpoint resume position, so the
      // start segment once existed. Its absence while later segments
      // survive means committed history between the checkpoint and
      // `seq` is gone — report torn rather than silently replaying the
      // disconnected suffix on top of an incomplete prefix.
      torn("missing WAL segment " + std::to_string(from.segment) +
               " at replay start",
           st->end);
      return Status::OK();
    }
    if (!first && seq != expected_next) {
      // A gap in the sequence: everything past the gap is unreachable
      // (its predecessor was lost), so treat the log as ending here.
      torn("missing WAL segment " + std::to_string(expected_next),
           st->end);
      return Status::OK();
    }
    Result<std::string> data =
        ReadFileText(directory + "/" + SegmentFileName(seq));
    if (!data.ok()) {
      torn("unreadable WAL segment " + std::to_string(seq),
           {seq, 0});
      return Status::OK();
    }
    const std::string& text = data.value();
    std::string expected_header = SegmentHeader(seq);
    if (text.size() < expected_header.size() ||
        text.compare(0, expected_header.size(), expected_header) != 0) {
      torn("bad header in WAL segment " + std::to_string(seq), {seq, 0});
      return Status::OK();
    }
    size_t pos = expected_header.size();
    if (first && from.segment == seq && from.offset > pos) {
      if (from.offset > text.size()) {
        torn("WAL start position past end of segment " + std::to_string(seq),
             {seq, pos});
        return Status::OK();
      }
      pos = from.offset;
    }
    first = false;
    expected_next = seq + 1;
    st->end = {seq, pos};

    while (pos < text.size()) {
      if (pos + kFrameHeaderBytes > text.size()) {
        torn("short frame header", {seq, pos});
        return Status::OK();
      }
      uint32_t len = 0, crc = 0;
      std::memcpy(&len, text.data() + pos, 4);
      std::memcpy(&crc, text.data() + pos + 4, 4);
      if (len > kMaxPayloadBytes) {
        torn("implausible record length", {seq, pos});
        return Status::OK();
      }
      if (pos + kFrameHeaderBytes + len > text.size()) {
        torn("short record payload", {seq, pos});
        return Status::OK();
      }
      std::string_view payload(text.data() + pos + kFrameHeaderBytes, len);
      if (Crc32(payload) != crc) {
        torn("record CRC mismatch", {seq, pos});
        return Status::OK();
      }
      Result<WalRecord> record = DecodeWalRecord(payload);
      if (!record.ok()) {
        torn(record.status().message(), {seq, pos});
        return Status::OK();
      }
      pos += kFrameHeaderBytes + len;
      ++st->records;
      st->bytes += kFrameHeaderBytes + len;
      if (record.value().type == WalRecordType::kCommit) ++st->commits;
      if (record.value().type == WalRecordType::kAbort) ++st->aborts;
      st->end = {seq, pos};
      if (fn) {
        VADA_RETURN_IF_ERROR(fn(record.value(), st->end));
      }
    }
  }
  return Status::OK();
}

Status TruncateWalAfter(const std::string& directory,
                        const WalReadStats& stats) {
  bool modified = false;
  for (uint64_t seq : ListWalSegments(directory)) {
    std::string path = directory + "/" + SegmentFileName(seq);
    if (seq > stats.end.segment) {
      VADA_RETURN_IF_ERROR(RemoveRecursively(path));
      modified = true;
      continue;
    }
    if (seq == stats.end.segment &&
        FileSizeBytes(path) > stats.end.offset) {
      // An end offset inside the segment header means the header itself
      // never became valid; a truncated remnant would still scan as
      // torn, so remove the whole segment.
      if (stats.end.offset < kSegmentHeaderBytes) {
        VADA_RETURN_IF_ERROR(RemoveRecursively(path));
        modified = true;
        continue;
      }
      if (::truncate(path.c_str(),
                     static_cast<off_t>(stats.end.offset)) != 0) {
        return Status::Internal("cannot truncate " + path);
      }
      VADA_RETURN_IF_ERROR(SyncPath(path));
      modified = true;
    }
  }
  // Repair happens once per recovery; make it durable unconditionally
  // so a discarded tail cannot reappear after power loss.
  if (modified) {
    VADA_RETURN_IF_ERROR(SyncPath(directory));
  }
  return Status::OK();
}

}  // namespace vada
