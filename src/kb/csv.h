#ifndef VADA_KB_CSV_H_
#define VADA_KB_CSV_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "kb/relation.h"

namespace vada {

/// Options controlling CSV import.
struct CsvOptions {
  char separator = ',';
  /// First row is the header (attribute names). If false, attributes are
  /// named c0, c1, ...
  bool has_header = true;
  /// Parse cells through Value::FromText (typed import). When false every
  /// non-empty cell becomes a string; empty cells are nulls either way.
  bool infer_types = true;
};

/// Parses RFC4180-style CSV text (quoted fields, embedded separators,
/// doubled quotes, \n / \r\n line ends) into a relation named
/// `relation_name` with kAny attribute types.
Result<Relation> ParseCsv(std::string_view text, const std::string& relation_name,
                          const CsvOptions& options = CsvOptions());

/// Reads and parses a CSV file.
Result<Relation> ReadCsvFile(const std::string& path,
                             const std::string& relation_name,
                             const CsvOptions& options = CsvOptions());

/// Renders `relation` as CSV with a header row; nulls become empty fields.
std::string ToCsv(const Relation& relation, char separator = ',');

/// Writes ToCsv(relation) to `path`.
Status WriteCsvFile(const Relation& relation, const std::string& path,
                    char separator = ',');

}  // namespace vada

#endif  // VADA_KB_CSV_H_
