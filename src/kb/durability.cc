#include "kb/durability.h"

#include <chrono>

#include "kb/checkpoint.h"
#include "kb/fs_util.h"
#include "kb/write_guard.h"
#include "obs/metrics.h"

namespace vada {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status ApplyWalRecord(KnowledgeBase* kb, const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kTxnBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      return Status::OK();  // handled by the replay driver
    case WalRecordType::kCreateRelation:
      return kb->CreateRelation(record.schema);
    case WalRecordType::kInsert:
      return kb->Insert(record.relation, record.tuple);
    case WalRecordType::kRetract:
      return kb->Retract(record.relation, record.tuple);
    case WalRecordType::kClear:
      return kb->ClearRelation(record.relation);
    case WalRecordType::kDrop:
      return kb->DropRelation(record.relation);
    case WalRecordType::kCatalogRole:
      if (record.role_removed) {
        kb->catalog().Remove(record.relation);
      } else {
        kb->catalog().SetRole(record.relation, record.role);
      }
      return Status::OK();
  }
  return Status::DataLoss("unknown WAL record type in replay");
}

}  // namespace

std::string RecoveryStats::ToString() const {
  if (!recovered) return "fresh (no durable state found)";
  std::string out = "recovered from ";
  out += checkpoint_id != 0
             ? "checkpoint " + std::to_string(checkpoint_id)
             : "WAL only";
  if (checkpoint_fallback) out += " (newest checkpoint corrupt, fell back)";
  out += ": " + std::to_string(replayed_records) + " records / " +
         std::to_string(replayed_commits) + " commits replayed";
  if (discarded_records > 0) {
    out += ", " + std::to_string(discarded_records) +
           " uncommitted trailing records discarded";
  }
  if (torn_tail) out += ", torn tail truncated (" + torn_reason + ")";
  return out;
}

DurabilityManager::DurabilityManager(const DurabilityOptions& options,
                                     KnowledgeBase* kb)
    : options_(options), kb_(kb) {}

DurabilityManager::~DurabilityManager() {
  if (kb_ != nullptr) {
    kb_->AttachDurability(nullptr);
    kb_->catalog().SetListener(nullptr);
  }
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options, KnowledgeBase* kb,
    obs::MetricsRegistry* metrics) {
  double t0 = NowSeconds();
  VADA_RETURN_IF_ERROR(EnsureDirectory(options.directory));
  VADA_RETURN_IF_ERROR(RemoveStaleCheckpointTmp(options.directory));

  std::unique_ptr<DurabilityManager> mgr(
      new DurabilityManager(options, kb));

  // Newest verifiable checkpoint wins; a corrupt one falls back to the
  // next-older retained checkpoint rather than failing recovery.
  std::vector<uint64_t> checkpoint_ids = ListCheckpoints(options.directory);
  WalPosition replay_from;
  bool have_checkpoint = false;
  for (size_t i = checkpoint_ids.size(); i-- > 0;) {
    uint64_t id = checkpoint_ids[i];
    Result<CheckpointInfo> info = ReadCheckpointInfo(options.directory, id);
    Result<KnowledgeBase> loaded =
        info.ok() ? LoadCheckpoint(options.directory, id)
                  : Result<KnowledgeBase>(info.status());
    if (!loaded.ok()) {
      if (loaded.status().code() == StatusCode::kDataLoss) {
        mgr->recovery_.checkpoint_fallback = true;
        continue;
      }
      return loaded.status();
    }
    *kb = std::move(loaded).value();
    replay_from = info.value().wal_start;
    mgr->recovery_.checkpoint_id = id;
    mgr->last_checkpoint_id_ = id;
    have_checkpoint = true;
    // Corrupt newer checkpoints must not outlive the fallback: left on
    // disk, the next Checkpoint() would pick id last_checkpoint_id_ + 1
    // and collide with one of them (AlreadyExists), permanently
    // poisoning the manager.
    for (size_t j = i + 1; j < checkpoint_ids.size(); ++j) {
      VADA_RETURN_IF_ERROR(
          RemoveCheckpoint(options.directory, checkpoint_ids[j]));
    }
    break;
  }
  if (!have_checkpoint && !checkpoint_ids.empty()) {
    return Status::DataLoss(
        "every retained checkpoint in " + options.directory +
        " failed verification; durable state is unrecoverable");
  }
  if (!have_checkpoint) {
    mgr->recovery_.checkpoint_fallback = false;
    std::vector<uint64_t> segments = ListWalSegments(options.directory);
    replay_from = {segments.empty() ? 1 : segments.front(), 0};
  }

  // Replay: committed work is applied; a trailing transaction with no
  // commit record — interrupted mid-flight — rolls back through the
  // same WriteGuard machinery that rolled back live failures.
  std::unique_ptr<WriteGuard> open_txn;
  uint64_t open_txn_id = 0;
  uint64_t open_txn_records = 0;
  // Position after the last record that completed a commit boundary —
  // where the log must physically end before we append again, so a
  // discarded trailing transaction can never resurface on a later
  // replay as an open transaction swallowing standalone records.
  WalPosition last_committed = replay_from;
  WalReadStats scan;
  Status replay_status = ScanWal(
      options.directory, replay_from,
      [&](const WalRecord& record, const WalPosition& pos) -> Status {
        ++mgr->recovery_.replayed_records;
        if (record.type == WalRecordType::kTxnBegin) {
          if (open_txn != nullptr) {
            return Status::DataLoss("nested txn_begin in WAL");
          }
          open_txn = std::make_unique<WriteGuard>(kb);
          open_txn_id = record.txn_id;
          open_txn_records = 0;
          return Status::OK();
        }
        if (record.txn_id != 0) {
          if (open_txn == nullptr || record.txn_id != open_txn_id) {
            return Status::DataLoss("WAL record for unknown transaction " +
                                    std::to_string(record.txn_id));
          }
          if (record.type == WalRecordType::kCommit) {
            open_txn->Commit();
            open_txn.reset();
            ++mgr->recovery_.replayed_commits;
            last_committed = pos;
            return Status::OK();
          }
          if (record.type == WalRecordType::kAbort) {
            open_txn->Rollback();
            open_txn.reset();
            last_committed = pos;
            return Status::OK();
          }
          ++open_txn_records;
          return ApplyWalRecord(kb, record);
        }
        if (open_txn != nullptr) {
          return Status::DataLoss(
              "standalone WAL record inside open transaction");
        }
        ++mgr->recovery_.replayed_commits;
        VADA_RETURN_IF_ERROR(ApplyWalRecord(kb, record));
        last_committed = pos;
        return Status::OK();
      },
      &scan);
  if (!replay_status.ok()) {
    // A record that passed its CRC but does not apply cleanly means the
    // log and checkpoint disagree — surface as data loss, not a replay
    // of garbage.
    if (open_txn != nullptr) open_txn->Rollback();
    return replay_status.code() == StatusCode::kDataLoss
               ? replay_status
               : Status::DataLoss("WAL replay failed: " +
                                  replay_status.message());
  }
  if (open_txn != nullptr) {
    open_txn->Rollback();
    open_txn.reset();
    mgr->recovery_.discarded_records = open_txn_records + 1;  // + txn_begin
    mgr->recovery_.replayed_records -= mgr->recovery_.discarded_records;
  }
  mgr->recovery_.torn_tail = scan.torn_tail;
  mgr->recovery_.torn_reason = scan.torn_reason;
  mgr->recovery_.recovered = have_checkpoint || scan.records > 0;

  // Drop the torn tail AND any discarded trailing-transaction records
  // so the next scan ends cleanly at the last commit boundary, then
  // append to a fresh segment (never into a file a dying process
  // half-wrote).
  WalReadStats repaired = scan;
  repaired.end = last_committed;
  VADA_RETURN_IF_ERROR(TruncateWalAfter(options.directory, repaired));
  std::vector<uint64_t> segments = ListWalSegments(options.directory);
  uint64_t first_segment = segments.empty() ? 1 : segments.back() + 1;
  if (have_checkpoint && first_segment <= replay_from.segment) {
    // Only pre-checkpoint segments survive (the start segment itself is
    // gone): a writer at or below the checkpoint's replay position
    // would append records the next replay skips, so jump past it.
    first_segment = replay_from.segment + 1;
  }

  WalOptions wal_options;
  wal_options.directory = options.directory;
  wal_options.fsync = options.fsync;
  wal_options.fsync_interval_ms = options.fsync_interval_ms;
  wal_options.segment_bytes = options.segment_bytes;
  wal_options.crash = options.crash;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(std::move(wal_options), first_segment);
  if (!writer.ok()) return writer.status();
  mgr->wal_ = std::move(writer).value();
  mgr->appended_at_last_checkpoint_ = 0;

  mgr->recovery_.seconds = NowSeconds() - t0;
  if (metrics != nullptr) {
    // Register the full §5b family set up front so a metrics snapshot
    // names them even before the first checkpoint or fsync.
    mgr->wal_->SetMetrics(
        metrics->GetCounter("vada_wal_records_total",
                            "WAL records appended"),
        metrics->GetCounter("vada_wal_bytes_total",
                            "WAL bytes appended (frame headers included)"),
        metrics->GetHistogram("vada_wal_fsync_seconds",
                              "WAL fsync latency",
                              obs::Histogram::DefaultLatencyBucketsSeconds()));
    mgr->checkpoint_seconds_ = metrics->GetHistogram(
        "vada_checkpoint_seconds", "KB checkpoint wall time",
        obs::Histogram::DefaultLatencyBucketsSeconds());
    metrics
        ->GetHistogram("vada_recovery_seconds",
                       "durable-state recovery wall time at session open",
                       obs::Histogram::DefaultLatencyBucketsSeconds())
        ->Observe(mgr->recovery_.seconds);
    mgr->wal_live_bytes_gauge_ = metrics->GetGauge(
        "vada_wal_live_bytes", "bytes across live WAL segments");
    mgr->checkpoint_bytes_gauge_ = metrics->GetGauge(
        "vada_checkpoint_bytes", "bytes in the newest retained checkpoint");
    mgr->PublishGauges();
  }

  kb->AttachDurability(mgr.get());
  kb->catalog().SetListener(mgr.get());
  return mgr;
}

void DurabilityManager::Log(WalRecord record) {
  if (!status_.ok() || wal_ == nullptr) return;
  record.txn_id = txn_id_;
  if (txn_id_ != 0 && !txn_began_) {
    // Lazy transaction begin: read-only guards never reach the log.
    WalRecord begin;
    begin.type = WalRecordType::kTxnBegin;
    begin.txn_id = txn_id_;
    status_ = wal_->Append(begin);
    if (!status_.ok()) return;
    txn_began_ = true;
  }
  status_ = wal_->Append(record);
  if (status_.ok() && txn_id_ == 0) MaybeAutoCheckpoint();
}

void DurabilityManager::LogCreateRelation(const Schema& schema) {
  WalRecord record;
  record.type = WalRecordType::kCreateRelation;
  record.schema = schema;
  Log(std::move(record));
}

void DurabilityManager::LogInsert(const std::string& relation,
                                  const Tuple& tuple) {
  WalRecord record;
  record.type = WalRecordType::kInsert;
  record.relation = relation;
  record.tuple = tuple;
  Log(std::move(record));
}

void DurabilityManager::LogRetract(const std::string& relation,
                                   const Tuple& tuple) {
  WalRecord record;
  record.type = WalRecordType::kRetract;
  record.relation = relation;
  record.tuple = tuple;
  Log(std::move(record));
}

void DurabilityManager::LogClear(const std::string& relation) {
  WalRecord record;
  record.type = WalRecordType::kClear;
  record.relation = relation;
  Log(std::move(record));
}

void DurabilityManager::LogDrop(const std::string& relation) {
  WalRecord record;
  record.type = WalRecordType::kDrop;
  record.relation = relation;
  Log(std::move(record));
}

void DurabilityManager::OnRoleSet(const std::string& relation_name,
                                  RelationRole role) {
  WalRecord record;
  record.type = WalRecordType::kCatalogRole;
  record.relation = relation_name;
  record.role = role;
  Log(std::move(record));
}

void DurabilityManager::OnRoleRemoved(const std::string& relation_name) {
  WalRecord record;
  record.type = WalRecordType::kCatalogRole;
  record.relation = relation_name;
  record.role_removed = true;
  Log(std::move(record));
}

void DurabilityManager::OnTxnBegin() {
  txn_id_ = next_txn_id_++;
  txn_began_ = false;
}

void DurabilityManager::OnTxnCommit() {
  uint64_t id = txn_id_;
  bool began = txn_began_;
  txn_id_ = 0;
  txn_began_ = false;
  if (!began || !status_.ok() || wal_ == nullptr) return;
  WalRecord record;
  record.type = WalRecordType::kCommit;
  record.txn_id = id;
  status_ = wal_->Append(record);  // fsync policy applies inside
  if (status_.ok()) MaybeAutoCheckpoint();
}

void DurabilityManager::OnTxnAbort() {
  uint64_t id = txn_id_;
  bool began = txn_began_;
  txn_id_ = 0;
  txn_began_ = false;
  if (!began || !status_.ok() || wal_ == nullptr) return;
  WalRecord record;
  record.type = WalRecordType::kAbort;
  record.txn_id = id;
  status_ = wal_->Append(record);
}

Status DurabilityManager::Sync() {
  VADA_RETURN_IF_ERROR(status_);
  status_ = wal_->Sync();
  return status_;
}

void DurabilityManager::MaybeAutoCheckpoint() {
  if (options_.checkpoint_every_bytes == 0) return;
  if (wal_->appended_bytes() - appended_at_last_checkpoint_ <
      options_.checkpoint_every_bytes) {
    return;
  }
  status_ = Checkpoint();
}

Status DurabilityManager::Checkpoint() {
  VADA_RETURN_IF_ERROR(status_);
  if (kb_->HasActiveGuard()) {
    // Not poisoning: the caller simply has to retry outside the guard.
    return Status::FailedPrecondition(
        "cannot checkpoint while a WriteGuard is active");
  }
  double t0 = NowSeconds();

  // Rotate first: the checkpoint's replay position is then a clean
  // segment boundary, and truncation later works on whole segments.
  Result<WalPosition> rotated = wal_->Rotate();
  if (!rotated.ok()) {
    status_ = rotated.status();
    return status_;
  }
  uint64_t id = last_checkpoint_id_ + 1;
  Result<CheckpointInfo> written = WriteCheckpoint(
      *kb_, options_.directory, id, rotated.value(), options_.crash);
  if (!written.ok()) {
    status_ = written.status();
    return status_;
  }
  last_checkpoint_id_ = id;
  appended_at_last_checkpoint_ = wal_->appended_bytes();

  // Prune checkpoints beyond the retention window, then drop the WAL
  // segments that only pre-date the oldest checkpoint we still keep.
  std::vector<uint64_t> ids = ListCheckpoints(options_.directory);
  size_t keep = options_.checkpoints_to_keep < 1
                    ? 1
                    : static_cast<size_t>(options_.checkpoints_to_keep);
  while (ids.size() > keep) {
    Status removed = RemoveCheckpoint(options_.directory, ids.front());
    if (!removed.ok()) {
      status_ = removed;
      return status_;
    }
    ids.erase(ids.begin());
  }
  Result<CheckpointInfo> oldest =
      ReadCheckpointInfo(options_.directory, ids.front());
  if (oldest.ok()) {
    Status truncated =
        wal_->DeleteSegmentsBefore(oldest.value().wal_start.segment);
    if (!truncated.ok()) {
      status_ = truncated;
      return status_;
    }
  }

  if (checkpoint_seconds_ != nullptr) {
    checkpoint_seconds_->Observe(NowSeconds() - t0);
  }
  PublishGauges();
  return Status::OK();
}

void DurabilityManager::PublishGauges() {
  if (wal_live_bytes_gauge_ != nullptr && wal_ != nullptr) {
    wal_live_bytes_gauge_->Set(static_cast<int64_t>(wal_->live_bytes()));
  }
  if (checkpoint_bytes_gauge_ != nullptr && last_checkpoint_id_ != 0) {
    checkpoint_bytes_gauge_->Set(static_cast<int64_t>(
        CheckpointBytes(options_.directory, last_checkpoint_id_)));
  }
}

}  // namespace vada
