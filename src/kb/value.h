#ifndef VADA_KB_VALUE_H_
#define VADA_KB_VALUE_H_

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace vada {

/// Runtime type tag of a Value. Order matters: it defines the cross-type
/// ordering used when heterogeneous values are compared (null < bool <
/// int < double < string).
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
};

/// Returns "null", "bool", "int", "double" or "string".
const char* ValueTypeName(ValueType type);

/// The single dynamically-typed cell value used throughout the knowledge
/// base and the Datalog engine. Values are immutable once constructed and
/// cheap to copy for the non-string cases.
///
/// Equality is strict on type: Int(3) != Double(3.0). Use AsDouble() when
/// numeric coercion is wanted (the Datalog built-ins do).
class Value {
 public:
  /// Constructs a null value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  /// Parses `text` into the most specific type: "" -> null, "true"/"false"
  /// -> bool, integer literal -> int, float literal -> double, otherwise
  /// string. Used by CSV import and test fixtures.
  static Value FromText(std::string_view text);

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors. Pre-condition: type() matches; checked accessors
  /// below return nullopt instead.
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }

  /// Numeric view: int and double convert; everything else -> nullopt.
  std::optional<double> AsDouble() const;

  /// Display form: null -> "" when `null_as_empty`, else "NULL"; strings
  /// render unquoted. Round-trips through FromText for non-string types.
  std::string ToString(bool null_as_empty = false) const;

  /// Datalog-literal form: strings are double-quoted and escaped.
  std::string ToLiteral() const;

  size_t Hash() const;

  /// Approximate resident size: sizeof(Value) plus heap bytes held by a
  /// string payload. Deterministic for a given value, so tests can
  /// assert on it; it is an estimate, not an allocator measurement.
  size_t ApproxBytes() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order: by type tag, then by payload.
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : data_(std::move(rep)) {}

  Rep data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace vada

#endif  // VADA_KB_VALUE_H_
