#ifndef VADA_KB_SCHEMA_H_
#define VADA_KB_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "kb/value.h"

namespace vada {

/// Declared type of an attribute. kAny admits every value type; typed
/// attributes still always admit nulls (SQL-style).
enum class AttributeType : uint8_t {
  kAny = 0,
  kBool,
  kInt,
  kDouble,
  kString,
};

const char* AttributeTypeName(AttributeType type);

/// True if a value of `value_type` may be stored in an attribute declared
/// as `attr_type` (null is always admissible).
bool IsCompatible(AttributeType attr_type, ValueType value_type);

/// A named, optionally typed column.
struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kAny;
};

/// A relation schema: relation name plus ordered attribute list.
/// Attribute names are unique within a schema (enforced by Validate()).
class Schema {
 public:
  Schema() = default;
  Schema(std::string relation_name, std::vector<Attribute> attributes)
      : relation_name_(std::move(relation_name)),
        attributes_(std::move(attributes)) {}

  /// Convenience: all-kAny attributes from names.
  static Schema Untyped(std::string relation_name,
                        std::vector<std::string> attribute_names);

  const std::string& relation_name() const { return relation_name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  /// Index of `name`, or nullopt.
  std::optional<size_t> AttributeIndex(const std::string& name) const;

  /// Names in declaration order.
  std::vector<std::string> AttributeNames() const;

  /// Checks non-empty relation name and attribute-name uniqueness.
  Status Validate() const;

  /// "name(attr1:type, attr2, ...)" (type omitted when kAny).
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    if (a.relation_name_ != b.relation_name_) return false;
    if (a.attributes_.size() != b.attributes_.size()) return false;
    for (size_t i = 0; i < a.attributes_.size(); ++i) {
      if (a.attributes_[i].name != b.attributes_[i].name ||
          a.attributes_[i].type != b.attributes_[i].type) {
        return false;
      }
    }
    return true;
  }

 private:
  std::string relation_name_;
  std::vector<Attribute> attributes_;
};

}  // namespace vada

#endif  // VADA_KB_SCHEMA_H_
