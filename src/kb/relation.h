#ifndef VADA_KB_RELATION_H_
#define VADA_KB_RELATION_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "kb/schema.h"
#include "kb/tuple.h"

namespace vada {

/// A set-semantics relation instance: a schema plus deduplicated rows in
/// insertion order. Insertions are type-checked against the schema.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return schema_.relation_name(); }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Inserts `t` if absent; reports arity/type violations. Sets `*added`
  /// (optional) to whether the row was new.
  Status Insert(Tuple t, bool* added = nullptr);

  /// Insert without schema type-checking (arity still enforced).
  /// Used by internal engines that construct well-typed tuples in bulk.
  Status InsertUnchecked(Tuple t, bool* added = nullptr);

  /// Removes `t` if present; returns whether a row was removed.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const { return index_.count(t) > 0; }

  void Clear();

  /// New relation (named `new_name`) with only the given attributes.
  Result<Relation> Project(const std::vector<std::string>& attribute_names,
                           const std::string& new_name) const;

  /// New relation with the rows where `attribute` equals `value`.
  Result<Relation> SelectEquals(const std::string& attribute,
                                const Value& value) const;

  /// Fraction of non-null cells in `attribute` (1.0 for empty relation).
  Result<double> NonNullFraction(const std::string& attribute) const;

  /// Sorted copy of the rows (for deterministic output in tests/benches).
  std::vector<Tuple> SortedRows() const;

  /// Multi-line table rendering for examples and traces.
  std::string ToDebugString(size_t max_rows = 20) const;

  /// Approximate resident size of the relation: rows, the dedup hash
  /// set (which stores a second copy of every row) and bucket arrays.
  /// Feeds the `vada_kb_relation_bytes` gauge (DESIGN.md §5g).
  size_t ApproxBytes() const;

 private:
  Status CheckTuple(const Tuple& t, bool type_check) const;

  Schema schema_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> index_;
};

}  // namespace vada

#endif  // VADA_KB_RELATION_H_
