#ifndef VADA_KB_WRITE_GUARD_H_
#define VADA_KB_WRITE_GUARD_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kb/catalog.h"
#include "kb/knowledge_base.h"
#include "kb/relation.h"

namespace vada {

/// Transactional write-guard over a KnowledgeBase (DESIGN.md §5d).
///
/// While a guard is active, the knowledge base snapshots every relation
/// lazily on its first mutation (copy-on-write of touched relations).
/// Rollback() restores the KB *exactly* as it was at construction —
/// relation contents and row order, per-relation and global version
/// counters, the facts_added/facts_removed lifetime counters, and the
/// catalog roles — so a failed or timed-out transducer Execute() leaves
/// no trace in the KB. The orchestrator wraps every Execute() in a guard
/// and commits only on success.
///
///   {
///     WriteGuard guard(&kb);
///     Status s = transducer->Execute(&kb, &ctx);
///     if (s.ok()) guard.Commit();
///     // else: destructor (or explicit Rollback()) undoes every write
///   }
///
/// The destructor rolls back unless Commit() was called — the safe
/// default when Execute() exits through an error path.
///
/// Pre-conditions: at most one guard per KnowledgeBase at a time (guards
/// do not nest), and the KB must not be moved or destroyed while a guard
/// is active.
class WriteGuard {
 public:
  explicit WriteGuard(KnowledgeBase* kb);
  ~WriteGuard();

  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

  /// Keeps all writes since construction; the guard becomes inert.
  void Commit();

  /// Restores the KB to its state at construction; the guard becomes
  /// inert. Idempotent; a no-op after Commit().
  void Rollback();

  /// Whether the guard still watches the KB (no Commit/Rollback yet).
  bool active() const { return !done_; }

  /// Number of relations snapshotted so far (touched by a mutation).
  size_t touched_relations() const { return touched_.size(); }

  /// Names of the relations mutated since construction (sorted). Only
  /// meaningful while the guard is active — Commit/Rollback clear the
  /// pre-image map — so callers that need the set after a rollback (the
  /// orchestrator invalidates snapshot-cache entries for exactly these
  /// relations) must capture it first.
  std::vector<std::string> TouchedRelationNames() const;

 private:
  friend class KnowledgeBase;

  /// Called by the KB right before any mutation of `relation`; saves the
  /// relation's pre-image on first touch (or records its absence so a
  /// created relation is dropped again on rollback).
  void OnMutation(const std::string& relation);

  KnowledgeBase* kb_;
  bool done_ = false;
  uint64_t global_version_ = 0;
  uint64_t facts_added_ = 0;
  uint64_t facts_removed_ = 0;
  std::map<std::string, uint64_t> versions_;
  std::map<std::string, RelationRole> roles_;
  /// Pre-images of touched relations; nullopt = did not exist.
  std::map<std::string, std::optional<Relation>> touched_;
};

}  // namespace vada

#endif  // VADA_KB_WRITE_GUARD_H_
