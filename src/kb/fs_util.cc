#include "kb/fs_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace vada {

Result<std::string> ReadFileText(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string text;
  char buf[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

Status WriteFileText(const std::string& path, const std::string& text,
                     bool sync) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot write " + path);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  if (written == text.size() && std::fflush(f) != 0) written = 0;
  if (written == text.size() && sync && ::fsync(::fileno(f)) != 0) {
    written = 0;
  }
  std::fclose(f);
  if (written != text.size()) return Status::Internal("short write " + path);
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create directory " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

uint64_t FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

std::vector<std::string> ListDirectory(const std::string& path) {
  std::vector<std::string> names;
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveRecursively(const std::string& path) {
  struct stat st;
  if (::lstat(path.c_str(), &st) != 0) {
    return errno == ENOENT
               ? Status::OK()
               : Status::Internal("cannot stat " + path + ": " +
                                  std::strerror(errno));
  }
  if (S_ISDIR(st.st_mode)) {
    for (const std::string& name : ListDirectory(path)) {
      VADA_RETURN_IF_ERROR(RemoveRecursively(path + "/" + name));
    }
    if (::rmdir(path.c_str()) != 0) {
      return Status::Internal("cannot rmdir " + path + ": " +
                              std::strerror(errno));
    }
    return Status::OK();
  }
  if (::unlink(path.c_str()) != 0) {
    return Status::Internal("cannot unlink " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status SyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open for fsync " + path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync failed on " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status RenamePath(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal("cannot rename " + from + " -> " + to + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace vada
