#ifndef VADA_KB_WAL_H_
#define VADA_KB_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "kb/catalog.h"
#include "kb/schema.h"
#include "kb/tuple.h"

namespace vada::obs {
class Counter;
class Histogram;
}  // namespace vada::obs

namespace vada {

/// Append-only, segment-rotated binary write-ahead log of the knowledge
/// base's logical mutations (DESIGN.md §5i). Each record is framed as
///
///   u32 payload_length | u32 crc32(payload) | payload
///
/// and each segment file (`wal-<seq>.log`) starts with a fixed header
/// (magic, format version, segment sequence number). A reader stops at
/// the first frame that fails its length or CRC check — a torn tail left
/// by a crash is detected, reported and discarded, never replayed.
///
/// Transaction semantics mirror WriteGuard: records carry a transaction
/// id; id 0 means "auto-committed standalone mutation" (a KB mutation
/// outside any guard), non-zero ids are bracketed by kTxnBegin and
/// either kCommit (replay applies the records) or kAbort / nothing
/// (replay discards them). The WAL thereby recovers exactly the
/// committed transaction prefix of the pre-crash history.

/// When the log is made durable (fsync'd) relative to commits.
enum class FsyncPolicy {
  kNone = 0,       ///< never fsync (OS flush only); fastest, least durable
  kEveryCommit,    ///< fsync at every commit boundary
  kInterval,       ///< fsync at the first commit after `fsync_interval_ms`
};

const char* FsyncPolicyName(FsyncPolicy policy);

/// What one WAL record describes.
enum class WalRecordType : uint8_t {
  kTxnBegin = 1,        ///< start of guarded transaction `txn_id`
  kCommit = 2,          ///< transaction `txn_id` committed
  kAbort = 3,           ///< transaction `txn_id` rolled back
  kCreateRelation = 4,  ///< schema created (payload: schema)
  kInsert = 5,          ///< one tuple inserted into `relation`
  kRetract = 6,         ///< one tuple removed from `relation`
  kClear = 7,           ///< all rows of `relation` removed
  kDrop = 8,            ///< `relation` (rows, schema, role) removed
  kCatalogRole = 9,     ///< catalog role set (or removed) for `relation`
};

const char* WalRecordTypeName(WalRecordType type);

/// One decoded log record. Which fields are meaningful depends on `type`
/// (see WalRecordType); unused fields are default-initialised.
struct WalRecord {
  WalRecordType type = WalRecordType::kTxnBegin;
  uint64_t txn_id = 0;      ///< 0 = standalone auto-committed mutation
  std::string relation;     ///< kInsert/kRetract/kClear/kDrop/kCatalogRole
  Tuple tuple;              ///< kInsert/kRetract
  Schema schema;            ///< kCreateRelation
  bool role_removed = false;                    ///< kCatalogRole
  RelationRole role = RelationRole::kMetadata;  ///< kCatalogRole

  /// Whether replaying this record completes a committed unit of work:
  /// a commit record, or any standalone (txn 0) mutation.
  bool IsCommitBoundary() const {
    return type == WalRecordType::kCommit ||
           (txn_id == 0 && type != WalRecordType::kTxnBegin &&
            type != WalRecordType::kAbort);
  }

  /// One-line human rendering ("[txn 3] insert listing ("a", 1)").
  std::string ToString() const;
};

/// A location in the log: segment sequence number plus byte offset
/// within that segment. Ordered lexicographically.
struct WalPosition {
  uint64_t segment = 0;
  uint64_t offset = 0;

  friend bool operator==(const WalPosition& a, const WalPosition& b) {
    return a.segment == b.segment && a.offset == b.offset;
  }
  friend bool operator<(const WalPosition& a, const WalPosition& b) {
    return a.segment != b.segment ? a.segment < b.segment
                                  : a.offset < b.offset;
  }
  std::string ToString() const;
};

/// Deterministic crash simulation for the durability soak (the WAL/
/// checkpoint counterpart of the PR-3 FaultInjector). Every physical
/// side effect on durable state — a record append, an fsync, a
/// checkpoint file write or rename — first asks the injector for
/// permission. Operation number `kill_after_ops` is the kill point: a
/// byte write lands only partially (`torn_fraction` of its bytes, as a
/// torn write) and every later operation is dropped entirely, exactly
/// as if the process had been SIGKILLed at that instant. The workload
/// then observes kDataLoss ("simulated crash"), stops, and the test
/// recovers from what reached disk.
class CrashInjector {
 public:
  struct Schedule {
    /// 1-based index of the physical operation that dies; ops before it
    /// succeed in full. Default: never.
    uint64_t kill_after_ops = std::numeric_limits<uint64_t>::max();
    /// Fraction of the dying write's bytes that still land (0 = nothing,
    /// 1 = the full buffer lands and only later ops are lost).
    double torn_fraction = 0.0;
  };

  CrashInjector() = default;
  explicit CrashInjector(Schedule schedule) : schedule_(schedule) {}

  /// Called before writing `want` bytes; returns how many may land.
  size_t AdmitWrite(size_t want);

  /// Called before a non-write side effect (fsync, rename, file create);
  /// false means the operation must not happen.
  bool AdmitOp();

  /// Whether the simulated process has died.
  bool crashed() const { return crashed_; }

  /// Physical operations admitted so far (count a clean run to size
  /// kill_after_ops schedules).
  uint64_t ops() const { return ops_; }

 private:
  Schedule schedule_;
  uint64_t ops_ = 0;
  bool crashed_ = false;
};

/// Options of one WalWriter. `directory` must exist.
struct WalOptions {
  std::string directory;
  FsyncPolicy fsync = FsyncPolicy::kEveryCommit;
  double fsync_interval_ms = 50.0;  ///< FsyncPolicy::kInterval only
  /// Rotate to a new segment when the current one would exceed this.
  size_t segment_bytes = 4u << 20;
  CrashInjector* crash = nullptr;  ///< tests only; nullptr in production
};

/// Appender. Not thread-safe: the KB it logs for is itself confined to
/// one mutating thread (parallel evaluation mutates scratch databases,
/// never the KB directly).
class WalWriter {
 public:
  /// Opens a fresh segment with sequence number `first_segment` (which
  /// must be greater than every existing segment in the directory).
  static Result<std::unique_ptr<WalWriter>> Open(WalOptions options,
                                                 uint64_t first_segment);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record (rotating first if the segment is full). Applies
  /// the fsync policy when the record is a commit boundary.
  Status Append(const WalRecord& record);

  /// fsyncs the current segment now, regardless of policy.
  Status Sync();

  /// Closes the current segment and starts a new one; returns the
  /// position of the new segment's first record. Checkpoints rotate so
  /// their manifest can reference a clean segment boundary.
  Result<WalPosition> Rotate();

  /// Deletes all segments with sequence < `segment` (they are covered by
  /// a checkpoint). The live byte count drops accordingly.
  Status DeleteSegmentsBefore(uint64_t segment);

  /// Position one past the last appended byte.
  WalPosition position() const { return {segment_seq_, segment_offset_}; }

  /// Total bytes across all live (non-deleted) segments.
  uint64_t live_bytes() const { return live_bytes_; }
  /// Bytes appended since the writer was opened.
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t appended_records() const { return appended_records_; }

  /// Observability hooks (§5b): may be nullptr.
  void SetMetrics(obs::Counter* records_total, obs::Counter* bytes_total,
                  obs::Histogram* fsync_seconds);

 private:
  WalWriter(WalOptions options, uint64_t first_segment);

  Status OpenSegment(uint64_t seq);
  Status CloseSegment();
  Status WriteRaw(const char* data, size_t size);
  std::string SegmentPath(uint64_t seq) const;

  WalOptions options_;
  std::FILE* file_ = nullptr;
  uint64_t segment_seq_ = 0;
  uint64_t segment_offset_ = 0;
  uint64_t live_bytes_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t appended_records_ = 0;
  /// Oldest live segment (everything before was deleted by truncation).
  uint64_t oldest_segment_ = 0;
  double last_sync_ms_ = 0.0;  ///< monotonic clock, kInterval bookkeeping
  Status sticky_error_;        ///< first IO failure; everything after fails
  obs::Counter* records_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Histogram* fsync_metric_ = nullptr;
};

/// Statistics of one log scan.
struct WalReadStats {
  uint64_t records = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t bytes = 0;
  /// The log ended in an invalid frame (short read / bad CRC / bad
  /// header) instead of a clean end-of-file.
  bool torn_tail = false;
  std::string torn_reason;
  /// Position one past the last valid record (where an appender should
  /// truncate and resume).
  WalPosition end;
};

/// Sorted sequence numbers of the `wal-<seq>.log` segments in `directory`.
std::vector<uint64_t> ListWalSegments(const std::string& directory);

/// Scans every record from `from` (inclusive) to the log end, invoking
/// `fn` per valid record with its position. Returns non-OK only for
/// callback errors or an unreadable directory; torn tails are reported
/// through `stats`, not as errors. `fn` may be empty (verify-only scan).
Status ScanWal(const std::string& directory, WalPosition from,
               const std::function<Status(const WalRecord&,
                                          const WalPosition&)>& fn,
               WalReadStats* stats);

/// Truncates the torn tail a scan found: the last valid segment is cut
/// at `stats.end` and every later segment file is deleted.
Status TruncateWalAfter(const std::string& directory, const WalReadStats& stats);

/// Record codec, exposed for tests and vada_waldump.
std::string EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecord(std::string_view payload);

}  // namespace vada

#endif  // VADA_KB_WAL_H_
