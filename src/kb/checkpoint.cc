#include "kb/checkpoint.h"

#include <cinttypes>
#include <cstdio>

#include "common/crc32.h"
#include "common/strings.h"
#include "kb/fs_util.h"
#include "kb/persistence.h"

namespace vada {

namespace {

constexpr char kWalPosFile[] = "wal.pos";
constexpr char kChecksumsFile[] = "checksums";

Status AdmitOrCrash(CrashInjector* crash, const char* what) {
  if (crash != nullptr && !crash->AdmitOp()) {
    return Status::DataLoss(std::string("simulated crash during ") + what);
  }
  return Status::OK();
}

std::string WalPosText(const WalPosition& pos) {
  return "wal-pos\t" + std::to_string(pos.segment) + "\t" +
         std::to_string(pos.offset) + "\n";
}

Result<WalPosition> ParseWalPos(const std::string& text) {
  std::vector<std::string> fields = Split(Trim(text), '\t');
  if (fields.size() != 3 || fields[0] != "wal-pos" || !IsDigits(fields[1]) ||
      !IsDigits(fields[2])) {
    return Status::DataLoss("malformed wal.pos: " + Trim(text));
  }
  return WalPosition{std::strtoull(fields[1].c_str(), nullptr, 10),
                     std::strtoull(fields[2].c_str(), nullptr, 10)};
}

/// Verifies `directory` against its `checksums` manifest and returns the
/// verified wal.pos contents. Everything that can be wrong with the
/// on-disk state maps to kDataLoss so callers can fall back.
Result<std::string> VerifyCheckpointFiles(const std::string& directory) {
  Result<std::string> manifest =
      ReadFileText(directory + "/" + kChecksumsFile);
  if (!manifest.ok()) {
    return Status::DataLoss("checkpoint " + directory +
                            " has no checksums manifest");
  }
  std::string wal_pos_text;
  bool saw_wal_pos = false;
  for (const std::string& line : Split(manifest.value(), '\n')) {
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 2 || !IsDigits(fields[0])) {
      return Status::DataLoss("malformed checksums line in " + directory +
                              ": " + line);
    }
    uint32_t want =
        static_cast<uint32_t>(std::strtoull(fields[0].c_str(), nullptr, 10));
    Result<std::string> data = ReadFileText(directory + "/" + fields[1]);
    if (!data.ok()) {
      return Status::DataLoss("checkpoint file missing: " + directory + "/" +
                              fields[1]);
    }
    if (Crc32(data.value()) != want) {
      return Status::DataLoss("checkpoint file corrupt (crc mismatch): " +
                              directory + "/" + fields[1]);
    }
    if (fields[1] == kWalPosFile) {
      saw_wal_pos = true;
      wal_pos_text = std::move(data).value();
    }
  }
  if (!saw_wal_pos) {
    return Status::DataLoss("checkpoint " + directory + " lacks wal.pos");
  }
  return wal_pos_text;
}

}  // namespace

std::string CheckpointDirName(uint64_t id) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%010" PRIu64, id);
  return buf;
}

std::vector<uint64_t> ListCheckpoints(const std::string& root) {
  std::vector<uint64_t> ids;
  for (const std::string& name : ListDirectory(root)) {
    if (!StartsWith(name, "checkpoint-") || EndsWith(name, ".tmp")) continue;
    std::string digits = name.substr(11);
    if (digits.empty() || !IsDigits(digits)) continue;
    ids.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<CheckpointInfo> WriteCheckpoint(const KnowledgeBase& kb,
                                       const std::string& root, uint64_t id,
                                       WalPosition wal_start,
                                       CrashInjector* crash) {
  const std::string final_dir = root + "/" + CheckpointDirName(id);
  const std::string tmp_dir = final_dir + ".tmp";
  if (PathExists(final_dir)) {
    return Status::AlreadyExists("checkpoint already exists: " + final_dir);
  }
  VADA_RETURN_IF_ERROR(RemoveRecursively(tmp_dir));

  VADA_RETURN_IF_ERROR(AdmitOrCrash(crash, "checkpoint image write"));
  VADA_RETURN_IF_ERROR(SaveKnowledgeBase(kb, tmp_dir));
  VADA_RETURN_IF_ERROR(AdmitOrCrash(crash, "checkpoint wal.pos write"));
  VADA_RETURN_IF_ERROR(
      WriteFileText(tmp_dir + "/" + kWalPosFile, WalPosText(wal_start)));

  // CRC every file written so far, then the manifest itself (unchecked —
  // a torn manifest simply fails to parse, which is also kDataLoss).
  std::string checksums;
  for (const std::string& name : ListDirectory(tmp_dir)) {
    if (name == kChecksumsFile) continue;
    Result<std::string> data = ReadFileText(tmp_dir + "/" + name);
    if (!data.ok()) return data.status();
    checksums +=
        std::to_string(Crc32(data.value())) + "\t" + name + "\n";
  }
  VADA_RETURN_IF_ERROR(AdmitOrCrash(crash, "checkpoint checksums write"));
  VADA_RETURN_IF_ERROR(
      WriteFileText(tmp_dir + "/" + kChecksumsFile, checksums));

  // Make the staged files durable, then publish with one atomic rename
  // and make the rename itself durable.
  for (const std::string& name : ListDirectory(tmp_dir)) {
    VADA_RETURN_IF_ERROR(AdmitOrCrash(crash, "checkpoint fsync"));
    VADA_RETURN_IF_ERROR(SyncPath(tmp_dir + "/" + name));
  }
  VADA_RETURN_IF_ERROR(AdmitOrCrash(crash, "checkpoint fsync"));
  VADA_RETURN_IF_ERROR(SyncPath(tmp_dir));
  VADA_RETURN_IF_ERROR(AdmitOrCrash(crash, "checkpoint rename"));
  VADA_RETURN_IF_ERROR(RenamePath(tmp_dir, final_dir));
  VADA_RETURN_IF_ERROR(AdmitOrCrash(crash, "checkpoint root fsync"));
  VADA_RETURN_IF_ERROR(SyncPath(root));

  return CheckpointInfo{id, final_dir, wal_start};
}

Result<CheckpointInfo> ReadCheckpointInfo(const std::string& root,
                                          uint64_t id) {
  const std::string directory = root + "/" + CheckpointDirName(id);
  Result<std::string> wal_pos_text = VerifyCheckpointFiles(directory);
  if (!wal_pos_text.ok()) return wal_pos_text.status();
  Result<WalPosition> pos = ParseWalPos(wal_pos_text.value());
  if (!pos.ok()) return pos.status();
  return CheckpointInfo{id, directory, pos.value()};
}

Result<KnowledgeBase> LoadCheckpoint(const std::string& root, uint64_t id) {
  const std::string directory = root + "/" + CheckpointDirName(id);
  Result<std::string> wal_pos_text = VerifyCheckpointFiles(directory);
  if (!wal_pos_text.ok()) return wal_pos_text.status();
  Result<KnowledgeBase> kb = LoadKnowledgeBase(directory);
  if (!kb.ok()) {
    // The files passed their CRCs but still failed to parse — corrupt
    // by this build's reckoning either way.
    return Status::DataLoss("checkpoint " + directory +
                            " unloadable: " + kb.status().message());
  }
  return kb;
}

Status RemoveCheckpoint(const std::string& root, uint64_t id) {
  return RemoveRecursively(root + "/" + CheckpointDirName(id));
}

Status RemoveStaleCheckpointTmp(const std::string& root) {
  for (const std::string& name : ListDirectory(root)) {
    // Matches both `checkpoint-<id>.tmp` and deeper staging remnants a
    // crash can strand next to it (`checkpoint-<id>.tmp.tmp-save` from
    // SaveKnowledgeBase's own staging inside WriteCheckpoint).
    if (StartsWith(name, "checkpoint-") &&
        name.find(".tmp") != std::string::npos) {
      VADA_RETURN_IF_ERROR(RemoveRecursively(root + "/" + name));
    }
  }
  return Status::OK();
}

uint64_t CheckpointBytes(const std::string& root, uint64_t id) {
  const std::string directory = root + "/" + CheckpointDirName(id);
  uint64_t total = 0;
  for (const std::string& name : ListDirectory(directory)) {
    total += FileSizeBytes(directory + "/" + name);
  }
  return total;
}

}  // namespace vada
