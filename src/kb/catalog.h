#ifndef VADA_KB_CATALOG_H_
#define VADA_KB_CATALOG_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vada {

/// The role a relation plays in the wrangling process. Roles are what
/// transducer input dependencies quantify over ("source schemas exist",
/// "the target has reference data", ...), mirroring the paper's user
/// context / data context / source / target distinction.
enum class RelationRole {
  kSource = 0,      ///< extracted source data (e.g. Rightmove)
  kTarget,          ///< the user-declared target schema
  kReference,       ///< data context: reference data (complete value lists)
  kMaster,          ///< data context: master data (entities of interest)
  kExample,         ///< data context: example instances
  kMetadata,        ///< transducer-produced metadata (matches, metrics, ...)
  kResult,          ///< wrangled result instances
};

const char* RelationRoleName(RelationRole role);

/// Observer of catalog role changes. The durability layer implements
/// this to write-ahead-log role mutations without touching the many
/// `kb.catalog().SetRole(...)` call sites. Snapshot()/Restore() — the
/// WriteGuard rollback path — deliberately bypass the listener: a
/// rollback is not new history, it un-happens logged history.
class CatalogListener {
 public:
  virtual ~CatalogListener() = default;
  virtual void OnRoleSet(const std::string& relation_name,
                         RelationRole role) = 0;
  virtual void OnRoleRemoved(const std::string& relation_name) = 0;
};

/// Registry mapping relation names to their wrangling role. Owned by the
/// KnowledgeBase; separate so it can be inspected/tested in isolation.
class Catalog {
 public:
  void SetRole(const std::string& relation_name, RelationRole role);
  std::optional<RelationRole> GetRole(const std::string& relation_name) const;
  void Remove(const std::string& relation_name);

  /// At most one listener; nullptr detaches. Only effective mutations
  /// notify (SetRole to the current role and Remove of an absent entry
  /// are silent no-ops).
  void SetListener(CatalogListener* listener) { listener_ = listener; }

  /// Relation names with the given role, sorted.
  std::vector<std::string> RelationsWithRole(RelationRole role) const;

  /// True if `relation_name` provides data-context information
  /// (reference, master or example role).
  bool IsDataContext(const std::string& relation_name) const;

  /// Point-in-time copy of / wholesale replacement for the role map.
  /// Used by WriteGuard to roll the catalog back together with the
  /// relations it describes.
  std::map<std::string, RelationRole> Snapshot() const { return roles_; }
  void Restore(std::map<std::string, RelationRole> roles) {
    roles_ = std::move(roles);
  }

 private:
  std::map<std::string, RelationRole> roles_;
  CatalogListener* listener_ = nullptr;  // not owned
};

}  // namespace vada

#endif  // VADA_KB_CATALOG_H_
