#ifndef VADA_KB_KNOWLEDGE_BASE_H_
#define VADA_KB_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "kb/catalog.h"
#include "kb/relation.h"

namespace vada {

class DeltaLog;
class DurabilityManager;
class WriteGuard;

/// The VADA Knowledge Base (paper §2): the repository for all data of
/// relevance to the wrangling process — extensional source data, the
/// target schema, data context, user context, feedback, and the metadata
/// transducers create (matches, mappings, quality metrics, traces).
///
/// Every successful mutation bumps both a per-relation version and a
/// global version. The orchestrator uses versions to decide when a
/// transducer's input dependencies may have newly become satisfiable,
/// which is how "a transducer ... becomes available for execution when
/// that data is available in the knowledge base" is realised.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  // Not copyable (relations can be large; copies are almost always bugs).
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;
  // Movable, but never while a WriteGuard is active (the guard keeps a
  // back-pointer; see write_guard.h).
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  /// Creates an empty relation; fails with kAlreadyExists if present.
  Status CreateRelation(Schema schema);

  /// Creates the relation if absent; fails with kFailedPrecondition if a
  /// relation with the same name but different schema exists.
  Status EnsureRelation(const Schema& schema);

  bool HasRelation(const std::string& name) const;

  /// Read access; nullptr when absent.
  const Relation* FindRelation(const std::string& name) const;

  /// Read access with error reporting.
  Result<const Relation*> GetRelation(const std::string& name) const;

  /// Inserts one tuple; bumps versions only when the tuple is new.
  Status Insert(const std::string& relation_name, Tuple tuple);

  /// Convenience for short control facts:
  ///   kb.Assert("match", {Value::String("a"), Value::String("b")});
  Status Assert(const std::string& relation_name,
                std::initializer_list<Value> values);

  /// Ensures `relation.schema()` exists and inserts all rows.
  Status InsertAll(const Relation& relation);

  /// Removes one tuple; bumps versions when the tuple was present.
  Status Retract(const std::string& relation_name, const Tuple& tuple);

  /// Removes all rows of `relation_name` (schema stays registered).
  Status ClearRelation(const std::string& relation_name);

  /// Removes the relation, its versions and its catalog role.
  Status DropRelation(const std::string& name);

  /// Replaces the contents of `relation.name()` with `relation`'s rows
  /// (creating it if needed). Single version bump.
  Status ReplaceRelation(const Relation& relation);

  /// Like ReplaceRelation but bumps versions only when the row set (or
  /// schema) actually differs. Transducers use this so that re-running on
  /// unchanged inputs is a no-op — the convergence condition of the
  /// dynamic orchestrator. Sets `*changed` (optional) accordingly.
  Status ReplaceRelationIfChanged(const Relation& relation,
                                  bool* changed = nullptr);

  /// Version counters: 0 for unknown relations; bumped on every mutation.
  uint64_t relation_version(const std::string& name) const;
  uint64_t global_version() const { return global_version_; }

  /// Monotonic lifetime mutation counters. Observability layers diff them
  /// around an operation to attribute KB churn (e.g. facts added per
  /// orchestration step). Replace counts as remove-all + add-all, so for
  /// replaced relations these are upper bounds on the logical change.
  uint64_t facts_added() const { return facts_added_; }
  uint64_t facts_removed() const { return facts_removed_; }

  /// Total rows across all relations.
  size_t TotalRows() const;

  /// All relation names, sorted.
  std::vector<std::string> RelationNames() const;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Whether a WriteGuard currently watches this KB (mutations are being
  /// snapshotted for possible rollback).
  bool HasActiveGuard() const { return guard_ != nullptr; }

  /// Attaches (nullptr: detaches) the durability manager that write-ahead
  /// logs this KB's mutations (kb/durability.h). Not owned; the manager
  /// detaches itself on destruction. Effective mutations notify it right
  /// after they succeed, so the log holds exactly the applied changes.
  void AttachDurability(DurabilityManager* durability) {
    durability_ = durability;
  }
  DurabilityManager* durability() const { return durability_; }

  /// Attaches (nullptr: detaches) the delta log that records this KB's
  /// effective row-level changes for incremental consumers
  /// (kb/delta_log.h). Not owned. Mutations append records as they
  /// commit; WriteGuard::Rollback rewinds the log to the transaction
  /// start, so it never holds phantom deltas.
  void AttachDeltaLog(DeltaLog* delta_log);
  DeltaLog* delta_log() const { return delta_log_; }

 private:
  friend class WriteGuard;

  void Bump(const std::string& name);

  /// Mutation hook: every mutating method calls this with the relation
  /// about to change, before changing it, so an active WriteGuard can
  /// save the pre-image (copy-on-write rollback; see write_guard.h).
  void WillMutate(const std::string& name);

  std::map<std::string, Relation> relations_;
  std::map<std::string, uint64_t> versions_;
  uint64_t global_version_ = 0;
  uint64_t facts_added_ = 0;
  uint64_t facts_removed_ = 0;
  Catalog catalog_;
  WriteGuard* guard_ = nullptr;  // active transaction guard; not owned
  DurabilityManager* durability_ = nullptr;  // WAL hook; not owned
  DeltaLog* delta_log_ = nullptr;  // incremental-consumer hook; not owned
};

}  // namespace vada

#endif  // VADA_KB_KNOWLEDGE_BASE_H_
