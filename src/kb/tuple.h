#ifndef VADA_KB_TUPLE_H_
#define VADA_KB_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "kb/value.h"

namespace vada {

/// A row: a fixed-arity sequence of values. Tuples have value semantics,
/// hashability, and a total order, so relations can store them in sets.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Projection onto the given column indexes, in the given order.
  /// Pre-condition: every index is < size().
  Tuple Project(const std::vector<size_t>& indexes) const;

  /// "(v1, v2, ...)" with string values quoted.
  std::string ToString() const;

  size_t Hash() const;

  /// Approximate resident size: the tuple object, its value storage
  /// (including unused vector capacity) and any string heap payloads.
  size_t ApproxBytes() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace vada

#endif  // VADA_KB_TUPLE_H_
