#include "kb/relation.h"

#include <algorithm>

namespace vada {

Status Relation::CheckTuple(const Tuple& t, bool type_check) const {
  if (t.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(t.size()) + " does not match schema " +
        schema_.ToString());
  }
  if (type_check) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsCompatible(schema_.attributes()[i].type, t.at(i).type())) {
        return Status::InvalidArgument(
            "value " + t.at(i).ToLiteral() + " incompatible with attribute " +
            schema_.attributes()[i].name + ":" +
            AttributeTypeName(schema_.attributes()[i].type) + " of relation " +
            name());
      }
    }
  }
  return Status::OK();
}

Status Relation::Insert(Tuple t, bool* added) {
  VADA_RETURN_IF_ERROR(CheckTuple(t, /*type_check=*/true));
  bool is_new = index_.insert(t).second;
  if (is_new) rows_.push_back(std::move(t));
  if (added != nullptr) *added = is_new;
  return Status::OK();
}

Status Relation::InsertUnchecked(Tuple t, bool* added) {
  VADA_RETURN_IF_ERROR(CheckTuple(t, /*type_check=*/false));
  bool is_new = index_.insert(t).second;
  if (is_new) rows_.push_back(std::move(t));
  if (added != nullptr) *added = is_new;
  return Status::OK();
}

bool Relation::Erase(const Tuple& t) {
  if (index_.erase(t) == 0) return false;
  auto it = std::find(rows_.begin(), rows_.end(), t);
  if (it != rows_.end()) rows_.erase(it);
  return true;
}

void Relation::Clear() {
  rows_.clear();
  index_.clear();
}

Result<Relation> Relation::Project(
    const std::vector<std::string>& attribute_names,
    const std::string& new_name) const {
  std::vector<size_t> indexes;
  std::vector<Attribute> attrs;
  for (const std::string& n : attribute_names) {
    std::optional<size_t> idx = schema_.AttributeIndex(n);
    if (!idx.has_value()) {
      return Status::NotFound("attribute " + n + " not in " + schema_.ToString());
    }
    indexes.push_back(*idx);
    attrs.push_back(schema_.attributes()[*idx]);
  }
  Relation out(Schema(new_name, std::move(attrs)));
  for (const Tuple& row : rows_) {
    Status s = out.InsertUnchecked(row.Project(indexes));
    if (!s.ok()) return s;
  }
  return out;
}

Result<Relation> Relation::SelectEquals(const std::string& attribute,
                                        const Value& value) const {
  std::optional<size_t> idx = schema_.AttributeIndex(attribute);
  if (!idx.has_value()) {
    return Status::NotFound("attribute " + attribute + " not in " +
                            schema_.ToString());
  }
  Relation out(schema_);
  for (const Tuple& row : rows_) {
    if (row.at(*idx) == value) {
      Status s = out.InsertUnchecked(row);
      if (!s.ok()) return s;
    }
  }
  return out;
}

Result<double> Relation::NonNullFraction(const std::string& attribute) const {
  std::optional<size_t> idx = schema_.AttributeIndex(attribute);
  if (!idx.has_value()) {
    return Status::NotFound("attribute " + attribute + " not in " +
                            schema_.ToString());
  }
  if (rows_.empty()) return 1.0;
  size_t non_null = 0;
  for (const Tuple& row : rows_) {
    if (!row.at(*idx).is_null()) ++non_null;
  }
  return static_cast<double>(non_null) / static_cast<double>(rows_.size());
}

std::vector<Tuple> Relation::SortedRows() const {
  std::vector<Tuple> out = rows_;
  std::sort(out.begin(), out.end());
  return out;
}

std::string Relation::ToDebugString(size_t max_rows) const {
  std::string out = schema_.ToString() + " [" + std::to_string(rows_.size()) +
                    " rows]\n";
  size_t shown = 0;
  for (const Tuple& row : rows_) {
    if (shown++ >= max_rows) {
      out += "  ...\n";
      break;
    }
    out += "  " + row.ToString() + "\n";
  }
  return out;
}

size_t Relation::ApproxBytes() const {
  size_t bytes = sizeof(Relation) +
                 (rows_.capacity() - rows_.size()) * sizeof(Tuple);
  for (const Tuple& row : rows_) bytes += row.ApproxBytes();
  for (const Tuple& row : index_) bytes += row.ApproxBytes();
  bytes += index_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace vada
