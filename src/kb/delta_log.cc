#include "kb/delta_log.h"

#include <algorithm>

namespace vada {

DeltaLog::DeltaLog(size_t max_records)
    : max_records_(std::max<size_t>(1, max_records)) {}

void DeltaLog::OnInsert(const std::string& relation, const Tuple& tuple,
                        uint64_t version) {
  RelationLog& log = relations_[relation];
  log.records.push_back(Record{version, Kind::kInsert, tuple});
  ++total_records_;
  EvictIfNeeded();
}

void DeltaLog::OnRetract(const std::string& relation, const Tuple& tuple,
                         uint64_t version) {
  RelationLog& log = relations_[relation];
  log.records.push_back(Record{version, Kind::kRetract, tuple});
  ++total_records_;
  EvictIfNeeded();
}

void DeltaLog::OnReset(const std::string& relation, uint64_t version) {
  RelationLog& log = relations_[relation];
  // A reset supersedes every earlier record of the relation: nothing
  // before it can combine with anything after it into a row delta.
  total_records_ -= log.records.size();
  log.records.clear();
  log.records.push_back(Record{version, Kind::kReset, Tuple{}});
  ++total_records_;
  EvictIfNeeded();
}

void DeltaLog::OnRewind(uint64_t version) {
  ++rewind_epoch_;
  for (auto& [name, log] : relations_) {
    while (!log.records.empty() && log.records.back().version > version) {
      log.records.pop_back();
      --total_records_;
    }
  }
}

void DeltaLog::SetFloor(uint64_t version) {
  floor_ = std::max(floor_, version);
}

void DeltaLog::EvictIfNeeded() {
  while (total_records_ > max_records_) {
    // Evict the globally oldest record so retention is fair across
    // relations; its version becomes that relation's answerability
    // floor.
    RelationLog* oldest = nullptr;
    for (auto& [name, log] : relations_) {
      if (log.records.empty()) continue;
      if (oldest == nullptr ||
          log.records.front().version < oldest->records.front().version) {
        oldest = &log;
      }
    }
    if (oldest == nullptr) return;  // defensive; counters disagree
    oldest->evict_floor =
        std::max(oldest->evict_floor, oldest->records.front().version);
    oldest->records.pop_front();
    --total_records_;
  }
}

std::optional<DeltaLog::RelationDelta> DeltaLog::Since(
    const std::string& relation, uint64_t since) const {
  if (since < floor_) return std::nullopt;
  auto it = relations_.find(relation);
  if (it == relations_.end()) return RelationDelta{};  // nothing happened
  const RelationLog& log = it->second;
  if (since < log.evict_floor) return std::nullopt;
  // Net the per-tuple history: insert +1, retract -1; a consistent log
  // (the KB only records effective changes) nets each tuple to -1, 0
  // or +1. `std::map` keys the output deterministically.
  std::map<Tuple, int> net;
  for (const Record& r : log.records) {
    if (r.version <= since) continue;
    switch (r.kind) {
      case Kind::kInsert:
        ++net[r.tuple];
        break;
      case Kind::kRetract:
        --net[r.tuple];
        break;
      case Kind::kReset:
        return std::nullopt;  // history break inside the range
    }
  }
  RelationDelta out;
  for (const auto& [tuple, n] : net) {
    if (n > 0) out.inserts.push_back(tuple);
    if (n < 0) out.retracts.push_back(tuple);
  }
  return out;
}

}  // namespace vada
