#ifndef VADA_KB_PERSISTENCE_H_
#define VADA_KB_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "kb/knowledge_base.h"

namespace vada {

/// Saves `kb` as a directory:
///   <dir>/manifest.tsv          one line per relation:
///                               name <TAB> role <TAB> attr:type|attr:type
///   <dir>/<relation>.csv        rows, one file per relation
///
/// Cell encoding is *typed*: each cell is written as a Value literal
/// (strings double-quoted/escaped, numbers and booleans bare, nulls
/// empty) and then CSV-escaped, so "42" the string and 42 the integer
/// round-trip losslessly — unlike naive CSV export.
///
/// The directory is created if absent; existing relation files are
/// overwritten. Relation names are used as file names verbatim (they are
/// identifier-like by construction).
Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& directory);

/// Loads a knowledge base previously written by SaveKnowledgeBase,
/// restoring schemas, rows and catalog roles. Versions restart at the
/// load-time state (they are session-local orchestration bookkeeping).
Result<KnowledgeBase> LoadKnowledgeBase(const std::string& directory);

/// Cell-level helpers (exposed for tests): Value <-> typed literal text.
std::string EncodeCell(const Value& value);
Result<Value> DecodeCell(const std::string& text);

}  // namespace vada

#endif  // VADA_KB_PERSISTENCE_H_
