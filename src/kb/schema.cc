#include "kb/schema.h"

#include <set>

namespace vada {

const char* AttributeTypeName(AttributeType type) {
  switch (type) {
    case AttributeType::kAny:
      return "any";
    case AttributeType::kBool:
      return "bool";
    case AttributeType::kInt:
      return "int";
    case AttributeType::kDouble:
      return "double";
    case AttributeType::kString:
      return "string";
  }
  return "?";
}

bool IsCompatible(AttributeType attr_type, ValueType value_type) {
  if (value_type == ValueType::kNull) return true;
  switch (attr_type) {
    case AttributeType::kAny:
      return true;
    case AttributeType::kBool:
      return value_type == ValueType::kBool;
    case AttributeType::kInt:
      return value_type == ValueType::kInt;
    case AttributeType::kDouble:
      return value_type == ValueType::kDouble ||
             value_type == ValueType::kInt;  // ints widen losslessly
    case AttributeType::kString:
      return value_type == ValueType::kString;
  }
  return false;
}

Schema Schema::Untyped(std::string relation_name,
                       std::vector<std::string> attribute_names) {
  std::vector<Attribute> attrs;
  attrs.reserve(attribute_names.size());
  for (std::string& n : attribute_names) {
    attrs.push_back(Attribute{std::move(n), AttributeType::kAny});
  }
  return Schema(std::move(relation_name), std::move(attrs));
}

std::optional<size_t> Schema::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> Schema::AttributeNames() const {
  std::vector<std::string> out;
  out.reserve(attributes_.size());
  for (const Attribute& a : attributes_) out.push_back(a.name);
  return out;
}

Status Schema::Validate() const {
  if (relation_name_.empty()) {
    return Status::InvalidArgument("schema has empty relation name");
  }
  std::set<std::string> seen;
  for (const Attribute& a : attributes_) {
    if (a.name.empty()) {
      return Status::InvalidArgument("schema " + relation_name_ +
                                     " has an empty attribute name");
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("schema " + relation_name_ +
                                     " repeats attribute " + a.name);
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = relation_name_ + "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    if (attributes_[i].type != AttributeType::kAny) {
      out += ":";
      out += AttributeTypeName(attributes_[i].type);
    }
  }
  out += ")";
  return out;
}

}  // namespace vada
