#include "kb/csv.h"

#include <cstdio>
#include <vector>

namespace vada {

namespace {

/// Splits CSV text into rows of raw (unquoted) cells. Handles quoted
/// fields with embedded separators/newlines and doubled quotes.
Result<std::vector<std::vector<std::string>>> Tokenize(std::string_view text,
                                                       char sep) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  size_t i = 0;
  auto end_cell = [&] {
    row.push_back(cell);
    cell.clear();
    cell_was_quoted = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(row);
    row.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      cell += c;
      ++i;
      continue;
    }
    if (c == '"' && cell.empty() && !cell_was_quoted) {
      in_quotes = true;
      cell_was_quoted = true;
      ++i;
      continue;
    }
    if (c == sep) {
      end_cell();
      ++i;
      continue;
    }
    if (c == '\r') {
      ++i;  // swallow; the '\n' (if any) ends the row
      if (i >= text.size() || text[i] != '\n') end_row();
      continue;
    }
    if (c == '\n') {
      end_row();
      ++i;
      continue;
    }
    cell += c;
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  if (!cell.empty() || !row.empty() || cell_was_quoted) end_row();
  return rows;
}

std::string EscapeCell(const std::string& cell, char sep) {
  bool needs_quotes = false;
  for (char c : cell) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Relation> ParseCsv(std::string_view text,
                          const std::string& relation_name,
                          const CsvOptions& options) {
  Result<std::vector<std::vector<std::string>>> rows_or =
      Tokenize(text, options.separator);
  if (!rows_or.ok()) return rows_or.status();
  const std::vector<std::vector<std::string>>& raw = rows_or.value();
  if (raw.empty()) {
    return Status::ParseError("CSV text for " + relation_name + " is empty");
  }

  std::vector<std::string> names;
  size_t first_data_row = 0;
  if (options.has_header) {
    names = raw[0];
    first_data_row = 1;
  } else {
    for (size_t i = 0; i < raw[0].size(); ++i) {
      names.push_back("c" + std::to_string(i));
    }
  }
  Schema schema = Schema::Untyped(relation_name, names);
  VADA_RETURN_IF_ERROR(schema.Validate());
  Relation rel(std::move(schema));

  for (size_t r = first_data_row; r < raw.size(); ++r) {
    const std::vector<std::string>& cells = raw[r];
    if (cells.size() != names.size()) {
      return Status::ParseError(
          "CSV row " + std::to_string(r + 1) + " of " + relation_name + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(names.size()));
    }
    std::vector<Value> values;
    values.reserve(cells.size());
    for (const std::string& cell : cells) {
      if (cell.empty()) {
        values.push_back(Value::Null());
      } else if (options.infer_types) {
        values.push_back(Value::FromText(cell));
      } else {
        values.push_back(Value::String(cell));
      }
    }
    VADA_RETURN_IF_ERROR(rel.InsertUnchecked(Tuple(std::move(values))));
  }
  return rel;
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const std::string& relation_name,
                             const CsvOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open CSV file " + path);
  }
  std::string text;
  char buf[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ParseCsv(text, relation_name, options);
}

std::string ToCsv(const Relation& relation, char separator) {
  std::string out;
  const std::vector<Attribute>& attrs = relation.schema().attributes();
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += separator;
    out += EscapeCell(attrs[i].name, separator);
  }
  out += '\n';
  for (const Tuple& row : relation.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += separator;
      out += EscapeCell(row.at(i).ToString(/*null_as_empty=*/true), separator);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Relation& relation, const std::string& path,
                    char separator) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  std::string text = ToCsv(relation, separator);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace vada
