#include "kb/knowledge_base.h"

#include "kb/delta_log.h"
#include "kb/durability.h"
#include "kb/write_guard.h"

namespace vada {

void KnowledgeBase::AttachDeltaLog(DeltaLog* delta_log) {
  delta_log_ = delta_log;
  // Mutations before attachment were never recorded; mark them
  // unanswerable so consumers with an older base fully reload.
  if (delta_log_ != nullptr) delta_log_->SetFloor(global_version_);
}

void KnowledgeBase::Bump(const std::string& name) {
  // Per-relation versions are allocated from the global counter instead
  // of counting independently, so they are unique across a relation's
  // whole history: a relation that is dropped (which erases its version
  // entry) and later recreated can never land on a version number it
  // already used. Version-keyed consumers — the dependency-scan
  // snapshot cache — rely on this to treat (name, version) as an
  // immutable content key.
  versions_[name] = ++global_version_;
}

void KnowledgeBase::WillMutate(const std::string& name) {
  if (guard_ != nullptr) guard_->OnMutation(name);
}

Status KnowledgeBase::CreateRelation(Schema schema) {
  VADA_RETURN_IF_ERROR(schema.Validate());
  const std::string name = schema.relation_name();
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation " + name + " already exists");
  }
  WillMutate(name);
  auto emplaced = relations_.emplace(name, Relation(std::move(schema)));
  Bump(name);
  if (durability_ != nullptr) {
    durability_->LogCreateRelation(emplaced.first->second.schema());
  }
  return Status::OK();
}

Status KnowledgeBase::EnsureRelation(const Schema& schema) {
  auto it = relations_.find(schema.relation_name());
  if (it == relations_.end()) return CreateRelation(schema);
  if (!(it->second.schema() == schema)) {
    return Status::FailedPrecondition(
        "relation " + schema.relation_name() +
        " exists with a different schema: " + it->second.schema().ToString() +
        " vs " + schema.ToString());
  }
  return Status::OK();
}

bool KnowledgeBase::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

const Relation* KnowledgeBase::FindRelation(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

Result<const Relation*> KnowledgeBase::GetRelation(
    const std::string& name) const {
  const Relation* rel = FindRelation(name);
  if (rel == nullptr) {
    return Status::NotFound("relation " + name + " not in knowledge base");
  }
  return rel;
}

Status KnowledgeBase::Insert(const std::string& relation_name, Tuple tuple) {
  auto it = relations_.find(relation_name);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + relation_name +
                            " not in knowledge base");
  }
  WillMutate(relation_name);
  // The insert consumes `tuple`; keep a copy only when it must be logged.
  Tuple logged;
  if (durability_ != nullptr || delta_log_ != nullptr) logged = tuple;
  bool added = false;
  VADA_RETURN_IF_ERROR(it->second.Insert(std::move(tuple), &added));
  if (added) {
    ++facts_added_;
    Bump(relation_name);
    if (durability_ != nullptr) durability_->LogInsert(relation_name, logged);
    if (delta_log_ != nullptr) {
      delta_log_->OnInsert(relation_name, logged, global_version_);
    }
  }
  return Status::OK();
}

Status KnowledgeBase::Assert(const std::string& relation_name,
                             std::initializer_list<Value> values) {
  return Insert(relation_name, Tuple(values));
}

Status KnowledgeBase::InsertAll(const Relation& relation) {
  VADA_RETURN_IF_ERROR(EnsureRelation(relation.schema()));
  WillMutate(relation.name());
  auto it = relations_.find(relation.name());
  bool any = false;
  for (const Tuple& row : relation.rows()) {
    bool added = false;
    VADA_RETURN_IF_ERROR(it->second.Insert(row, &added));
    if (added) {
      ++facts_added_;
      if (durability_ != nullptr) durability_->LogInsert(relation.name(), row);
      // The single Bump below assigns version global_version_ + 1 to
      // the whole batch; record each row under that version.
      if (delta_log_ != nullptr) {
        delta_log_->OnInsert(relation.name(), row, global_version_ + 1);
      }
    }
    any = any || added;
  }
  if (any) Bump(relation.name());
  return Status::OK();
}

Status KnowledgeBase::Retract(const std::string& relation_name,
                              const Tuple& tuple) {
  auto it = relations_.find(relation_name);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + relation_name +
                            " not in knowledge base");
  }
  WillMutate(relation_name);
  if (it->second.Erase(tuple)) {
    ++facts_removed_;
    Bump(relation_name);
    if (durability_ != nullptr) durability_->LogRetract(relation_name, tuple);
    if (delta_log_ != nullptr) {
      delta_log_->OnRetract(relation_name, tuple, global_version_);
    }
  }
  return Status::OK();
}

Status KnowledgeBase::ClearRelation(const std::string& relation_name) {
  auto it = relations_.find(relation_name);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + relation_name +
                            " not in knowledge base");
  }
  if (!it->second.empty()) {
    WillMutate(relation_name);
    facts_removed_ += it->second.size();
    // Row-level retracts (not a reset): a clear is an exact delta, so
    // incremental consumers stay on the delta path.
    if (delta_log_ != nullptr) {
      for (const Tuple& row : it->second.rows()) {
        delta_log_->OnRetract(relation_name, row, global_version_ + 1);
      }
    }
    it->second.Clear();
    Bump(relation_name);
    if (durability_ != nullptr) durability_->LogClear(relation_name);
  }
  return Status::OK();
}

Status KnowledgeBase::DropRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + name + " not in knowledge base");
  }
  WillMutate(name);
  facts_removed_ += it->second.size();
  relations_.erase(it);
  versions_.erase(name);
  // Catalog.Remove notifies the durability listener itself (a
  // kCatalogRole tombstone), then the drop record follows it.
  catalog_.Remove(name);
  ++global_version_;
  if (durability_ != nullptr) durability_->LogDrop(name);
  // The schema is gone: a re-created relation's rows are not comparable
  // to the old ones, so mark the history unanswerable.
  if (delta_log_ != nullptr) delta_log_->OnReset(name, global_version_);
  return Status::OK();
}

Status KnowledgeBase::ReplaceRelation(const Relation& relation) {
  auto it = relations_.find(relation.name());
  if (it == relations_.end()) {
    VADA_RETURN_IF_ERROR(CreateRelation(relation.schema()));
    it = relations_.find(relation.name());
  } else if (!(it->second.schema() == relation.schema())) {
    return Status::FailedPrecondition(
        "relation " + relation.name() + " exists with a different schema");
  }
  WillMutate(relation.name());
  facts_removed_ += it->second.size();
  facts_added_ += relation.size();
  // The delta log records the *effective* row changes of a replace —
  // diffed before the wholesale assignment below destroys the old rows.
  if (delta_log_ != nullptr) {
    const uint64_t version = global_version_ + 1;  // the Bump below
    for (const Tuple& row : it->second.rows()) {
      if (!relation.Contains(row)) {
        delta_log_->OnRetract(relation.name(), row, version);
      }
    }
    for (const Tuple& row : relation.rows()) {
      if (!it->second.Contains(row)) {
        delta_log_->OnInsert(relation.name(), row, version);
      }
    }
  }
  it->second = relation;
  Bump(relation.name());
  if (durability_ != nullptr) {
    // Logical form of a replace: clear, then the new row set. The
    // relation's creation (when it was absent) was logged above by
    // CreateRelation.
    durability_->LogClear(relation.name());
    for (const Tuple& row : relation.rows()) {
      durability_->LogInsert(relation.name(), row);
    }
  }
  return Status::OK();
}

Status KnowledgeBase::ReplaceRelationIfChanged(const Relation& relation,
                                               bool* changed) {
  auto it = relations_.find(relation.name());
  if (it != relations_.end() && it->second.schema() == relation.schema() &&
      it->second.size() == relation.size()) {
    bool same = true;
    for (const Tuple& row : relation.rows()) {
      if (!it->second.Contains(row)) {
        same = false;
        break;
      }
    }
    if (same) {
      if (changed != nullptr) *changed = false;
      return Status::OK();
    }
  }
  if (changed != nullptr) *changed = true;
  return ReplaceRelation(relation);
}

uint64_t KnowledgeBase::relation_version(const std::string& name) const {
  auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second;
}

size_t KnowledgeBase::TotalRows() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

std::vector<std::string> KnowledgeBase::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

}  // namespace vada
