#include "kb/value.h"

#include <cerrno>
#include <cstdlib>
#include <functional>

#include "common/hash.h"
#include "common/strings.h"

namespace vada {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

Value Value::FromText(std::string_view text) {
  if (text.empty()) return Null();
  std::string s(text);
  if (s == "true") return Bool(true);
  if (s == "false") return Bool(false);
  // Integer?
  {
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0' && end != s.c_str()) {
      return Int(static_cast<int64_t>(v));
    }
  }
  // Double?
  {
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (errno == 0 && end != nullptr && *end == '\0' && end != s.c_str()) {
      return Double(v);
    }
  }
  return String(std::move(s));
}

std::optional<double> Value::AsDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(int_value());
    case ValueType::kDouble:
      return double_value();
    default:
      return std::nullopt;
  }
}

std::string Value::ToString(bool null_as_empty) const {
  switch (type()) {
    case ValueType::kNull:
      return null_as_empty ? "" : "NULL";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(int_value());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", double_value());
      return buf;
    }
    case ValueType::kString:
      return string_value();
  }
  return "";
}

std::string Value::ToLiteral() const {
  if (type() != ValueType::kString) return ToString();
  std::string out = "\"";
  for (char c : string_value()) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

size_t Value::ApproxBytes() const {
  size_t bytes = sizeof(Value);
  if (type() == ValueType::kString) {
    const std::string& s = string_value();
    // Short strings live inside the std::string object (SSO) and add
    // no heap bytes.
    if (s.capacity() > sizeof(std::string)) bytes += s.capacity() + 1;
  }
  return bytes;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(data_.index());
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      HashCombine(&seed, bool_value());
      break;
    case ValueType::kInt:
      HashCombine(&seed, int_value());
      break;
    case ValueType::kDouble:
      HashCombine(&seed, double_value());
      break;
    case ValueType::kString:
      HashCombine(&seed, string_value());
      break;
  }
  return seed;
}

bool operator<(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index()) {
    return a.data_.index() < b.data_.index();
  }
  return a.data_ < b.data_;
}

}  // namespace vada
