#ifndef VADA_KB_DURABILITY_H_
#define VADA_KB_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "kb/knowledge_base.h"
#include "kb/wal.h"

namespace vada::obs {
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace vada::obs

namespace vada {

/// Configuration of the KB durability subsystem (DESIGN.md §5i).
struct DurabilityOptions {
  /// Master switch; when false the session never opens a WAL and the
  /// commit path is byte-for-byte the in-memory one.
  bool enabled = false;
  /// Root directory for WAL segments and checkpoints. Created if absent.
  std::string directory;
  FsyncPolicy fsync = FsyncPolicy::kEveryCommit;
  double fsync_interval_ms = 50.0;  ///< FsyncPolicy::kInterval only
  size_t segment_bytes = 4u << 20;     ///< WAL segment rotation threshold
  /// Take an automatic checkpoint once this many WAL bytes accumulate
  /// past the previous checkpoint; 0 = only explicit Checkpoint() calls.
  uint64_t checkpoint_every_bytes = 0;
  /// Checkpoints retained on disk. Keeping >= 2 lets recovery fall back
  /// when the newest checkpoint is corrupt (bit flip, torn rename).
  int checkpoints_to_keep = 2;
  CrashInjector* crash = nullptr;  ///< tests only; simulated kill points
};

/// What DurabilityManager::Open found and did.
struct RecoveryStats {
  bool recovered = false;        ///< pre-existing durable state was found
  uint64_t checkpoint_id = 0;    ///< checkpoint loaded (0 = none)
  bool checkpoint_fallback = false;  ///< newest checkpoint corrupt, older used
  uint64_t replayed_records = 0;     ///< WAL records applied
  uint64_t replayed_commits = 0;     ///< commit boundaries replayed
  uint64_t discarded_records = 0;    ///< trailing uncommitted txn records
  bool torn_tail = false;            ///< WAL ended in an invalid frame
  std::string torn_reason;
  double seconds = 0.0;

  std::string ToString() const;
};

/// Ties the WAL and checkpoints to one KnowledgeBase: Open() recovers
/// durable state into the KB, then attaches to it so every effective
/// mutation is logged (records are written *after* the in-memory
/// mutation succeeded, so no-op mutations never reach the log and
/// replaying the log reproduces the KB exactly). WriteGuard commit /
/// rollback boundaries become WAL transaction boundaries via the
/// OnTxn* hooks; mutations outside any guard are logged as standalone
/// auto-committed records (txn id 0).
///
/// IO failures (and simulated crashes) are sticky: the first failing
/// append poisons the manager, later mutations are not logged, and
/// status() reports the original error — the in-memory KB stays usable,
/// but the caller must treat the durable trail as ended.
class DurabilityManager : public CatalogListener {
 public:
  /// Recovers from `options.directory` (latest valid checkpoint, then
  /// WAL replay, discarding a torn tail and any trailing uncommitted
  /// transaction) into `*kb`, which must be freshly constructed, then
  /// attaches. On success the KB equals some committed prefix of the
  /// pre-crash history. Returns kDataLoss when every retained
  /// checkpoint fails verification. `metrics` (optional) registers the
  /// vada_wal_* / vada_checkpoint_* / vada_recovery_* families.
  static Result<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options, KnowledgeBase* kb,
      obs::MetricsRegistry* metrics = nullptr);

  ~DurabilityManager() override;

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  const RecoveryStats& recovery() const { return recovery_; }

  /// Sticky durability health: OK until the first logging/checkpoint
  /// failure, that failure's status afterwards.
  Status status() const { return status_; }

  /// Takes a checkpoint now: rotates the WAL, writes an atomic
  /// checkpoint at the rotation point, prunes checkpoints beyond
  /// `checkpoints_to_keep` and deletes WAL segments the oldest kept
  /// checkpoint no longer needs. Fails (without poisoning) when a
  /// WriteGuard is active.
  Status Checkpoint();

  /// Forces an fsync of the current WAL segment regardless of policy.
  Status Sync();

  /// Refreshes the vada_wal_live_bytes / vada_checkpoint_bytes gauges.
  void PublishGauges();

  uint64_t last_checkpoint_id() const { return last_checkpoint_id_; }
  const WalWriter* wal() const { return wal_.get(); }

  /// KB hooks — called by KnowledgeBase right after an effective
  /// mutation (no-ops never log). Not part of the public API surface.
  void LogCreateRelation(const Schema& schema);
  void LogInsert(const std::string& relation, const Tuple& tuple);
  void LogRetract(const std::string& relation, const Tuple& tuple);
  void LogClear(const std::string& relation);
  void LogDrop(const std::string& relation);

  /// CatalogListener — role changes are logged like any other mutation.
  void OnRoleSet(const std::string& relation_name,
                 RelationRole role) override;
  void OnRoleRemoved(const std::string& relation_name) override;

  /// WriteGuard hooks. Begin is lazy: kTxnBegin is only written when
  /// the transaction logs its first record, so read-only guards leave
  /// no trace. Commit of a record-less transaction writes nothing.
  void OnTxnBegin();
  void OnTxnCommit();
  void OnTxnAbort();

 private:
  DurabilityManager(const DurabilityOptions& options, KnowledgeBase* kb);

  void Log(WalRecord record);
  void MaybeAutoCheckpoint();

  DurabilityOptions options_;
  KnowledgeBase* kb_;
  std::unique_ptr<WalWriter> wal_;
  RecoveryStats recovery_;
  Status status_;

  uint64_t next_txn_id_ = 1;
  uint64_t txn_id_ = 0;      ///< active guard's txn id; 0 = no guard
  bool txn_began_ = false;   ///< kTxnBegin written for txn_id_

  uint64_t last_checkpoint_id_ = 0;
  uint64_t appended_at_last_checkpoint_ = 0;

  obs::Histogram* checkpoint_seconds_ = nullptr;
  obs::Gauge* wal_live_bytes_gauge_ = nullptr;
  obs::Gauge* checkpoint_bytes_gauge_ = nullptr;
};

}  // namespace vada

#endif  // VADA_KB_DURABILITY_H_
