#include "kb/tuple.h"

#include "common/hash.h"

namespace vada {

Tuple Tuple::Project(const std::vector<size_t>& indexes) const {
  std::vector<Value> out;
  out.reserve(indexes.size());
  for (size_t i : indexes) out.push_back(values_[i]);
  return Tuple(std::move(out));
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToLiteral();
  }
  out += ")";
  return out;
}

size_t Tuple::ApproxBytes() const {
  size_t bytes = sizeof(Tuple) +
                 (values_.capacity() - values_.size()) * sizeof(Value);
  for (const Value& v : values_) bytes += v.ApproxBytes();
  return bytes;
}

size_t Tuple::Hash() const {
  size_t seed = values_.size();
  for (const Value& v : values_) {
    size_t h = v.Hash();
    HashCombine(&seed, h);
  }
  return seed;
}

}  // namespace vada
