#ifndef VADA_KB_CHECKPOINT_H_
#define VADA_KB_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "kb/knowledge_base.h"
#include "kb/wal.h"

namespace vada {

/// Atomic knowledge-base checkpoints (DESIGN.md §5i), layered on the
/// SaveKnowledgeBase directory format. A checkpoint is a directory
/// `checkpoint-<id>` under the durability root containing
///
///   manifest.tsv, <relation>.csv   the persistence-format KB image
///   wal.pos                        WAL position replay resumes from
///   checksums                      crc32 of every other file
///
/// written via a `.tmp` staging directory, fsync'd, and renamed into
/// place — so a checkpoint either exists completely and verifiably or
/// not at all. A crash mid-checkpoint leaves only a `.tmp` directory,
/// which recovery ignores and the next checkpoint sweeps away. The
/// per-file CRCs catch silent corruption (bit flips) at load time, so
/// recovery can fall back to an older retained checkpoint with
/// kDataLoss precision instead of loading garbage.

/// One on-disk checkpoint.
struct CheckpointInfo {
  uint64_t id = 0;
  std::string directory;  ///< full path of the checkpoint directory
  WalPosition wal_start;  ///< replay the WAL from here (inclusive)
};

/// Name of the (final) directory of checkpoint `id` under the root.
std::string CheckpointDirName(uint64_t id);

/// Sorted ids of the complete (non-.tmp) checkpoints under `root`.
std::vector<uint64_t> ListCheckpoints(const std::string& root);

/// Writes checkpoint `id` of `kb` under `root` atomically. `wal_start`
/// is the log position already rotated to for post-checkpoint traffic.
/// `crash` (tests only) simulates dying between protocol steps.
Result<CheckpointInfo> WriteCheckpoint(const KnowledgeBase& kb,
                                       const std::string& root, uint64_t id,
                                       WalPosition wal_start,
                                       CrashInjector* crash = nullptr);

/// Reads checkpoint `id`'s metadata (wal.pos), verifying its checksum.
Result<CheckpointInfo> ReadCheckpointInfo(const std::string& root,
                                          uint64_t id);

/// Loads checkpoint `id` after verifying every file against the
/// `checksums` manifest; kDataLoss on any mismatch, missing file, or
/// missing/invalid manifest.
Result<KnowledgeBase> LoadCheckpoint(const std::string& root, uint64_t id);

/// Deletes checkpoint `id` (no-op when absent).
Status RemoveCheckpoint(const std::string& root, uint64_t id);

/// Deletes every leftover `checkpoint-*.tmp` staging directory.
Status RemoveStaleCheckpointTmp(const std::string& root);

/// Total bytes across the files of checkpoint `id` (0 when absent).
uint64_t CheckpointBytes(const std::string& root, uint64_t id);

}  // namespace vada

#endif  // VADA_KB_CHECKPOINT_H_
