#include "extract/real_estate.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/rng.h"

namespace vada {

namespace {

const char* kStreetNames[] = {"High",    "Station", "Church",  "Park",
                              "Victoria", "Mill",    "School",  "Queen",
                              "King",     "New",     "Green",   "Manor",
                              "Windsor",  "Albert",  "Grange",  "Springfield"};
const char* kStreetKinds[] = {"Street", "Road", "Lane", "Avenue", "Close",
                              "Drive"};
const char* kCities[] = {"Manchester", "Salford", "Stockport", "Oldham",
                         "Bury"};
const char* kTypes[] = {"detached", "semi-detached", "terraced", "flat",
                        "bungalow"};

/// Portal-specific vocabulary variants per canonical type, in the same
/// order as kTypes.
const char* kTypeVariants[] = {"Detached House", "Semi Detached",
                               "Terraced House", "Apartment", "Bungalow Home"};

std::string MakePostcode(Rng* rng) {
  static const char* kAreas[] = {"M", "SK", "OL", "BL", "WA"};
  std::string out = kAreas[rng->Index(5)];
  out += std::to_string(rng->UniformInt(1, 45));
  out += " ";
  out += std::to_string(rng->UniformInt(0, 9));
  out += static_cast<char>('A' + rng->UniformInt(0, 25));
  out += static_cast<char>('A' + rng->UniformInt(0, 25));
  return out;
}

}  // namespace

GroundTruth GeneratePropertyUniverse(const PropertyUniverseOptions& options) {
  Rng rng(options.seed);
  GroundTruth truth;

  // Postcodes (unique) with a city and a desirability factor each.
  std::vector<std::string> cities;
  std::vector<double> desirability;
  std::set<std::string> seen_postcodes;
  while (truth.postcodes.size() < options.num_postcodes) {
    std::string pc = MakePostcode(&rng);
    if (!seen_postcodes.insert(pc).second) continue;
    truth.postcodes.push_back(pc);
    cities.push_back(kCities[rng.Index(5)]);
    desirability.push_back(0.6 + 0.8 * rng.UniformDouble());
  }

  // Crime rank: a permutation of 1..num_postcodes (1 = safest).
  std::vector<int64_t> ranks(options.num_postcodes);
  std::iota(ranks.begin(), ranks.end(), int64_t{1});
  rng.Shuffle(&ranks);
  for (size_t i = 0; i < options.num_postcodes; ++i) {
    truth.crime.InsertUnchecked(
        Tuple({Value::String(truth.postcodes[i]), Value::Int(ranks[i])}));
  }

  // Streets: 2-4 per postcode, globally unique names so street -> postcode
  // is a true functional dependency.
  std::vector<std::vector<std::string>> streets_of(options.num_postcodes);
  std::set<std::string> seen_streets;
  for (size_t p = 0; p < options.num_postcodes; ++p) {
    size_t n = static_cast<size_t>(rng.UniformInt(2, 4));
    while (streets_of[p].size() < n) {
      std::string name = std::string(kStreetNames[rng.Index(16)]) + " " +
                         kStreetKinds[rng.Index(6)];
      if (!seen_streets.insert(name).second) {
        // Disambiguate colliding names deterministically.
        name += " " + std::to_string(seen_streets.size());
        if (!seen_streets.insert(name).second) continue;
      }
      streets_of[p].push_back(name);
    }
  }

  for (size_t i = 0; i < options.num_properties; ++i) {
    size_t p = rng.Index(options.num_postcodes);
    const std::string& street = streets_of[p][rng.Index(streets_of[p].size())];
    int64_t bedrooms = 1 + static_cast<int64_t>(rng.Index(6));
    if (bedrooms > 4 && rng.Bernoulli(0.6)) bedrooms -= 2;  // skew small
    size_t type_idx = rng.Index(5);
    double base = 90000.0 + 55000.0 * static_cast<double>(bedrooms);
    base *= desirability[p];
    base *= (type_idx == 3) ? 0.8 : 1.0;  // flats cheaper
    // Per-property variance (condition, garden, ...): keeps two same-size
    // same-street properties from having indistinguishable prices.
    base *= 0.85 + 0.3 * rng.UniformDouble();
    int64_t price = static_cast<int64_t>(base / 1000.0) * 1000;
    // The listing reference (#id) mirrors real portal descriptions and is
    // what keeps two distinct same-street same-size properties from being
    // indistinguishable to duplicate detection.
    std::string description = std::to_string(bedrooms) + " bed " +
                              kTypes[type_idx] + " on " + street + " #" +
                              std::to_string(i);
    truth.properties.InsertUnchecked(Tuple(
        {Value::Int(static_cast<int64_t>(i)), Value::String(street),
         Value::String(cities[p]), Value::String(truth.postcodes[p]),
         Value::Int(bedrooms), Value::Int(price),
         Value::String(kTypes[type_idx]), Value::String(description)}));
  }
  return truth;
}

Relation ExtractPortal(const GroundTruth& truth,
                       const std::string& relation_name,
                       const std::vector<std::string>& attribute_names,
                       const ExtractionErrorOptions& options) {
  Relation out(Schema::Untyped(relation_name, attribute_names));
  Rng rng(options.seed);

  // Truth columns: id street city postcode bedrooms price type description.
  for (const Tuple& row : truth.properties.rows()) {
    if (!rng.Bernoulli(options.coverage)) continue;

    Value price = row.at(5);
    Value street = row.at(1);
    Value postcode = row.at(3);
    Value bedrooms = row.at(4);
    Value type = row.at(6);
    Value description = row.at(7);

    if (options.price_noise > 0.0 && rng.Bernoulli(0.8)) {
      double jitter =
          1.0 + options.price_noise * (2.0 * rng.UniformDouble() - 1.0);
      price = Value::Int(
          static_cast<int64_t>(price.int_value() * jitter / 500.0) * 500);
    }
    if (rng.Bernoulli(options.bedrooms_area_rate)) {
      // The paper's extraction bug: master-bedroom area (sqm) instead of
      // the bedroom count.
      bedrooms = Value::Int(rng.UniformInt(9, 40));
    }
    if (rng.Bernoulli(options.postcode_typo_rate)) {
      std::string pc = postcode.string_value();
      size_t pos = rng.Index(pc.size());
      pc[pos] = static_cast<char>('A' + rng.UniformInt(0, 25));
      postcode = Value::String(pc);
    }
    if (rng.Bernoulli(options.type_vocabulary_rate)) {
      for (size_t k = 0; k < 5; ++k) {
        if (type.string_value() == kTypes[k]) {
          type = Value::String(kTypeVariants[k]);
          break;
        }
      }
    }

    std::vector<Value> cells = {price, street, postcode, bedrooms, type,
                                description};
    for (Value& v : cells) {
      if (rng.Bernoulli(options.missing_rate)) v = Value::Null();
    }
    out.InsertUnchecked(Tuple(std::move(cells)));
  }
  return out;
}

Relation ExtractRightmove(const GroundTruth& truth,
                          const ExtractionErrorOptions& options) {
  return ExtractPortal(
      truth, "rightmove",
      {"price", "street", "postcode", "bedrooms", "type", "description"},
      options);
}

Relation ExtractOnthemarket(const GroundTruth& truth,
                            const ExtractionErrorOptions& options) {
  return ExtractPortal(
      truth, "onthemarket",
      {"cost", "road", "post_code", "beds", "category", "details"}, options);
}

size_t CountImplausibleBedrooms(const Relation& listing,
                                const std::string& bedrooms_attribute,
                                int64_t max_plausible) {
  std::optional<size_t> idx =
      listing.schema().AttributeIndex(bedrooms_attribute);
  if (!idx.has_value()) return 0;
  size_t count = 0;
  for (const Tuple& row : listing.rows()) {
    const Value& v = row.at(*idx);
    std::optional<double> d = v.AsDouble();
    if (d.has_value() && *d > static_cast<double>(max_plausible)) ++count;
  }
  return count;
}

}  // namespace vada
