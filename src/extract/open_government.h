#ifndef VADA_EXTRACT_OPEN_GOVERNMENT_H_
#define VADA_EXTRACT_OPEN_GOVERNMENT_H_

#include <cstdint>

#include "extract/real_estate.h"
#include "kb/relation.h"

namespace vada {

/// Options for generating open-government data sets from the universe.
struct OpenGovernmentOptions {
  /// Fraction of the universe covered (1.0 = complete reference data;
  /// lower values drive the data-context coverage sweep, bench E5).
  double coverage = 1.0;
  uint64_t seed = 11;
};

/// The paper's data-context reference data (Fig. 2(c)):
/// address(street, city, postcode) — one clean row per street.
Relation GenerateAddressReference(
    const GroundTruth& truth,
    const OpenGovernmentOptions& options = OpenGovernmentOptions());

/// The paper's open-government source (Fig. 2(a)):
/// deprivation(postcode, crime) — crime rank per postcode.
Relation GenerateDeprivation(
    const GroundTruth& truth,
    const OpenGovernmentOptions& options = OpenGovernmentOptions());

}  // namespace vada

#endif  // VADA_EXTRACT_OPEN_GOVERNMENT_H_
