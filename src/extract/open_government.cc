#include "extract/open_government.h"

#include <set>

#include "common/rng.h"

namespace vada {

Relation GenerateAddressReference(const GroundTruth& truth,
                                  const OpenGovernmentOptions& options) {
  Rng rng(options.seed);
  Relation out(Schema::Untyped("address", {"street", "city", "postcode"}));
  // One row per distinct street in the universe (reference data is clean
  // and deduplicated by construction).
  std::set<std::string> seen;
  for (const Tuple& row : truth.properties.rows()) {
    const std::string& street = row.at(1).string_value();
    if (seen.count(street) > 0) continue;
    seen.insert(street);
    if (!rng.Bernoulli(options.coverage)) continue;
    out.InsertUnchecked(Tuple({row.at(1), row.at(2), row.at(3)}));
  }
  return out;
}

Relation GenerateDeprivation(const GroundTruth& truth,
                             const OpenGovernmentOptions& options) {
  Rng rng(options.seed + 1);
  Relation out(Schema::Untyped("deprivation", {"postcode", "crime"}));
  for (const Tuple& row : truth.crime.rows()) {
    if (!rng.Bernoulli(options.coverage)) continue;
    out.InsertUnchecked(row);
  }
  return out;
}

}  // namespace vada
