#ifndef VADA_EXTRACT_REAL_ESTATE_H_
#define VADA_EXTRACT_REAL_ESTATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/relation.h"

namespace vada {

/// Options for generating the hidden "true" property universe behind the
/// demonstration scenario (paper §2.1).
struct PropertyUniverseOptions {
  size_t num_properties = 400;
  size_t num_postcodes = 50;
  uint64_t seed = 42;
};

/// The ground truth the simulated web sources are extracted from. It
/// substitutes for the live estate-agent sites + DIADEM extraction the
/// paper demonstrates with (see DESIGN.md §2): downstream components only
/// observe the noisy extracted relations, never this object, except for
/// evaluation (precision/accuracy against truth).
struct GroundTruth {
  /// ground_truth(id, street, city, postcode, bedrooms, price, type,
  /// description)
  Relation properties{Schema::Untyped("ground_truth",
                                      {"id", "street", "city", "postcode",
                                       "bedrooms", "price", "type",
                                       "description"})};
  /// crime_truth(postcode, crime) — rank per postcode, 1 = safest.
  Relation crime{Schema::Untyped("crime_truth", {"postcode", "crime"})};
  std::vector<std::string> postcodes;
};

/// Deterministically generates a coherent universe: postcodes own streets
/// (street -> postcode and postcode -> city are true FDs, which is what
/// CFD learning later rediscovers), prices correlate with bedrooms and
/// postcode desirability, crime rank is a permutation over postcodes.
GroundTruth GeneratePropertyUniverse(
    const PropertyUniverseOptions& options = PropertyUniverseOptions());

/// Error model of one simulated deep-web extraction, reproducing the
/// error classes the paper names plus common extraction noise.
struct ExtractionErrorOptions {
  /// Fraction of the universe this portal lists.
  double coverage = 0.7;
  /// P(any given cell is extracted as null).
  double missing_rate = 0.08;
  /// The paper's flagship error (§2.3): "automatic web data extraction
  /// may be using the area of the master bedroom as the number of
  /// bedrooms" — with this probability the bedrooms cell becomes a
  /// square-metre area (9..40).
  double bedrooms_area_rate = 0.10;
  /// P(postcode gets a character typo), breaking joins/reference checks.
  double postcode_typo_rate = 0.05;
  /// P(type uses a portal-specific vocabulary variant).
  double type_vocabulary_rate = 0.25;
  /// Relative price jitter (uniform +-).
  double price_noise = 0.02;
  uint64_t seed = 7;
};

/// Extracts a portal listing with the given attribute names (positional:
/// price, street, postcode, bedrooms, type, description). Using portal-
/// specific names exercises schema matching, per §2.1: "in practice
/// attribute correspondences may need to be derived by schema matchers".
Relation ExtractPortal(const GroundTruth& truth,
                       const std::string& relation_name,
                       const std::vector<std::string>& attribute_names,
                       const ExtractionErrorOptions& options);

/// The paper's two deep-web sources with their demo-scenario schemas.
Relation ExtractRightmove(const GroundTruth& truth,
                          const ExtractionErrorOptions& options);
Relation ExtractOnthemarket(const GroundTruth& truth,
                            const ExtractionErrorOptions& options);

/// Counts rows whose bedrooms cell is an implausible bedroom count
/// (> `max_plausible`) — the observable symptom of the area-extraction
/// error; used by benches to measure feedback effectiveness.
size_t CountImplausibleBedrooms(const Relation& listing,
                                const std::string& bedrooms_attribute,
                                int64_t max_plausible = 8);

}  // namespace vada

#endif  // VADA_EXTRACT_REAL_ESTATE_H_
