#include "transducer/trace_export.h"

#include "common/strings.h"
#include "obs/chrome_trace.h"

namespace vada {

std::string TraceExport::ToChromeTrace(const ExecutionTrace& trace,
                                       const obs::SpanCollector* spans) {
  obs::ChromeTraceBuilder builder;
  for (const TraceEvent& e : trace.events()) {
    obs::ChromeTraceEvent event;
    event.name = e.transducer;
    event.category = e.activity.empty() ? "step" : e.activity;
    event.ts_us = e.start_ns / 1000;
    event.dur_us = static_cast<uint64_t>(e.duration_ms * 1000.0);
    event.tid = 1;
    event.args = {
        {"step", std::to_string(e.step)},
        {"policy", e.policy},
        {"changed_kb", e.changed_kb ? "true" : "false"},
        {"facts_added", std::to_string(e.facts_added)},
        {"facts_removed", std::to_string(e.facts_removed)},
        {"version", std::to_string(e.version_before) + "->" +
                        std::to_string(e.version_after)},
        {"eligible", Join(e.eligible, ", ")},
    };
    if (!e.note.empty()) event.args.push_back({"note", e.note});
    builder.Add(std::move(event));
  }
  if (spans != nullptr) builder.AddSpans(*spans, 2);
  return builder.ToJson();
}

}  // namespace vada
