#ifndef VADA_TRANSDUCER_NETWORK_H_
#define VADA_TRANSDUCER_NETWORK_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "kb/knowledge_base.h"
#include "obs/obs.h"
#include "transducer/trace.h"
#include "transducer/transducer.h"

namespace vada {

/// Decides which of the eligible transducers runs next. "It is the
/// responsibility of a network transducer to select between the
/// executable transducers" (paper §2.4). Policies are written by
/// transducer developers or system administrators.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual const std::string& name() const = 0;
  /// Pre-condition: `eligible` is non-empty. Must return one element.
  virtual Transducer* Choose(const std::vector<Transducer*>& eligible) = 0;
};

/// The paper's generic network-transducer policy: "choosing transducers
/// for one type of functionality before another, such as data extraction
/// before mapping, and then using a priority scheme to make more local
/// decisions". Activities earlier in `activity_order` win; ties fall back
/// to registration order. Unknown activities rank last.
class ActivityPriorityPolicy : public SchedulingPolicy {
 public:
  explicit ActivityPriorityPolicy(std::vector<std::string> activity_order);

  /// The default VADA ordering: matching, mapping, execution, quality,
  /// repair, selection, fusion, feedback.
  static std::vector<std::string> DefaultActivityOrder();

  const std::string& name() const override { return name_; }
  Transducer* Choose(const std::vector<Transducer*>& eligible) override;

 private:
  std::string name_ = "activity_priority";
  std::map<std::string, int> rank_;
};

/// Registration-order policy — the "no domain knowledge" baseline.
class FifoPolicy : public SchedulingPolicy {
 public:
  const std::string& name() const override { return name_; }
  Transducer* Choose(const std::vector<Transducer*>& eligible) override {
    return eligible.front();
  }

 private:
  std::string name_ = "fifo";
};

/// Options for the orchestrator.
struct OrchestratorOptions {
  /// Hard step cap: a diverging (non-idempotent) transducer set stops
  /// with an error instead of spinning.
  size_t max_steps = 500;
  bool record_trace = true;
  /// Observability context (not owned; may outlive many Run calls). Null
  /// or disabled: every instrumentation site reduces to a pointer check.
  obs::ObsContext* obs = nullptr;
};

/// Aggregate statistics of one orchestration run.
struct OrchestrationStats {
  size_t steps = 0;
  size_t effective_steps = 0;   ///< steps that changed the KB
  size_t dependency_checks = 0; ///< input-dependency query evaluations
};

/// The dynamic orchestrator (the paper's network transducer). Repeatedly:
///  1. materialises the sys_* control relations describing the KB
///     (sys_relation_role, sys_relation_nonempty, sys_relation_attribute);
///  2. finds eligible transducers: input dependency derives `ready` AND
///     the KB changed since the transducer last ran;
///  3. lets the scheduling policy pick one and executes it;
/// until no transducer is eligible (fixpoint) or max_steps is hit.
class NetworkTransducer {
 public:
  NetworkTransducer(TransducerRegistry* registry,
                    std::unique_ptr<SchedulingPolicy> policy,
                    OrchestratorOptions options = OrchestratorOptions());

  /// Runs to fixpoint. The trace accumulates across calls (pay-as-you-go
  /// steps re-enter Run after the user adds context/feedback).
  Status Run(KnowledgeBase* kb, OrchestrationStats* stats = nullptr);

  /// Evaluates one transducer's input dependency against `kb` (with
  /// control relations refreshed); exposed for Table 1 benches/tests.
  Result<bool> IsSatisfied(const Transducer& transducer, KnowledgeBase* kb);

  const ExecutionTrace& trace() const { return trace_; }
  void ClearTrace() { trace_ = ExecutionTrace(); }

  /// Refreshes the sys_* control relations; normally internal, exposed
  /// for tests.
  static Status SyncControlFacts(KnowledgeBase* kb);

 private:
  TransducerRegistry* registry_;  // not owned
  std::unique_ptr<SchedulingPolicy> policy_;
  OrchestratorOptions options_;
  ExecutionTrace trace_;
  std::map<std::string, uint64_t> last_run_version_;
  size_t next_step_ = 0;
};

}  // namespace vada

#endif  // VADA_TRANSDUCER_NETWORK_H_
