#ifndef VADA_TRANSDUCER_NETWORK_H_
#define VADA_TRANSDUCER_NETWORK_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datalog/ast.h"
#include "datalog/planner.h"
#include "datalog/snapshot_cache.h"
#include "kb/knowledge_base.h"
#include "obs/obs.h"
#include "transducer/failure_policy.h"
#include "transducer/trace.h"
#include "transducer/transducer.h"

namespace vada {

/// Decides which of the eligible transducers runs next. "It is the
/// responsibility of a network transducer to select between the
/// executable transducers" (paper §2.4). Policies are written by
/// transducer developers or system administrators.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual const std::string& name() const = 0;
  /// Pre-condition: `eligible` is non-empty (the orchestrator reaches
  /// fixpoint before ever calling Choose on an empty set). Must return
  /// one of its elements. Implementations should debug-assert the
  /// precondition and return nullptr (never dereference) when violated
  /// by a direct caller; the orchestrator treats nullptr as an error.
  virtual Transducer* Choose(const std::vector<Transducer*>& eligible) = 0;
};

/// The paper's generic network-transducer policy: "choosing transducers
/// for one type of functionality before another, such as data extraction
/// before mapping, and then using a priority scheme to make more local
/// decisions". Activities earlier in `activity_order` win; ties fall back
/// to registration order. Unknown activities rank last.
class ActivityPriorityPolicy : public SchedulingPolicy {
 public:
  explicit ActivityPriorityPolicy(std::vector<std::string> activity_order);

  /// The default VADA ordering: matching, mapping, execution, quality,
  /// repair, selection, fusion, feedback.
  static std::vector<std::string> DefaultActivityOrder();

  const std::string& name() const override { return name_; }
  /// Pre-condition: `eligible` non-empty (see SchedulingPolicy::Choose).
  Transducer* Choose(const std::vector<Transducer*>& eligible) override;

 private:
  std::string name_ = "activity_priority";
  std::map<std::string, int> rank_;
};

/// Registration-order policy — the "no domain knowledge" baseline.
class FifoPolicy : public SchedulingPolicy {
 public:
  const std::string& name() const override { return name_; }
  /// Pre-condition: `eligible` non-empty (see SchedulingPolicy::Choose).
  Transducer* Choose(const std::vector<Transducer*>& eligible) override;

 private:
  std::string name_ = "fifo";
};

/// Options for the orchestrator.
struct OrchestratorOptions {
  /// Hard step cap: a diverging (non-idempotent) transducer set stops
  /// with an error instead of spinning.
  size_t max_steps = 500;
  bool record_trace = true;
  /// Observability context (not owned; may outlive many Run calls). Null
  /// or disabled: every instrumentation site reduces to a pointer check.
  obs::ObsContext* obs = nullptr;
  /// Fault tolerance: write-guard rollback, retry/backoff, quarantine,
  /// budgets, failure facts (see failure_policy.h).
  FailurePolicy failure_policy;
  /// Worker pool for the eligibility scan (not owned; may be shared with
  /// the evaluator). When set, the dependency queries of one scan are
  /// evaluated concurrently over the immutable KB; gating, failure
  /// recording, and policy choice stay sequential in registration order,
  /// so scheduling decisions are identical to a nullptr-pool run. Null:
  /// the scan runs inline exactly as before (the threads=1 escape hatch).
  ThreadPool* pool = nullptr;
  /// Version-keyed relation-snapshot cache shared by the scan's
  /// dependency queries (not owned). Dramatically cuts per-scan relation
  /// copying: only relations whose version moved since the previous scan
  /// are re-snapshotted. Null: every query copies what it reads, as
  /// before. Works with or without `pool`.
  datalog::SnapshotCache* snapshot_cache = nullptr;
  /// Join planning of the scan's dependency queries (composite index
  /// probing, cost-based literal reordering; see datalog/planner.h).
  datalog::PlannerOptions planner;
};

/// Aggregate statistics of one orchestration run.
struct OrchestrationStats {
  size_t steps = 0;
  size_t effective_steps = 0;   ///< steps that changed the KB
  size_t dependency_checks = 0; ///< input-dependency query evaluations
  size_t failures = 0;          ///< steps whose every attempt failed
  size_t retries = 0;           ///< extra Execute() attempts after a failure
  size_t rollbacks = 0;         ///< write-guard rollbacks performed
  size_t quarantined = 0;       ///< transducers benched when Run returned
  bool budget_exhausted = false; ///< Run stopped on its wall-clock budget
};

/// The dynamic orchestrator (the paper's network transducer). Repeatedly:
///  1. materialises the sys_* control relations describing the KB
///     (sys_relation_role, sys_relation_nonempty, sys_relation_attribute);
///  2. finds eligible transducers: input dependency derives `ready` AND
///     the KB changed since the transducer last ran AND the transducer is
///     not quarantined;
///  3. lets the scheduling policy pick one and executes it under a
///     KB write-guard, retrying failed attempts per the failure policy;
/// until no transducer is eligible (fixpoint), max_steps is hit, or the
/// wall-clock budget runs out (best-effort stop).
///
/// Failure semantics (DESIGN.md §5d): a failing Execute() never leaves
/// partial writes behind (rollback), is retried with exponential backoff,
/// and is eventually quarantined (circuit breaker) so the session
/// degrades gracefully instead of aborting. Failures become KB facts:
/// sys_transducer_failure(transducer, code, attempt, step) and
/// sys_transducer_quarantined(transducer, step).
class NetworkTransducer {
 public:
  /// Circuit-breaker state of one transducer (exposed for tests/UIs).
  enum class Circuit {
    kClosed = 0,  ///< healthy, schedulable
    kOpen,        ///< quarantined: excluded from the eligible set
    kHalfOpen,    ///< probation: next execution is a trial
  };

  /// Per-transducer failure bookkeeping.
  struct FailureState {
    Circuit circuit = Circuit::kClosed;
    size_t consecutive_failures = 0;
    size_t total_failures = 0;
    size_t cooldown_progress = 0;  ///< scans sat out while open
    size_t probes_used = 0;        ///< half-open probes spent this Run
    /// Fixpoint retry granted to a closed circuit with pending failures
    /// (skips the version gate once); cleared on the next execution.
    bool retry_scheduled = false;
    std::string last_error;
  };

  NetworkTransducer(TransducerRegistry* registry,
                    std::unique_ptr<SchedulingPolicy> policy,
                    OrchestratorOptions options = OrchestratorOptions());

  /// Runs to fixpoint. The trace accumulates across calls (pay-as-you-go
  /// steps re-enter Run after the user adds context/feedback).
  Status Run(KnowledgeBase* kb, OrchestrationStats* stats = nullptr);

  /// Evaluates one transducer's input dependency against `kb` (with
  /// control relations refreshed); exposed for Table 1 benches/tests.
  Result<bool> IsSatisfied(const Transducer& transducer, KnowledgeBase* kb);

  const ExecutionTrace& trace() const { return trace_; }
  void ClearTrace() { trace_ = ExecutionTrace(); }

  /// Refreshes the sys_* control relations; normally internal, exposed
  /// for tests.
  static Status SyncControlFacts(KnowledgeBase* kb);

  /// SyncControlFacts, skipped when the KB's global version is unchanged
  /// since this instance's previous sync. Sound because the sys_*
  /// relations are a pure function of the non-sys relations, and every
  /// role change in the codebase rides on a relation mutation (which
  /// bumps the global version).
  Status SyncControlFactsIfStale(KnowledgeBase* kb);

  /// Names of transducers whose circuit is currently open, sorted.
  std::vector<std::string> QuarantinedTransducers() const;

  /// Failure bookkeeping for `name`; nullptr when it never failed.
  const FailureState* failure_state(const std::string& name) const;

 private:
  /// Records one failure (execute or dependency-eval): metrics, failure
  /// facts, consecutive-failure count, circuit transitions.
  void RecordFailure(Transducer* transducer, const Status& error,
                     size_t attempts, size_t step, KnowledgeBase* kb,
                     OrchestrationStats* stats, obs::MetricsRegistry* metrics);

  /// Transitions after a successful step: closes a half-open circuit
  /// (exits quarantine) and resets the consecutive-failure count.
  void RecordSuccess(Transducer* transducer, KnowledgeBase* kb,
                     obs::MetricsRegistry* metrics);

  size_t OpenCircuits() const;
  void PublishQuarantineGauge(obs::MetricsRegistry* metrics) const;

  /// Returns the parsed form of a dependency-query text, parsing it at
  /// most once per distinct text (dependency texts are fixed at
  /// transducer construction, and eligibility scans re-evaluate each of
  /// them every step).
  Result<const datalog::Program*> ParsedDependency(const std::string& source);

  TransducerRegistry* registry_;  // not owned
  std::unique_ptr<SchedulingPolicy> policy_;
  OrchestratorOptions options_;
  ExecutionTrace trace_;
  std::map<std::string, uint64_t> last_run_version_;
  std::map<std::string, FailureState> failure_state_;
  std::map<std::string, datalog::Program> parsed_deps_;
  uint64_t control_synced_at_version_ = 0;
  size_t next_step_ = 0;
  /// High-water mark of options_.pool->tasks_executed() already published
  /// to the vada_pool_tasks_total counter (published as deltas per Run).
  uint64_t pool_tasks_published_ = 0;
};

}  // namespace vada

#endif  // VADA_TRANSDUCER_NETWORK_H_
