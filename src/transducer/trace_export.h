#ifndef VADA_TRANSDUCER_TRACE_EXPORT_H_
#define VADA_TRANSDUCER_TRACE_EXPORT_H_

#include <string>

#include "obs/span.h"
#include "transducer/trace.h"

namespace vada {

/// Machine-readable exports of the orchestration trace — the "browsable
/// trace information" of the demo (paper §3), in formats external tools
/// understand.
class TraceExport {
 public:
  /// Chrome trace-event JSON: one complete event per orchestration step
  /// (lane 1), plus one event per recorded span (lane 2) when `spans` is
  /// given. Open in Perfetto (ui.perfetto.dev) or chrome://tracing.
  static std::string ToChromeTrace(const ExecutionTrace& trace,
                                   const obs::SpanCollector* spans = nullptr);
};

}  // namespace vada

#endif  // VADA_TRANSDUCER_TRACE_EXPORT_H_
