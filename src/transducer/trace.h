#ifndef VADA_TRANSDUCER_TRACE_H_
#define VADA_TRANSDUCER_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vada {

/// One orchestration step: which transducers were eligible, which ran,
/// and what it did to the knowledge base.
struct TraceEvent {
  size_t step = 0;
  std::string transducer;
  std::string activity;
  std::vector<std::string> eligible;
  uint64_t version_before = 0;
  uint64_t version_after = 0;
  bool changed_kb = false;
  double duration_ms = 0.0;
  std::string note;

  std::string ToString() const;
};

/// The "browsable trace information that shows what transducers are being
/// orchestrated, their inputs and results" the demonstration promises
/// (paper §3).
class ExecutionTrace {
 public:
  ExecutionTrace() = default;

  void Add(TraceEvent event);
  void Append(const ExecutionTrace& other);

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// Executions per transducer name.
  std::map<std::string, size_t> ExecutionCounts() const;

  /// Steps that actually changed the knowledge base.
  size_t EffectiveSteps() const;

  /// Multi-line human-readable rendering.
  std::string ToString() const;

  /// GitHub-flavoured markdown table (for reports / issue comments).
  std::string ToMarkdown() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace vada

#endif  // VADA_TRANSDUCER_TRACE_H_
