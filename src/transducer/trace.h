#ifndef VADA_TRANSDUCER_TRACE_H_
#define VADA_TRANSDUCER_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vada {

/// One orchestration step: which transducers were eligible, which ran,
/// and what it did to the knowledge base.
struct TraceEvent {
  size_t step = 0;
  std::string transducer;
  std::string activity;
  /// Name of the scheduling policy that made the choice.
  std::string policy;
  std::vector<std::string> eligible;
  uint64_t version_before = 0;
  uint64_t version_after = 0;
  bool changed_kb = false;
  /// KB delta attributed to this step (Replace counts remove+add, so
  /// these are upper bounds on the logical change).
  uint64_t facts_added = 0;
  uint64_t facts_removed = 0;
  /// Step start on the monotonic clock (obs::MonotonicNanos time base;
  /// lets exporters place the step on a shared timeline with spans).
  uint64_t start_ns = 0;
  double duration_ms = 0.0;
  /// Execute() attempts consumed by this step (> 1 means retries).
  size_t attempts = 1;
  /// Whether any attempt's partial writes were rolled back (WriteGuard).
  bool rolled_back = false;
  std::string note;

  std::string ToString() const;
};

/// The "browsable trace information that shows what transducers are being
/// orchestrated, their inputs and results" the demonstration promises
/// (paper §3).
class ExecutionTrace {
 public:
  ExecutionTrace() = default;

  void Add(TraceEvent event);
  void Append(const ExecutionTrace& other);

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// Executions per transducer name.
  std::map<std::string, size_t> ExecutionCounts() const;

  /// Steps that actually changed the knowledge base.
  size_t EffectiveSteps() const;

  /// Multi-line human-readable rendering.
  std::string ToString() const;

  /// GitHub-flavoured markdown table (for reports / issue comments).
  std::string ToMarkdown() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace vada

#endif  // VADA_TRANSDUCER_TRACE_H_
