#include "transducer/fault_injection.h"

#include <utility>

namespace vada {

namespace {

/// FNV-1a, inlined for cross-platform stability (std::hash is not
/// portable, and the whole point of the harness is reproducible
/// schedules).
uint64_t HashName(const std::string& name) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

class FaultyTransducer : public Transducer {
 public:
  FaultyTransducer(std::unique_ptr<Transducer> inner, FaultSpec spec)
      : Transducer(inner->name(), inner->activity(),
                   inner->input_dependency()),
        inner_(std::move(inner)),
        spec_(spec),
        rng_(spec.seed) {}

  const std::string* vadalog_program() const override {
    return inner_->vadalog_program();
  }

  Status Execute(KnowledgeBase* kb) override { return Execute(kb, nullptr); }

  Status Execute(KnowledgeBase* kb, ExecutionContext* ctx) override {
    switch (spec_.kind) {
      case FaultKind::kNone:
        break;
      case FaultKind::kFailFirstN:
        if (failures_ < spec_.count) {
          ++failures_;
          return Status::Internal("injected failure " +
                                  std::to_string(failures_) + "/" +
                                  std::to_string(spec_.count) + " in " +
                                  name());
        }
        break;
      case FaultKind::kPartialWriteThenFail:
        if (failures_ < spec_.count) {
          ++failures_;
          // Let the real body write, then claim failure: the committed
          // partial state must be rolled back by the orchestrator.
          Status inner_status = inner_->Execute(kb, ctx);
          if (!inner_status.ok()) return inner_status;
          return Status::Internal("injected failure after partial write in " +
                                  name());
        }
        break;
      case FaultKind::kFlaky:
        if (failures_ < spec_.count && rng_.Bernoulli(spec_.probability)) {
          ++failures_;
          return Status::Internal("injected flaky failure in " + name());
        }
        break;
      case FaultKind::kSlowDeadline:
        if (failures_ < spec_.count) {
          ++failures_;
          return Status::DeadlineExceeded(
              "injected slow execution exceeded its deadline in " + name());
        }
        break;
    }
    return inner_->Execute(kb, ctx);
  }

 private:
  std::unique_ptr<Transducer> inner_;
  FaultSpec spec_;
  Rng rng_;
  size_t failures_ = 0;
};

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kFailFirstN:
      return "fail_first_n";
    case FaultKind::kPartialWriteThenFail:
      return "partial_write_then_fail";
    case FaultKind::kFlaky:
      return "flaky";
    case FaultKind::kSlowDeadline:
      return "slow_deadline";
  }
  return "unknown";
}

std::unique_ptr<Transducer> WrapWithFault(std::unique_ptr<Transducer> inner,
                                          FaultSpec spec) {
  if (inner == nullptr || spec.kind == FaultKind::kNone) return inner;
  return std::make_unique<FaultyTransducer>(std::move(inner), spec);
}

FaultSpec FaultInjector::SpecFor(const std::string& name) const {
  Rng rng(options_.seed ^ HashName(name));
  FaultSpec spec;
  spec.seed = rng.Next();
  if (!rng.Bernoulli(options_.fault_rate)) return spec;  // kNone
  constexpr FaultKind kKinds[] = {
      FaultKind::kFailFirstN, FaultKind::kPartialWriteThenFail,
      FaultKind::kFlaky, FaultKind::kSlowDeadline};
  spec.kind = kKinds[rng.Index(4)];
  spec.count = 1 + rng.Index(options_.max_failures == 0
                                 ? 1
                                 : options_.max_failures);
  spec.probability = options_.flaky_probability;
  return spec;
}

std::unique_ptr<Transducer> FaultInjector::Wrap(
    std::unique_ptr<Transducer> inner) const {
  if (inner == nullptr) return inner;
  return WrapWithFault(std::move(inner), SpecFor(inner->name()));
}

TransducerRegistry::Decorator FaultInjector::Decorator() const {
  // Capture by value: the decorator must outlive this injector.
  FaultInjector copy(*this);
  return [copy](std::unique_ptr<Transducer> t) { return copy.Wrap(std::move(t)); };
}

}  // namespace vada
