#include "transducer/transducer.h"

#include "datalog/evaluator.h"
#include "datalog/kb_adapter.h"
#include "datalog/parser.h"

namespace vada {

VadalogTransducer::VadalogTransducer(std::string name, std::string activity,
                                     std::string input_dependency,
                                     std::string program_text,
                                     std::vector<std::string> output_predicates)
    : Transducer(std::move(name), std::move(activity),
                 std::move(input_dependency)),
      program_text_(std::move(program_text)),
      output_predicates_(std::move(output_predicates)) {}

Status VadalogTransducer::Execute(KnowledgeBase* kb) {
  return Execute(kb, nullptr);
}

Status VadalogTransducer::Execute(KnowledgeBase* kb, ExecutionContext* ctx) {
  if (ctx != nullptr) VADA_RETURN_IF_ERROR(ctx->CheckContinue());
  Result<datalog::Program> program = datalog::Parser::Parse(program_text_);
  if (!program.ok()) {
    return Status::InvalidArgument("transducer " + name() +
                                   " has unparsable program: " +
                                   program.status().message());
  }
  datalog::Database db;
  datalog::LoadReferencedRelations(program.value(), *kb, &db);
  datalog::Evaluator eval(program.value());
  VADA_RETURN_IF_ERROR(eval.Prepare());
  VADA_RETURN_IF_ERROR(eval.Run(&db));
  if (ctx != nullptr) VADA_RETURN_IF_ERROR(ctx->CheckContinue());

  for (const std::string& predicate : output_predicates_) {
    const std::vector<Tuple>& facts = db.facts(predicate);
    if (facts.empty()) continue;
    if (!kb->HasRelation(predicate)) {
      std::vector<std::string> attrs;
      for (size_t i = 0; i < facts.front().size(); ++i) {
        attrs.push_back("c" + std::to_string(i));
      }
      VADA_RETURN_IF_ERROR(
          kb->CreateRelation(Schema::Untyped(predicate, attrs)));
    }
    for (const Tuple& t : facts) {
      VADA_RETURN_IF_ERROR(kb->Insert(predicate, t));
    }
  }
  return Status::OK();
}

Status TransducerRegistry::Add(std::unique_ptr<Transducer> transducer) {
  if (transducer == nullptr) {
    return Status::InvalidArgument("cannot register null transducer");
  }
  if (decorator_ != nullptr) {
    transducer = decorator_(std::move(transducer));
    if (transducer == nullptr) {
      return Status::Internal("transducer decorator returned null");
    }
  }
  if (Find(transducer->name()) != nullptr) {
    return Status::AlreadyExists("transducer " + transducer->name() +
                                 " already registered");
  }
  transducers_.push_back(std::move(transducer));
  return Status::OK();
}

Transducer* TransducerRegistry::Find(const std::string& name) const {
  for (const std::unique_ptr<Transducer>& t : transducers_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

std::vector<std::string> TransducerRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(transducers_.size());
  for (const std::unique_ptr<Transducer>& t : transducers_) {
    out.push_back(t->name());
  }
  return out;
}

}  // namespace vada
