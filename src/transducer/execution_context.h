#ifndef VADA_TRANSDUCER_EXECUTION_CONTEXT_H_
#define VADA_TRANSDUCER_EXECUTION_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace vada {

/// Cooperative execution context handed to Transducer::Execute() by the
/// orchestrator (DESIGN.md §5d). Transducers are not preempted — a
/// well-behaved long-running Execute() polls CheckContinue() at natural
/// checkpoints (per mapping, per source, per iteration) and returns the
/// error to abandon the step; the orchestrator then rolls the KB back
/// and applies its retry/quarantine policy.
///
/// Also carries the retry attempt number and orchestration step so
/// transducers (and fault-injection wrappers) can make attempt-aware
/// decisions without global state.
class ExecutionContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecutionContext() = default;

  // The atomic cancel flag makes contexts neither copyable nor movable;
  // the orchestrator constructs one per attempt in place.
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Sets the soft deadline to `timeout_ms` from now. Non-positive
  /// timeouts mean "no deadline".
  void SetTimeoutMs(double timeout_ms) {
    if (timeout_ms <= 0) return;
    deadline_ = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(timeout_ms));
    has_deadline_ = true;
  }

  bool has_deadline() const { return has_deadline_; }
  bool deadline_exceeded() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Requests cooperative cancellation (e.g. the session is shutting
  /// down or a budget ran out). Safe from other threads.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// OK while the execution may continue; kDeadlineExceeded once the
  /// soft deadline passed, kResourceExhausted once cancelled. This is
  /// the one call cooperative transducers poll.
  Status CheckContinue() const {
    if (cancelled()) {
      return Status::ResourceExhausted("execution cancelled");
    }
    if (deadline_exceeded()) {
      return Status::DeadlineExceeded("execute soft deadline exceeded");
    }
    return Status::OK();
  }

  /// 1-based retry attempt of this Execute() within the current step.
  size_t attempt() const { return attempt_; }
  void set_attempt(size_t attempt) { attempt_ = attempt; }

  /// Orchestration step this execution belongs to.
  size_t step() const { return step_; }
  void set_step(size_t step) { step_ = step; }

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool> cancelled_{false};
  size_t attempt_ = 1;
  size_t step_ = 0;
};

}  // namespace vada

#endif  // VADA_TRANSDUCER_EXECUTION_CONTEXT_H_
