#include "transducer/trace.h"

#include "common/strings.h"

namespace vada {

std::string TraceEvent::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "step %3zu  %-28s [%-10s] v%llu->%llu %s %.2fms",
                step, transducer.c_str(), activity.c_str(),
                static_cast<unsigned long long>(version_before),
                static_cast<unsigned long long>(version_after),
                changed_kb ? "changed " : "no-op   ", duration_ms);
  std::string out = buf;
  if (!note.empty()) out += "  (" + note + ")";
  out += "  eligible: {" + Join(eligible, ", ") + "}";
  return out;
}

void ExecutionTrace::Add(TraceEvent event) {
  events_.push_back(std::move(event));
}

void ExecutionTrace::Append(const ExecutionTrace& other) {
  for (const TraceEvent& e : other.events_) events_.push_back(e);
}

std::map<std::string, size_t> ExecutionTrace::ExecutionCounts() const {
  std::map<std::string, size_t> out;
  for (const TraceEvent& e : events_) ++out[e.transducer];
  return out;
}

size_t ExecutionTrace::EffectiveSteps() const {
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.changed_kb) ++n;
  }
  return n;
}

std::string ExecutionTrace::ToString() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += e.ToString();
    out += "\n";
  }
  return out;
}

std::string ExecutionTrace::ToMarkdown() const {
  std::string out =
      "| step | transducer | activity | effect | duration (ms) | eligible |\n"
      "|---|---|---|---|---|---|\n";
  for (const TraceEvent& e : events_) {
    char duration[32];
    std::snprintf(duration, sizeof(duration), "%.2f", e.duration_ms);
    out += "| " + std::to_string(e.step) + " | " + e.transducer + " | " +
           e.activity + " | " + (e.changed_kb ? "changed" : "no-op") + " | " +
           duration + " | " + std::to_string(e.eligible.size()) + " |\n";
  }
  return out;
}

}  // namespace vada
