#include "transducer/trace.h"

#include "common/strings.h"

namespace vada {

std::string TraceEvent::ToString() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "step %3zu  %-28s [%-10s] v%llu->%llu %s +%llu/-%llu %.2fms",
                step, transducer.c_str(), activity.c_str(),
                static_cast<unsigned long long>(version_before),
                static_cast<unsigned long long>(version_after),
                changed_kb ? "changed " : "no-op   ",
                static_cast<unsigned long long>(facts_added),
                static_cast<unsigned long long>(facts_removed), duration_ms);
  std::string out = buf;
  if (!policy.empty()) out += "  policy: " + policy;
  if (attempts > 1) {
    out += "  attempts: " + std::to_string(attempts);
  }
  if (rolled_back) out += "  rolled-back";
  if (!note.empty()) out += "  (" + note + ")";
  out += "  eligible: {" + Join(eligible, ", ") + "}";
  return out;
}

void ExecutionTrace::Add(TraceEvent event) {
  events_.push_back(std::move(event));
}

void ExecutionTrace::Append(const ExecutionTrace& other) {
  for (const TraceEvent& e : other.events_) events_.push_back(e);
}

std::map<std::string, size_t> ExecutionTrace::ExecutionCounts() const {
  std::map<std::string, size_t> out;
  for (const TraceEvent& e : events_) ++out[e.transducer];
  return out;
}

size_t ExecutionTrace::EffectiveSteps() const {
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.changed_kb) ++n;
  }
  return n;
}

std::string ExecutionTrace::ToString() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += e.ToString();
    out += "\n";
  }
  return out;
}

std::string ExecutionTrace::ToMarkdown() const {
  std::string out =
      "| step | transducer | activity | policy | effect | +facts | -facts "
      "| duration (ms) | eligible |\n"
      "|---|---|---|---|---|---|---|---|---|\n";
  for (const TraceEvent& e : events_) {
    char duration[32];
    std::snprintf(duration, sizeof(duration), "%.2f", e.duration_ms);
    out += "| " + std::to_string(e.step) + " | " + e.transducer + " | " +
           e.activity + " | " + e.policy + " | " +
           (e.changed_kb ? "changed" : "no-op") + " | " +
           std::to_string(e.facts_added) + " | " +
           std::to_string(e.facts_removed) + " | " + duration + " | " +
           std::to_string(e.eligible.size()) + " |\n";
  }
  return out;
}

}  // namespace vada
