#ifndef VADA_TRANSDUCER_TRANSDUCER_H_
#define VADA_TRANSDUCER_TRANSDUCER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "kb/knowledge_base.h"
#include "transducer/execution_context.h"

namespace vada {

/// A wrangling component (paper §2): "a software component with input and
/// output dependencies defined as Datalog queries over the knowledge
/// base". The orchestrator evaluates `input_dependency()` — a Vadalog
/// program that must define the goal predicate `ready` — against the
/// knowledge base (plus the sys_* control relations it materialises);
/// the transducer becomes executable when `ready` derives a fact.
///
/// Contract for Execute():
///  * read/write the knowledge base only through its API;
///  * be idempotent — re-running on unchanged inputs must not change the
///    KB (use ReplaceRelationIfChanged); this is what makes the dynamic
///    orchestration terminate;
///  * on failure, return a non-OK Status and rely on the orchestrator's
///    write-guard to roll partial writes back — never half-repair the KB;
///  * long-running bodies should poll ExecutionContext::CheckContinue()
///    at natural checkpoints and return its error to honour the
///    cooperative soft deadline (see execution_context.h).
class Transducer {
 public:
  Transducer(std::string name, std::string activity,
             std::string input_dependency)
      : name_(std::move(name)),
        activity_(std::move(activity)),
        input_dependency_(std::move(input_dependency)) {}
  virtual ~Transducer() = default;

  Transducer(const Transducer&) = delete;
  Transducer& operator=(const Transducer&) = delete;

  const std::string& name() const { return name_; }
  /// Functionality family, e.g. "matching", "mapping", "quality";
  /// scheduling policies prioritise by activity (paper §2.4).
  const std::string& activity() const { return activity_; }
  const std::string& input_dependency() const { return input_dependency_; }

  /// The Vadalog program the transducer's logic is written in, when it
  /// has one (VadalogTransducer); nullptr for native transducers. Lets
  /// registration-time static analysis cover the program without RTTI.
  virtual const std::string* vadalog_program() const { return nullptr; }

  virtual Status Execute(KnowledgeBase* kb) = 0;

  /// Context-aware entry point the orchestrator calls. The default
  /// ignores the context, so existing transducers keep working; override
  /// to cooperate with deadlines/cancellation or to observe the attempt
  /// number (fault-injection wrappers do).
  virtual Status Execute(KnowledgeBase* kb, ExecutionContext* ctx) {
    (void)ctx;
    return Execute(kb);
  }

 private:
  std::string name_;
  std::string activity_;
  std::string input_dependency_;
};

/// A transducer wrapping an arbitrary callable — the "wrapping external
/// systems" implementation route (§2.3).
class FunctionTransducer : public Transducer {
 public:
  using Body = std::function<Status(KnowledgeBase*)>;
  /// Context-aware body; `ctx` may be null when invoked outside an
  /// orchestrated step (e.g. directly in tests).
  using ContextBody = std::function<Status(KnowledgeBase*, ExecutionContext*)>;

  FunctionTransducer(std::string name, std::string activity,
                     std::string input_dependency, Body body)
      : Transducer(std::move(name), std::move(activity),
                   std::move(input_dependency)),
        body_([b = std::move(body)](KnowledgeBase* kb, ExecutionContext*) {
          return b(kb);
        }) {}

  FunctionTransducer(std::string name, std::string activity,
                     std::string input_dependency, ContextBody body)
      : Transducer(std::move(name), std::move(activity),
                   std::move(input_dependency)),
        body_(std::move(body)) {}

  Status Execute(KnowledgeBase* kb) override { return body_(kb, nullptr); }
  Status Execute(KnowledgeBase* kb, ExecutionContext* ctx) override {
    return body_(kb, ctx);
  }

 private:
  ContextBody body_;
};

/// A transducer implemented *in Vadalog* (§2.3: "transducers can be
/// implemented in Vadalog"): evaluates `program_text` over a snapshot of
/// the knowledge base and asserts the derived facts of each predicate in
/// `output_predicates` back into same-named KB relations (created with
/// attributes c0..cN when absent).
class VadalogTransducer : public Transducer {
 public:
  VadalogTransducer(std::string name, std::string activity,
                    std::string input_dependency, std::string program_text,
                    std::vector<std::string> output_predicates);

  Status Execute(KnowledgeBase* kb) override;
  /// Honours the cooperative soft deadline around the (uninterruptible)
  /// reasoning fixpoint: checked before evaluation and before asserting
  /// derived facts back into the KB.
  Status Execute(KnowledgeBase* kb, ExecutionContext* ctx) override;

  const std::string& program_text() const { return program_text_; }
  const std::string* vadalog_program() const override {
    return &program_text_;
  }

 private:
  std::string program_text_;
  std::vector<std::string> output_predicates_;
};

/// Owns the registered transducers of a wrangling deployment. "The
/// architecture is not tied to a specific or fixed set of transducers" —
/// anything implementing Transducer can be added at any time.
class TransducerRegistry {
 public:
  using Decorator =
      std::function<std::unique_ptr<Transducer>(std::unique_ptr<Transducer>)>;

  TransducerRegistry() = default;

  /// Every subsequently Add()ed transducer is passed through `decorator`
  /// first (nullptr clears). This is how cross-cutting wrappers — fault
  /// injection, tracing shims — cover the standard suite and custom
  /// transducers uniformly. Decorators must preserve name/activity/
  /// input_dependency (wrap, don't re-identify).
  void SetDecorator(Decorator decorator) {
    decorator_ = std::move(decorator);
  }

  /// Fails with kAlreadyExists on duplicate names.
  Status Add(std::unique_ptr<Transducer> transducer);

  Transducer* Find(const std::string& name) const;
  const std::vector<std::unique_ptr<Transducer>>& transducers() const {
    return transducers_;
  }
  std::vector<std::string> Names() const;
  size_t size() const { return transducers_.size(); }

 private:
  std::vector<std::unique_ptr<Transducer>> transducers_;
  Decorator decorator_;
};

}  // namespace vada

#endif  // VADA_TRANSDUCER_TRANSDUCER_H_
