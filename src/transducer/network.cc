#include "transducer/network.h"

#include <chrono>

#include "common/logging.h"
#include "common/strings.h"
#include "datalog/kb_adapter.h"

namespace vada {

ActivityPriorityPolicy::ActivityPriorityPolicy(
    std::vector<std::string> activity_order) {
  for (size_t i = 0; i < activity_order.size(); ++i) {
    rank_[activity_order[i]] = static_cast<int>(i);
  }
}

std::vector<std::string> ActivityPriorityPolicy::DefaultActivityOrder() {
  return {"extraction", "matching",  "mapping",  "execution",
          "quality",    "repair",    "selection", "fusion",
          "feedback"};
}

Transducer* ActivityPriorityPolicy::Choose(
    const std::vector<Transducer*>& eligible) {
  Transducer* best = eligible.front();
  int best_rank = 1 << 20;
  for (Transducer* t : eligible) {
    auto it = rank_.find(t->activity());
    int r = (it == rank_.end()) ? (1 << 20) - 1 : it->second;
    if (r < best_rank) {
      best_rank = r;
      best = t;
    }
  }
  return best;
}

NetworkTransducer::NetworkTransducer(TransducerRegistry* registry,
                                     std::unique_ptr<SchedulingPolicy> policy,
                                     OrchestratorOptions options)
    : registry_(registry), policy_(std::move(policy)), options_(options) {}

Status NetworkTransducer::SyncControlFacts(KnowledgeBase* kb) {
  Relation roles(
      Schema::Untyped("sys_relation_role", {"relation", "role"}));
  Relation nonempty(Schema::Untyped("sys_relation_nonempty", {"relation"}));
  Relation attrs(
      Schema::Untyped("sys_relation_attribute", {"relation", "attribute"}));

  for (const std::string& name : kb->RelationNames()) {
    if (StartsWith(name, "sys_")) continue;
    const Relation* rel = kb->FindRelation(name);
    if (rel == nullptr) continue;
    std::optional<RelationRole> role = kb->catalog().GetRole(name);
    if (role.has_value()) {
      VADA_RETURN_IF_ERROR(roles.InsertUnchecked(
          Tuple({Value::String(name),
                 Value::String(RelationRoleName(*role))})));
    }
    if (!rel->empty()) {
      VADA_RETURN_IF_ERROR(
          nonempty.InsertUnchecked(Tuple({Value::String(name)})));
    }
    for (const Attribute& a : rel->schema().attributes()) {
      VADA_RETURN_IF_ERROR(attrs.InsertUnchecked(
          Tuple({Value::String(name), Value::String(a.name)})));
    }
  }
  VADA_RETURN_IF_ERROR(kb->ReplaceRelationIfChanged(roles));
  VADA_RETURN_IF_ERROR(kb->ReplaceRelationIfChanged(nonempty));
  VADA_RETURN_IF_ERROR(kb->ReplaceRelationIfChanged(attrs));
  return Status::OK();
}

Result<bool> NetworkTransducer::IsSatisfied(const Transducer& transducer,
                                            KnowledgeBase* kb) {
  VADA_RETURN_IF_ERROR(SyncControlFacts(kb));
  Result<std::vector<Tuple>> ready = datalog::QueryKnowledgeBase(
      transducer.input_dependency(), *kb, "ready");
  if (!ready.ok()) {
    return Status::InvalidArgument(
        "input dependency of " + transducer.name() +
        " failed to evaluate: " + ready.status().message());
  }
  return !ready.value().empty();
}

Status NetworkTransducer::Run(KnowledgeBase* kb, OrchestrationStats* stats) {
  OrchestrationStats local;
  OrchestrationStats* st = (stats != nullptr) ? stats : &local;

  obs::MetricsRegistry* m =
      options_.obs != nullptr ? options_.obs->metrics() : nullptr;
  obs::SpanCollector* spans =
      options_.obs != nullptr ? options_.obs->spans() : nullptr;
  obs::Counter* steps_counter = nullptr;
  obs::Counter* effective_counter = nullptr;
  obs::Counter* dep_checks_counter = nullptr;
  obs::Histogram* eligibility_hist = nullptr;
  obs::Histogram* dep_check_hist = nullptr;
  datalog::EvalOptions eval_options;
  if (m != nullptr) {
    steps_counter =
        m->GetCounter("vada_orchestrator_steps", "Transducer executions");
    effective_counter = m->GetCounter("vada_orchestrator_effective_steps",
                                      "Executions that changed the KB");
    dep_checks_counter = m->GetCounter("vada_orchestrator_dependency_checks",
                                       "Input-dependency query evaluations");
    eligibility_hist = m->GetHistogram(
        "vada_orchestrator_eligibility_seconds",
        "Per-step control-fact sync plus eligibility scan",
        obs::Histogram::DefaultLatencyBucketsSeconds());
    dep_check_hist = m->GetHistogram(
        "vada_orchestrator_dependency_check_seconds",
        "One input-dependency Datalog query",
        obs::Histogram::DefaultLatencyBucketsSeconds());
    eval_options.metrics = m;
  }

  for (size_t step = 0; step < options_.max_steps; ++step) {
    // Eligibility: dependency satisfied AND the KB moved since last run.
    std::vector<Transducer*> eligible;
    {
      obs::ScopedSpan eligibility_span(spans, eligibility_hist, "eligibility",
                                       "orchestrator");
      VADA_RETURN_IF_ERROR(SyncControlFacts(kb));
      for (const std::unique_ptr<Transducer>& t : registry_->transducers()) {
        auto it = last_run_version_.find(t->name());
        if (it != last_run_version_.end() &&
            it->second >= kb->global_version()) {
          continue;  // nothing new since this transducer last ran
        }
        ++st->dependency_checks;
        if (dep_checks_counter != nullptr) dep_checks_counter->Increment();
        Result<std::vector<Tuple>> ready = [&] {
          obs::ScopedSpan dep_span(nullptr, dep_check_hist, "dep_check");
          return datalog::QueryKnowledgeBase(t->input_dependency(), *kb,
                                             "ready", eval_options);
        }();
        if (!ready.ok()) {
          return Status::InvalidArgument(
              "input dependency of " + t->name() +
              " failed to evaluate: " + ready.status().message());
        }
        if (!ready.value().empty()) eligible.push_back(t.get());
      }
    }
    if (eligible.empty()) return Status::OK();  // fixpoint

    Transducer* chosen = policy_->Choose(eligible);
    uint64_t version_before = kb->global_version();
    uint64_t facts_added_before = kb->facts_added();
    uint64_t facts_removed_before = kb->facts_removed();
    obs::Histogram* execute_hist =
        m == nullptr
            ? nullptr
            : m->GetHistogram("vada_transducer_execute_seconds",
                              "Transducer Execute() wall time",
                              obs::Histogram::DefaultLatencyBucketsSeconds(),
                              {{"transducer", chosen->name()}});
    uint64_t t0 = obs::MonotonicNanos();
    Status exec_status;
    {
      obs::ScopedSpan execute_span(spans, execute_hist, chosen->name(),
                                   chosen->activity());
      exec_status = chosen->Execute(kb);
    }
    uint64_t t1 = obs::MonotonicNanos();
    // Record the version the transducer *saw* — its own writes count as
    // new information (it re-runs once more and must reach a no-op, which
    // is how non-idempotent transducer bugs surface at max_steps instead
    // of silently converging on stale state).
    last_run_version_[chosen->name()] = version_before;
    ++st->steps;
    uint64_t version_after = kb->global_version();
    bool changed = version_after != version_before;
    if (changed) ++st->effective_steps;
    uint64_t facts_added = kb->facts_added() - facts_added_before;
    uint64_t facts_removed = kb->facts_removed() - facts_removed_before;

    if (m != nullptr) {
      steps_counter->Increment();
      if (changed) effective_counter->Increment();
      if (facts_added > 0) {
        m->GetCounter("vada_transducer_kb_facts_added",
                      "KB facts added by Execute() (replace counts full)",
                      {{"transducer", chosen->name()}})
            ->Increment(facts_added);
      }
      if (facts_removed > 0) {
        m->GetCounter("vada_transducer_kb_facts_removed",
                      "KB facts removed by Execute() (replace counts full)",
                      {{"transducer", chosen->name()}})
            ->Increment(facts_removed);
      }
    }

    if (options_.record_trace) {
      TraceEvent event;
      event.step = next_step_++;
      event.transducer = chosen->name();
      event.activity = chosen->activity();
      event.policy = policy_->name();
      for (Transducer* t : eligible) event.eligible.push_back(t->name());
      event.version_before = version_before;
      event.version_after = version_after;
      event.changed_kb = changed;
      event.facts_added = facts_added;
      event.facts_removed = facts_removed;
      event.start_ns = t0;
      event.duration_ms = static_cast<double>(t1 - t0) * 1e-6;
      if (!exec_status.ok()) event.note = exec_status.ToString();
      trace_.Add(std::move(event));
    }
    if (!exec_status.ok()) {
      return Status(exec_status.code(),
                    "transducer " + chosen->name() +
                        " failed: " + exec_status.message());
    }
  }
  return Status::Internal(
      "orchestration exceeded max_steps (" +
      std::to_string(options_.max_steps) +
      "); a registered transducer is likely not idempotent");
}

}  // namespace vada
