#include "transducer/network.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"
#include "datalog/kb_adapter.h"
#include "datalog/parser.h"
#include "kb/write_guard.h"
#include "transducer/execution_context.h"

namespace vada {

namespace {

constexpr const char* kFailureRelation = "sys_transducer_failure";
constexpr const char* kQuarantineRelation = "sys_transducer_quarantined";

void SleepBackoff(const FailurePolicy& policy, double ms) {
  if (ms <= 0) return;
  if (policy.sleep_ms != nullptr) {
    policy.sleep_ms(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Asserts sys_transducer_failure(transducer, code, attempt, step). Best
/// effort: a failure to record a failure must not mask the original one.
void AssertFailureFact(KnowledgeBase* kb, const std::string& transducer,
                       StatusCode code, size_t attempts, size_t step) {
  Status s = kb->EnsureRelation(Schema::Untyped(
      kFailureRelation, {"transducer", "code", "attempt", "step"}));
  if (s.ok()) {
    s = kb->Insert(kFailureRelation,
                   Tuple({Value::String(transducer),
                          Value::String(StatusCodeName(code)),
                          Value::Int(static_cast<int64_t>(attempts)),
                          Value::Int(static_cast<int64_t>(step))}));
  }
  if (!s.ok()) {
    VADA_LOG(kWarning, "orchestrator")
        << "could not assert failure fact for " << transducer << ": "
        << s.ToString();
  }
}

void AssertQuarantineFact(KnowledgeBase* kb, const std::string& transducer,
                          size_t step) {
  Status s = kb->EnsureRelation(
      Schema::Untyped(kQuarantineRelation, {"transducer", "step"}));
  if (s.ok()) {
    s = kb->Insert(kQuarantineRelation,
                   Tuple({Value::String(transducer),
                          Value::Int(static_cast<int64_t>(step))}));
  }
  if (!s.ok()) {
    VADA_LOG(kWarning, "orchestrator")
        << "could not assert quarantine fact for " << transducer << ": "
        << s.ToString();
  }
}

void RetractQuarantineFacts(KnowledgeBase* kb, const std::string& transducer) {
  const Relation* rel = kb->FindRelation(kQuarantineRelation);
  if (rel == nullptr) return;
  std::vector<Tuple> to_remove;
  for (const Tuple& row : rel->rows()) {
    if (row.at(0).string_value() == transducer) to_remove.push_back(row);
  }
  for (const Tuple& row : to_remove) {
    (void)kb->Retract(kQuarantineRelation, row);
  }
}

}  // namespace

ActivityPriorityPolicy::ActivityPriorityPolicy(
    std::vector<std::string> activity_order) {
  for (size_t i = 0; i < activity_order.size(); ++i) {
    rank_[activity_order[i]] = static_cast<int>(i);
  }
}

std::vector<std::string> ActivityPriorityPolicy::DefaultActivityOrder() {
  return {"extraction", "matching",  "mapping",  "execution",
          "quality",    "repair",    "selection", "fusion",
          "feedback"};
}

Transducer* ActivityPriorityPolicy::Choose(
    const std::vector<Transducer*>& eligible) {
  // Pre-condition (SchedulingPolicy::Choose): non-empty eligible set. The
  // orchestrator guarantees it; guard direct callers against UB anyway.
  assert(!eligible.empty() && "Choose() requires a non-empty eligible set");
  if (eligible.empty()) return nullptr;
  Transducer* best = eligible.front();
  int best_rank = 1 << 20;
  for (Transducer* t : eligible) {
    auto it = rank_.find(t->activity());
    int r = (it == rank_.end()) ? (1 << 20) - 1 : it->second;
    if (r < best_rank) {
      best_rank = r;
      best = t;
    }
  }
  return best;
}

Transducer* FifoPolicy::Choose(const std::vector<Transducer*>& eligible) {
  assert(!eligible.empty() && "Choose() requires a non-empty eligible set");
  if (eligible.empty()) return nullptr;
  return eligible.front();
}

NetworkTransducer::NetworkTransducer(TransducerRegistry* registry,
                                     std::unique_ptr<SchedulingPolicy> policy,
                                     OrchestratorOptions options)
    : registry_(registry), policy_(std::move(policy)), options_(options) {}

Status NetworkTransducer::SyncControlFacts(KnowledgeBase* kb) {
  Relation roles(
      Schema::Untyped("sys_relation_role", {"relation", "role"}));
  Relation nonempty(Schema::Untyped("sys_relation_nonempty", {"relation"}));
  Relation attrs(
      Schema::Untyped("sys_relation_attribute", {"relation", "attribute"}));

  for (const std::string& name : kb->RelationNames()) {
    if (StartsWith(name, "sys_")) continue;
    const Relation* rel = kb->FindRelation(name);
    if (rel == nullptr) continue;
    std::optional<RelationRole> role = kb->catalog().GetRole(name);
    if (role.has_value()) {
      VADA_RETURN_IF_ERROR(roles.InsertUnchecked(
          Tuple({Value::String(name),
                 Value::String(RelationRoleName(*role))})));
    }
    if (!rel->empty()) {
      VADA_RETURN_IF_ERROR(
          nonempty.InsertUnchecked(Tuple({Value::String(name)})));
    }
    for (const Attribute& a : rel->schema().attributes()) {
      VADA_RETURN_IF_ERROR(attrs.InsertUnchecked(
          Tuple({Value::String(name), Value::String(a.name)})));
    }
  }
  VADA_RETURN_IF_ERROR(kb->ReplaceRelationIfChanged(roles));
  VADA_RETURN_IF_ERROR(kb->ReplaceRelationIfChanged(nonempty));
  VADA_RETURN_IF_ERROR(kb->ReplaceRelationIfChanged(attrs));
  return Status::OK();
}

Status NetworkTransducer::SyncControlFactsIfStale(KnowledgeBase* kb) {
  if (control_synced_at_version_ != 0 &&
      kb->global_version() == control_synced_at_version_) {
    return Status::OK();
  }
  VADA_RETURN_IF_ERROR(SyncControlFacts(kb));
  // Record the post-sync version: if the sync itself bumped it, the
  // sys_* relations already reflect the (unchanged) non-sys state.
  control_synced_at_version_ = kb->global_version();
  return Status::OK();
}

Result<const datalog::Program*> NetworkTransducer::ParsedDependency(
    const std::string& source) {
  auto it = parsed_deps_.find(source);
  if (it == parsed_deps_.end()) {
    Result<datalog::Program> program = datalog::Parser::Parse(source);
    if (!program.ok()) return program.status();
    it = parsed_deps_.emplace(source, std::move(program).value()).first;
  }
  return &it->second;
}

Result<bool> NetworkTransducer::IsSatisfied(const Transducer& transducer,
                                            KnowledgeBase* kb) {
  VADA_RETURN_IF_ERROR(SyncControlFactsIfStale(kb));
  Result<const datalog::Program*> program =
      ParsedDependency(transducer.input_dependency());
  Result<std::vector<Tuple>> ready =
      program.ok()
          ? datalog::QueryKnowledgeBase(*program.value(), *kb, "ready")
          : program.status();
  if (!ready.ok()) {
    // Chain the message but keep the underlying code (a parse error stays
    // kParseError, an evaluation bug stays kInternal) so callers can
    // dispatch on it.
    return Status(ready.status().code(),
                  "input dependency of " + transducer.name() +
                      " failed to evaluate: " + ready.status().message());
  }
  return !ready.value().empty();
}

std::vector<std::string> NetworkTransducer::QuarantinedTransducers() const {
  std::vector<std::string> out;
  for (const auto& [name, fs] : failure_state_) {
    if (fs.circuit == Circuit::kOpen) out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

const NetworkTransducer::FailureState* NetworkTransducer::failure_state(
    const std::string& name) const {
  auto it = failure_state_.find(name);
  return it == failure_state_.end() ? nullptr : &it->second;
}

size_t NetworkTransducer::OpenCircuits() const {
  size_t n = 0;
  for (const auto& [name, fs] : failure_state_) {
    if (fs.circuit == Circuit::kOpen) ++n;
  }
  return n;
}

void NetworkTransducer::PublishQuarantineGauge(
    obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics
      ->GetGauge("vada_orchestrator_quarantined",
                 "Transducers currently benched by the circuit breaker")
      ->Set(static_cast<int64_t>(OpenCircuits()));
}

void NetworkTransducer::RecordFailure(Transducer* transducer,
                                      const Status& error, size_t attempts,
                                      size_t step, KnowledgeBase* kb,
                                      OrchestrationStats* stats,
                                      obs::MetricsRegistry* metrics) {
  const FailurePolicy& fp = options_.failure_policy;
  FailureState& fs = failure_state_[transducer->name()];
  ++fs.total_failures;
  ++fs.consecutive_failures;
  fs.retry_scheduled = false;
  fs.last_error = error.ToString();
  if (stats != nullptr) ++stats->failures;
  if (metrics != nullptr) {
    metrics
        ->GetCounter("vada_transducer_failures_total",
                     "Failed orchestration steps (all attempts exhausted "
                     "or dependency evaluation failed)",
                     {{"transducer", transducer->name()},
                      {"code", StatusCodeName(error.code())}})
        ->Increment();
  }
  if (fp.assert_failure_facts) {
    AssertFailureFact(kb, transducer->name(), error.code(), attempts, step);
  }
  VADA_LOG(kWarning, "orchestrator")
      << "transducer " << transducer->name() << " failed (attempts: "
      << attempts << ", step: " << step << "): " << error.ToString();

  if (fs.circuit == Circuit::kHalfOpen) {
    // Failed its probation trial: back to quarantine.
    fs.circuit = Circuit::kOpen;
    fs.cooldown_progress = 0;
  } else if (fs.circuit == Circuit::kClosed &&
             fs.consecutive_failures >= fp.quarantine_after) {
    fs.circuit = Circuit::kOpen;
    fs.cooldown_progress = 0;
    if (fp.assert_failure_facts) {
      AssertQuarantineFact(kb, transducer->name(), step);
    }
    VADA_LOG(kWarning, "orchestrator")
        << "quarantining transducer " << transducer->name() << " after "
        << fs.consecutive_failures << " consecutive failures";
  }
  PublishQuarantineGauge(metrics);
}

void NetworkTransducer::RecordSuccess(Transducer* transducer,
                                      KnowledgeBase* kb,
                                      obs::MetricsRegistry* metrics) {
  auto it = failure_state_.find(transducer->name());
  if (it == failure_state_.end()) return;
  FailureState& fs = it->second;
  fs.consecutive_failures = 0;
  fs.cooldown_progress = 0;
  fs.retry_scheduled = false;
  if (fs.circuit != Circuit::kClosed) {
    fs.circuit = Circuit::kClosed;
    if (options_.failure_policy.assert_failure_facts) {
      RetractQuarantineFacts(kb, transducer->name());
    }
    VADA_LOG(kInfo, "orchestrator")
        << "transducer " << transducer->name() << " exited quarantine";
    PublishQuarantineGauge(metrics);
  }
}

Status NetworkTransducer::Run(KnowledgeBase* kb, OrchestrationStats* stats) {
  OrchestrationStats local;
  OrchestrationStats* st = (stats != nullptr) ? stats : &local;
  const FailurePolicy& fp = options_.failure_policy;

  obs::MetricsRegistry* m =
      options_.obs != nullptr ? options_.obs->metrics() : nullptr;
  obs::SpanCollector* spans =
      options_.obs != nullptr ? options_.obs->spans() : nullptr;
  obs::Counter* steps_counter = nullptr;
  obs::Counter* effective_counter = nullptr;
  obs::Counter* dep_checks_counter = nullptr;
  obs::Histogram* eligibility_hist = nullptr;
  obs::Histogram* dep_check_hist = nullptr;
  obs::Histogram* rollback_hist = nullptr;
  obs::Histogram* scan_speedup_hist = nullptr;
  datalog::EvalOptions eval_options;
  eval_options.planner = options_.planner;
  if (m != nullptr) {
    steps_counter =
        m->GetCounter("vada_orchestrator_steps", "Transducer executions");
    effective_counter = m->GetCounter("vada_orchestrator_effective_steps",
                                      "Executions that changed the KB");
    dep_checks_counter = m->GetCounter("vada_orchestrator_dependency_checks",
                                       "Input-dependency query evaluations");
    eligibility_hist = m->GetHistogram(
        "vada_orchestrator_eligibility_seconds",
        "Per-step control-fact sync plus eligibility scan",
        obs::Histogram::DefaultLatencyBucketsSeconds());
    dep_check_hist = m->GetHistogram(
        "vada_orchestrator_dependency_check_seconds",
        "One input-dependency Datalog query",
        obs::Histogram::DefaultLatencyBucketsSeconds());
    rollback_hist =
        m->GetHistogram("vada_kb_rollback_seconds",
                        "WriteGuard rollback of one failed Execute()",
                        obs::Histogram::DefaultLatencyBucketsSeconds());
    scan_speedup_hist = m->GetHistogram(
        "vada_orchestrator_scan_speedup",
        "Parallel eligibility-scan speedup: sum of per-query wall times "
        "divided by the parallel phase's wall time (1.0 = no benefit)",
        {0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0});
    eval_options.metrics = m;
  }
  ThreadPool* pool =
      (options_.pool != nullptr && options_.pool->workers() > 0)
          ? options_.pool
          : nullptr;
  datalog::SnapshotCache* cache = options_.snapshot_cache;

  // Fixpoint probes are a per-Run budget (a new Run is new information:
  // the user added context or feedback, so benched transducers deserve
  // fresh trials).
  for (auto& [name, fs] : failure_state_) fs.probes_used = 0;

  const uint64_t run_start_ns = obs::MonotonicNanos();
  auto finalize = [&](Status status) {
    st->quarantined = OpenCircuits();
    PublishQuarantineGauge(m);
    if (m != nullptr && options_.pool != nullptr) {
      // Published as a delta against the pool's lifetime counter, so a
      // pool shared across sessions or Run() calls is never re-counted.
      uint64_t total = options_.pool->tasks_executed();
      if (total > pool_tasks_published_) {
        m->GetCounter("vada_pool_tasks_total",
                      "Tasks executed on the shared worker pool")
            ->Increment(total - pool_tasks_published_);
        pool_tasks_published_ = total;
      }
    }
    return status;
  };

  for (size_t step = 0; step < options_.max_steps; ++step) {
    // Wall-clock budget: stop gracefully and keep the best-effort result.
    if (fp.enabled && fp.run_budget_ms > 0) {
      double elapsed_ms =
          static_cast<double>(obs::MonotonicNanos() - run_start_ns) * 1e-6;
      if (elapsed_ms >= fp.run_budget_ms) {
        st->budget_exhausted = true;
        if (m != nullptr) {
          m->GetCounter("vada_orchestrator_budget_exhausted_total",
                        "Run() calls stopped by their wall-clock budget")
              ->Increment();
        }
        VADA_LOG(kWarning, "orchestrator")
            << "run budget (" << fp.run_budget_ms
            << " ms) exhausted after " << st->steps
            << " steps; returning best-effort result";
        return finalize(Status::OK());
      }
    }

    // Eligibility: dependency satisfied AND the KB moved since last run
    // AND not quarantined (open circuits sit out their cooldown). Three
    // phases so the dependency queries — the expensive, read-only part —
    // can run on the pool: (1) sequential gating, which mutates circuit
    // bookkeeping; (2) query evaluation over the now-immutable KB,
    // concurrent when a pool is configured; (3) sequential consumption
    // in registration order, so failure recording, abort behavior, and
    // the eligible order the policy sees match the inline path exactly.
    std::vector<Transducer*> eligible;
    {
      obs::ScopedSpan eligibility_span(spans, eligibility_hist, "eligibility",
                                       "orchestrator");
      VADA_RETURN_IF_ERROR(SyncControlFactsIfStale(kb));

      // Phase 1: gating (mutates failure_state_; must stay sequential).
      std::vector<Transducer*> candidates;
      for (const std::unique_ptr<Transducer>& t : registry_->transducers()) {
        FailureState* fs = nullptr;
        if (fp.enabled) {
          auto fit = failure_state_.find(t->name());
          fs = fit == failure_state_.end() ? nullptr : &fit->second;
        }
        bool probation = false;
        if (fs != nullptr) {
          if (fs->circuit == Circuit::kOpen) {
            // Probes are a per-Run budget shared between cooldown and
            // fixpoint promotion; once spent, the transducer stays
            // benched, which is what guarantees Run() terminates for a
            // permanently failing transducer.
            if (fs->probes_used >= fp.quarantine_max_probes) continue;
            if (++fs->cooldown_progress < fp.quarantine_cooldown_scans) {
              continue;  // still benched
            }
            fs->circuit = Circuit::kHalfOpen;  // cooldown over: probation
            ++fs->probes_used;
          }
          probation =
              fs->circuit == Circuit::kHalfOpen || fs->retry_scheduled;
        }
        if (!probation) {
          auto it = last_run_version_.find(t->name());
          if (it != last_run_version_.end() &&
              it->second >= kb->global_version()) {
            continue;  // nothing new since this transducer last ran
          }
        }
        candidates.push_back(t.get());
      }

      // Phase 2 (parallel mode only): evaluate every candidate's query
      // up front on the pool. The KB is not mutated until the chosen
      // transducer executes, and snapshot-cache lookups are thread-safe,
      // so the queries are independent pure reads.
      std::vector<Result<std::vector<Tuple>>> ready(
          candidates.size(),
          Result<std::vector<Tuple>>(Status::Internal("not evaluated")));
      // Dependency texts parse at most once per Run sequence; resolve
      // them up front (sequentially — the cache is not thread-safe).
      std::vector<Result<const datalog::Program*>> programs;
      programs.reserve(candidates.size());
      for (Transducer* t : candidates) {
        programs.push_back(ParsedDependency(t->input_dependency()));
      }
      auto eval_dep = [&](size_t i) {
        // SpanCollector is thread-safe (per-thread lanes), so pool
        // workers record real spans — each worker lands on its own
        // Chrome-trace tid instead of interleaving on one.
        obs::ScopedSpan dep_span(spans, dep_check_hist, "dep_check",
                                 "orchestrator");
        ready[i] = programs[i].ok()
                       ? datalog::QueryKnowledgeBase(*programs[i].value(), *kb,
                                                     "ready", eval_options,
                                                     cache)
                       : programs[i].status();
      };
      const bool parallel_scan = pool != nullptr && candidates.size() > 1;
      if (parallel_scan) {
        std::vector<uint64_t> query_ns(candidates.size(), 0);
        uint64_t wall0 = obs::MonotonicNanos();
        pool->ParallelFor(candidates.size(), [&](size_t i) {
          uint64_t q0 = obs::MonotonicNanos();
          eval_dep(i);
          query_ns[i] = obs::MonotonicNanos() - q0;
        });
        uint64_t wall = obs::MonotonicNanos() - wall0;
        if (scan_speedup_hist != nullptr && wall > 0) {
          uint64_t sequential_ns = 0;
          for (uint64_t ns : query_ns) sequential_ns += ns;
          scan_speedup_hist->Observe(static_cast<double>(sequential_ns) /
                                     static_cast<double>(wall));
        }
      }

      // Phase 3: consume results in registration order. Counters are
      // incremented here, not at evaluation, so an abort on a failed
      // dependency reports the same dependency_checks as the inline
      // path, which never evaluates past the failure.
      for (size_t i = 0; i < candidates.size(); ++i) {
        Transducer* t = candidates[i];
        ++st->dependency_checks;
        if (dep_checks_counter != nullptr) dep_checks_counter->Increment();
        if (!parallel_scan) eval_dep(i);
        if (!ready[i].ok()) {
          Status dep_error(ready[i].status().code(),
                           "input dependency of " + t->name() +
                               " failed to evaluate: " +
                               ready[i].status().message());
          if (!fp.enabled ||
              fp.on_failure_exhausted == FailureAction::kAbort) {
            return finalize(dep_error);
          }
          // Dependency-evaluation failures get the same treatment as
          // execute failures: recorded, counted towards quarantine, and
          // the transducer is skipped instead of aborting the run.
          RecordFailure(t, dep_error, 1, step, kb, st, m);
          last_run_version_[t->name()] = kb->global_version();
          continue;
        }
        if (!ready[i].value().empty()) eligible.push_back(t);
      }
    }
    if (eligible.empty()) {
      // Would-be fixpoint. Before settling, give failed transducers one
      // more trial: benched ones with probe budget go half-open (this is
      // how a healed flaky transducer exits quarantine when nothing else
      // moves the KB), and closed ones with pending failures get a single
      // version-gate bypass (each grant either succeeds — resetting the
      // count — or moves them one failure closer to quarantine, so the
      // loop still terminates).
      if (fp.enabled) {
        bool promoted = false;
        for (auto& [name, fs] : failure_state_) {
          if (fs.circuit == Circuit::kOpen &&
              fs.probes_used < fp.quarantine_max_probes) {
            fs.circuit = Circuit::kHalfOpen;
            ++fs.probes_used;
            promoted = true;
          } else if (fs.circuit == Circuit::kClosed &&
                     fs.consecutive_failures > 0 && !fs.retry_scheduled) {
            fs.retry_scheduled = true;
            promoted = true;
          }
        }
        if (promoted) continue;
      }
      return finalize(Status::OK());  // fixpoint
    }

    Transducer* chosen = policy_->Choose(eligible);
    if (chosen == nullptr) {
      return finalize(Status::Internal(
          "scheduling policy " + policy_->name() +
          " returned no transducer from a non-empty eligible set"));
    }
    uint64_t version_before = kb->global_version();
    uint64_t facts_added_before = kb->facts_added();
    uint64_t facts_removed_before = kb->facts_removed();
    obs::Histogram* execute_hist =
        m == nullptr
            ? nullptr
            : m->GetHistogram("vada_transducer_execute_seconds",
                              "Transducer Execute() wall time",
                              obs::Histogram::DefaultLatencyBucketsSeconds(),
                              {{"transducer", chosen->name()}});

    // Execute with retry: every attempt runs under a write-guard, so a
    // failed attempt leaves the KB exactly as it was (versions included).
    const size_t max_attempts =
        fp.enabled ? std::max<size_t>(1, fp.max_attempts) : 1;
    uint64_t t0 = obs::MonotonicNanos();
    Status exec_status;
    size_t attempts = 0;
    bool rolled_back = false;
    double backoff_ms = fp.backoff_initial_ms;
    for (attempts = 1; attempts <= max_attempts; ++attempts) {
      ExecutionContext ctx;
      ctx.set_attempt(attempts);
      ctx.set_step(next_step_);
      if (fp.enabled) ctx.SetTimeoutMs(fp.execute_timeout_ms);
      obs::ScopedSpan execute_span(spans, execute_hist, chosen->name(),
                                   chosen->activity());
      if (fp.enabled) {
        WriteGuard guard(kb);
        exec_status = chosen->Execute(kb, &ctx);
        if (exec_status.ok()) {
          guard.Commit();
          break;
        }
        // Capture before Rollback() clears the pre-image map. Rollback
        // restores contents and version counters together, so strictly
        // the version-keyed entries stay valid — invalidating is the
        // defensive belt-and-braces for the cache's keying invariant
        // (snapshot_cache.h).
        std::vector<std::string> touched;
        if (cache != nullptr) touched = guard.TouchedRelationNames();
        uint64_t rb0 = obs::MonotonicNanos();
        guard.Rollback();
        if (cache != nullptr) {
          for (const std::string& name : touched) cache->Invalidate(name);
        }
        if (rollback_hist != nullptr) {
          rollback_hist->Observe(
              static_cast<double>(obs::MonotonicNanos() - rb0) * 1e-9);
        }
        rolled_back = true;
        ++st->rollbacks;
      } else {
        exec_status = chosen->Execute(kb, &ctx);
        if (exec_status.ok()) break;
      }
      if (attempts < max_attempts) {
        ++st->retries;
        if (m != nullptr) {
          m->GetCounter("vada_transducer_retries_total",
                        "Execute() retries after a rolled-back failure",
                        {{"transducer", chosen->name()}})
              ->Increment();
        }
        SleepBackoff(fp, backoff_ms);
        backoff_ms = std::min(backoff_ms * fp.backoff_multiplier,
                              fp.backoff_max_ms);
      }
    }
    attempts = std::min(attempts, max_attempts);
    uint64_t t1 = obs::MonotonicNanos();

    // Record the version the transducer *saw* — its own writes count as
    // new information (it re-runs once more and must reach a no-op, which
    // is how non-idempotent transducer bugs surface at max_steps instead
    // of silently converging on stale state).
    last_run_version_[chosen->name()] = version_before;
    ++st->steps;
    uint64_t version_after = kb->global_version();
    bool changed = version_after != version_before;
    if (changed) ++st->effective_steps;
    uint64_t facts_added = kb->facts_added() - facts_added_before;
    uint64_t facts_removed = kb->facts_removed() - facts_removed_before;

    if (m != nullptr) {
      steps_counter->Increment();
      if (changed) effective_counter->Increment();
      if (facts_added > 0) {
        m->GetCounter("vada_transducer_kb_facts_added",
                      "KB facts added by Execute() (replace counts full)",
                      {{"transducer", chosen->name()}})
            ->Increment(facts_added);
      }
      if (facts_removed > 0) {
        m->GetCounter("vada_transducer_kb_facts_removed",
                      "KB facts removed by Execute() (replace counts full)",
                      {{"transducer", chosen->name()}})
            ->Increment(facts_removed);
      }
    }

    if (options_.record_trace) {
      TraceEvent event;
      event.step = next_step_++;
      event.transducer = chosen->name();
      event.activity = chosen->activity();
      event.policy = policy_->name();
      for (Transducer* t : eligible) event.eligible.push_back(t->name());
      event.version_before = version_before;
      event.version_after = version_after;
      event.changed_kb = changed;
      event.facts_added = facts_added;
      event.facts_removed = facts_removed;
      event.start_ns = t0;
      event.duration_ms = static_cast<double>(t1 - t0) * 1e-6;
      event.attempts = attempts;
      event.rolled_back = rolled_back;
      if (!exec_status.ok()) event.note = exec_status.ToString();
      trace_.Add(std::move(event));
    } else {
      ++next_step_;
    }

    if (exec_status.ok()) {
      if (fp.enabled) RecordSuccess(chosen, kb, m);
    } else {
      if (!fp.enabled) {
        return finalize(Status(exec_status.code(),
                               "transducer " + chosen->name() +
                                   " failed: " + exec_status.message()));
      }
      RecordFailure(chosen, exec_status, attempts, next_step_ - 1, kb, st, m);
      if (fp.on_failure_exhausted == FailureAction::kAbort) {
        return finalize(Status(
            exec_status.code(),
            "transducer " + chosen->name() + " failed after " +
                std::to_string(attempts) +
                " attempt(s): " + exec_status.message()));
      }
      // Wait for new information (or a quarantine probe) before trying
      // this transducer again: otherwise its own failure facts would make
      // it immediately eligible in a failure loop.
      last_run_version_[chosen->name()] = kb->global_version();
    }
  }
  return finalize(Status::Internal(
      "orchestration exceeded max_steps (" +
      std::to_string(options_.max_steps) +
      "); a registered transducer is likely not idempotent"));
}

}  // namespace vada
