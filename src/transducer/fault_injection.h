#ifndef VADA_TRANSDUCER_FAULT_INJECTION_H_
#define VADA_TRANSDUCER_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "transducer/transducer.h"

namespace vada {

/// Deterministic fault-injection harness for soak-testing the
/// orchestrator's failure handling (rollback, retry, quarantine). Faults
/// are decided by a seeded Rng keyed per transducer *name* (seed XOR
/// FNV-1a(name)), so a schedule is reproducible regardless of
/// registration order, and two runs with the same seed inject the exact
/// same fault sequence.
///
/// All wrappers preserve the inner transducer's identity (name, activity,
/// input dependency, Vadalog program) so scheduling, static analysis and
/// traces are unaffected; only Execute() misbehaves.

/// How a wrapped transducer misbehaves.
enum class FaultKind {
  kNone = 0,
  /// Fails the first `count` Execute() calls before touching the KB,
  /// then behaves normally. Exercises plain retry.
  kFailFirstN,
  /// Runs the real Execute() (so partial writes land), *then* reports
  /// failure for the first `count` calls. Exercises rollback: without a
  /// write-guard these calls would leave committed garbage behind.
  kPartialWriteThenFail,
  /// Each call fails with probability `probability` (seeded), up to
  /// `count` total failures so convergence stays guaranteed. Exercises
  /// retry/backoff and quarantine exit.
  kFlaky,
  /// Reports kDeadlineExceeded for the first `count` calls, simulating a
  /// slow execution tripping its cooperative soft deadline.
  kSlowDeadline,
};

const char* FaultKindName(FaultKind kind);

/// Parameters of one injected fault.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  size_t count = 1;           ///< bounded failure budget (see FaultKind)
  double probability = 0.5;   ///< kFlaky only
  uint64_t seed = 0;          ///< kFlaky draw stream
};

/// Wraps `inner` so its Execute() misbehaves per `spec`. Exposed for
/// targeted tests; soak tests normally go through FaultInjector.
std::unique_ptr<Transducer> WrapWithFault(std::unique_ptr<Transducer> inner,
                                          FaultSpec spec);

/// Randomised-but-reproducible fault assignment across a whole registry.
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 0;
    /// Probability that a given transducer gets a fault at all.
    double fault_rate = 0.5;
    /// Failure budget per faulted transducer (FaultSpec::count). Every
    /// fault kind is bounded, so a wrangle under injection still
    /// converges to the fault-free result.
    size_t max_failures = 2;
    /// Per-call failure probability for kFlaky faults.
    double flaky_probability = 0.5;
  };

  explicit FaultInjector(Options options) : options_(options) {}

  /// The fault this injector assigns to `name` — a pure function of
  /// (options, name), so tests can log or predict the schedule.
  FaultSpec SpecFor(const std::string& name) const;

  /// Wraps one transducer according to SpecFor(its name).
  std::unique_ptr<Transducer> Wrap(std::unique_ptr<Transducer> inner) const;

  /// A registry decorator applying Wrap() to every registration — set it
  /// via TransducerRegistry::SetDecorator (or
  /// WranglerConfig::transducer_decorator) before registering.
  TransducerRegistry::Decorator Decorator() const;

 private:
  Options options_;
};

}  // namespace vada

#endif  // VADA_TRANSDUCER_FAULT_INJECTION_H_
