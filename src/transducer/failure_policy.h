#ifndef VADA_TRANSDUCER_FAILURE_POLICY_H_
#define VADA_TRANSDUCER_FAILURE_POLICY_H_

#include <cstddef>
#include <functional>

namespace vada {

/// What the orchestrator does with a transducer whose Execute() still
/// fails after every retry of a step.
enum class FailureAction {
  /// Bench the transducer (circuit breaker) and keep orchestrating with
  /// the remaining eligible set — graceful degradation, the default.
  kQuarantine = 0,
  /// Abort Run() with the transducer's error — the pre-fault-tolerance
  /// behaviour, kept for deployments that prefer fail-fast.
  kAbort,
};

/// Fault-tolerance policy of the dynamic orchestrator (DESIGN.md §5d).
///
/// Retry: a failed Execute() is rolled back (WriteGuard) and retried up
/// to `max_attempts` times within the same orchestration step, sleeping
/// an exponentially growing backoff between attempts.
///
/// Quarantine (circuit breaker): after `quarantine_after` consecutive
/// step-level failures the transducer's circuit opens — it is excluded
/// from the eligible set and orchestration continues without it. After
/// `quarantine_cooldown_scans` eligibility scans (or at a would-be
/// fixpoint, while probe budget remains) the circuit goes half-open and
/// the transducer gets one trial execution: success closes the circuit
/// (it exits quarantine), failure re-opens it.
///
/// Budgets: `run_budget_ms` bounds Run() wall clock — when exhausted the
/// session keeps its best-effort result and Run() returns OK with
/// stats.budget_exhausted set. `execute_timeout_ms` is a cooperative
/// per-execute soft deadline delivered via ExecutionContext.
///
/// Every failure is also asserted into the KB as
/// `sys_transducer_failure(transducer, code, attempt, step)` so Vadalog
/// dependency queries and scheduling policies can reason over failures.
struct FailurePolicy {
  /// Master switch. false = the seed code path: no write-guard, no
  /// retries, first Execute() error aborts Run(). The fault-tolerance
  /// overhead bench (bench_orchestration_faults) compares the two.
  bool enabled = true;

  /// Execute() attempts per orchestration step (>= 1).
  size_t max_attempts = 3;

  /// Exponential backoff between attempts of one step.
  double backoff_initial_ms = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 50.0;

  /// Consecutive step-level failures before the circuit opens.
  size_t quarantine_after = 3;
  /// Eligibility scans an open circuit sits out before a half-open probe.
  size_t quarantine_cooldown_scans = 3;
  /// Half-open probe budget per transducer per Run(), shared between
  /// cooldown promotion and fixpoint promotion (when nothing else is
  /// eligible, open circuits with budget left get one more trial before
  /// Run() settles). Probes are what let flaky transducers exit
  /// quarantine; the bound is what keeps Run() terminating when a
  /// transducer fails permanently. 0 = quarantine is final for the Run.
  size_t quarantine_max_probes = 3;

  /// Cooperative per-execute soft deadline (ExecutionContext); 0 = none.
  double execute_timeout_ms = 0.0;

  /// Wall-clock budget for one Run() call; 0 = unlimited.
  double run_budget_ms = 0.0;

  /// Policy once a step exhausts its attempts.
  FailureAction on_failure_exhausted = FailureAction::kQuarantine;

  /// Whether failures are asserted into the KB as sys_transducer_failure
  /// / sys_transducer_quarantined facts.
  bool assert_failure_facts = true;

  /// Backoff sleeper; nullptr = std::this_thread::sleep_for. Tests and
  /// benches inject a recorder to keep runs fast and deterministic.
  std::function<void(double /*ms*/)> sleep_ms;
};

}  // namespace vada

#endif  // VADA_TRANSDUCER_FAILURE_POLICY_H_
