#ifndef VADA_QUALITY_CFD_H_
#define VADA_QUALITY_CFD_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "kb/relation.h"

namespace vada {

/// A pattern cell of a conditional functional dependency: either a
/// constant that must be equal, or a wildcard '_' matching any non-null
/// value.
class PatternValue {
 public:
  static PatternValue Wildcard();
  static PatternValue Constant(Value v);

  bool is_wildcard() const { return is_wildcard_; }
  const Value& value() const { return value_; }

  /// Wildcards match any non-null value; constants match equal values.
  bool Matches(const Value& v) const;

  std::string ToString() const;

  friend bool operator==(const PatternValue& a, const PatternValue& b) {
    return a.is_wildcard_ == b.is_wildcard_ &&
           (a.is_wildcard_ || a.value_ == b.value_);
  }

 private:
  bool is_wildcard_ = true;
  Value value_;
};

/// A conditional functional dependency  (lhs_attributes, lhs_pattern) ->
/// (rhs_attribute, rhs_pattern)  in the style of Fan & Geerts
/// ("Foundations of Data Quality Management", the paper's reference [4]).
///
/// A wildcard rhs makes it a variable CFD: within tuples matching the lhs
/// pattern, equal lhs values must imply equal rhs values. A constant rhs
/// additionally pins the value.
struct Cfd {
  std::vector<std::string> lhs_attributes;
  std::vector<PatternValue> lhs_pattern;
  std::string rhs_attribute;
  PatternValue rhs_pattern = PatternValue::Wildcard();
  /// Fraction of learning tuples matching the lhs pattern.
  double support = 0.0;
  /// Fraction of matching tuples consistent with the dependency.
  double confidence = 0.0;

  bool is_variable() const { return rhs_pattern.is_wildcard(); }
  std::string ToString() const;
};

/// Serialises CFDs as the KB control relation
/// cfd(id, lhs_attributes, lhs_pattern, rhs_attribute, rhs_pattern,
/// support, confidence) with '|'-joined lists, so "CFD facts exist"
/// becomes a Datalog-checkable transducer dependency.
Relation CfdsToRelation(const std::vector<Cfd>& cfds,
                        const std::string& relation_name = "cfd");

/// Parses the relation produced by CfdsToRelation.
Result<std::vector<Cfd>> CfdsFromRelation(const Relation& rel);

/// Options for CFD learning.
struct CfdLearnerOptions {
  /// Candidate lhs sizes: 1 always; also attribute pairs when true.
  bool try_pairs = true;
  /// Minimum matching-tuple count for a dependency to be emitted.
  size_t min_support_count = 3;
  /// Minimum confidence (majority agreement) for variable CFDs.
  double min_confidence = 0.95;
  /// Emit constant CFDs for pure lhs groups of at least this size.
  size_t constant_min_group = 4;
  /// Cap on emitted constant CFDs (highest support first).
  size_t max_constant_cfds = 50;
};

/// Learns CFDs from (clean) reference/master data, the paper's CFD
/// Learning transducer: "the data context for the target schema includes
/// instances (e.g., from master or reference data)" (Table 1, §2.3).
class CfdLearner {
 public:
  explicit CfdLearner(CfdLearnerOptions options = CfdLearnerOptions());

  /// Learns dependencies among the attributes of `data`. Null lhs values
  /// are skipped (they carry no evidence).
  std::vector<Cfd> Learn(const Relation& data) const;

 private:
  void LearnForLhs(const Relation& data, const std::vector<size_t>& lhs_idx,
                   std::vector<Cfd>* out) const;

  CfdLearnerOptions options_;
};

/// A detected violation: row index plus the value the dependency expects
/// (null when the expectation is ambiguous).
struct CfdViolation {
  size_t row_index = 0;
  const Cfd* cfd = nullptr;
  Value expected;

  std::string ToString() const;
};

/// Checks relations against CFDs. For variable CFDs the expected rhs per
/// lhs value is taken from `evidence` (typically the reference data the
/// CFD was learned from); when absent, the majority within the checked
/// relation itself is used.
class CfdChecker {
 public:
  CfdChecker(std::vector<Cfd> cfds, const Relation* evidence);

  /// All violations in `data`. Null rhs values do not violate (they are
  /// incompleteness, not inconsistency).
  std::vector<CfdViolation> FindViolations(const Relation& data) const;

  /// 1 - (violating tuples / tuples); 1.0 for empty relations.
  double ConsistencyScore(const Relation& data) const;

  /// Repairs `data` in place: violating rhs cells are set to the expected
  /// value when known. Returns the number of changed cells.
  Result<size_t> Repair(Relation* data) const;

  const std::vector<Cfd>& cfds() const { return cfds_; }

 private:
  std::vector<Cfd> cfds_;
  const Relation* evidence_;  // not owned; may be nullptr
};

}  // namespace vada

#endif  // VADA_QUALITY_CFD_H_
