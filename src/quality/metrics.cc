#include "quality/metrics.h"

#include <set>

namespace vada {

std::string RelationQuality::ToString() const {
  std::string out =
      "quality over " + std::to_string(row_count) + " rows:\n";
  for (const auto& [attr, q] : attribute) {
    char buf[128];
    if (q.accuracy.has_value()) {
      std::snprintf(buf, sizeof(buf), "  %s: completeness %.3f accuracy %.3f\n",
                    attr.c_str(), q.completeness, *q.accuracy);
    } else {
      std::snprintf(buf, sizeof(buf), "  %s: completeness %.3f\n", attr.c_str(),
                    q.completeness);
    }
    out += buf;
  }
  if (consistency.has_value()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  consistency %.3f\n", *consistency);
    out += buf;
  }
  return out;
}

Relation QualityMetricsToRelation(const std::vector<QualityMetricFact>& facts,
                                  const std::string& relation_name) {
  Relation rel(Schema::Untyped(relation_name,
                               {"entity", "metric", "subject", "value"}));
  for (const QualityMetricFact& f : facts) {
    rel.InsertUnchecked(Tuple({Value::String(f.entity), Value::String(f.metric),
                               Value::String(f.subject),
                               Value::Double(f.value)}));
  }
  return rel;
}

Result<std::vector<QualityMetricFact>> QualityMetricsFromRelation(
    const Relation& rel) {
  if (rel.schema().arity() != 4) {
    return Status::InvalidArgument("quality_metric relation must have arity 4");
  }
  std::vector<QualityMetricFact> out;
  for (const Tuple& t : rel.rows()) {
    QualityMetricFact f;
    f.entity = t.at(0).ToString();
    f.metric = t.at(1).ToString();
    f.subject = t.at(2).ToString();
    std::optional<double> v = t.at(3).AsDouble();
    if (!v.has_value()) {
      return Status::InvalidArgument("quality_metric value not numeric: " +
                                     t.ToString());
    }
    f.value = *v;
    out.push_back(std::move(f));
  }
  return out;
}

void QualityEstimator::SetReference(
    const Relation* reference_data,
    std::vector<ContextCorrespondence> correspondences) {
  reference_data_ = reference_data;
  reference_correspondences_ = std::move(correspondences);
}

void QualityEstimator::SetCfds(std::vector<Cfd> cfds,
                               const Relation* evidence) {
  checker_.emplace(std::move(cfds), evidence);
}

void QualityEstimator::SetMaster(
    const Relation* master_data,
    std::vector<ContextCorrespondence> correspondences) {
  master_data_ = master_data;
  master_correspondences_ = std::move(correspondences);
}

RelationQuality QualityEstimator::Estimate(const Relation& data) const {
  RelationQuality out;
  out.row_count = data.size();

  for (const Attribute& attr : data.schema().attributes()) {
    AttributeQuality q;
    Result<double> comp = data.NonNullFraction(attr.name);
    q.completeness = comp.ok() ? comp.value() : 0.0;

    // Accuracy: fraction of non-null values present in the reference
    // column, when a correspondence covers this attribute.
    if (reference_data_ != nullptr) {
      for (const ContextCorrespondence& c : reference_correspondences_) {
        if (c.target_attribute != attr.name) continue;
        std::optional<size_t> ref_idx =
            reference_data_->schema().AttributeIndex(c.context_attribute);
        std::optional<size_t> data_idx =
            data.schema().AttributeIndex(attr.name);
        if (!ref_idx.has_value() || !data_idx.has_value()) continue;
        std::set<std::string> reference_values;
        for (const Tuple& row : reference_data_->rows()) {
          const Value& v = row.at(*ref_idx);
          if (!v.is_null()) reference_values.insert(v.ToString());
        }
        size_t non_null = 0;
        size_t confirmed = 0;
        for (const Tuple& row : data.rows()) {
          const Value& v = row.at(*data_idx);
          if (v.is_null()) continue;
          ++non_null;
          if (reference_values.count(v.ToString()) > 0) ++confirmed;
        }
        q.accuracy = (non_null == 0)
                         ? 1.0
                         : static_cast<double>(confirmed) /
                               static_cast<double>(non_null);
        break;
      }
    }
    out.attribute[attr.name] = q;
  }

  if (checker_.has_value()) {
    out.consistency = checker_->ConsistencyScore(data);
  }

  // Relevance against master data: joint match on all corresponded
  // attributes present in both schemas.
  if (master_data_ != nullptr && !master_correspondences_.empty() &&
      !data.empty()) {
    std::vector<size_t> data_idx;
    std::vector<size_t> master_idx;
    bool usable = true;
    for (const ContextCorrespondence& c : master_correspondences_) {
      std::optional<size_t> di = data.schema().AttributeIndex(
          c.target_attribute);
      std::optional<size_t> mi =
          master_data_->schema().AttributeIndex(c.context_attribute);
      if (!di.has_value() || !mi.has_value()) {
        usable = false;
        break;
      }
      data_idx.push_back(*di);
      master_idx.push_back(*mi);
    }
    if (usable) {
      std::set<Tuple> master_keys;
      for (const Tuple& row : master_data_->rows()) {
        std::vector<Value> key;
        for (size_t i : master_idx) key.push_back(row.at(i));
        master_keys.insert(Tuple(std::move(key)));
      }
      size_t relevant = 0;
      for (const Tuple& row : data.rows()) {
        std::vector<Value> key;
        bool has_null = false;
        for (size_t i : data_idx) {
          if (row.at(i).is_null()) {
            has_null = true;
            break;
          }
          key.push_back(row.at(i));
        }
        if (!has_null && master_keys.count(Tuple(std::move(key))) > 0) {
          ++relevant;
        }
      }
      out.relevance =
          static_cast<double>(relevant) / static_cast<double>(data.size());
    }
  }
  return out;
}

std::vector<QualityMetricFact> QualityEstimator::EstimateFacts(
    const Relation& data, const std::string& entity_name) const {
  RelationQuality q = Estimate(data);
  std::vector<QualityMetricFact> out;
  for (const auto& [attr, aq] : q.attribute) {
    out.push_back(
        QualityMetricFact{entity_name, "completeness", attr, aq.completeness});
    if (aq.accuracy.has_value()) {
      out.push_back(
          QualityMetricFact{entity_name, "accuracy", attr, *aq.accuracy});
    }
  }
  if (q.consistency.has_value()) {
    out.push_back(
        QualityMetricFact{entity_name, "consistency", "", *q.consistency});
  }
  if (q.relevance.has_value()) {
    out.push_back(
        QualityMetricFact{entity_name, "relevance", "", *q.relevance});
  }
  return out;
}

}  // namespace vada
