#ifndef VADA_QUALITY_METRICS_H_
#define VADA_QUALITY_METRICS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "context/data_context.h"
#include "kb/relation.h"
#include "quality/cfd.h"

namespace vada {

/// Estimated quality of one attribute of a relation.
struct AttributeQuality {
  /// Fraction of non-null values.
  double completeness = 1.0;
  /// Fraction of non-null values confirmed by reference data; absent
  /// when no reference covers the attribute.
  std::optional<double> accuracy;
};

/// Estimated quality of a whole relation.
struct RelationQuality {
  std::map<std::string, AttributeQuality> attribute;  ///< by attribute name
  /// 1 - violating-tuple fraction against the available CFDs; absent when
  /// no CFDs are known (paper §2.3: consistency "needs additional
  /// information" — it becomes computable once the data context yields
  /// CFDs).
  std::optional<double> consistency;
  /// Fraction of rows describing entities the user cares about, judged
  /// against master data ("the complete list of properties the user is
  /// interested in", §2.2); absent without a master binding.
  std::optional<double> relevance;
  size_t row_count = 0;

  std::string ToString() const;
};

/// One quality-metric fact destined for the knowledge base:
/// quality_metric(entity, metric, subject, value).
struct QualityMetricFact {
  std::string entity;   ///< relation or mapping id the metric describes
  std::string metric;   ///< "completeness" | "accuracy" | "consistency"
  std::string subject;  ///< attribute name, or "" for whole-entity metrics
  double value = 0.0;
};

/// Renders metric facts as the KB relation that Mapping Selection's
/// input dependency quantifies over (Table 1: "Mapping Selection |
/// Quality Metrics").
Relation QualityMetricsToRelation(
    const std::vector<QualityMetricFact>& facts,
    const std::string& relation_name = "quality_metric");

Result<std::vector<QualityMetricFact>> QualityMetricsFromRelation(
    const Relation& rel);

/// Estimates completeness, accuracy and consistency of relations.
///
/// Accuracy needs reference data: a value is accurate when it appears in
/// the corresponding reference column. Consistency needs learned CFDs.
/// Both inputs are optional — metrics degrade gracefully to completeness
/// only, matching the paper's pay-as-you-go narrative.
class QualityEstimator {
 public:
  QualityEstimator() = default;

  /// Provides reference data for accuracy: `reference` maps target
  /// attribute -> (reference relation, reference attribute).
  void SetReference(const Relation* reference_data,
                    std::vector<ContextCorrespondence> correspondences);

  /// Provides CFDs (plus evidence relation) for consistency.
  void SetCfds(std::vector<Cfd> cfds, const Relation* evidence);

  /// Provides master data for relevance: a row is relevant when the
  /// joint value of all corresponded attributes appears in the master
  /// data (rows with a null in any corresponded attribute are not
  /// counted relevant — the entity cannot be identified).
  void SetMaster(const Relation* master_data,
                 std::vector<ContextCorrespondence> correspondences);

  /// Full quality report for `data`.
  RelationQuality Estimate(const Relation& data) const;

  /// Report flattened to KB facts, entity = `entity_name`.
  std::vector<QualityMetricFact> EstimateFacts(
      const Relation& data, const std::string& entity_name) const;

 private:
  const Relation* reference_data_ = nullptr;
  std::vector<ContextCorrespondence> reference_correspondences_;
  const Relation* master_data_ = nullptr;
  std::vector<ContextCorrespondence> master_correspondences_;
  std::optional<CfdChecker> checker_;
};

}  // namespace vada

#endif  // VADA_QUALITY_METRICS_H_
