#include "quality/cfd.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace vada {

PatternValue PatternValue::Wildcard() { return PatternValue(); }

PatternValue PatternValue::Constant(Value v) {
  PatternValue p;
  p.is_wildcard_ = false;
  p.value_ = std::move(v);
  return p;
}

bool PatternValue::Matches(const Value& v) const {
  if (is_wildcard_) return !v.is_null();
  return v == value_;
}

std::string PatternValue::ToString() const {
  return is_wildcard_ ? "_" : value_.ToLiteral();
}

std::string Cfd::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < lhs_attributes.size(); ++i) {
    if (i > 0) out += ", ";
    out += lhs_attributes[i] + "=" + lhs_pattern[i].ToString();
  }
  out += "] -> " + rhs_attribute + "=" + rhs_pattern.ToString();
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (sup %.2f, conf %.2f)", support,
                confidence);
  out += buf;
  return out;
}

Relation CfdsToRelation(const std::vector<Cfd>& cfds,
                        const std::string& relation_name) {
  Relation rel(Schema::Untyped(relation_name,
                               {"id", "lhs_attributes", "lhs_pattern",
                                "rhs_attribute", "rhs_pattern", "support",
                                "confidence"}));
  int64_t id = 0;
  for (const Cfd& c : cfds) {
    std::vector<std::string> pattern_parts;
    for (const PatternValue& p : c.lhs_pattern) {
      pattern_parts.push_back(p.is_wildcard() ? "_" : p.value().ToString());
    }
    rel.InsertUnchecked(Tuple(
        {Value::Int(id++), Value::String(Join(c.lhs_attributes, "|")),
         Value::String(Join(pattern_parts, "|")),
         Value::String(c.rhs_attribute),
         Value::String(c.rhs_pattern.is_wildcard()
                           ? "_"
                           : c.rhs_pattern.value().ToString()),
         Value::Double(c.support), Value::Double(c.confidence)}));
  }
  return rel;
}

Result<std::vector<Cfd>> CfdsFromRelation(const Relation& rel) {
  if (rel.schema().arity() != 7) {
    return Status::InvalidArgument("cfd relation must have arity 7");
  }
  std::vector<Cfd> out;
  for (const Tuple& t : rel.rows()) {
    Cfd c;
    c.lhs_attributes = Split(t.at(1).ToString(), '|');
    std::vector<std::string> patterns = Split(t.at(2).ToString(), '|');
    if (patterns.size() != c.lhs_attributes.size()) {
      return Status::InvalidArgument("cfd pattern arity mismatch: " +
                                     t.ToString());
    }
    for (const std::string& p : patterns) {
      c.lhs_pattern.push_back(p == "_"
                                  ? PatternValue::Wildcard()
                                  : PatternValue::Constant(Value::FromText(p)));
    }
    c.rhs_attribute = t.at(3).ToString();
    std::string rhs = t.at(4).ToString();
    c.rhs_pattern = (rhs == "_") ? PatternValue::Wildcard()
                                 : PatternValue::Constant(Value::FromText(rhs));
    c.support = t.at(5).AsDouble().value_or(0.0);
    c.confidence = t.at(6).AsDouble().value_or(0.0);
    out.push_back(std::move(c));
  }
  return out;
}

CfdLearner::CfdLearner(CfdLearnerOptions options) : options_(options) {}

void CfdLearner::LearnForLhs(const Relation& data,
                             const std::vector<size_t>& lhs_idx,
                             std::vector<Cfd>* out) const {
  const size_t n_rows = data.size();
  if (n_rows == 0) return;
  const Schema& schema = data.schema();

  for (size_t rhs = 0; rhs < schema.arity(); ++rhs) {
    if (std::find(lhs_idx.begin(), lhs_idx.end(), rhs) != lhs_idx.end()) {
      continue;
    }
    // Group rows by lhs values; count rhs values per group.
    std::map<Tuple, std::map<Value, size_t>> groups;
    size_t usable = 0;
    for (const Tuple& row : data.rows()) {
      bool has_null = row.at(rhs).is_null();
      std::vector<Value> key;
      key.reserve(lhs_idx.size());
      for (size_t li : lhs_idx) {
        if (row.at(li).is_null()) {
          has_null = true;
          break;
        }
        key.push_back(row.at(li));
      }
      if (has_null) continue;
      ++usable;
      groups[Tuple(std::move(key))][row.at(rhs)]++;
    }
    if (usable < options_.min_support_count) continue;

    // Variable CFD confidence: majority agreement across all groups.
    size_t agree = 0;
    struct PureGroup {
      Tuple key;
      Value rhs_value;
      size_t size;
    };
    std::vector<PureGroup> pure_groups;
    for (const auto& [key, counts] : groups) {
      size_t group_size = 0;
      size_t majority = 0;
      const Value* majority_value = nullptr;
      for (const auto& [v, c] : counts) {
        group_size += c;
        if (c > majority) {
          majority = c;
          majority_value = &v;
        }
      }
      agree += majority;
      if (counts.size() == 1 && group_size >= options_.constant_min_group) {
        pure_groups.push_back(PureGroup{key, *majority_value, group_size});
      }
    }
    double confidence = static_cast<double>(agree) / static_cast<double>(usable);
    double support = static_cast<double>(usable) / static_cast<double>(n_rows);

    if (confidence >= options_.min_confidence) {
      Cfd c;
      for (size_t li : lhs_idx) {
        c.lhs_attributes.push_back(schema.attributes()[li].name);
        c.lhs_pattern.push_back(PatternValue::Wildcard());
      }
      c.rhs_attribute = schema.attributes()[rhs].name;
      c.rhs_pattern = PatternValue::Wildcard();
      c.support = support;
      c.confidence = confidence;
      out->push_back(std::move(c));
    } else {
      // No global dependency; emit the strongest constant CFDs instead.
      std::sort(pure_groups.begin(), pure_groups.end(),
                [](const PureGroup& a, const PureGroup& b) {
                  if (a.size != b.size) return a.size > b.size;
                  return a.key < b.key;
                });
      size_t emitted = 0;
      for (const PureGroup& g : pure_groups) {
        if (emitted >= options_.max_constant_cfds) break;
        Cfd c;
        for (size_t k = 0; k < lhs_idx.size(); ++k) {
          c.lhs_attributes.push_back(schema.attributes()[lhs_idx[k]].name);
          c.lhs_pattern.push_back(PatternValue::Constant(g.key.at(k)));
        }
        c.rhs_attribute = schema.attributes()[rhs].name;
        c.rhs_pattern = PatternValue::Constant(g.rhs_value);
        c.support = static_cast<double>(g.size) / static_cast<double>(n_rows);
        c.confidence = 1.0;
        out->push_back(std::move(c));
        ++emitted;
      }
    }
  }
}

std::vector<Cfd> CfdLearner::Learn(const Relation& data) const {
  std::vector<Cfd> out;
  const size_t arity = data.schema().arity();
  for (size_t i = 0; i < arity; ++i) {
    LearnForLhs(data, {i}, &out);
  }
  if (options_.try_pairs) {
    for (size_t i = 0; i < arity; ++i) {
      for (size_t j = i + 1; j < arity; ++j) {
        // Skip pairs subsumed by an already-found single-attribute
        // variable CFD with the same rhs (a superset lhs is weaker).
        LearnForLhs(data, {i, j}, &out);
      }
    }
    // Remove pair CFDs subsumed by single-attribute variable CFDs. Index
    // the singles first (moving elements while scanning would corrupt the
    // subsumption check).
    std::set<std::pair<std::string, std::string>> single_fds;  // (lhs, rhs)
    for (const Cfd& c : out) {
      if (c.lhs_attributes.size() == 1 && c.is_variable()) {
        single_fds.insert({c.lhs_attributes[0], c.rhs_attribute});
      }
    }
    std::vector<Cfd> filtered;
    for (Cfd& c : out) {
      bool subsumed = false;
      if (c.lhs_attributes.size() > 1 && c.is_variable()) {
        for (const std::string& lhs : c.lhs_attributes) {
          if (single_fds.count({lhs, c.rhs_attribute}) > 0) {
            subsumed = true;
            break;
          }
        }
      }
      if (!subsumed) filtered.push_back(std::move(c));
    }
    out = std::move(filtered);
  }
  return out;
}

std::string CfdViolation::ToString() const {
  std::string out = "row " + std::to_string(row_index) + " violates " +
                    (cfd != nullptr ? cfd->ToString() : "<none>");
  if (!expected.is_null()) {
    out += ", expected " + expected.ToLiteral();
  }
  return out;
}

CfdChecker::CfdChecker(std::vector<Cfd> cfds, const Relation* evidence)
    : cfds_(std::move(cfds)), evidence_(evidence) {}

namespace {

/// Builds lhs-value -> expected-rhs map for a variable CFD from a
/// relation (skips groups with conflicting rhs — no expectation there).
std::map<Tuple, Value> BuildExpectation(const Cfd& cfd, const Relation& rel) {
  std::map<Tuple, Value> expected;
  std::vector<size_t> lhs_idx;
  for (const std::string& a : cfd.lhs_attributes) {
    std::optional<size_t> i = rel.schema().AttributeIndex(a);
    if (!i.has_value()) return {};
    lhs_idx.push_back(*i);
  }
  std::optional<size_t> rhs_idx = rel.schema().AttributeIndex(cfd.rhs_attribute);
  if (!rhs_idx.has_value()) return {};

  std::map<Tuple, std::map<Value, size_t>> groups;
  for (const Tuple& row : rel.rows()) {
    if (row.at(*rhs_idx).is_null()) continue;
    std::vector<Value> key;
    bool has_null = false;
    for (size_t k = 0; k < lhs_idx.size(); ++k) {
      const Value& v = row.at(lhs_idx[k]);
      if (!cfd.lhs_pattern[k].Matches(v)) {
        has_null = true;
        break;
      }
      key.push_back(v);
    }
    if (has_null) continue;
    groups[Tuple(std::move(key))][row.at(*rhs_idx)]++;
  }
  for (const auto& [key, counts] : groups) {
    const Value* best = nullptr;
    size_t best_count = 0;
    size_t total = 0;
    for (const auto& [v, c] : counts) {
      total += c;
      if (c > best_count) {
        best_count = c;
        best = &v;
      }
    }
    // Expect the majority value only when it is a clear majority.
    if (best != nullptr && best_count * 2 > total) {
      expected.emplace(key, *best);
    }
  }
  return expected;
}

}  // namespace

std::vector<CfdViolation> CfdChecker::FindViolations(
    const Relation& data) const {
  std::vector<CfdViolation> out;
  for (const Cfd& cfd : cfds_) {
    std::vector<size_t> lhs_idx;
    bool attrs_ok = true;
    for (const std::string& a : cfd.lhs_attributes) {
      std::optional<size_t> i = data.schema().AttributeIndex(a);
      if (!i.has_value()) {
        attrs_ok = false;
        break;
      }
      lhs_idx.push_back(*i);
    }
    std::optional<size_t> rhs_idx =
        data.schema().AttributeIndex(cfd.rhs_attribute);
    if (!attrs_ok || !rhs_idx.has_value()) continue;

    std::map<Tuple, Value> expected;
    if (cfd.is_variable()) {
      expected = BuildExpectation(cfd, evidence_ != nullptr ? *evidence_ : data);
    }

    for (size_t r = 0; r < data.rows().size(); ++r) {
      const Tuple& row = data.rows()[r];
      const Value& rhs_value = row.at(*rhs_idx);
      if (rhs_value.is_null()) continue;  // incompleteness, not violation
      std::vector<Value> key;
      bool matches_lhs = true;
      for (size_t k = 0; k < lhs_idx.size(); ++k) {
        const Value& v = row.at(lhs_idx[k]);
        if (!cfd.lhs_pattern[k].Matches(v)) {
          matches_lhs = false;
          break;
        }
        key.push_back(v);
      }
      if (!matches_lhs) continue;

      if (!cfd.is_variable()) {
        if (!cfd.rhs_pattern.Matches(rhs_value)) {
          out.push_back(CfdViolation{r, &cfd, cfd.rhs_pattern.value()});
        }
        continue;
      }
      auto it = expected.find(Tuple(key));
      if (it != expected.end() && !(it->second == rhs_value)) {
        out.push_back(CfdViolation{r, &cfd, it->second});
      }
    }
  }
  return out;
}

double CfdChecker::ConsistencyScore(const Relation& data) const {
  if (data.empty()) return 1.0;
  std::vector<CfdViolation> violations = FindViolations(data);
  std::set<size_t> bad_rows;
  for (const CfdViolation& v : violations) bad_rows.insert(v.row_index);
  return 1.0 - static_cast<double>(bad_rows.size()) /
                   static_cast<double>(data.size());
}

Result<size_t> CfdChecker::Repair(Relation* data) const {
  std::vector<CfdViolation> violations = FindViolations(*data);
  if (violations.empty()) return size_t{0};

  // Apply expected values; rebuild the relation (rows are keyed by value,
  // so in-place mutation would corrupt the dedup index).
  std::vector<Tuple> rows = data->rows();
  size_t repaired = 0;
  for (const CfdViolation& v : violations) {
    if (v.expected.is_null() || v.cfd == nullptr) continue;
    std::optional<size_t> rhs_idx =
        data->schema().AttributeIndex(v.cfd->rhs_attribute);
    if (!rhs_idx.has_value()) continue;
    if (!(rows[v.row_index].at(*rhs_idx) == v.expected)) {
      rows[v.row_index][*rhs_idx] = v.expected;
      ++repaired;
    }
  }
  Relation rebuilt(data->schema());
  for (Tuple& row : rows) {
    VADA_RETURN_IF_ERROR(rebuilt.InsertUnchecked(std::move(row)));
  }
  *data = std::move(rebuilt);
  return repaired;
}

}  // namespace vada
