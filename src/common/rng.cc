#include "common/rng.h"

#include <cmath>

namespace vada {

uint64_t Rng::Next() {
  // SplitMix64: passes BigCrush, trivially seedable, fully portable.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::UniformDouble() {
  return (Next() >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::Index(size_t size) { return static_cast<size_t>(Next() % size); }

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; draws until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

}  // namespace vada
