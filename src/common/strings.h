#ifndef VADA_COMMON_STRINGS_H_
#define VADA_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace vada {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Splits an identifier into lowercase word tokens on '_', '-', ' ', '.'
/// and camelCase boundaries: "crimeRank_id" -> {"crime", "rank", "id"}.
std::vector<std::string> TokenizeIdentifier(std::string_view name);

/// True if every character is an ASCII digit (and text is non-empty).
bool IsDigits(std::string_view text);

}  // namespace vada

#endif  // VADA_COMMON_STRINGS_H_
