#ifndef VADA_COMMON_LOGGING_H_
#define VADA_COMMON_LOGGING_H_

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

namespace vada {

/// Severity levels for the library logger, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns "DEBUG", "INFO", "WARN" or "ERROR".
const char* LogLevelName(LogLevel level);

/// One log event, as handed to sinks.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  int64_t unix_nanos = 0;   ///< wall-clock timestamp
  uint64_t thread_id = 0;   ///< hashed std::thread::id
};

/// Output backend for the logger. Write is always invoked under the
/// logger's sink mutex, so implementations see whole records one at a
/// time and need no locking of their own (unless shared elsewhere).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// The default sink: one "[LEVEL] component: message" line to stderr.
class StderrLogSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;
};

/// Minimal process-wide logger. Thread-safe: the level is atomic and the
/// sink list is mutex-guarded, so concurrent Log calls from different
/// threads emit whole, non-interleaved records.
class Logger {
 public:
  /// Sets the minimum severity that will be emitted. Default: kWarning,
  /// so library users are not spammed unless they opt in.
  static void SetLevel(LogLevel level);
  static LogLevel level();

  /// Appends a sink alongside the existing ones.
  static void AddSink(std::shared_ptr<LogSink> sink);
  /// Drops every sink (including the default stderr sink); messages are
  /// discarded until a sink is added.
  static void ClearSinks();
  /// Restores the default configuration: the stderr sink only.
  static void ResetSinks();

  /// Emits one record to every sink if `level` is enabled.
  static void Log(LogLevel level, const std::string& component,
                  const std::string& message);
};

namespace internal_logging {

/// Stream-building helper behind VADA_LOG; collects the message and emits
/// it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  ~LogMessage() { Logger::Log(level_, component_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace vada

/// Usage: VADA_LOG(kInfo, "orchestrator") << "ran " << name;
#define VADA_LOG(level, component)                                       \
  ::vada::internal_logging::LogMessage(::vada::LogLevel::level, component) \
      .stream()

#endif  // VADA_COMMON_LOGGING_H_
