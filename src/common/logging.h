#ifndef VADA_COMMON_LOGGING_H_
#define VADA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace vada {

/// Severity levels for the library logger, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns "DEBUG", "INFO", "WARN" or "ERROR".
const char* LogLevelName(LogLevel level);

/// Minimal process-wide logger writing to stderr. Thread-compatible: the
/// level is plain state set once at startup; concurrent Log calls from one
/// thread interleave whole lines.
class Logger {
 public:
  /// Sets the minimum severity that will be emitted. Default: kWarning,
  /// so library users are not spammed unless they opt in.
  static void SetLevel(LogLevel level);
  static LogLevel level();

  /// Emits one line "[LEVEL] component: message" if `level` is enabled.
  static void Log(LogLevel level, const std::string& component,
                  const std::string& message);
};

namespace internal_logging {

/// Stream-building helper behind VADA_LOG; collects the message and emits
/// it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  ~LogMessage() { Logger::Log(level_, component_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace vada

/// Usage: VADA_LOG(kInfo, "orchestrator") << "ran " << name;
#define VADA_LOG(level, component)                                       \
  ::vada::internal_logging::LogMessage(::vada::LogLevel::level, component) \
      .stream()

#endif  // VADA_COMMON_LOGGING_H_
