#ifndef VADA_COMMON_THREAD_POOL_H_
#define VADA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace vada {

/// A fixed-size worker pool with a single shared FIFO queue — no work
/// stealing, no dynamic sizing. Built for the evaluation engine's
/// fan-out/fan-in pattern (dependency scans, per-stratum rule batches):
/// `ParallelFor` is the workhorse, `Submit` covers free-form tasks.
///
/// Determinism contract: the pool never decides *what* runs or in what
/// order results are consumed — callers build an indexed task list and
/// merge results by index, so outputs are identical no matter how the
/// iterations interleave. A pool constructed with `workers == 0` runs
/// everything inline on the calling thread, which is the injectable
/// escape hatch for single-threaded tests.
///
/// `ParallelFor` is reentrant: a task may itself call `ParallelFor`.
/// The calling thread always participates in the loop, so progress
/// never depends on a free worker (no nested-fan-out deadlock).
class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 means inline mode: no threads are
  /// created and all work runs on the caller.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 in inline mode).
  size_t workers() const { return threads_.size(); }

  /// Runs fn(0) .. fn(n-1), blocking until all have finished. The
  /// caller participates, so this completes even when every worker is
  /// busy. fn must not throw.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Enqueues one task; the future resolves when it has run. In inline
  /// mode the task runs before Submit returns.
  std::future<void> Submit(std::function<void()> fn);

  /// Total iterations/tasks executed since construction (including
  /// inline-mode and caller-executed ParallelFor iterations). The
  /// common layer cannot depend on obs, so this is a plain counter the
  /// caller publishes as the `vada_pool_tasks_total` metric.
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::atomic<uint64_t> tasks_executed_{0};

  Mutex mutex_;
  // _any because the annotated Mutex/CvMutexLock pair is not
  // std::mutex/std::unique_lock; the queue wait is coarse enough that
  // the indirection cost is noise.
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ VADA_GUARDED_BY(mutex_);
  bool stop_ VADA_GUARDED_BY(mutex_) = false;
};

}  // namespace vada

#endif  // VADA_COMMON_THREAD_POOL_H_
