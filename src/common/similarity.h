#ifndef VADA_COMMON_SIMILARITY_H_
#define VADA_COMMON_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace vada {

/// String-similarity primitives shared by schema matching, instance
/// matching and duplicate detection. All functions return a score in
/// [0, 1] where 1 means identical, unless stated otherwise.

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
int LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(len); both empty -> 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity, the base of Jaro-Winkler.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler with the standard prefix scale 0.1 and prefix cap 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of the padded character q-gram multiset-as-set.
/// `q` must be >= 1.
double QGramJaccard(std::string_view a, std::string_view b, int q);

/// Jaccard similarity of two token sets (case-sensitive; callers lowercase).
double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

/// Dice coefficient of two token sets: 2|A∩B| / (|A|+|B|).
double TokenDice(const std::vector<std::string>& a,
                 const std::vector<std::string>& b);

}  // namespace vada

#endif  // VADA_COMMON_SIMILARITY_H_
