#ifndef VADA_COMMON_STATUS_H_
#define VADA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace vada {

/// Error codes used across the VADA library. Modeled after the
/// RocksDB/Abseil status idiom: no exceptions cross any API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kDeadlineExceeded,    ///< a cooperative deadline passed before completion
  kResourceExhausted,   ///< an execution budget (steps, wall clock) ran out
  kDataLoss,            ///< durable state is corrupt or unrecoverable (bad
                        ///< WAL/checkpoint checksum, torn write, lost file)
};

/// Returns the canonical lowercase name of `code`, e.g. "invalid_argument".
const char* StatusCodeName(StatusCode code);

/// A success-or-error result for operations with no payload.
///
/// Example:
///   Status s = kb.AssertFact("match", tuple);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "ok" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. Holds either a `T` or a non-OK Status.
///
/// Example:
///   Result<Program> p = Parser::Parse(text);
///   if (!p.ok()) return p.status();
///   Use(p.value());
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status, so functions can
  /// `return value;` or `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok(). Accessing the value of an error result is a
  /// programming error; callers must check ok() first.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace vada

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK. Implementation-file convenience only.
#define VADA_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::vada::Status vada_status_macro_tmp = (expr);  \
    if (!vada_status_macro_tmp.ok()) {              \
      return vada_status_macro_tmp;                 \
    }                                               \
  } while (false)

#endif  // VADA_COMMON_STATUS_H_
