#ifndef VADA_COMMON_RNG_H_
#define VADA_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vada {

/// Deterministic pseudo-random generator (xorshift-based SplitMix64 core).
/// Every VADA data generator takes an explicit seed through this class so
/// experiments and tests are bit-for-bit reproducible across platforms
/// (std::mt19937 distributions are not portable across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Pre-condition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniformly chosen index in [0, size). Pre-condition: size > 0.
  size_t Index(size_t size);

  /// Gaussian via Box-Muller.
  double Gaussian(double mean, double stddev);

  /// Picks one element of `items` uniformly. Pre-condition: non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[Index(items.size())];
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = Index(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace vada

#endif  // VADA_COMMON_RNG_H_
