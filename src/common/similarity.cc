#include "common/similarity.h"

#include <algorithm>
#include <set>

namespace vada {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  double longest = static_cast<double>(std::max(a.size(), b.size()));
  return 1.0 - LevenshteinDistance(a, b) / longest;
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int window = std::max(0, std::max(n, m) / 2 - 1);
  std::vector<bool> a_matched(n, false);
  std::vector<bool> b_matched(m, false);
  int matches = 0;
  for (int i = 0; i < n; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(m - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters in order.
  int transpositions = 0;
  int k = 0;
  for (int i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double mm = matches;
  return (mm / n + mm / m + (mm - transpositions / 2.0) / mm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  int prefix = 0;
  const int cap = 4;
  for (int i = 0; i < cap && i < static_cast<int>(std::min(a.size(), b.size()));
       ++i) {
    if (a[i] != b[i]) break;
    ++prefix;
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double QGramJaccard(std::string_view a, std::string_view b, int q) {
  if (q < 1) q = 1;
  if (a.empty() && b.empty()) return 1.0;
  auto grams = [q](std::string_view s) {
    std::set<std::string> out;
    std::string padded(static_cast<size_t>(q - 1), '#');
    padded += s;
    padded.append(static_cast<size_t>(q - 1), '#');
    if (static_cast<int>(padded.size()) < q) return out;
    for (size_t i = 0; i + q <= padded.size(); ++i) {
      out.insert(padded.substr(i, q));
    }
    return out;
  };
  std::set<std::string> ga = grams(a);
  std::set<std::string> gb = grams(b);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t inter = 0;
  for (const std::string& g : ga) {
    if (gb.count(g) > 0) ++inter;
  }
  size_t uni = ga.size() + gb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

namespace {
size_t SetIntersectionSize(const std::set<std::string>& a,
                           const std::set<std::string>& b) {
  size_t inter = 0;
  for (const std::string& t : a) {
    if (b.count(t) > 0) ++inter;
  }
  return inter;
}
}  // namespace

double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = SetIntersectionSize(sa, sb);
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double TokenDice(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  size_t inter = SetIntersectionSize(sa, sb);
  return 2.0 * inter / static_cast<double>(sa.size() + sb.size());
}

}  // namespace vada
