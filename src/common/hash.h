#ifndef VADA_COMMON_HASH_H_
#define VADA_COMMON_HASH_H_

#include <cstddef>
#include <functional>

namespace vada {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe).
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>()(value) + 0x9E3779B9u + (*seed << 6) + (*seed >> 2);
}

}  // namespace vada

#endif  // VADA_COMMON_HASH_H_
