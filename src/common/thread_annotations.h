#ifndef VADA_COMMON_THREAD_ANNOTATIONS_H_
#define VADA_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotations, compiled away elsewhere. These are
// documentation that the compiler can check (-Wthread-safety under
// clang): a member declared VADA_GUARDED_BY(mutex_) may only be touched
// while mutex_ is held.

#if defined(__clang__) && (!defined(SWIG))
#define VADA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VADA_THREAD_ANNOTATION(x)
#endif

#define VADA_GUARDED_BY(x) VADA_THREAD_ANNOTATION(guarded_by(x))
#define VADA_PT_GUARDED_BY(x) VADA_THREAD_ANNOTATION(pt_guarded_by(x))

#endif  // VADA_COMMON_THREAD_ANNOTATIONS_H_
