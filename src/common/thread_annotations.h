#ifndef VADA_COMMON_THREAD_ANNOTATIONS_H_
#define VADA_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

// Clang thread-safety annotations, compiled away elsewhere. These are
// documentation that the compiler can check (-Wthread-safety under
// clang): a member declared VADA_GUARDED_BY(mutex_) may only be touched
// while mutex_ is held, a function declared VADA_REQUIRES(mutex_) may
// only be called with it held, and so on.
//
// The analysis can only track locks whose type is itself annotated, so
// classes that want checking use vada::Mutex / vada::MutexLock below
// instead of std::mutex / std::lock_guard (std::mutex carries no
// capability attributes under libstdc++). Both compile down to exactly
// the std types; only the attributes differ.

#if defined(__clang__) && (!defined(SWIG))
#define VADA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VADA_THREAD_ANNOTATION(x)
#endif

#define VADA_GUARDED_BY(x) VADA_THREAD_ANNOTATION(guarded_by(x))
#define VADA_PT_GUARDED_BY(x) VADA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares a type to be a lock (a "capability" the analysis tracks).
#define VADA_CAPABILITY(x) VADA_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires on construction, releases on
/// destruction.
#define VADA_SCOPED_CAPABILITY VADA_THREAD_ANNOTATION(scoped_lockable)
/// The function acquires the listed locks and holds them on return.
#define VADA_ACQUIRE(...) \
  VADA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// The function releases the listed locks (held on entry).
#define VADA_RELEASE(...) \
  VADA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// The function may only be called while holding the listed locks.
#define VADA_REQUIRES(...) \
  VADA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// The function may only be called while NOT holding the listed locks
/// (it will acquire them itself — catches self-deadlock).
#define VADA_EXCLUDES(...) VADA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Conditionally acquires: returns `res` on success.
#define VADA_TRY_ACQUIRE(res, ...) \
  VADA_THREAD_ANNOTATION(try_acquire_capability(res, __VA_ARGS__))
/// Opts a function out of the analysis (init/destruction paths).
#define VADA_NO_THREAD_SAFETY_ANALYSIS \
  VADA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vada {

/// std::mutex with capability attributes, so -Wthread-safety can check
/// VADA_GUARDED_BY members against actual lock acquisitions.
class VADA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VADA_ACQUIRE() { m_.lock(); }
  void unlock() VADA_RELEASE() { m_.unlock(); }
  bool try_lock() VADA_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// std::lock_guard over Mutex, visible to the analysis.
class VADA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) VADA_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() VADA_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// MutexLock that std::condition_variable_any can wait on: exposes the
/// BasicLockable pair the wait loop needs. wait() unlocks and relocks
/// internally, invisible to the analysis — on return the lock is held
/// again, so treating the whole scope as held (like libc++'s annotated
/// condition_variable does) is sound.
class VADA_SCOPED_CAPABILITY CvMutexLock {
 public:
  explicit CvMutexLock(Mutex& m) VADA_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~CvMutexLock() VADA_RELEASE() { m_.unlock(); }
  CvMutexLock(const CvMutexLock&) = delete;
  CvMutexLock& operator=(const CvMutexLock&) = delete;

  // For std::condition_variable_any only; do not call directly.
  void lock() VADA_NO_THREAD_SAFETY_ANALYSIS { m_.lock(); }
  void unlock() VADA_NO_THREAD_SAFETY_ANALYSIS { m_.unlock(); }

 private:
  Mutex& m_;
};

}  // namespace vada

#endif  // VADA_COMMON_THREAD_ANNOTATIONS_H_
