#ifndef VADA_COMMON_CRC32_H_
#define VADA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace vada {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum gzip/zlib
/// use. Table-driven, byte-at-a-time. Used to frame write-ahead-log
/// records and to fingerprint checkpoint files so torn or bit-flipped
/// storage is detected at recovery instead of being replayed as data.
uint32_t Crc32(const void* data, size_t size);

inline uint32_t Crc32(std::string_view text) {
  return Crc32(text.data(), text.size());
}

/// Incremental form: feed `crc` from a previous call (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace vada

#endif  // VADA_COMMON_CRC32_H_
