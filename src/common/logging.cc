#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace vada {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

/// The process-wide sink list and the mutex that guards it, bundled so
/// the guarded-by relationship is machine-checkable. Leaked on purpose
/// (never destroyed) so logging from static destructors stays safe.
struct SinkState {
  Mutex mutex;
  std::vector<std::shared_ptr<LogSink>> sinks VADA_GUARDED_BY(mutex);
};

SinkState& GlobalSinks() {
  static SinkState* state = [] {
    auto* s = new SinkState();
    s->sinks.push_back(std::make_shared<StderrLogSink>());
    return s;
  }();
  return *state;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void StderrLogSink::Write(const LogRecord& record) {
  // Single fprintf call: whole lines even if another writer bypasses the
  // logger's mutex (e.g. a direct stderr user).
  std::fprintf(stderr, "[%s] %s: %s\n", LogLevelName(record.level),
               record.component.c_str(), record.message.c_str());
}

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::AddSink(std::shared_ptr<LogSink> sink) {
  if (sink == nullptr) return;
  SinkState& state = GlobalSinks();
  MutexLock lock(state.mutex);
  state.sinks.push_back(std::move(sink));
}

void Logger::ClearSinks() {
  SinkState& state = GlobalSinks();
  MutexLock lock(state.mutex);
  state.sinks.clear();
}

void Logger::ResetSinks() {
  SinkState& state = GlobalSinks();
  MutexLock lock(state.mutex);
  state.sinks.clear();
  state.sinks.push_back(std::make_shared<StderrLogSink>());
}

void Logger::Log(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = message;
  record.unix_nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  record.thread_id = std::hash<std::thread::id>{}(std::this_thread::get_id());
  SinkState& state = GlobalSinks();
  MutexLock lock(state.mutex);
  for (const std::shared_ptr<LogSink>& sink : state.sinks) {
    sink->Write(record);
  }
}

}  // namespace vada
