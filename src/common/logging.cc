#include "common/logging.h"

#include <cstdio>

namespace vada {

namespace {
LogLevel g_level = LogLevel::kWarning;
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Logger::SetLevel(LogLevel level) { g_level = level; }

LogLevel Logger::level() { return g_level; }

void Logger::Log(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s: %s\n", LogLevelName(level), component.c_str(),
               message.c_str());
}

}  // namespace vada
